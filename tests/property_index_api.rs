//! Property tests for the unified index API: every structure the
//! [`IndexRegistry`] can build must agree with the B+-tree baseline on
//! membership — and on position, where it reports one — for random
//! keysets of every workload shape, both before and after poisoning.
//!
//! This is the contract the whole experiment pipeline rests on: an
//! availability attack degrades *cost*, never *answers*, no matter which
//! victim structure serves the query.

use lis::poison::GreedyCdfAttack;
use lis::prelude::*;
use lis::workloads::{domain_for_density, lognormal_keys, normal_keys, trial_rng, uniform_keys};
use proptest::prelude::*;

const N: usize = 400;
const DENSITY: f64 = 0.15;

/// Samples one of the paper's three workload shapes.
fn sample_keyset(dist: usize, seed: u64) -> KeySet {
    let domain = domain_for_density(N, DENSITY).expect("valid density");
    let mut rng = trial_rng(seed, 0);
    match dist {
        0 => uniform_keys(&mut rng, N, domain),
        1 => normal_keys(&mut rng, N, domain),
        _ => lognormal_keys(&mut rng, N, domain),
    }
    .expect("sampling")
}

/// Member probes plus guaranteed-absent probes (gap interiors and keys
/// beyond the domain).
fn probe_keys(ks: &KeySet) -> Vec<Key> {
    let mut probes: Vec<Key> = ks.keys().iter().step_by(3).copied().collect();
    probes.extend(ks.gaps().iter().take(40).map(|g| g.lo + (g.hi - g.lo) / 2));
    probes.push(ks.max_key() + 1);
    probes.push(ks.max_key().saturating_add(10_000));
    if ks.min_key() > 0 {
        probes.push(ks.min_key() - 1);
    }
    probes
}

/// The agreement contract for one keyset: every registry index vs the
/// B+-tree baseline, driven through the batched hot path.
fn assert_agreement(ks: &KeySet, context: &str) -> Result<(), TestCaseError> {
    let registry = IndexRegistry::with_defaults();
    let baseline = registry.build("btree", ks).expect("baseline build");
    let probes = probe_keys(ks);
    let expected = baseline.lookup_batch(&probes);

    // The baseline itself must mirror the keyset's ground truth.
    for (&k, e) in probes.iter().zip(&expected) {
        prop_assert_eq!(
            e.found,
            ks.contains(k),
            "{} btree membership of {}",
            context,
            k
        );
        if let Some(pos) = e.pos {
            prop_assert_eq!(ks.keys()[pos], k, "{} btree position of {}", context, k);
        }
    }

    for name in registry.names() {
        let index = registry.build(name, ks).expect("registry build");
        prop_assert_eq!(index.len(), ks.len(), "{} {} len", context, name);
        let results = index.lookup_batch(&probes);
        prop_assert_eq!(results.len(), probes.len());
        for ((&k, r), e) in probes.iter().zip(&results).zip(&expected) {
            prop_assert_eq!(
                r.found,
                e.found,
                "{}: {} disagrees with btree on membership of {}",
                context,
                name,
                k
            );
            if let Some(pos) = r.pos {
                prop_assert_eq!(
                    Some(pos),
                    e.pos,
                    "{}: {} disagrees with btree on position of {}",
                    context,
                    name,
                    k
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn registry_indexes_agree_with_btree_before_and_after_poisoning(
        seed in 0u64..1_000,
        dist in 0usize..3,
    ) {
        let clean = sample_keyset(dist, seed);
        assert_agreement(&clean, "clean")?;

        let attack = GreedyCdfAttack {
            budget: PoisonBudget::percentage(10.0, clean.len()).expect("legal pct"),
        };
        let poisoned = attack.run(&clean).expect("attack").poisoned;
        assert_agreement(&poisoned, "poisoned")?;
    }
}
