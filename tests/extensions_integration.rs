//! Cross-crate integration tests for the extension subsystems: the DP
//! attack on realistic data, query-workload-driven lookup costs, and the
//! multi-stage RMI under poisoning.

use lis::core::alex::{AlexConfig, AlexIndex};
use lis::core::bloom::LearnedBloom;
use lis::core::deep_rmi::{DeepRmi, DeepRmiConfig};
use lis::core::hashindex::{HashIndex, HashKind};
use lis::poison::volume::dp_rmi_attack;
use lis::prelude::*;
use lis::workloads::realsim;
use lis::workloads::{member_queries, mixed_queries, trial_rng, QuerySkew};

#[test]
fn dp_attack_on_simulated_salaries() {
    // The beyond-paper DP attack must dominate Algorithm 2 on the Figure-7
    // salary dataset too.
    let salaries = realsim::miami_salaries_scaled(7, 2_000).unwrap();
    let num_models = 20;
    let greedy = rmi_attack(
        &salaries,
        num_models,
        &RmiAttackConfig::new(10.0).with_max_exchanges(num_models),
    )
    .unwrap();
    let dp = dp_rmi_attack(&salaries, num_models, 10.0, 3.0).unwrap();
    assert!(
        dp.poisoned_rmi_loss >= greedy.poisoned_rmi_loss * 0.95,
        "dp {} vs greedy {}",
        dp.poisoned_rmi_loss,
        greedy.poisoned_rmi_loss
    );
    assert!(dp.rmi_ratio() > 1.0);
}

#[test]
fn zipf_queries_hit_poisoned_hot_spots() {
    // Lookup cost under a skewed query stream: comparisons rise after
    // poisoning for member queries regardless of skew.
    let mut rng = trial_rng(11, 0);
    let domain = lis::workloads::domain_for_density(5_000, 0.1).unwrap();
    let clean = lis::workloads::uniform_keys(&mut rng, 5_000, domain).unwrap();
    let attack = rmi_attack(
        &clean,
        50,
        &RmiAttackConfig::new(10.0).with_max_exchanges(16),
    )
    .unwrap();
    let poisoned = attack.poisoned_keyset(&clean).unwrap();

    let before = Rmi::build(&clean, &RmiConfig::linear_root(50)).unwrap();
    let after = Rmi::build(&poisoned, &RmiConfig::linear_root(50)).unwrap();

    for skew in [QuerySkew::Uniform, QuerySkew::Zipf(1.1)] {
        let queries = member_queries(&mut rng, &clean, skew, 5_000);
        let cost = |rmi: &Rmi| -> usize { queries.iter().map(|&k| rmi.lookup(k).cost).sum() };
        let (c_before, c_after) = (cost(&before), cost(&after));
        assert!(
            c_after > c_before,
            "{skew:?}: poisoned lookups should cost more ({c_after} vs {c_before})"
        );
        // Every member query still succeeds.
        for &k in &queries {
            assert!(after.lookup(k).pos.is_some());
        }
    }
}

#[test]
fn existence_index_mixed_workload() {
    let mut rng = trial_rng(12, 0);
    let domain = lis::workloads::domain_for_density(3_000, 0.05).unwrap();
    let clean = lis::workloads::uniform_keys(&mut rng, 3_000, domain).unwrap();
    let lb = LearnedBloom::build(&clean, 0.01).unwrap();
    let queries = mixed_queries(&mut rng, &clean, 0.5, 4_000);
    let mut false_negatives = 0usize;
    for &q in &queries {
        let answer = lb.may_contain(q);
        if clean.contains(q) && !answer {
            false_negatives += 1;
        }
    }
    assert_eq!(
        false_negatives, 0,
        "existence index must never miss a member"
    );
}

#[test]
fn deep_rmi_vs_two_stage_on_real_shape() {
    let lat = realsim::osm_latitudes_scaled(3, 10_000).unwrap();
    let two = DeepRmi::build(&lat, &DeepRmiConfig::two_stage(100)).unwrap();
    let three = DeepRmi::build(&lat, &DeepRmiConfig::three_stage(10, 100)).unwrap();
    // Both must answer every membership query correctly.
    for (i, &k) in lat.keys().iter().enumerate().step_by(97) {
        assert_eq!(two.lookup(k).pos, Some(i));
        assert_eq!(three.lookup(k).pos, Some(i));
    }
    assert_eq!(three.depth(), 3);
}

#[test]
fn updatable_index_poison_stream_end_to_end() {
    let mut rng = trial_rng(13, 0);
    let domain = lis::workloads::domain_for_density(4_000, 0.05).unwrap();
    let clean = lis::workloads::uniform_keys(&mut rng, 4_000, domain).unwrap();
    let plan = greedy_poison(&clean, PoisonBudget::percentage(10.0, 4_000).unwrap()).unwrap();

    let mut idx = AlexIndex::build(&clean, AlexConfig::default()).unwrap();
    idx.reset_stats();
    for &k in &plan.keys {
        idx.insert(k).unwrap();
    }
    // Correctness survives the hostile stream.
    assert_eq!(idx.len(), clean.len() + plan.keys.len());
    for &k in clean.keys().iter().step_by(41) {
        assert!(idx.contains(k));
    }
    for &k in &plan.keys {
        assert!(idx.contains(k));
    }
    let sorted = idx.keys();
    assert!(sorted.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn learned_hash_chain_mass_is_conserved_under_poison() {
    let mut rng = trial_rng(14, 0);
    let domain = lis::workloads::domain_for_density(3_000, 0.1).unwrap();
    let clean = lis::workloads::uniform_keys(&mut rng, 3_000, domain).unwrap();
    let plan = greedy_poison(&clean, PoisonBudget::percentage(10.0, 3_000).unwrap()).unwrap();
    let poisoned = plan.poisoned_keyset(&clean).unwrap();

    let table = HashIndex::build(&poisoned, 4_000, HashKind::Learned).unwrap();
    assert_eq!(table.len(), poisoned.len());
    for &k in poisoned.keys().iter().step_by(31) {
        assert!(table.lookup(k).found);
    }
}
