//! Build-plane equivalence properties: the parallel training paths must
//! be *indistinguishable* from the serial ones (bit-identical models,
//! losses, and lookups), the optimized paths must match the kept-callable
//! reference builds, and the lazy campaign engine must not lose attack
//! strength against the exact engine — across all three workload shapes,
//! clean and poisoned.

use lis::core::deep_rmi::{DeepRmi, DeepRmiConfig};
use lis::core::pla::PlaIndex;
use lis::core::rmi::{Rmi, RmiConfig};
use lis::prelude::*;
use lis::workloads::{domain_for_density, lognormal_keys, normal_keys, trial_rng, uniform_keys};
use lis_poison::{greedy_poison, greedy_poison_lazy, PoisonBudget};

const N: usize = 3_000;

/// The three workload shapes of the paper's experiments.
fn shapes() -> Vec<(&'static str, KeySet)> {
    let domain = domain_for_density(N, 0.15).unwrap();
    vec![
        (
            "uniform",
            uniform_keys(&mut trial_rng(11, 0), N, domain).unwrap(),
        ),
        (
            "normal",
            normal_keys(&mut trial_rng(12, 0), N, domain).unwrap(),
        ),
        (
            "lognormal",
            lognormal_keys(&mut trial_rng(13, 0), N, domain).unwrap(),
        ),
    ]
}

/// Clean and greedily-poisoned variants of one shape.
fn datasets(ks: &KeySet) -> Vec<(&'static str, KeySet)> {
    let plan = greedy_poison(ks, PoisonBudget::percentage(5.0, ks.len()).unwrap()).unwrap();
    vec![
        ("clean", ks.clone()),
        ("poisoned", plan.poisoned_keyset(ks).unwrap()),
    ]
}

fn probes(ks: &KeySet) -> Vec<Key> {
    let mut probes: Vec<Key> = ks.keys().iter().step_by(7).copied().collect();
    probes.extend([0, 1, ks.max_key() + 3, Key::MAX]);
    probes
}

#[test]
fn rmi_parallel_build_equals_serial_and_reference() {
    for (shape, base) in shapes() {
        for (dataset, ks) in datasets(&base) {
            let cfg = RmiConfig::linear_root((ks.len() / 64).max(2));
            let reference = Rmi::build_reference(&ks, &cfg).unwrap();
            let serial = Rmi::build_with_threads(&ks, &cfg, 1).unwrap();
            for threads in [2usize, 4] {
                let parallel = Rmi::build_with_threads(&ks, &cfg, threads).unwrap();
                let ctx = format!("{shape}/{dataset}/{threads} threads");
                // Bit-identical leaf tables and losses: thread placement
                // must be unobservable.
                assert_eq!(serial.leaves(), parallel.leaves(), "{ctx}");
                assert_eq!(
                    serial.rmi_loss().to_bits(),
                    parallel.rmi_loss().to_bits(),
                    "{ctx}"
                );
                // And the reference path built the same index.
                assert_eq!(reference.leaves(), parallel.leaves(), "{ctx}");
                assert_eq!(
                    reference.rmi_loss().to_bits(),
                    parallel.rmi_loss().to_bits(),
                    "{ctx}"
                );
                for k in probes(&ks) {
                    let hit = parallel.lookup(k);
                    assert_eq!(hit, serial.lookup(k), "{ctx} key {k}");
                    assert_eq!(hit, reference.lookup(k), "{ctx} key {k}");
                }
            }
        }
    }
}

#[test]
fn deep_rmi_parallel_build_equals_serial_and_reference() {
    for (shape, base) in shapes() {
        for (dataset, ks) in datasets(&base) {
            let cfg = DeepRmiConfig::three_stage(6, (ks.len() / 40).max(8));
            let reference = DeepRmi::build_reference(&ks, &cfg).unwrap();
            let serial = DeepRmi::build_with_threads(&ks, &cfg, 1).unwrap();
            for threads in [2usize, 4] {
                let parallel = DeepRmi::build_with_threads(&ks, &cfg, threads).unwrap();
                let ctx = format!("{shape}/{dataset}/{threads} threads");
                assert_eq!(
                    serial.leaf_loss().to_bits(),
                    parallel.leaf_loss().to_bits(),
                    "{ctx}"
                );
                assert_eq!(
                    reference.leaf_loss().to_bits(),
                    parallel.leaf_loss().to_bits(),
                    "{ctx}"
                );
                assert_eq!(serial.max_leaf_error(), parallel.max_leaf_error(), "{ctx}");
                assert_eq!(
                    reference.max_leaf_error(),
                    parallel.max_leaf_error(),
                    "{ctx}"
                );
                for k in probes(&ks) {
                    let hit = parallel.lookup(k);
                    assert_eq!(hit, serial.lookup(k), "{ctx} key {k}");
                    assert_eq!(hit, reference.lookup(k), "{ctx} key {k}");
                }
            }
        }
    }
}

#[test]
fn pla_build_equals_reference_with_streaming_stats() {
    for (shape, base) in shapes() {
        for (dataset, ks) in datasets(&base) {
            for eps in [4usize, 16] {
                let ctx = format!("{shape}/{dataset}/eps {eps}");
                let optimized = PlaIndex::build(&ks, eps).unwrap();
                let reference = PlaIndex::build_reference(&ks, eps).unwrap();
                assert_eq!(optimized.segments(), reference.segments(), "{ctx}");
                assert_eq!(
                    LearnedIndex::loss(&optimized).to_bits(),
                    LearnedIndex::loss(&reference).to_bits(),
                    "{ctx}"
                );
                assert_eq!(
                    optimized.max_training_error(),
                    reference.max_training_error(),
                    "{ctx}"
                );
                // The stored stats equal a from-scratch recomputation.
                assert_eq!(
                    LearnedIndex::loss(&optimized).to_bits(),
                    optimized.loss_recomputed().to_bits(),
                    "{ctx}"
                );
                for k in probes(&ks) {
                    assert_eq!(optimized.lookup(k), reference.lookup(k), "{ctx} key {k}");
                }
            }
        }
    }
}

#[test]
fn registry_builds_still_serve_after_the_build_plane_overhaul() {
    // End-to-end guard: registry-built victims (which now train through
    // the parallel plane) answer every member correctly on every shape,
    // clean and poisoned.
    let registry = IndexRegistry::with_defaults();
    for (shape, base) in shapes() {
        for (dataset, ks) in datasets(&base) {
            for name in ["rmi", "deep-rmi", "pla"] {
                let idx = registry.build(name, &ks).unwrap();
                for (i, &k) in ks.keys().iter().enumerate().step_by(53) {
                    let hit = idx.lookup(k);
                    assert!(hit.found, "{shape}/{dataset}/{name} lost key {k}");
                    assert_eq!(hit.pos, Some(i), "{shape}/{dataset}/{name} key {k}");
                }
            }
        }
    }
}

#[test]
fn lazy_campaign_keeps_exact_attack_strength_on_every_shape() {
    for (shape, ks) in shapes() {
        let budget = PoisonBudget::percentage(5.0, ks.len()).unwrap();
        let exact = greedy_poison(&ks, budget).unwrap();
        let lazy = greedy_poison_lazy(&ks, budget).unwrap();
        assert_eq!(lazy.keys.len(), exact.keys.len(), "{shape}");
        // Lazy is near-exact, not exact: trajectories may diverge on a
        // near-tie and compound (worst observed: ~3% on the lognormal
        // saturated head). Anything beyond 5% means the engine broke.
        assert!(
            lazy.final_mse() >= 0.95 * exact.final_mse(),
            "{shape}: lazy {} vs exact {}",
            lazy.final_mse(),
            exact.final_mse()
        );
        // And the lazy plan is a real, insertable campaign.
        let poisoned = lazy.poisoned_keyset(&ks).unwrap();
        assert_eq!(poisoned.len(), ks.len() + lazy.keys.len(), "{shape}");
    }
}
