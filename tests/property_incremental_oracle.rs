//! Property tests pinning the [`IncrementalOracle`] against from-scratch
//! refits: after *arbitrary interleaved insert/remove sequences*, its
//! maintained moments, candidate-insertion losses, and removal losses
//! must agree with a regression refit on the mutated keyset.

use lis::prelude::*;
use lis_core::linreg::LinearModel;
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn initial_keys() -> impl Strategy<Value = BTreeSet<u64>> {
    btree_set(0u64..5_000, 8..100)
}

/// One mutation, packed into a single draw: the low bit selects insert
/// (0) / remove (1), the rest picks the key (insert) or the index of an
/// existing key (remove).
fn actions() -> impl Strategy<Value = Vec<(usize, u64)>> {
    vec(0u64..10_000, 1..80).prop_map(|raws| {
        raws.into_iter()
            .map(|raw| ((raw & 1) as usize, raw >> 1))
            .collect()
    })
}

/// Refits the regression on the mirror set (`None` below 2 keys).
fn refit_mse(mirror: &BTreeSet<u64>) -> Option<f64> {
    if mirror.len() < 2 {
        return None;
    }
    let ks = KeySet::from_keys(mirror.iter().copied().collect()).ok()?;
    Some(LinearModel::fit(&ks).ok()?.mse)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

proptest! {
    #[test]
    fn incremental_oracle_tracks_refit_under_interleaved_mutations(
        initial in initial_keys(),
        script in actions(),
    ) {
        let mut mirror = initial.clone();
        let ks = KeySet::from_keys(initial.iter().copied().collect()).unwrap();
        let mut oracle = IncrementalOracle::new(&ks);

        for (step, &(op, raw)) in script.iter().enumerate() {
            if op == 0 {
                // Insert a fresh key (skip the action on collision —
                // collisions must also be *reported*, not absorbed).
                if mirror.contains(&raw) {
                    prop_assert!(oracle.insert(raw).is_err(), "step {step}: dup accepted");
                    continue;
                }
                oracle.insert(raw).unwrap();
                mirror.insert(raw);
            } else {
                // Remove an existing key, picked by index so the strategy
                // cannot miss; keep at least 2 keys alive.
                if mirror.len() <= 2 {
                    continue;
                }
                let victim = *mirror
                    .iter()
                    .nth(raw as usize % mirror.len())
                    .expect("non-empty");
                oracle.remove(victim).unwrap();
                mirror.remove(&victim);
            }
            prop_assert_eq!(oracle.len(), mirror.len(), "step {}", step);

            // Maintained moments ≡ from-scratch refit.
            let refit = refit_mse(&mirror).expect("≥ 2 keys maintained");
            let fast = oracle.current_mse();
            prop_assert!(
                close(fast, refit),
                "step {}: incremental mse {} vs refit {}", step, fast, refit
            );
        }

        // Candidate queries after the whole script: insertion and removal
        // losses against explicit refits.
        let snapshot = KeySet::from_keys(mirror.iter().copied().collect()).unwrap();
        for probe in [3u64, 977, 2_501, 4_999] {
            if mirror.contains(&probe) {
                continue;
            }
            let fast = oracle.loss_insert(probe);
            // Build the augmented set from raw keys: the oracle (unlike
            // `KeySet::with_key`) has no domain restriction, and probes
            // may fall outside the mutated set's [min, max] span.
            let mut augmented: Vec<u64> = mirror.iter().copied().collect();
            augmented.push(probe);
            let slow = LinearModel::fit(&KeySet::from_keys(augmented).unwrap())
                .unwrap()
                .mse;
            prop_assert!(
                close(fast, slow),
                "insert probe {}: {} vs {}", probe, fast, slow
            );
            prop_assert_eq!(
                oracle.rank_below(probe),
                snapshot.insertion_rank(probe) - 1,
                "probe {}", probe
            );
        }
        if mirror.len() > 3 {
            let victim = *mirror.iter().nth(mirror.len() / 2).unwrap();
            let mut without = snapshot.clone();
            without.remove(victim).unwrap();
            let fast = oracle.loss_remove(victim);
            let slow = LinearModel::fit(&without).unwrap().mse;
            prop_assert!(
                close(fast, slow),
                "remove probe {}: {} vs {}", victim, fast, slow
            );
        }
    }

    #[test]
    fn incremental_oracle_membership_mirrors_the_keyset(
        initial in initial_keys(),
        probes in vec(0u64..5_000, 10..40),
    ) {
        let ks = KeySet::from_keys(initial.iter().copied().collect()).unwrap();
        let oracle = IncrementalOracle::new(&ks);
        for p in probes {
            prop_assert_eq!(oracle.contains(p), initial.contains(&p), "probe {}", p);
        }
    }
}
