//! Property-based tests of the poisoning attacks: the algebra of the O(1)
//! oracle, the endpoint-optimality of the single-point attack (Theorem 2),
//! and the structural invariants of the greedy and RMI attacks.

use lis::prelude::*;
use lis_poison::bruteforce::bruteforce_single_point;
use lis_poison::{LossSequence, PoisonOracle};
use proptest::collection::btree_set;
use proptest::prelude::*;

fn keyset_strategy() -> impl Strategy<Value = KeySet> {
    btree_set(0u64..5_000, 2..80)
        .prop_map(|set| KeySet::from_keys(set.into_iter().collect()).unwrap())
}

/// Keysets that are guaranteed to have at least one interior gap.
fn sparse_keyset_strategy() -> impl Strategy<Value = KeySet> {
    keyset_strategy().prop_filter("needs an interior gap", |ks| !ks.gaps().is_empty())
}

/// Narrow-span keysets for the full loss-sequence scan (O(span) per case).
fn narrow_keyset_strategy() -> impl Strategy<Value = KeySet> {
    btree_set(0u64..800, 2..60)
        .prop_map(|set| KeySet::from_keys(set.into_iter().collect()).unwrap())
        .prop_filter("needs an interior gap", |ks| !ks.gaps().is_empty())
}

proptest! {
    #[test]
    fn oracle_matches_full_refit(ks in keyset_strategy(), key in 0u64..5_000) {
        prop_assume!(!ks.contains(key));
        prop_assume!(ks.domain().contains(key));
        let oracle = PoisonOracle::new(&ks);
        let fast = oracle.loss(key);
        let slow = oracle.loss_refit(&ks, key);
        prop_assert!(
            (fast - slow).abs() <= 1e-6 * slow.abs().max(1.0),
            "oracle {} vs refit {} at key {}",
            fast, slow, key
        );
    }

    #[test]
    fn single_point_attack_is_globally_optimal(ks in sparse_keyset_strategy()) {
        // Theorem 2 consequence: endpoint evaluation finds the same optimum
        // as scanning every unoccupied in-range key.
        let plan = optimal_single_point(&ks).unwrap();
        let (_, bf_loss) = bruteforce_single_point(&ks).unwrap();
        prop_assert!(
            (plan.poisoned_mse - bf_loss).abs() <= 1e-7 * bf_loss.max(1.0),
            "endpoint {} vs scan {}",
            plan.poisoned_mse, bf_loss
        );
    }

    #[test]
    fn loss_sequence_is_convex_per_gap(ks in narrow_keyset_strategy()) {
        let seq = LossSequence::evaluate(&ks);
        prop_assert!(seq.is_convex_per_gap(1e-6));
    }

    #[test]
    fn poisoning_key_is_always_fresh_and_in_range(ks in sparse_keyset_strategy()) {
        let plan = optimal_single_point(&ks).unwrap();
        prop_assert!(!ks.contains(plan.key));
        prop_assert!(plan.key > ks.min_key() && plan.key < ks.max_key());
    }

    #[test]
    fn greedy_respects_budget_and_freshness(ks in sparse_keyset_strategy(), p in 1usize..10) {
        let plan = greedy_poison(&ks, PoisonBudget::keys(p)).unwrap();
        prop_assert!(plan.keys.len() <= p);
        let mut seen = std::collections::HashSet::new();
        for &k in &plan.keys {
            prop_assert!(!ks.contains(k), "poison {} collides", k);
            prop_assert!(seen.insert(k), "duplicate poison {}", k);
        }
        // Rank multiset invariant: the poisoned set has dense ranks.
        let poisoned = plan.poisoned_keyset(&ks).unwrap();
        prop_assert_eq!(poisoned.len(), ks.len() + plan.keys.len());
    }

    #[test]
    fn greedy_loss_is_nondecreasing_in_budget(ks in sparse_keyset_strategy()) {
        prop_assume!(ks.free_slots_between() >= 4);
        let small = greedy_poison(&ks, PoisonBudget::keys(2)).unwrap();
        let large = greedy_poison(&ks, PoisonBudget::keys(4)).unwrap();
        prop_assume!(small.keys.len() == 2 && large.keys.len() == 4);
        // Greedy prefixes coincide, so the larger budget extends the
        // smaller one and optimal refit loss cannot decrease... it CAN
        // decrease in principle (refit), so we allow 1% slack.
        prop_assert!(
            large.final_mse() >= small.final_mse() * 0.99,
            "budget 4 loss {} below budget 2 loss {}",
            large.final_mse(), small.final_mse()
        );
    }

    #[test]
    fn rank_compound_effect(ks in keyset_strategy(), key in 0u64..5_000) {
        // Inserting a key increments the rank of exactly the larger keys.
        prop_assume!(!ks.contains(key) && ks.domain().contains(key));
        let poisoned = ks.with_key(key).unwrap();
        for (k, r) in ks.cdf_pairs() {
            let r_after = poisoned.rank(k).unwrap();
            if k > key {
                prop_assert_eq!(r_after, r + 1);
            } else {
                prop_assert_eq!(r_after, r);
            }
        }
    }

    #[test]
    fn rmi_attack_invariants(parts in 2usize..8, pct in 1.0f64..15.0) {
        // Fixed moderate keyset with gaps; random partition count and
        // poisoning percentage.
        let ks = KeySet::from_keys((0..240u64).map(|i| i * 7 + (i % 3)).collect()).unwrap();
        let cfg = RmiAttackConfig::new(pct).with_max_exchanges(16);
        let res = rmi_attack(&ks, parts, &cfg).unwrap();
        // Legit keys conserved in order.
        let merged: Vec<u64> = res.models.iter().flat_map(|m| m.legit.clone()).collect();
        prop_assert_eq!(merged.as_slice(), ks.keys());
        // Budget respected.
        let budget = (pct / 100.0 * ks.len() as f64).floor() as usize;
        prop_assert!(res.total_poison <= budget);
        // Threshold respected.
        let t = ((3.0 * budget as f64 / parts as f64).ceil() as usize).max(budget / parts + 1);
        for m in &res.models {
            prop_assert!(m.poison.len() <= t, "model holds {} > t {}", m.poison.len(), t);
        }
        // Attack never *reduces* the RMI loss.
        prop_assert!(res.poisoned_rmi_loss >= res.clean_rmi_loss - 1e-9);
    }
}
