//! Property-based tests for the extension subsystems: the updatable index,
//! the PLA index, the learned hash and existence indexes, the removal
//! oracle, and the DP volume allocator.

use lis::core::alex::{AlexConfig, AlexIndex};
use lis::core::bloom::{BloomFilter, LearnedBloom};
use lis::core::hashindex::{HashIndex, HashKind};
use lis::core::pla::PlaIndex;
use lis::poison::removal::optimal_single_removal;
use lis::poison::volume::{optimal_volume_allocation, ResponseCurve};
use lis::prelude::*;
use proptest::collection::btree_set;
use proptest::prelude::*;

fn keyset_strategy() -> impl Strategy<Value = KeySet> {
    btree_set(0u64..10_000, 4..150)
        .prop_map(|set| KeySet::from_keys(set.into_iter().collect()).unwrap())
}

proptest! {
    #[test]
    fn pla_error_bound_holds(ks in keyset_strategy(), eps in 1usize..32) {
        let pla = PlaIndex::build(&ks, eps).unwrap();
        prop_assert!(pla.max_training_error() <= eps + 1);
        for (i, &k) in ks.keys().iter().enumerate() {
            prop_assert_eq!(pla.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn pla_segments_tile(ks in keyset_strategy(), eps in 1usize..32) {
        let pla = PlaIndex::build(&ks, eps).unwrap();
        let covered: usize = pla.segments().iter().map(|s| s.len).sum();
        prop_assert_eq!(covered, ks.len());
        for w in pla.segments().windows(2) {
            prop_assert!(w[0].last_key < w[1].first_key);
        }
    }

    #[test]
    fn alex_insert_preserves_order_and_membership(
        ks in keyset_strategy(),
        extra in btree_set(0u64..10_000, 1..40),
    ) {
        let mut idx = AlexIndex::build(&ks, AlexConfig {
            leaf_capacity: 32, fill_low: 0.5, fill_high: 0.8,
        }).unwrap();
        let mut expected: std::collections::BTreeSet<u64> =
            ks.keys().iter().copied().collect();
        for k in extra {
            match idx.insert(k) {
                Ok(()) => {
                    prop_assert!(expected.insert(k), "insert succeeded on duplicate {}", k);
                }
                Err(_) => {
                    prop_assert!(expected.contains(&k), "insert failed on fresh key {}", k);
                }
            }
        }
        let keys = idx.keys();
        prop_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(keys.len(), expected.len());
        for &k in expected.iter() {
            prop_assert!(idx.contains(k), "lost key {}", k);
        }
    }

    #[test]
    fn hash_index_total_membership(ks in keyset_strategy(), slots_mult in 1usize..4) {
        for kind in [HashKind::Learned, HashKind::Random] {
            let t = HashIndex::build(&ks, ks.len() * slots_mult, kind).unwrap();
            for &k in ks.keys() {
                prop_assert!(t.lookup(k).found);
            }
            // Chain mass conservation: Σ bucket lens == n.
            let mass: f64 = t.expected_probes() * ks.len() as f64;
            prop_assert!(mass >= ks.len() as f64);
        }
    }

    #[test]
    fn bloom_no_false_negatives_prop(ks in keyset_strategy(), rate in 0.001f64..0.2) {
        let mut f = BloomFilter::with_rate(ks.len(), rate).unwrap();
        for &k in ks.keys() {
            f.insert(k);
        }
        for &k in ks.keys() {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn learned_bloom_no_false_negatives_prop(ks in keyset_strategy()) {
        let lb = LearnedBloom::build(&ks, 0.01).unwrap();
        for &k in ks.keys() {
            prop_assert!(lb.may_contain(k), "false negative at {}", k);
        }
    }

    #[test]
    fn removal_oracle_matches_exhaustive(ks in keyset_strategy()) {
        prop_assume!(ks.len() >= 3);
        let plan = optimal_single_removal(&ks).unwrap();
        let mut best = f64::NEG_INFINITY;
        for &k in ks.keys() {
            let mut without = ks.clone();
            without.remove(k).unwrap();
            best = best.max(LinearModel::fit(&without).unwrap().mse);
        }
        prop_assert!(
            (plan.poisoned_mse - best).abs() <= 1e-6 * best.abs().max(1.0),
            "oracle {} vs exhaustive {}",
            plan.poisoned_mse, best
        );
    }

    #[test]
    fn dp_allocation_feasible_and_dominates_uniform(
        losses in proptest::collection::vec(
            proptest::collection::vec(0.0f64..100.0, 6),
            2..6,
        ),
        budget in 0usize..12,
    ) {
        // Make each curve non-decreasing (greedy curves are).
        let curves: Vec<ResponseCurve> = losses
            .into_iter()
            .map(|mut v| {
                for i in 1..v.len() {
                    v[i] = v[i].max(v[i - 1]);
                }
                ResponseCurve { losses: v }
            })
            .collect();
        let t = 5usize;
        let dp = optimal_volume_allocation(&curves, budget, t).unwrap();
        // Feasibility.
        prop_assert!(dp.volumes.iter().sum::<usize>() <= budget);
        prop_assert!(dp.volumes.iter().all(|&v| v <= t));
        // Dominates the uniform allocation.
        let per = (budget / curves.len()).min(t);
        let uniform: f64 = curves.iter().map(|c| c.losses[per.min(c.max_volume())]).sum();
        prop_assert!(dp.total_loss >= uniform - 1e-9);
        // Dominates every single-model dump.
        for (i, c) in curves.iter().enumerate() {
            let dump = budget.min(t).min(c.max_volume());
            let single: f64 = curves
                .iter()
                .enumerate()
                .map(|(j, cj)| if j == i { cj.losses[dump] } else { cj.losses[0] })
                .sum();
            prop_assert!(dp.total_loss >= single - 1e-9);
        }
    }
}
