//! Integration tests of the concurrent serving front end: answers served
//! through the queue → micro-batcher → worker pool must be *identical* to
//! direct `DynIndex::lookup_batch` calls on the same index, under real
//! concurrency — multiple client threads, interleaved submissions, sharded
//! and unsharded victims, benign and adversarial traffic.

use lis::poison::{GreedyCdfAttack, PoisonBudget};
use lis::prelude::*;
use lis::server::drive;
use std::sync::Arc;
use std::time::Duration;

fn keyset(n: u64) -> KeySet {
    KeySet::from_keys((0..n).map(|i| i * 7 + 3).collect()).unwrap()
}

/// Per-client probe stream: members, misses, and out-of-domain keys in a
/// client-specific shuffled order.
fn client_probes(ks: &KeySet, client: u64) -> Vec<Key> {
    let mut probes: Vec<Key> = ks.keys().to_vec();
    probes.extend([0, 1, 2, ks.max_key() + 1, Key::MAX]);
    let len = probes.len();
    for i in 0..len {
        let j = (lis::workloads::rng::splitmix64(client ^ i as u64) % len as u64) as usize;
        probes.swap(i, j);
    }
    probes
}

/// The acceptance check: every answer a concurrent client receives from
/// the server equals the direct batched lookup on the same index — found,
/// position, and cost — for monolithic and sharded victims alike.
#[test]
fn served_answers_equal_direct_lookup_batch_under_concurrency() {
    let ks = keyset(3_000);
    let registry = IndexRegistry::with_defaults();
    for name in ["rmi", "sharded:rmi:8", "btree"] {
        let index = Arc::new(registry.build(name, &ks).unwrap());
        let server = Server::start(
            Arc::clone(&index),
            ServeConfig::new()
                .workers(4)
                .batch(32)
                .deadline(Duration::from_micros(100)),
        );
        let clients = 4;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let probes = client_probes(&ks, client);
                    let handle = server.handle();
                    let index = Arc::clone(&index);
                    scope.spawn(move || {
                        // Pipeline a window of requests so submissions from
                        // all clients interleave inside shared batches.
                        let mut served = Vec::with_capacity(probes.len());
                        for chunk in probes.chunks(64) {
                            let tickets: Vec<_> =
                                chunk.iter().map(|&k| server_submit(&handle, k)).collect();
                            served.extend(tickets.into_iter().map(|t| t.wait().unwrap()));
                        }
                        let direct = index.lookup_batch(&probes);
                        assert_eq!(served, direct, "served ≠ direct for client {client}");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let report = server.shutdown();
        assert_eq!(
            report.served as usize,
            clients as usize * (ks.len() + 5),
            "{name} lost requests"
        );
        assert_eq!(report.index, name);
        assert!(report.latency.count() == report.served);
    }
}

fn server_submit(handle: &lis::server::ServerHandle, key: Key) -> lis::server::ResponseTicket {
    handle.submit(key).expect("server alive")
}

/// Single-request micro-batches (deadline flush) still answer correctly —
/// the trickle-traffic path.
#[test]
fn trickle_traffic_flushes_on_deadline() {
    let ks = keyset(400);
    let index = Arc::new(IndexRegistry::with_defaults().build("pla", &ks).unwrap());
    let server = Server::start(
        Arc::clone(&index),
        ServeConfig::new()
            .workers(1)
            .batch(1_024)
            .deadline(Duration::from_millis(2)),
    );
    let handle = server.handle();
    for &k in ks.keys().iter().step_by(97) {
        let served = handle.lookup(k).unwrap();
        assert_eq!(served, index.lookup(k), "trickle answer diverged on {k}");
    }
    let report = server.shutdown();
    // One request at a time: every batch was cut by the deadline, not the
    // size cap, and nothing was dropped.
    assert_eq!(report.served, report.batches);
}

/// Mixed benign + adversarial traffic is served losslessly and the
/// latency histogram accounts for every request.
#[test]
fn adversarial_mix_is_served_losslessly() {
    let ks = keyset(2_000);
    let attack = GreedyCdfAttack {
        budget: PoisonBudget::keys(200),
    };
    let outcome = attack.run(&ks).unwrap();
    let index = Arc::new(
        IndexRegistry::with_defaults()
            .build("rmi", &outcome.poisoned)
            .unwrap(),
    );
    let server = Server::start(Arc::clone(&index), ServeConfig::new().workers(2));
    let sources: Vec<Box<dyn TrafficSource>> = (0..3)
        .map(|c| {
            Box::new(MixedSource::new(
                BenignSource::new(ks.keys().to_vec(), c).unwrap(),
                ReplaySource::new(outcome.inserted.clone()).unwrap(),
                0.25,
                c + 77,
            )) as Box<dyn TrafficSource>
        })
        .collect();
    let total = drive(&server, sources, 1_500).unwrap();
    let report = server.shutdown();
    assert_eq!(total, 4_500);
    assert_eq!(report.served, 4_500);
    assert_eq!(report.latency.count(), 4_500);
    assert!(report.latency.p50() <= report.latency.p99());
    assert!(report.latency.p99() <= report.latency.max());
    assert!(report.mean_cost() > 0.0);
    assert!(report.throughput() > 0.0);
}

/// The pipeline's measurement path and a hand-driven server session agree:
/// one serve code path, one answer.
#[test]
fn pipeline_costs_match_hand_served_costs() {
    let ks = keyset(1_200);
    let report = lis::pipeline::Pipeline::new(WorkloadSpec::Fixed(ks.clone()))
        .index("btree")
        .queries(400)
        .run()
        .unwrap();
    let row = report.index("btree").unwrap();
    // A clean pipeline serves identical probes to both builds through the
    // front end; the measured costs must agree exactly.
    assert_eq!(row.clean_cost, row.final_cost);
    assert!(row.all_members_found);

    // And the mean it reports is reproducible by serving the same keys by
    // hand (costs are deterministic per key, so means over the same probe
    // multiset match).
    let index = Arc::new(IndexRegistry::with_defaults().build("btree", &ks).unwrap());
    let server = Server::start(Arc::clone(&index), ServeConfig::offline());
    let served = server.serve_all(ks.keys()).unwrap();
    server.shutdown();
    assert_eq!(served, index.lookup_batch(ks.keys()));
}
