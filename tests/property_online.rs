//! Property tests for the online write plane.
//!
//! The contract that makes live poisoning measurements meaningful: an
//! index mutated *online* through the serve path (epoch-swapped writes)
//! must answer exactly like an index built *offline* from the same final
//! keyset — for every victim structure, whether the write stream is
//! benign churn or an Algorithm-2 campaign. Plus the adjacent write-plane
//! surfaces: the registry-wide fallible write API, and the traffic mixer's
//! realized adversarial ratio.

use lis::online::{run_campaign, Campaign, CampaignConfig};
use lis::prelude::*;
use lis::server::{AdmitAll, WriteOp};
use lis::workloads::{domain_for_density, trial_rng, uniform_keys};
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeSet;

const N: usize = 600;
const DENSITY: f64 = 0.15;

fn sample_keyset(seed: u64) -> KeySet {
    let domain = domain_for_density(N, DENSITY).expect("valid density");
    let mut rng = trial_rng(seed, 0);
    uniform_keys(&mut rng, N, domain).expect("sampling")
}

/// A deterministic benign write stream: inserts into gap midpoints and
/// removes of scattered members, interleaved.
fn benign_ops(ks: &KeySet, seed: u64, writes: usize) -> Vec<WriteOp> {
    let mut rng = trial_rng(seed, 1);
    let keys = ks.keys().to_vec();
    let mut present: BTreeSet<Key> = keys.iter().copied().collect();
    let mut ops = Vec::with_capacity(writes);
    while ops.len() < writes {
        if rng.gen::<f64>() < 0.7 {
            let i = rng.gen_range(0..keys.len() - 1);
            let (a, b) = (keys[i], keys[i + 1]);
            if b - a >= 2 {
                let mid = a + (b - a) / 2;
                if present.insert(mid) {
                    ops.push(WriteOp::Insert(mid));
                }
            }
        } else {
            let i = rng.gen_range(0..keys.len());
            if present.remove(&keys[i]) {
                ops.push(WriteOp::Remove(keys[i]));
            }
        }
    }
    ops
}

/// Applies `ops` through a live online server, then checks every probe
/// against an index built offline from the same final keyset.
fn assert_online_matches_offline(
    name: &'static str,
    ks: &KeySet,
    ops: &[WriteOp],
) -> Result<(), TestCaseError> {
    let registry = IndexRegistry::with_defaults();
    let server = Server::start_online(
        ks.clone(),
        move |ks| IndexRegistry::with_defaults().build(name, ks),
        Box::new(AdmitAll),
        ServeConfig::offline().workers(2).write_batch(16),
    )
    .expect("online server");
    let handle = server.handle();
    let mut final_keys: BTreeSet<Key> = ks.keys().iter().copied().collect();
    for (i, &op) in ops.iter().enumerate() {
        let status = handle.write(op, i as u64 % 4).expect("write path");
        prop_assert!(
            status.is_applied(),
            "{}: benign op {:?} not applied: {:?}",
            name,
            op,
            status
        );
        match op {
            WriteOp::Insert(k) => final_keys.insert(k),
            WriteOp::Remove(k) => final_keys.remove(&k),
        };
    }

    // Probes: everything ever seen (members, inserted, removed) plus gap
    // interiors.
    let mut probes: Vec<Key> = final_keys.iter().copied().step_by(2).collect();
    probes.extend(ops.iter().map(|op| op.key()));
    probes.extend(ks.gaps().iter().take(30).map(|g| g.lo + (g.hi - g.lo) / 2));

    let offline_ks =
        KeySet::new(final_keys.into_iter().collect(), ks.domain()).expect("final keyset");
    let offline = registry.build(name, &offline_ks).expect("offline build");
    let expected = offline.lookup_batch(&probes);
    let online = server.serve_all(&probes).expect("online serve");
    for ((&k, got), want) in probes.iter().zip(&online).zip(&expected) {
        prop_assert_eq!(
            got.found,
            want.found,
            "{}: online/offline disagree on membership of {}",
            name,
            k
        );
        prop_assert_eq!(
            got.found,
            offline_ks.contains(k),
            "{}: online membership of {} wrong vs ground truth",
            name,
            k
        );
        if let (Some(gp), Some(wp)) = (got.pos, want.pos) {
            prop_assert_eq!(gp, wp, "{}: online/offline disagree on rank of {}", name, k);
        }
    }
    let report = server.shutdown();
    prop_assert_eq!(report.writes_applied as usize, ops.len());
    prop_assert!(report.epochs >= 1);
    Ok(())
}

proptest! {
    /// Benign online mutation ≡ offline rebuild, for a static structure
    /// (rmi — rebuild-per-epoch path), a natively writable one (alex),
    /// and the baseline (btree).
    #[test]
    fn online_mutation_matches_offline_build(seed in 0u64..500) {
        let ks = sample_keyset(seed);
        let ops = benign_ops(&ks, seed, 60);
        for name in ["rmi", "alex", "btree"] {
            assert_online_matches_offline(name, &ks, &ops)?;
        }
    }

    /// A live Algorithm-2 campaign through the serve path leaves the
    /// victim answering exactly like an offline build over the poisoned
    /// keyset — poisoning degrades cost, never answers, online included.
    #[test]
    fn online_campaign_matches_offline_poisoned_build(seed in 0u64..200) {
        let ks = sample_keyset(seed);
        let name = if seed % 2 == 0 { "rmi" } else { "alex" };
        let server = Server::start_online(
            ks.clone(),
            move |ks| IndexRegistry::with_defaults().build(name, ks),
            Box::new(AdmitAll),
            ServeConfig::offline().workers(2).write_batch(16),
        ).expect("online server");
        let mut campaign = Campaign::plan(&ks, &CampaignConfig {
            poison_percent: 5.0,
            ..CampaignConfig::default()
        }).expect("plan");
        run_campaign(&server.handle(), &mut campaign, 99, 8).expect("campaign");
        prop_assert!(campaign.applied() > 0, "campaign landed nothing");

        let mut poisoned = ks.clone();
        for &k in campaign.applied_keys() {
            poisoned.insert(k).expect("poison key valid");
        }
        let offline = IndexRegistry::with_defaults()
            .build(name, &poisoned)
            .expect("offline poisoned build");
        let mut probes: Vec<Key> = poisoned.keys().iter().step_by(3).copied().collect();
        probes.extend(campaign.applied_keys());
        let expected = offline.lookup_batch(&probes);
        let online = server.serve_all(&probes).expect("online serve");
        for ((&k, got), want) in probes.iter().zip(&online).zip(&expected) {
            prop_assert_eq!(
                got.found, want.found,
                "{}: poisoned online/offline disagree on {}", name, k
            );
        }
        server.shutdown();
    }

    /// The fallible write surface is total over the registry: every index
    /// either applies an insert/remove pair faithfully or reports
    /// `Unsupported` leaving itself untouched.
    #[test]
    fn registry_write_surface_is_total(seed in 0u64..500) {
        let ks = sample_keyset(seed);
        let registry = IndexRegistry::with_defaults();
        let fresh = ks.gaps().first().map(|g| g.lo + (g.hi - g.lo) / 2)
            .expect("keyset has gaps");
        let member = ks.keys()[ks.len() / 2];
        for name in registry.names() {
            let mut index = registry.build(name, &ks).expect("build");
            let before = index.len();
            match index.try_insert(fresh) {
                Ok(()) => {
                    prop_assert!(
                        index.lookup(fresh).found,
                        "{}: applied insert of {} not found", name, fresh
                    );
                    prop_assert_eq!(index.len(), before + 1, "{} len after insert", name);
                    prop_assert!(index.try_remove(fresh).is_ok(), "{} remove", name);
                    prop_assert!(!index.lookup(fresh).found, "{} key back after remove", name);
                    prop_assert_eq!(index.len(), before, "{} len after remove", name);
                }
                Err(lis::core::error::LisError::Unsupported(_)) => {
                    prop_assert_eq!(index.len(), before, "{} len changed on Unsupported", name);
                    prop_assert!(!index.lookup(fresh).found, "{} inserted despite Unsupported", name);
                    // The remove side must refuse the same way.
                    prop_assert!(
                        matches!(
                            index.try_remove(member),
                            Err(lis::core::error::LisError::Unsupported(_))
                        ),
                        "{}: try_remove should be Unsupported too", name
                    );
                }
                Err(e) => prop_assert!(false, "{}: unexpected error {:?}", name, e),
            }
        }
    }

    /// The traffic mixer's realized adversarial ratio converges to the
    /// configured ratio.
    #[test]
    fn mixed_source_ratio_converges(ratio in 0.05f64..0.95, seed in 0u64..1_000) {
        let benign_keys: Vec<Key> = (0..100u64).map(|i| i * 2).collect();
        let attack_keys: Vec<Key> = (0..100u64).map(|i| i * 2 + 1).collect();
        let attack_set: BTreeSet<Key> = attack_keys.iter().copied().collect();
        let mut mixed = MixedSource::new(
            BenignSource::new(benign_keys, seed).expect("benign"),
            ReplaySource::new(attack_keys).expect("replay"),
            ratio,
            seed ^ 0x9E37_79B9,
        );
        let draws = 4_000;
        let adversarial = (0..draws)
            .filter(|_| attack_set.contains(&mixed.next_key()))
            .count();
        let realized = adversarial as f64 / draws as f64;
        // Binomial tolerance: ~4 standard deviations plus slack.
        let tol = 4.0 * (ratio * (1.0 - ratio) / draws as f64).sqrt() + 0.01;
        prop_assert!(
            (realized - ratio).abs() <= tol,
            "realized {:.4} vs configured {:.4} (tol {:.4})",
            realized, ratio, tol
        );
    }
}
