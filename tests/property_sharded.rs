//! Property tests for sharded serving: a `sharded:<name>:<N>` composite
//! must return the *same answers* as the unsharded index it partitions —
//! identical `Lookup.found` and identical global rank (`pos`) — for random
//! keysets of every workload shape, both before and after poisoning.
//!
//! This is the contract that lets sharded fleets slot into every harness
//! unchanged: partitioning the key range redistributes *work*, never
//! *answers*.

use lis::poison::GreedyCdfAttack;
use lis::prelude::*;
use lis::workloads::{domain_for_density, lognormal_keys, normal_keys, trial_rng, uniform_keys};
use proptest::prelude::*;

const N: usize = 400;
const DENSITY: f64 = 0.15;

/// The victims the agreement contract is checked against: positional
/// (rmi, btree, pla) and membership-only (hash) structures.
const VICTIMS: [&str; 4] = ["rmi", "btree", "pla", "hash"];

/// Samples one of the paper's three workload shapes.
fn sample_keyset(dist: usize, seed: u64) -> KeySet {
    let domain = domain_for_density(N, DENSITY).expect("valid density");
    let mut rng = trial_rng(seed, 0);
    match dist {
        0 => uniform_keys(&mut rng, N, domain),
        1 => normal_keys(&mut rng, N, domain),
        _ => lognormal_keys(&mut rng, N, domain),
    }
    .expect("sampling")
}

/// Member probes plus guaranteed-absent probes (gap interiors, keys beyond
/// the domain, and shard-fence neighbourhoods).
fn probe_keys(ks: &KeySet) -> Vec<Key> {
    let mut probes: Vec<Key> = ks.keys().iter().step_by(3).copied().collect();
    probes.extend(ks.gaps().iter().take(40).map(|g| g.lo + (g.hi - g.lo) / 2));
    probes.push(ks.max_key() + 1);
    probes.push(ks.max_key().saturating_add(10_000));
    if ks.min_key() > 0 {
        probes.push(ks.min_key() - 1);
    }
    probes
}

/// The agreement contract for one keyset and shard count: every sharded
/// victim vs its unsharded base, driven through the batched hot path.
fn assert_sharded_agreement(
    ks: &KeySet,
    shards: usize,
    context: &str,
) -> Result<(), TestCaseError> {
    let registry = IndexRegistry::with_defaults();
    let probes = probe_keys(ks);
    for name in VICTIMS {
        let sharded_name = format!("sharded:{name}:{shards}");
        let base = registry.build(name, ks).expect("base build");
        let sharded = registry.build(&sharded_name, ks).expect("sharded build");
        prop_assert_eq!(sharded.len(), base.len(), "{} {} len", context, name);
        let expected = base.lookup_batch(&probes);
        let results = sharded.lookup_batch(&probes);
        prop_assert_eq!(results.len(), expected.len());
        for ((&k, r), e) in probes.iter().zip(&results).zip(&expected) {
            prop_assert_eq!(
                r.found,
                e.found,
                "{}: {} disagrees with {} on membership of {}",
                context,
                sharded_name,
                name,
                k
            );
            prop_assert_eq!(
                r.pos,
                e.pos,
                "{}: {} disagrees with {} on rank of {}",
                context,
                sharded_name,
                name,
                k
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn sharded_indexes_agree_with_unsharded_before_and_after_poisoning(
        seed in 0u64..1_000,
        dist in 0usize..3,
        shards in 1usize..12,
    ) {
        let clean = sample_keyset(dist, seed);
        assert_sharded_agreement(&clean, shards, "clean")?;

        let attack = GreedyCdfAttack {
            budget: PoisonBudget::percentage(10.0, clean.len()).expect("legal pct"),
        };
        let poisoned = attack.run(&clean).expect("attack").poisoned;
        assert_sharded_agreement(&poisoned, shards, "poisoned")?;
    }
}
