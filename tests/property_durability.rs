//! Property tests for the durability plane (see `lis_server::durability`).
//!
//! The recovery contract, quantified over arbitrary write histories: for
//! any interleaved insert/remove script, with a crash injected after
//! every prefix of WAL appends — at a record boundary (a clean kill) or
//! mid-record (a torn final append) — `recover()` yields *exactly* the
//! state as of the last complete append. The acked prefix survives in
//! full, the torn suffix vanishes in full, and no batch ever
//! half-applies.

use lis::prelude::*;
use lis::server::{recover, DurabilityLevel, DurableStore, WriteOp};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Ops per WAL append — small so scripts cross many record boundaries.
const BATCH: usize = 3;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per generated case (cases run within one
/// process; a fixed name would interleave their files).
fn scratch(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("lis-prop-dur-{}-{tag}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Copies a durable directory so each crash point replays from its own
/// untouched copy (recovery truncates torn tails physically).
fn clone_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("create clone dir");
    for entry in std::fs::read_dir(src).expect("read durable dir").flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy durable file");
    }
}

fn base_keyset() -> KeySet {
    let domain = KeyDomain::new(0, 1_000_000).expect("valid domain");
    KeySet::new((0..200u64).map(|i| i * 11 + 5).collect(), domain).expect("valid keyset")
}

/// Interprets one raw script value against the reference keyset the way
/// the writer's validation loop would: a key already present is removed,
/// an absent one inserted — every produced op is applicable by
/// construction, mirroring the writer logging only *validated* batches.
fn op_for(reference: &mut KeySet, raw: u64) -> WriteOp {
    let key = 5 + (raw % 3_000) * 7;
    if reference.contains(key) {
        reference.remove(key).expect("validated remove");
        WriteOp::Remove(key)
    } else {
        reference.insert(key).expect("validated insert");
        WriteOp::Insert(key)
    }
}

proptest! {
    /// Crash after every record boundary: recovery is exactly the acked
    /// prefix, for every prefix.
    #[test]
    fn recovery_is_exactly_the_acked_prefix(
        script in proptest::collection::vec(0u64..30_000, 1..48)
    ) {
        let live = scratch("live");
        let mut reference = base_keyset();
        let mut store = DurableStore::bootstrap(
            &live,
            &reference,
            0,
            0,
            DurabilityLevel::None,
            u64::MAX,
            Duration::from_millis(50),
        ).expect("bootstrap");

        // `states[i]` is the reference keyset after i complete appends;
        // `offsets[i]` the WAL byte length at that point.
        let mut states = vec![reference.keys().to_vec()];
        let mut offsets = vec![store.wal_bytes()];
        let mut flush = 0u64;
        for chunk in script.chunks(BATCH) {
            let ops: Vec<WriteOp> = chunk.iter().map(|&raw| op_for(&mut reference, raw)).collect();
            flush += 1;
            store.log_batch(&ops, flush, false, false).expect("append");
            states.push(reference.keys().to_vec());
            offsets.push(store.wal_bytes());
        }

        for i in 0..offsets.len() {
            // Clean kill at the boundary: exactly i appends survive.
            let crash = scratch("cut");
            clone_dir(&live, &crash);
            let wal = crash.join("wal.log");
            let file = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
            file.set_len(offsets[i]).expect("truncate");
            drop(file);
            let rec = recover(&crash).expect("recover at boundary");
            prop_assert_eq!(
                rec.keyset.keys(), states[i].as_slice(),
                "crash after {} appends recovered a different state", i
            );
            prop_assert_eq!(rec.replayed_records, i);
            prop_assert_eq!(rec.truncated_bytes, 0);
            std::fs::remove_dir_all(&crash).expect("cleanup");

            // Torn kill inside the next record: the half-written append
            // must vanish in full — never half-apply.
            if i + 1 < offsets.len() {
                let torn = scratch("torn");
                clone_dir(&live, &torn);
                let wal = torn.join("wal.log");
                let cut = offsets[i] + (offsets[i + 1] - offsets[i]) / 2;
                let file = std::fs::OpenOptions::new().write(true).open(&wal).expect("open wal");
                file.set_len(cut).expect("truncate");
                drop(file);
                let rec = recover(&torn).expect("recover torn tail");
                prop_assert_eq!(
                    rec.keyset.keys(), states[i].as_slice(),
                    "torn append {} half-applied", i + 1
                );
                prop_assert!(rec.truncated_bytes > 0, "torn tail not truncated");
                // The truncation is physical: recovering again is clean.
                let again = recover(&torn).expect("recover after truncation");
                prop_assert_eq!(again.truncated_bytes, 0);
                prop_assert_eq!(again.keyset.keys(), states[i].as_slice());
                std::fs::remove_dir_all(&torn).expect("cleanup");
            }
        }
        std::fs::remove_dir_all(&live).expect("cleanup");
    }
}
