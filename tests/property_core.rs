//! Property-based tests of the lis-core substrate invariants.

use lis::prelude::*;
use lis_core::btree::BPlusTree;
use lis_core::search::exponential_search;
use lis_core::stats::CdfMoments;
use proptest::collection::btree_set;
use proptest::prelude::*;

/// Strategy: a sorted, distinct keyset with 2..=120 keys below 10_000.
fn keyset_strategy() -> impl Strategy<Value = KeySet> {
    btree_set(0u64..10_000, 2..120)
        .prop_map(|set| KeySet::from_keys(set.into_iter().collect()).unwrap())
}

proptest! {
    #[test]
    fn ranks_are_dense_and_ordered(ks in keyset_strategy()) {
        let mut prev = 0usize;
        for (k, r) in ks.cdf_pairs() {
            prop_assert_eq!(r, prev + 1);
            prop_assert_eq!(ks.rank(k), Some(r));
            prev = r;
        }
        prop_assert_eq!(prev, ks.len());
    }

    #[test]
    fn insertion_rank_consistent_with_count_above(ks in keyset_strategy(), key in 0u64..10_000) {
        prop_assume!(!ks.contains(key));
        let rank = ks.insertion_rank(key);
        let above = ks.count_above(key);
        prop_assert_eq!(rank + above, ks.len() + 1);
    }

    #[test]
    fn gaps_tile_the_interior(ks in keyset_strategy()) {
        // Every key strictly between min and max is either a member or
        // inside exactly one gap.
        let gaps = ks.gaps();
        let total_gap_len: u64 = gaps.iter().map(|g| g.len()).sum();
        let interior = ks.max_key() - ks.min_key() + 1 - ks.len() as u64;
        prop_assert_eq!(total_gap_len, interior);
        for w in gaps.windows(2) {
            prop_assert!(w[0].hi < w[1].lo);
        }
    }

    #[test]
    fn moments_match_naive_computation(ks in keyset_strategy()) {
        let m = CdfMoments::from_keyset(&ks);
        let n = ks.len() as f64;
        let mk: f64 = ks.keys().iter().map(|&k| k as f64).sum::<f64>() / n;
        let var_k: f64 =
            ks.keys().iter().map(|&k| (k as f64 - mk).powi(2)).sum::<f64>() / n;
        prop_assert!((m.mean_key() - mk).abs() <= 1e-9 * mk.abs().max(1.0));
        prop_assert!((m.var_x() - var_k).abs() <= 1e-6 * var_k.max(1.0));
    }

    #[test]
    fn ols_residuals_sum_to_zero(ks in keyset_strategy()) {
        let model = LinearModel::fit(&ks).unwrap();
        let sum: f64 = ks.cdf_pairs().map(|(k, r)| model.residual(k, r)).sum();
        // OLS with intercept: residuals sum to zero.
        prop_assert!(sum.abs() < 1e-6 * ks.len() as f64, "residual sum {}", sum);
    }

    #[test]
    fn ols_loss_is_minimal_under_perturbation(ks in keyset_strategy(), dw in -0.1f64..0.1, db in -5.0f64..5.0) {
        let model = LinearModel::fit(&ks).unwrap();
        let n = ks.len() as f64;
        let perturbed: f64 = ks
            .cdf_pairs()
            .map(|(k, r)| {
                let pred = (model.w + dw) * k as f64 + model.b + db;
                (pred - r as f64).powi(2)
            })
            .sum::<f64>() / n;
        prop_assert!(model.mse <= perturbed + 1e-7, "{} > {}", model.mse, perturbed);
    }

    #[test]
    fn exponential_search_finds_members_from_any_guess(
        ks in keyset_strategy(),
        idx_frac in 0.0f64..1.0,
        guess_frac in 0.0f64..1.0,
    ) {
        let keys = ks.keys();
        let idx = ((keys.len() - 1) as f64 * idx_frac) as usize;
        let guess = ((keys.len() - 1) as f64 * guess_frac) as usize;
        let res = exponential_search(keys, keys[idx], guess);
        prop_assert_eq!(res.pos, Some(idx));
    }

    #[test]
    fn exponential_search_rejects_non_members(ks in keyset_strategy(), key in 0u64..10_000, guess_frac in 0.0f64..1.0) {
        prop_assume!(!ks.contains(key));
        let guess = ((ks.len() - 1) as f64 * guess_frac) as usize;
        let res = exponential_search(ks.keys(), key, guess);
        prop_assert_eq!(res.pos, None);
    }

    #[test]
    fn btree_matches_sorted_array_semantics(ks in keyset_strategy(), probe in 0u64..10_000, fanout in 2usize..32) {
        let tree = BPlusTree::build(&ks, fanout).unwrap();
        let expected = ks.keys().binary_search(&probe).ok();
        prop_assert_eq!(tree.lookup(probe).pos, expected);
    }

    #[test]
    fn rmi_finds_every_member(ks in keyset_strategy(), leaves_frac in 0.1f64..1.0) {
        let leaves = ((ks.len() as f64 * leaves_frac) as usize).clamp(1, ks.len());
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(leaves)).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            prop_assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn partitions_preserve_order_and_count(ks in keyset_strategy(), parts_frac in 0.1f64..1.0) {
        let parts = ((ks.len() as f64 * parts_frac) as usize).clamp(1, ks.len());
        let partitions = ks.partition(parts).unwrap();
        prop_assert_eq!(partitions.len(), parts);
        let merged: Vec<u64> =
            partitions.iter().flat_map(|p| p.keys().to_vec()).collect();
        prop_assert_eq!(merged.as_slice(), ks.keys());
        // Sizes differ by at most one.
        let min = partitions.iter().map(KeySet::len).min().unwrap();
        let max = partitions.iter().map(KeySet::len).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn boxplot_quantiles_are_ordered(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let b = BoxplotSummary::from_samples(&samples).unwrap();
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.max);
        prop_assert!(b.mean >= b.min && b.mean <= b.max);
    }
}
