//! Cross-crate integration tests: the full pipeline from workload
//! generation through attack, index rebuild, lookup, and defense.

use lis::defense::outlier::{iqr_filter, range_filter};
use lis::defense::{evaluate_defense, trim_defense, TrimConfig};
use lis::prelude::*;
use lis::workloads::{domain_for_density, lognormal_keys, trial_rng, uniform_keys};
use lis_core::btree::BPlusTree;
use lis_core::index::IndexRegistry;
use lis_core::search::set_scalar_kernel;
use lis_core::store::RecordStore;

#[test]
fn poisoned_index_still_answers_every_query() {
    // The attack is an *availability* attack: correctness must survive,
    // only performance degrades (Section III-C).
    let mut rng = trial_rng(1, 0);
    let domain = domain_for_density(2_000, 0.15).unwrap();
    let clean = uniform_keys(&mut rng, 2_000, domain).unwrap();

    let res = rmi_attack(
        &clean,
        20,
        &RmiAttackConfig::new(10.0).with_max_exchanges(16),
    )
    .unwrap();
    let poisoned = res.poisoned_keyset(&clean).unwrap();
    let rmi = Rmi::build(&poisoned, &RmiConfig::linear_root(20)).unwrap();

    for &k in clean.keys() {
        let hit = rmi.lookup(k);
        let pos = hit.pos.expect("legitimate key must still be found");
        assert_eq!(poisoned.keys()[pos], k);
    }
}

#[test]
fn poisoning_increases_lookup_cost() {
    let mut rng = trial_rng(2, 0);
    let domain = domain_for_density(5_000, 0.1).unwrap();
    let clean = uniform_keys(&mut rng, 5_000, domain).unwrap();

    // Lookup cost counts the lane kernel's comparisons, which are
    // quantized: a window one past a lane boundary descends once and pays
    // a *shorter* tail, so the mild radius inflation of a 10% budget can
    // vanish (or even read negative) in total comparisons — vectorization
    // genuinely absorbs weak poisoning. The paper's upper budget of 20%
    // widens windows past several descent steps and inflates robustly.
    let res = rmi_attack(
        &clean,
        50,
        &RmiAttackConfig::new(20.0).with_max_exchanges(16),
    )
    .unwrap();
    let poisoned = res.poisoned_keyset(&clean).unwrap();

    let before = Rmi::build(&clean, &RmiConfig::linear_root(50)).unwrap();
    let after = Rmi::build(&poisoned, &RmiConfig::linear_root(50)).unwrap();

    let cost = |rmi: &Rmi| -> usize { clean.keys().iter().map(|&k| rmi.lookup(k).cost).sum() };
    let (c_before, c_after) = (cost(&before), cost(&after));
    assert!(
        c_after > c_before,
        "poisoning should inflate lookup comparisons: {c_after} vs {c_before}"
    );
}

#[test]
fn vectorized_scalar_and_per_key_paths_agree_on_every_index() {
    // The vectorized serve path must be a pure performance change: for
    // every registry structure — over the clean keyset AND over an
    // Algorithm-2-poisoned one (inflated error radii stress the window
    // kernel hardest) — the batched lane-kernel path, its
    // scalar-equivalent kernel, and the per-key reference path agree
    // exactly on found/rank/cost for member and absent probes alike.
    // (Flipping the kernel globally is safe mid-run precisely because of
    // this bit-identity; see `lis_core::search::set_scalar_kernel`.)
    let mut rng = trial_rng(6, 0);
    let domain = domain_for_density(3_000, 0.1).unwrap();
    let clean = uniform_keys(&mut rng, 3_000, domain).unwrap();
    let res = rmi_attack(
        &clean,
        30,
        &RmiAttackConfig::new(10.0).with_max_exchanges(16),
    )
    .unwrap();
    let poisoned = res.poisoned_keyset(&clean).unwrap();

    // Member probes interleaved with near-miss absent probes, in a
    // non-sorted order so the monotone batch cursor has to re-sort.
    let probes: Vec<u64> = clean
        .keys()
        .iter()
        .rev()
        .step_by(3)
        .flat_map(|&k| [k, k + 1])
        .collect();

    let registry = IndexRegistry::with_defaults();
    let mut names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();
    names.push("sharded:rmi:4".to_string());
    for (dataset, ks) in [("clean", &clean), ("poisoned", &poisoned)] {
        for name in &names {
            let idx = registry.build(name, ks).unwrap();
            let mut reference = Vec::new();
            idx.lookup_each_into(&probes, &mut reference);
            let mut out = Vec::new();
            idx.lookup_batch_into(&probes, &mut out);
            assert_eq!(out, reference, "{name}/{dataset}: vectorized vs per-key");
            let prev = set_scalar_kernel(true);
            idx.lookup_batch_into(&probes, &mut out);
            set_scalar_kernel(prev);
            assert_eq!(out, reference, "{name}/{dataset}: scalar vs per-key");
        }
    }
}

#[test]
fn rmi_beats_btree_clean_and_loses_ground_poisoned() {
    let mut rng = trial_rng(3, 0);
    let domain = domain_for_density(10_000, 0.1).unwrap();
    let clean = uniform_keys(&mut rng, 10_000, domain).unwrap();
    let btree = BPlusTree::build(&clean, 64).unwrap();
    let rmi = Rmi::build(&clean, &RmiConfig::linear_root(100)).unwrap();

    let rmi_cost: usize = clean.keys().iter().map(|&k| rmi.lookup(k).cost).sum();
    let bt_cost: usize = clean.keys().iter().map(|&k| btree.lookup(k).cost).sum();
    assert!(
        rmi_cost < bt_cost,
        "clean RMI should beat the B+-tree on uniform data: {rmi_cost} vs {bt_cost}"
    );

    let res = rmi_attack(
        &clean,
        100,
        &RmiAttackConfig::new(10.0).with_max_exchanges(16),
    )
    .unwrap();
    let poisoned = res.poisoned_keyset(&clean).unwrap();
    let bad = Rmi::build(&poisoned, &RmiConfig::linear_root(100)).unwrap();
    let bad_cost: usize = clean.keys().iter().map(|&k| bad.lookup(k).cost).sum();
    assert!(
        bad_cost > rmi_cost,
        "the poisoned RMI must be slower than the clean one"
    );
}

#[test]
fn attack_effect_matches_metrics_report() {
    let mut rng = trial_rng(4, 0);
    let domain = domain_for_density(3_000, 0.2).unwrap();
    let clean = lognormal_keys(&mut rng, 3_000, domain).unwrap();

    let res = rmi_attack(
        &clean,
        30,
        &RmiAttackConfig::new(10.0).with_max_exchanges(16),
    )
    .unwrap();
    // The attack's own accounting must be self-consistent.
    let mean: f64 =
        res.models.iter().map(|m| m.poisoned_loss).sum::<f64>() / res.models.len() as f64;
    assert!((mean - res.poisoned_rmi_loss).abs() < 1e-9);
    assert!(res.rmi_ratio() >= 1.0);
    // And comparable to the generic report over the final keysets.
    let poisoned = res.poisoned_keyset(&clean).unwrap();
    let report = rmi_ratio_report(&clean, &poisoned, 30).unwrap();
    assert!(report.rmi_ratio() > 1.0);
}

#[test]
fn record_store_serves_learned_positions() {
    let mut rng = trial_rng(5, 0);
    let domain = domain_for_density(1_000, 0.3).unwrap();
    let clean = uniform_keys(&mut rng, 1_000, domain).unwrap();
    let store = RecordStore::build(&clean, 32).unwrap();
    let rmi = Rmi::build(&clean, &RmiConfig::linear_root(10)).unwrap();

    for &k in clean.keys().iter().step_by(7) {
        let pos = rmi.lookup(k).pos.unwrap();
        let record = store.record_at(pos).unwrap();
        assert_eq!(
            &record[..8],
            &k.to_le_bytes(),
            "record payload mismatch for key {k}"
        );
    }
}

#[test]
fn defense_pipeline_full_cycle() {
    let mut rng = trial_rng(6, 0);
    let domain = domain_for_density(800, 0.1).unwrap();
    let clean = uniform_keys(&mut rng, 800, domain).unwrap();
    let plan = greedy_poison(&clean, PoisonBudget::percentage(10.0, 800).unwrap()).unwrap();
    let poisoned = plan.poisoned_keyset(&clean).unwrap();

    // Value-space filters are blind to the in-range attack.
    let (_, removed) = range_filter(&poisoned, clean.min_key(), clean.max_key());
    assert!(removed.is_empty());
    let (_, removed) = iqr_filter(&poisoned, 1.5);
    assert_eq!(removed.iter().filter(|k| plan.keys.contains(k)).count(), 0);

    // TRIM runs to completion and produces a structurally valid report.
    let out = trim_defense(&poisoned, &TrimConfig::new(clean.len())).unwrap();
    assert_eq!(out.retained.len(), clean.len());
    let report = evaluate_defense(&clean, &plan.keys, &out.retained).unwrap();
    assert!(report.ratio_before() > 1.0);
    assert!((0.0..=1.0).contains(&report.poison_recall));
}

#[test]
fn neural_root_rmi_end_to_end() {
    // The paper's architecture: NN first stage. Verify lookups stay correct
    // on skewed data with root-predicted routing.
    let mut rng = trial_rng(7, 0);
    let domain = domain_for_density(2_000, 0.05).unwrap();
    let clean = lognormal_keys(&mut rng, 2_000, domain).unwrap();
    let cfg = RmiConfig {
        num_leaves: 20,
        root: lis_core::rmi::RootModelKind::Neural(lis_core::nn::NnConfig {
            epochs: 40,
            ..Default::default()
        }),
        routing: Routing::Root,
    };
    let rmi = Rmi::build(&clean, &cfg).unwrap();
    for (i, &k) in clean.keys().iter().enumerate().step_by(13) {
        assert_eq!(rmi.lookup(k).pos, Some(i), "key {k}");
    }
}

#[test]
fn deterministic_experiments_reproduce() {
    // The same seed must give byte-identical attack outcomes.
    let run = || {
        let mut rng = trial_rng(99, 0);
        let domain = domain_for_density(500, 0.2).unwrap();
        let ks = uniform_keys(&mut rng, 500, domain).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(25)).unwrap();
        let final_mse = plan.final_mse();
        (ks.keys().to_vec(), plan.keys, final_mse)
    };
    let (k1, p1, l1) = run();
    let (k2, p2, l2) = run();
    assert_eq!(k1, k2);
    assert_eq!(p1, p2);
    assert_eq!(l1, l2);
}
