//! Property tests for the batched hot path: for every registry index (and
//! a sharded composite), `lookup_batch_into` — the sorted-batch,
//! scratch-pooled serve path — must return results *identical* to per-key
//! `lookup` on every probe: same `found`, same rank, and same `cost`.
//!
//! This is the contract that lets the serving front end batch freely: the
//! optimized path may reorder work for locality, but it must never change
//! what an experiment measures. Checked on all three workload shapes,
//! clean and poisoned, with reused (dirty) output buffers.

use lis::poison::GreedyCdfAttack;
use lis::prelude::*;
use lis::workloads::{domain_for_density, lognormal_keys, normal_keys, trial_rng, uniform_keys};
use proptest::prelude::*;

const N: usize = 400;
const DENSITY: f64 = 0.15;

fn sample_keyset(dist: usize, seed: u64) -> KeySet {
    let domain = domain_for_density(N, DENSITY).expect("valid density");
    let mut rng = trial_rng(seed, 0);
    match dist {
        0 => uniform_keys(&mut rng, N, domain),
        1 => normal_keys(&mut rng, N, domain),
        _ => lognormal_keys(&mut rng, N, domain),
    }
    .expect("sampling")
}

/// Member probes in shuffled order, duplicates, gap interiors, and keys
/// beyond the domain — everything the serve path can encounter.
fn probe_keys(ks: &KeySet) -> Vec<Key> {
    let mut probes: Vec<Key> = ks.keys().iter().rev().step_by(3).copied().collect();
    probes.extend(ks.gaps().iter().take(30).map(|g| g.lo + (g.hi - g.lo) / 2));
    probes.push(ks.max_key() + 1);
    probes.push(Key::MAX);
    if ks.min_key() > 0 {
        probes.push(ks.min_key() - 1);
    }
    probes.push(probes[0]);
    probes.push(probes[1]);
    probes
}

/// One keyset's contract: batch ≡ per-key on (found, rank, cost) for every
/// index, through a deliberately reused dirty buffer.
fn assert_batch_equivalence(ks: &KeySet, context: &str) -> Result<(), TestCaseError> {
    let registry = IndexRegistry::with_defaults();
    let probes = probe_keys(ks);
    let mut out: Vec<Lookup> = vec![Lookup::membership(true, 999); 7];
    let mut names: Vec<String> = registry.names().iter().map(|s| s.to_string()).collect();
    names.push("sharded:rmi:5".into());
    for name in &names {
        let index = registry.build(name, ks).expect("registry build");
        index.lookup_batch_into(&probes, &mut out);
        prop_assert_eq!(out.len(), probes.len(), "{}: {} length", context, name);
        for (&k, &got) in probes.iter().zip(&out) {
            let expected = index.lookup(k);
            prop_assert_eq!(
                got,
                expected,
                "{}: {} batch result for key {} diverged from lookup",
                context,
                name,
                k
            );
        }
        // The allocating wrapper and the per-key reference path agree too.
        let wrapper = index.lookup_batch(&probes);
        prop_assert_eq!(&wrapper, &out, "{}: {} wrapper diverged", context, name);
        let mut each = Vec::new();
        index.lookup_each_into(&probes, &mut each);
        prop_assert_eq!(&each, &out, "{}: {} per-key path diverged", context, name);
    }
    Ok(())
}

proptest! {
    #[test]
    fn batched_lookups_equal_per_key_lookups_exactly(
        seed in 0u64..1_000,
        dist in 0usize..3,
    ) {
        let clean = sample_keyset(dist, seed);
        assert_batch_equivalence(&clean, "clean")?;

        let attack = GreedyCdfAttack {
            budget: PoisonBudget::percentage(10.0, clean.len()).expect("legal pct"),
        };
        let poisoned = attack.run(&clean).expect("attack").poisoned;
        assert_batch_equivalence(&poisoned, "poisoned")?;
    }
}
