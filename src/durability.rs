//! The durability benchmark engine behind `lis-cli durability` and the
//! `durability` bench (`BENCH_durability.json`).
//!
//! Four cells, one durable online server lifetime each:
//!
//! * **batch / window / none** — the three [`DurabilityLevel`]s under an
//!   identical pipelined insert load, so the fsync policy's write-path
//!   cost is directly comparable (`writes_per_s`), followed by a
//!   recovery *of the live directory* (before the clean shutdown's final
//!   checkpoint would truncate the WAL) measuring `recover_ms` and
//!   replay throughput;
//! * **kill** — the at-scale kill-and-recover acceptance: a seeded
//!   `crash_after_append` fault kills the write plane mid-load, and the
//!   cell verifies the durability contract across the process boundary —
//!   base ∪ acked ⊆ recovered ⊆ base ∪ submitted, deterministically.
//!
//! Gates (see [`DurabilityReport::violations`]): every cell must recover
//! a state exactly matching the live timeline with zero acked writes
//! lost, recovery must stay under 5 s, and checkpoints must actually
//! happen; at scale the kill cell must additionally have been killed
//! (a schedule that never fires proves nothing).

use lis_core::error::Result;
use lis_core::index::IndexRegistry;
use lis_core::keys::{Key, KeySet};
use lis_server::fault::FaultConfig;
use lis_server::{
    AdmitAll, Durability, DurabilityLevel, FaultInjector, Server, WriteOp, WriteStatus,
};
use lis_workloads::{domain_for_density, trial_rng, uniform_keys};
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

/// Scale and shape of one [`run_durability`] run.
#[derive(Debug, Clone)]
pub struct DurabilityBenchConfig {
    /// Base keyset size (the snapshot recovery loads).
    pub keys: usize,
    /// Keyset density `n / |domain|`.
    pub density: f64,
    /// Registry name of the served index.
    pub index: String,
    /// Inserts driven through the durable write plane per cell.
    pub writes: usize,
    /// Serving worker threads.
    pub workers: usize,
    /// Fault-schedule seed of the kill cell (`LIS_CHAOS_SEED` overrides).
    pub seed: u64,
}

impl Default for DurabilityBenchConfig {
    fn default() -> Self {
        Self {
            keys: 100_000,
            density: 0.1,
            index: "rmi".into(),
            writes: 2_048,
            workers: 2,
            seed: lis_server::seed_from_env(0xD07A_B1E5),
        }
    }
}

/// Outcome of one cell (one durable server lifetime).
#[derive(Debug, Clone)]
pub struct DurabilityCellReport {
    /// Cell name: the level (`batch` / `window` / `none`) or `kill`.
    pub name: String,
    /// Inserts submitted.
    pub writes_submitted: usize,
    /// Inserts acknowledged applied.
    pub writes_acked: usize,
    /// Wall-clock of the write drive, milliseconds.
    pub write_wall_ms: f64,
    /// Recovery wall-clock (newest snapshot + WAL tail replay), ms.
    pub recover_ms: f64,
    /// WAL records replayed by the recovery.
    pub replayed_records: usize,
    /// WAL ops replayed by the recovery.
    pub replayed_ops: usize,
    /// Torn-tail bytes the recovery truncated.
    pub truncated_bytes: u64,
    /// WAL bytes on disk at recovery time.
    pub wal_bytes: u64,
    /// LSN of the snapshot recovery started from (> 0 once the
    /// checkpoint cadence has engaged).
    pub snapshot_lsn: u64,
    /// Whether the storage fault killed the write plane (kill cell).
    pub killed: bool,
    /// Acked writes missing from the recovered state (must be 0).
    pub lost_acked: usize,
    /// Whether recovered ≡ live: base ∪ acked ⊆ recovered ⊆ base ∪
    /// submitted, stable across a second recovery.
    pub recovered_matches_live: bool,
}

impl DurabilityCellReport {
    /// Acked writes per second over the drive wall-clock.
    pub fn writes_per_s(&self) -> f64 {
        if self.write_wall_ms <= 0.0 {
            return 0.0;
        }
        self.writes_acked as f64 / (self.write_wall_ms / 1_000.0)
    }

    /// Replayed ops per second over the recovery wall-clock.
    pub fn replay_ops_per_s(&self) -> f64 {
        if self.recover_ms <= 0.0 || self.replayed_ops == 0 {
            return 0.0;
        }
        self.replayed_ops as f64 / (self.recover_ms / 1_000.0)
    }
}

/// Outcome of a whole durability run: one cell per level plus the kill.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// The configuration the run used.
    pub config: DurabilityBenchConfig,
    /// Per-cell results, in run order.
    pub cells: Vec<DurabilityCellReport>,
}

impl DurabilityReport {
    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&DurabilityCellReport> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// The run's structural gates, as a list of violations (empty = the
    /// durability contract holds). The correctness core — recovered ≡
    /// live, zero lost acked writes, bounded recovery — is always on;
    /// the kill-engagement gate arms at scale.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for c in &self.cells {
            if !c.recovered_matches_live {
                out.push(format!(
                    "{}: recovered state diverges from the live timeline",
                    c.name
                ));
            }
            if c.lost_acked > 0 {
                out.push(format!(
                    "{}: {} acked writes lost across recovery",
                    c.name, c.lost_acked
                ));
            }
            if c.recover_ms >= 5_000.0 {
                out.push(format!(
                    "{}: recovery took {:.0}ms (bound 5000ms)",
                    c.name, c.recover_ms
                ));
            }
            if c.snapshot_lsn == 0 && c.name != "kill" {
                out.push(format!("{}: the checkpoint cadence never engaged", c.name));
            }
        }
        let at_scale = self.config.writes >= 1_024 && self.config.keys >= 100_000;
        if at_scale {
            if let Some(kill) = self.cell("kill") {
                if !kill.killed {
                    out.push("kill: the storage fault schedule never fired".into());
                }
            }
        }
        out
    }

    /// Renders the machine-readable `BENCH_durability.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"durability\",");
        let _ = writeln!(
            out,
            "  \"units\": {{\"writes_per_s\": \"acked inserts per second\", \
             \"recover_ms\": \"milliseconds\", \
             \"replay_ops_per_s\": \"WAL ops replayed per second\", \
             \"wal_bytes\": \"bytes\"}},"
        );
        let _ = writeln!(out, "  \"keys\": {},", self.config.keys);
        let _ = writeln!(out, "  \"density\": {},", self.config.density);
        let _ = writeln!(out, "  \"index\": \"{}\",", self.config.index);
        let _ = writeln!(out, "  \"writes\": {},", self.config.writes);
        let _ = writeln!(out, "  \"workers\": {},", self.config.workers);
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", c.name);
            let _ = writeln!(out, "      \"writes_submitted\": {},", c.writes_submitted);
            let _ = writeln!(out, "      \"writes_acked\": {},", c.writes_acked);
            let _ = writeln!(out, "      \"write_wall_ms\": {:.3},", c.write_wall_ms);
            let _ = writeln!(out, "      \"writes_per_s\": {:.1},", c.writes_per_s());
            let _ = writeln!(out, "      \"recover_ms\": {:.3},", c.recover_ms);
            let _ = writeln!(out, "      \"replayed_records\": {},", c.replayed_records);
            let _ = writeln!(out, "      \"replayed_ops\": {},", c.replayed_ops);
            let _ = writeln!(
                out,
                "      \"replay_ops_per_s\": {:.1},",
                c.replay_ops_per_s()
            );
            let _ = writeln!(out, "      \"truncated_bytes\": {},", c.truncated_bytes);
            let _ = writeln!(out, "      \"wal_bytes\": {},", c.wal_bytes);
            let _ = writeln!(out, "      \"snapshot_lsn\": {},", c.snapshot_lsn);
            let _ = writeln!(out, "      \"killed\": {},", c.killed);
            let _ = writeln!(out, "      \"lost_acked\": {},", c.lost_acked);
            let _ = writeln!(
                out,
                "      \"recovered_matches_live\": {}",
                c.recovered_matches_live
            );
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`DurabilityReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// A fresh scratch directory for one cell.
fn cell_dir(seed: u64, cell: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lis-durability-bench-{}-{seed:016x}-{cell}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Waits until the durable directory stops changing. Acks precede the
/// WAL append but the *checkpoint* cadence runs after them, so right
/// after the last ack the writer may still be mid-snapshot (tmp write →
/// rename → WAL truncate → old-snapshot sweep); recovering the live
/// directory during that rotation races. With no writes in flight the
/// writer's residual activity is bounded, so two identical directory
/// observations 50 ms apart mean it has gone quiescent.
fn quiesce(dir: &std::path::Path) {
    let observe = |dir: &std::path::Path| -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> = std::fs::read_dir(dir)
            .into_iter()
            .flatten()
            .flatten()
            .map(|e| {
                let len = e.metadata().map(|m| m.len()).unwrap_or(0);
                (e.file_name().to_string_lossy().into_owned(), len)
            })
            .collect();
        entries.sort();
        entries
    };
    let started = Instant::now();
    let mut last = observe(dir);
    while started.elapsed() < std::time::Duration::from_secs(5) {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let now = observe(dir);
        let tmp_pending = now.iter().any(|(name, _)| name.ends_with(".tmp"));
        if now == last && !tmp_pending {
            return;
        }
        last = now;
    }
}

/// Mid-gap insert keys, distinct from each other and from every member.
fn insert_keys(ks: &KeySet, count: usize, seed: u64) -> Vec<Key> {
    let keys = ks.keys();
    let mut rng = trial_rng(seed, 7_207);
    let mut out = Vec::with_capacity(count);
    let mut used = BTreeSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let i = rng.gen_range(0..keys.len() - 1);
        let (a, b) = (keys[i], keys[i + 1]);
        if b - a < 6 {
            continue;
        }
        let mid = a + (b - a) / 2;
        if used.insert(mid) {
            out.push(mid);
        }
    }
    out
}

/// Runs one cell: durable server up, drive, recover the live directory,
/// verify, shut down.
fn run_cell(
    name: &str,
    level: DurabilityLevel,
    kill: bool,
    ks: &KeySet,
    cfg: &DurabilityBenchConfig,
) -> Result<DurabilityCellReport> {
    let dir = cell_dir(cfg.seed, name);
    let faults = if kill {
        // Sequential drive, one flush per write: a low per-flush
        // probability lands the kill mid-load with a meaty acked prefix.
        FaultInjector::seeded(
            FaultConfig::new(cfg.seed ^ name.len() as u64).crash_after_append(0.004),
        )
    } else {
        FaultInjector::disabled()
    };
    let index_name = cfg.index.clone();
    let registry = IndexRegistry::with_defaults();
    let server = Server::builder(
        lis_server::ServeConfig::new()
            .workers(cfg.workers)
            .write_batch(32),
    )
    .faults(faults)
    .durability(
        Durability::dir(&dir)
            .level(level)
            // 2/5 of the drive: two checkpoints engage mid-run and a
            // ~writes/5 WAL tail is left for the replay measurement (a
            // writes/4 cadence would land exactly on the final write
            // and leave nothing to replay).
            .snapshot_every((cfg.writes as u64 * 2 / 5).max(8)),
    )
    .start_online(
        ks.clone(),
        move |k| registry.build(&index_name, k),
        Box::new(AdmitAll),
    )?;
    let handle = server.handle();
    let keys = insert_keys(ks, cfg.writes, cfg.seed);

    // The drive. Kill cells go sequentially (every write its own flush —
    // the fault schedule sees the most events); level cells pipeline so
    // group commit has real micro-batches to amortize the fsync over.
    let started = Instant::now();
    let mut acked: Vec<Key> = Vec::with_capacity(keys.len());
    let mut submitted = 0usize;
    let mut killed = false;
    if kill {
        for &key in &keys {
            submitted += 1;
            let outcome = handle
                .submit_write(WriteOp::Insert(key), key % 16)
                .and_then(|ticket| ticket.wait());
            match outcome {
                Ok(WriteStatus::Applied { .. }) => acked.push(key),
                Ok(_) => {}
                Err(e) if e.is_retryable() => {
                    killed = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
    } else {
        let mut inflight = std::collections::VecDeque::with_capacity(32);
        let mut next = 0usize;
        loop {
            while inflight.len() < 32 && next < keys.len() {
                let key = keys[next];
                next += 1;
                submitted += 1;
                inflight.push_back((key, handle.submit_write(WriteOp::Insert(key), key % 16)?));
            }
            let Some((key, ticket)) = inflight.pop_front() else {
                break;
            };
            if matches!(ticket.wait()?, WriteStatus::Applied { .. }) {
                acked.push(key);
            }
        }
    }
    let write_wall_ms = started.elapsed().as_secs_f64() * 1_000.0;

    // Recover the LIVE directory — before shutdown, whose final clean
    // checkpoint would truncate the WAL and zero the replay being
    // measured. (The kill cell's write plane is already dead; its WAL
    // tail is exactly what the kill left behind.)
    quiesce(&dir);
    let wal_bytes = std::fs::metadata(dir.join("wal.log"))
        .map(|m| m.len())
        .unwrap_or(0);
    let recover_started = Instant::now();
    let rec = lis_server::recover(&dir)?;
    let recover_ms = recover_started.elapsed().as_secs_f64() * 1_000.0;
    let rec_again = lis_server::recover(&dir)?;

    let submitted_set: BTreeSet<Key> = keys.iter().copied().collect();
    let lost_acked = acked.iter().filter(|&&k| !rec.keyset.contains(k)).count();
    let recovered_matches_live = rec.keyset.keys() == rec_again.keyset.keys()
        && ks.keys().iter().all(|&k| rec.keyset.contains(k))
        && rec
            .keyset
            .keys()
            .iter()
            .all(|&k| ks.contains(k) || submitted_set.contains(&k));
    let _ = server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(DurabilityCellReport {
        name: name.to_string(),
        writes_submitted: submitted,
        writes_acked: acked.len(),
        write_wall_ms,
        recover_ms,
        replayed_records: rec.replayed_records,
        replayed_ops: rec.replayed_ops,
        truncated_bytes: rec.truncated_bytes,
        wal_bytes,
        snapshot_lsn: rec.snapshot_lsn,
        killed,
        lost_acked,
        recovered_matches_live,
    })
}

/// Runs the full durability grid (three levels + the kill cell) and
/// returns the report behind `BENCH_durability.json`.
pub fn run_durability(cfg: &DurabilityBenchConfig) -> Result<DurabilityReport> {
    let domain = domain_for_density(cfg.keys, cfg.density)?;
    let mut rng = trial_rng(cfg.seed, 23);
    let ks = uniform_keys(&mut rng, cfg.keys, domain)?;
    let cells = vec![
        run_cell("batch", DurabilityLevel::Batch, false, &ks, cfg)?,
        run_cell("window", DurabilityLevel::Window, false, &ks, cfg)?,
        run_cell("none", DurabilityLevel::None, false, &ks, cfg)?,
        run_cell("kill", DurabilityLevel::Batch, true, &ks, cfg)?,
    ];
    Ok(DurabilityReport {
        config: cfg.clone(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> DurabilityBenchConfig {
        DurabilityBenchConfig {
            keys: 4_000,
            writes: 256,
            // This seed's kill schedule is known to fire within 256
            // sequential flushes (determinism makes that a constant).
            seed: 0xF00D,
            ..DurabilityBenchConfig::default()
        }
    }

    #[test]
    fn grid_holds_the_durability_contract_at_smoke_scale() {
        let report = run_durability(&smoke_config()).unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert!(cell.recovered_matches_live, "{} diverged", cell.name);
            assert_eq!(cell.lost_acked, 0, "{} lost acked writes", cell.name);
        }
        let kill = report.cell("kill").unwrap();
        assert!(kill.killed, "kill schedule never fired at this seed");
        assert!(kill.writes_acked < kill.writes_submitted);
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn json_document_carries_the_gate_inputs() {
        let report = run_durability(&DurabilityBenchConfig {
            keys: 2_000,
            writes: 64,
            seed: 0xF00D,
            ..DurabilityBenchConfig::default()
        })
        .unwrap();
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"durability\""));
        assert!(json.contains("\"writes_per_s\""));
        assert!(json.contains("\"recover_ms\""));
        assert!(json.contains("\"recovered_matches_live\""));
    }
}
