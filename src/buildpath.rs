//! The build-plane microbenchmark engine behind the `buildpath` bench and
//! `lis-cli bench-build` — the machine-readable perf baseline for
//! everything that happens *before* the first lookup.
//!
//! PR 4 gave the read hot path a durable baseline (`BENCH_hotpath.json`);
//! offline sweeps, however, pay a build plane first: model training per
//! victim and poisoning-campaign generation per attack. This engine
//! measures both and writes `BENCH_build.json` at the workspace root:
//!
//! * **builds** — ns/key per index through three paths: the
//!   pre-optimization *reference* build (kept callable:
//!   `Rmi::build_reference` & friends, the build-plane analogue of
//!   `lookup_each_into`), the optimized plane serial (`threads = 1`), and
//!   the optimized plane parallel (`threads = 0`, available parallelism).
//!   The work unit is build **plus one loss read** — exactly what the
//!   pipeline pays per victim. The engine asserts the three paths produce
//!   identical indexes (bit-equal leaf tables/segments and losses, equal
//!   lookups) before any timing is trusted;
//! * **campaigns** — ns/poison-point per greedy engine (`reference`
//!   rebuild-per-step, `exact` incremental, `lazy` heap) at full and
//!   quarter scale, plus Algorithm 2. Besides the total, each cell
//!   records the *marginal* ns/point — `(t(p₂) − t(p₁))/(p₂ − p₁)` —
//!   which isolates the per-point asymptotics from the one-time `O(n)`
//!   setup every engine legitimately pays: `O(n + p·√n)`-style engines
//!   show a near-flat marginal where the old `O(p·n)` loop's marginal
//!   grows linearly with `n`.

use lis_core::error::{LisError, Result};
use lis_core::index::{LearnedIndex, Lookup};
use lis_core::keys::{Key, KeySet};
use lis_poison::{
    greedy_poison, greedy_poison_lazy, greedy_poison_reference, rmi_attack, GreedyPlan,
    PoisonBudget, RmiAttackConfig,
};
use lis_workloads::{domain_for_density, trial_rng, uniform_keys, ResultTable};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Scale and shape of one buildpath run.
#[derive(Debug, Clone)]
pub struct BuildpathConfig {
    /// Keyset size (the acceptance baseline uses 10⁶ uniform keys).
    pub keys: usize,
    /// Timing rounds per build variant; the best round is reported.
    pub rounds: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Large campaign budget `p₂` (the marginal is measured between
    /// [`CAMPAIGN_P_SMALL`] and this).
    pub campaign_points: usize,
    /// Index names to measure (subset of `rmi`, `deep-rmi`, `pla`,
    /// `btree`).
    pub indexes: Vec<String>,
}

/// Small campaign budget `p₁` of the marginal measurement.
pub const CAMPAIGN_P_SMALL: usize = 32;

impl Default for BuildpathConfig {
    fn default() -> Self {
        Self {
            keys: 1_000_000,
            rounds: 3,
            seed: 42,
            campaign_points: 232,
            indexes: ["rmi", "deep-rmi", "pla", "btree"]
                .map(String::from)
                .to_vec(),
        }
    }
}

/// One measured per-index build cell.
#[derive(Debug, Clone)]
pub struct BuildCell {
    /// Registry-style name of the victim.
    pub index: String,
    /// Best-round ns/key through the pre-optimization reference build.
    pub ns_per_key_reference: f64,
    /// Best-round ns/key through the optimized plane, `threads = 1`.
    pub ns_per_key_serial: f64,
    /// Best-round ns/key through the optimized plane, all workers.
    pub ns_per_key_parallel: f64,
    /// `reference / parallel` — the headline build-plane speedup (on a
    /// single-core host this is the pure algorithmic factor; real
    /// multicore hosts multiply the thread fan-out on top).
    pub build_speedup: f64,
    /// `serial / parallel` — the thread fan-out's own contribution.
    pub thread_speedup: f64,
    /// Training loss of the built index (identical across paths).
    pub loss: f64,
}

/// One measured campaign-generation cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Engine name: `greedy-reference`, `greedy-exact`, `greedy-lazy`,
    /// or `rmi-attack`.
    pub attack: String,
    /// Keyset size this cell ran against.
    pub keys: usize,
    /// Poison points placed at the large budget.
    pub points: usize,
    /// Total campaign nanoseconds per placed point (includes the
    /// engine's one-time `O(n)` setup).
    pub ns_per_point: f64,
    /// Marginal nanoseconds per point between the two budgets — the
    /// per-point asymptotics with the setup subtracted out.
    pub marginal_ns_per_point: f64,
    /// Final poisoned MSE at the large budget (campaign-quality check).
    pub final_mse: f64,
}

/// The full measured build-plane grid plus its configuration.
#[derive(Debug, Clone)]
pub struct BuildpathReport {
    /// Keyset size measured (campaign cells also run at a quarter of it).
    pub keys: usize,
    /// Timing rounds per build variant.
    pub rounds: usize,
    /// Large campaign budget `p₂`.
    pub campaign_points: usize,
    /// Per-index build cells.
    pub builds: Vec<BuildCell>,
    /// Per-engine campaign cells (full and quarter scale).
    pub campaigns: Vec<CampaignCell>,
}

impl BuildpathReport {
    /// The build cell for `index`, if measured.
    pub fn build_cell(&self, index: &str) -> Option<&BuildCell> {
        self.builds.iter().find(|c| c.index == index)
    }

    /// The campaign cell for `(attack, keys)`, if measured.
    pub fn campaign_cell(&self, attack: &str, keys: usize) -> Option<&CampaignCell> {
        self.campaigns
            .iter()
            .find(|c| c.attack == attack && c.keys == keys)
    }

    /// `marginal(full) / marginal(quarter)` for `attack` — ≈ 4 for a
    /// linear-per-point engine, ≈ 1–2 for the sublinear ones. `None`
    /// when either scale was not measured.
    pub fn marginal_scaling(&self, attack: &str) -> Option<f64> {
        let full = self.campaign_cell(attack, self.keys)?;
        let quarter = self.campaign_cell(attack, self.keys / 4)?;
        Some(full.marginal_ns_per_point / quarter.marginal_ns_per_point.max(1.0))
    }

    /// Renders both grids as one printable/CSV-exportable [`ResultTable`].
    pub fn table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "buildpath",
            &[
                "kind",
                "name",
                "keys",
                "ns_reference",
                "ns_serial",
                "ns_parallel_or_marginal",
                "speedup",
                "loss_or_mse",
            ],
        );
        for c in &self.builds {
            table.push_row([
                "build".to_string(),
                c.index.clone(),
                self.keys.to_string(),
                format!("{:.2}", c.ns_per_key_reference),
                format!("{:.2}", c.ns_per_key_serial),
                format!("{:.2}", c.ns_per_key_parallel),
                format!("{:.2}", c.build_speedup),
                format!("{:.4}", c.loss),
            ]);
        }
        for c in &self.campaigns {
            table.push_row([
                "campaign".to_string(),
                c.attack.clone(),
                c.keys.to_string(),
                String::new(),
                format!("{:.0}", c.ns_per_point),
                format!("{:.0}", c.marginal_ns_per_point),
                String::new(),
                format!("{:.4}", c.final_mse),
            ]);
        }
        table
    }

    /// Machine-readable JSON for `BENCH_build.json` (hand-rendered; the
    /// workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"buildpath\",");
        let _ = writeln!(
            out,
            "  \"units\": {{\"ns_per_key\": \"nanoseconds per key, build + loss read\", \
             \"ns_per_point\": \"nanoseconds per placed poison point\", \
             \"marginal_ns_per_point\": \"(t(p2)-t(p1))/(p2-p1), setup excluded\"}},"
        );
        let _ = writeln!(out, "  \"keys\": {},", self.keys);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(
            out,
            "  \"campaign_budgets\": [{}, {}],",
            CAMPAIGN_P_SMALL, self.campaign_points
        );
        let _ = writeln!(out, "  \"builds\": [");
        for (i, c) in self.builds.iter().enumerate() {
            let comma = if i + 1 < self.builds.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"index\": \"{}\", \"ns_per_key_reference\": {:.2}, \
                 \"ns_per_key_serial\": {:.2}, \"ns_per_key_parallel\": {:.2}, \
                 \"build_speedup\": {:.3}, \"thread_speedup\": {:.3}, \
                 \"loss\": {:.4}}}{comma}",
                c.index,
                c.ns_per_key_reference,
                c.ns_per_key_serial,
                c.ns_per_key_parallel,
                c.build_speedup,
                c.thread_speedup,
                c.loss
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"campaigns\": [");
        for (i, c) in self.campaigns.iter().enumerate() {
            let comma = if i + 1 < self.campaigns.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"attack\": \"{}\", \"keys\": {}, \"points\": {}, \
                 \"ns_per_point\": {:.1}, \"marginal_ns_per_point\": {:.1}, \
                 \"final_mse\": {:.4}}}{comma}",
                c.attack, c.keys, c.points, c.ns_per_point, c.marginal_ns_per_point, c.final_mse
            );
        }
        let _ = writeln!(out, "  ],");
        let lazy_scaling = self.marginal_scaling("greedy-lazy").unwrap_or(f64::NAN);
        let exact_scaling = self.marginal_scaling("greedy-exact").unwrap_or(f64::NAN);
        let reference_scaling = self
            .marginal_scaling("greedy-reference")
            .unwrap_or(f64::NAN);
        let _ = writeln!(
            out,
            "  \"campaign_marginal_scaling_4x_keys\": {{\"greedy-reference\": {reference_scaling:.2}, \
             \"greedy-exact\": {exact_scaling:.2}, \"greedy-lazy\": {lazy_scaling:.2}, \
             \"linear\": 4.0}}"
        );
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`BuildpathReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Times `f` (build + loss read) `rounds` times, returning the last built
/// value and the best round in nanoseconds.
fn time_build<I>(rounds: usize, mut f: impl FnMut() -> Result<I>) -> Result<(I, f64)> {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..rounds.max(1) {
        let started = Instant::now();
        let built = f()?;
        best = best.min(started.elapsed().as_nanos() as f64);
        out = Some(built);
    }
    Ok((out.expect("rounds >= 1"), best))
}

/// Verifies two builds of the same index are indistinguishable — loss
/// (bitwise), structure, and lookups over the probe sample. Fast-but-
/// different must never be recorded as a speedup.
fn verify_identical<I>(
    name: &str,
    a: &I,
    b: &I,
    probes: &[Key],
    loss_of: &impl Fn(&I) -> f64,
    lookup: &impl Fn(&I, Key) -> Lookup,
    structurally_identical: &impl Fn(&I, &I) -> bool,
) -> Result<()> {
    let invariant = |ok: bool, what: &str| -> Result<()> {
        if ok {
            Ok(())
        } else {
            Err(LisError::Invariant(format!(
                "{name}: optimized build diverged from reference ({what})"
            )))
        }
    };
    invariant(loss_of(a).to_bits() == loss_of(b).to_bits(), "loss")?;
    invariant(structurally_identical(a, b), "structure")?;
    for &k in probes {
        invariant(lookup(a, k) == lookup(b, k), "lookup")?;
    }
    Ok(())
}

/// Measures one index through the three build paths (reference, serial
/// optimized, parallel optimized) and verifies they produced the same
/// structure before reporting any timing.
#[allow(clippy::too_many_arguments)]
fn measure_variants<I>(
    name: &str,
    n: usize,
    rounds: usize,
    probes: &[Key],
    build_reference: impl Fn() -> Result<I>,
    build_serial: impl Fn() -> Result<I>,
    build_parallel: impl Fn() -> Result<I>,
    loss_of: impl Fn(&I) -> f64,
    lookup: impl Fn(&I, Key) -> Lookup,
    structurally_identical: impl Fn(&I, &I) -> bool,
) -> Result<BuildCell> {
    let (reference, ns_ref) = time_build(rounds, || {
        let idx = build_reference()?;
        black_box(loss_of(&idx));
        Ok(idx)
    })?;
    let (serial, ns_ser) = time_build(rounds, || {
        let idx = build_serial()?;
        black_box(loss_of(&idx));
        Ok(idx)
    })?;
    let (parallel, ns_par) = time_build(rounds, || {
        let idx = build_parallel()?;
        black_box(loss_of(&idx));
        Ok(idx)
    })?;
    verify_identical(
        name,
        &reference,
        &serial,
        probes,
        &loss_of,
        &lookup,
        &structurally_identical,
    )?;
    verify_identical(
        name,
        &serial,
        &parallel,
        probes,
        &loss_of,
        &lookup,
        &structurally_identical,
    )?;

    Ok(BuildCell {
        index: name.to_string(),
        ns_per_key_reference: ns_ref / n as f64,
        ns_per_key_serial: ns_ser / n as f64,
        ns_per_key_parallel: ns_par / n as f64,
        build_speedup: ns_ref / ns_par,
        thread_speedup: ns_ser / ns_par,
        loss: loss_of(&parallel),
    })
}

/// Runs a greedy engine at both budgets (`repeats` runs each, best
/// taken — cheap engines need the noise reduction, their whole marginal
/// span is milliseconds) and distills one campaign cell.
fn campaign_cell(
    attack: &str,
    ks: &KeySet,
    p_small: usize,
    p_big: usize,
    repeats: usize,
    run: impl Fn(&KeySet, PoisonBudget) -> Result<GreedyPlan>,
) -> Result<CampaignCell> {
    let mut t_small = f64::INFINITY;
    let mut t_big = f64::INFINITY;
    let mut small_points = 0usize;
    let mut big = None;
    for _ in 0..repeats.max(1) {
        let started = Instant::now();
        let plan = run(ks, PoisonBudget::keys(p_small))?;
        t_small = t_small.min(started.elapsed().as_nanos() as f64);
        small_points = plan.keys.len();
        black_box(&plan);
        let started = Instant::now();
        let plan = run(ks, PoisonBudget::keys(p_big))?;
        t_big = t_big.min(started.elapsed().as_nanos() as f64);
        big = Some(plan);
    }
    let big = big.expect("repeats >= 1");
    let points = big.keys.len().max(1);
    let span = points.saturating_sub(small_points).max(1);
    Ok(CampaignCell {
        attack: attack.to_string(),
        keys: ks.len(),
        points,
        ns_per_point: t_big / points as f64,
        marginal_ns_per_point: (t_big - t_small).max(0.0) / span as f64,
        final_mse: big.final_mse(),
    })
}

/// Runs the full build-plane grid: per-index build timings through all
/// three paths (with output-identity verification), greedy campaign
/// generation at full and quarter scale for all three engines, and one
/// Algorithm-2 cell.
pub fn run_buildpath(cfg: &BuildpathConfig) -> Result<BuildpathReport> {
    use lis_core::btree::{BPlusTree, BTreeConfig};
    use lis_core::deep_rmi::{DeepRmi, DeepRmiConfig};
    use lis_core::pla::PlaIndex;
    use lis_core::rmi::{Rmi, RmiConfig};

    if cfg.keys < 1_000 {
        return Err(LisError::Invariant(
            "buildpath needs at least 1,000 keys".into(),
        ));
    }
    if cfg.campaign_points <= CAMPAIGN_P_SMALL {
        return Err(LisError::Invariant(format!(
            "campaign_points must exceed the small budget {CAMPAIGN_P_SMALL}"
        )));
    }
    let mut rng = trial_rng(cfg.seed, 0);
    let ks = uniform_keys(&mut rng, cfg.keys, domain_for_density(cfg.keys, 0.1)?)?;
    let n = ks.len();
    // Probe sample for the lookup-identity checks (members + absents).
    let mut probes: Vec<Key> = ks
        .keys()
        .iter()
        .step_by((n / 512).max(1))
        .copied()
        .collect();
    probes.extend([
        0,
        ks.min_key().saturating_sub(1),
        ks.max_key() + 1,
        Key::MAX,
    ]);

    let leaves = (n / 100).clamp(1, n);
    let mut builds = Vec::new();
    for name in &cfg.indexes {
        let cell = match name.as_str() {
            "rmi" => {
                let rmi_cfg = RmiConfig::linear_root(leaves);
                measure_variants(
                    name,
                    n,
                    cfg.rounds,
                    &probes,
                    || Rmi::build_reference(&ks, &rmi_cfg),
                    || Rmi::build_with_threads(&ks, &rmi_cfg, 1),
                    || Rmi::build_with_threads(&ks, &rmi_cfg, 0),
                    |i| i.rmi_loss(),
                    |i, k| i.lookup(k),
                    |a, b| a.leaves() == b.leaves(),
                )?
            }
            "deep-rmi" => {
                let deep_cfg = DeepRmiConfig::three_stage((leaves / 10).max(2), leaves.max(4));
                measure_variants(
                    name,
                    n,
                    cfg.rounds,
                    &probes,
                    || DeepRmi::build_reference(&ks, &deep_cfg),
                    || DeepRmi::build_with_threads(&ks, &deep_cfg, 1),
                    || DeepRmi::build_with_threads(&ks, &deep_cfg, 0),
                    |i| i.leaf_loss(),
                    |i, k| i.lookup(k),
                    |a, b| a.max_leaf_error() == b.max_leaf_error(),
                )?
            }
            "pla" => {
                // PLA's cone construction is inherently sequential — there
                // is one optimized path, no thread knob. Timing one
                // builder twice as "serial" and "parallel" would commit
                // timer noise as a phantom thread_speedup, so the
                // optimized path is measured once and reported for both.
                let (reference, ns_ref) = time_build(cfg.rounds, || {
                    let idx = PlaIndex::build_reference(&ks, 16)?;
                    black_box(LearnedIndex::loss(&idx));
                    Ok(idx)
                })?;
                let (optimized, ns_opt) = time_build(cfg.rounds, || {
                    let idx = PlaIndex::build(&ks, 16)?;
                    black_box(LearnedIndex::loss(&idx));
                    Ok(idx)
                })?;
                verify_identical(
                    name,
                    &reference,
                    &optimized,
                    &probes,
                    &LearnedIndex::loss,
                    &|i: &PlaIndex, k| i.lookup(k),
                    &|a: &PlaIndex, b: &PlaIndex| a.segments() == b.segments(),
                )?;
                BuildCell {
                    index: name.to_string(),
                    ns_per_key_reference: ns_ref / n as f64,
                    ns_per_key_serial: ns_opt / n as f64,
                    ns_per_key_parallel: ns_opt / n as f64,
                    build_speedup: ns_ref / ns_opt,
                    thread_speedup: 1.0,
                    loss: LearnedIndex::loss(&optimized),
                }
            }
            "btree" => {
                // The baseline has no optimized build path — there is one
                // builder, so one measurement: duplicating the timing
                // three ways would invent noise-born "speedups" in the
                // committed JSON. Reported as exactly 1.0×.
                let fanout = BTreeConfig::default().fanout;
                let (built, ns) = time_build(cfg.rounds, || {
                    let idx = BPlusTree::build(&ks, fanout)?;
                    black_box(LearnedIndex::loss(&idx));
                    Ok(idx)
                })?;
                BuildCell {
                    index: name.to_string(),
                    ns_per_key_reference: ns / n as f64,
                    ns_per_key_serial: ns / n as f64,
                    ns_per_key_parallel: ns / n as f64,
                    build_speedup: 1.0,
                    thread_speedup: 1.0,
                    loss: LearnedIndex::loss(&built),
                }
            }
            other => {
                return Err(LisError::UnknownIndex {
                    name: other.to_string(),
                    available: "rmi, deep-rmi, pla, btree".into(),
                })
            }
        };
        builds.push(cell);
    }

    // Campaign generation: three greedy engines × two scales, marginal
    // per-point isolated from the one-time setup.
    let mut campaigns = Vec::new();
    let quarter = {
        let mut rng = trial_rng(cfg.seed, 1);
        uniform_keys(&mut rng, n / 4, domain_for_density(n / 4, 0.1)?)?
    };
    // The lazy engine's marginal span is microseconds per point, so it
    // gets an 8× budget span and best-of-2 repeats to rise above timer
    // noise; the linear engines' marginals are milliseconds per point
    // and resolve in a single pass at the small span.
    let lazy_points = CAMPAIGN_P_SMALL + 8 * (cfg.campaign_points - CAMPAIGN_P_SMALL);
    for scale in [&quarter, &ks] {
        campaigns.push(campaign_cell(
            "greedy-reference",
            scale,
            CAMPAIGN_P_SMALL,
            cfg.campaign_points,
            1,
            greedy_poison_reference,
        )?);
        campaigns.push(campaign_cell(
            "greedy-exact",
            scale,
            CAMPAIGN_P_SMALL,
            cfg.campaign_points,
            1,
            greedy_poison,
        )?);
        campaigns.push(campaign_cell(
            "greedy-lazy",
            scale,
            CAMPAIGN_P_SMALL,
            lazy_points,
            2,
            greedy_poison_lazy,
        )?);
    }

    // Algorithm 2 (the RMI campaign hotpath mounts): one full-scale
    // cell, with the marginal measured between a 2% and a 10% budget so
    // the field means the same thing it means for the greedy cells
    // (per-point cost with the one-time setup subtracted out).
    let num_models = (n / 100).max(1);
    let attack_cfg = |pct: f64| RmiAttackConfig::new(pct).with_max_exchanges(num_models.min(64));
    let started = Instant::now();
    let small_outcome = rmi_attack(&ks, num_models, &attack_cfg(2.0))?;
    let t_small = started.elapsed().as_nanos() as f64;
    black_box(&small_outcome);
    let started = Instant::now();
    let outcome = rmi_attack(&ks, num_models, &attack_cfg(10.0))?;
    let t_rmi = started.elapsed().as_nanos() as f64;
    let span = outcome
        .total_poison
        .saturating_sub(small_outcome.total_poison)
        .max(1);
    campaigns.push(CampaignCell {
        attack: "rmi-attack".to_string(),
        keys: n,
        points: outcome.total_poison.max(1),
        ns_per_point: t_rmi / outcome.total_poison.max(1) as f64,
        marginal_ns_per_point: (t_rmi - t_small).max(0.0) / span as f64,
        final_mse: outcome.poisoned_rmi_loss,
    });

    // Campaign-quality invariant at both scales: the lazy engine must
    // track the exact engine's final loss at a *matched* budget (the
    // lazy timing cells run a longer campaign, so compare a dedicated
    // matched-budget run against the exact cell).
    let report = BuildpathReport {
        keys: n,
        rounds: cfg.rounds,
        campaign_points: cfg.campaign_points,
        builds,
        campaigns,
    };
    for scale in [&quarter, &ks] {
        let Some(exact) = report.campaign_cell("greedy-exact", scale.len()) else {
            continue;
        };
        let lazy = greedy_poison_lazy(scale, PoisonBudget::keys(cfg.campaign_points))?;
        if lazy.final_mse() < 0.95 * exact.final_mse {
            return Err(LisError::Invariant(format!(
                "lazy campaign lost attack strength at n={}: {} vs exact {}",
                scale.len(),
                lazy.final_mse(),
                exact.final_mse
            )));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> BuildpathConfig {
        BuildpathConfig {
            keys: 8_000,
            rounds: 1,
            seed: 7,
            campaign_points: 48,
            indexes: vec!["rmi".into(), "pla".into(), "btree".into()],
        }
    }

    #[test]
    fn grid_covers_builds_and_campaigns() {
        let report = run_buildpath(&smoke_config()).unwrap();
        assert_eq!(report.builds.len(), 3);
        for cell in &report.builds {
            assert!(cell.ns_per_key_reference > 0.0, "{}", cell.index);
            assert!(cell.ns_per_key_parallel > 0.0, "{}", cell.index);
            assert!(cell.build_speedup > 0.0, "{}", cell.index);
        }
        for attack in ["greedy-reference", "greedy-exact", "greedy-lazy"] {
            for keys in [report.keys, report.keys / 4] {
                let cell = report.campaign_cell(attack, keys).expect("cell");
                assert!(cell.points > 0, "{attack}@{keys}");
                assert!(cell.ns_per_point > 0.0, "{attack}@{keys}");
            }
            assert!(report.marginal_scaling(attack).is_some());
        }
        let rmi = report.campaign_cell("rmi-attack", report.keys).unwrap();
        assert!(rmi.points > 0 && rmi.final_mse > 0.0);
    }

    #[test]
    fn json_is_well_formed_enough_to_grep() {
        let report = run_buildpath(&smoke_config()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"bench\": \"buildpath\""));
        assert!(json.contains("\"campaign_marginal_scaling_4x_keys\""));
        assert_eq!(json.matches("\"attack\"").count(), 7);
        let table = report.table();
        assert_eq!(table.rows.len(), 3 + 7);
    }

    #[test]
    fn rejects_degenerate_configs_and_unknown_indexes() {
        let mut cfg = smoke_config();
        cfg.keys = 10;
        assert!(run_buildpath(&cfg).is_err());
        let mut cfg = smoke_config();
        cfg.campaign_points = CAMPAIGN_P_SMALL;
        assert!(run_buildpath(&cfg).is_err());
        let mut cfg = smoke_config();
        cfg.indexes = vec!["skiplist".into()];
        assert!(run_buildpath(&cfg).is_err());
    }
}
