//! The read-hot-path microbenchmark engine behind the `hotpath` bench and
//! `lis-cli bench-hotpath` — the repo's machine-readable perf baseline.
//!
//! The paper's entire attack surface is lookup cost, so the first-class
//! performance artifact of this repo is a durable measurement of the
//! serve hot path: nanoseconds per lookup and Mlookups/s for each victim
//! structure, over the clean keyset and over an Algorithm-2-poisoned one,
//! through three code paths:
//!
//! * **per-key** — one batch-level virtual dispatch, then a plain loop
//!   over single-key lookups. This is exactly what `lookup_batch` did
//!   before the sorted-batch refactor, kept callable as
//!   [`DynIndex::lookup_each_into`], so the speedup of the optimized
//!   path stays measurable forever;
//! * **batch** — the sorted-batch hot path (monotone routing, SoA leaf
//!   tables, pooled scratch, zero steady-state allocation) pinned to
//!   pipeline depth 1: each probe is served as soon as it is planned;
//! * **vectorized** — the same path at the default pipeline depth: the
//!   lane-kernel window search plus software-prefetched multi-probe
//!   pipelining, so several probes' cache misses overlap. This is the
//!   serving plane's actual configuration.
//!
//! [`HotpathReport::to_json`] renders the whole grid as JSON; the bench
//! writes it to `BENCH_hotpath.json` at the workspace root so every
//! future PR can diff ns/lookup against this baseline (the SOSD
//! benchmarking methodology, scaled to this repo).

use lis_core::error::{LisError, Result};
use lis_core::index::{DynIndex, IndexRegistry};
use lis_core::keys::Key;
use lis_core::search::set_pipeline_depth;
use lis_core::Lookup;
use lis_poison::{rmi_attack, RmiAttackConfig};
use lis_workloads::{domain_for_density, trial_rng, uniform_keys, ResultTable};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Scale and shape of one hotpath run.
#[derive(Debug, Clone)]
pub struct HotpathConfig {
    /// Keyset size (the acceptance baseline uses 10⁶ uniform keys).
    pub keys: usize,
    /// Probes per batch on the batched path.
    pub batch: usize,
    /// Timing rounds; the best round is reported (first rounds warm
    /// caches and scratch pools).
    pub rounds: usize,
    /// Algorithm-2 poison budget, percent of the keyset.
    pub poison_pct: f64,
    /// Workload/attack RNG seed.
    pub seed: u64,
    /// Registry names to measure.
    pub indexes: Vec<String>,
}

impl Default for HotpathConfig {
    fn default() -> Self {
        Self {
            keys: 1_000_000,
            // Large offline batches are where sorted-batch locality pays:
            // at 16k probes per batch over 10⁶ keys, consecutive sorted
            // probes land ~60 positions apart, so leaf tables and search
            // windows stream through cache. (Serving micro-batches are
            // smaller; they keep the zero-allocation and monotone-routing
            // wins, and the galloping cursor never regresses below
            // per-key binary-search routing.)
            batch: 16_384,
            rounds: 3,
            poison_pct: 10.0,
            seed: 42,
            indexes: ["rmi", "deep-rmi", "pla", "btree", "sharded:rmi:8"]
                .map(String::from)
                .to_vec(),
        }
    }
}

/// One measured (index, dataset) grid cell.
#[derive(Debug, Clone)]
pub struct HotpathCell {
    /// Registry name of the victim.
    pub index: String,
    /// `"clean"` or `"poisoned"`.
    pub dataset: String,
    /// Best-round ns/lookup through the sorted-batch path at pipeline
    /// depth 1 — monotone routing and the lane kernel, but each probe
    /// served immediately after planning (no memory-level parallelism).
    pub ns_per_lookup_batch: f64,
    /// Best-round ns/lookup through the full vectorized serve path:
    /// the lane kernel plus the default-depth prefetch pipeline keeping
    /// several probes' windows in flight per worker. This is what the
    /// serving plane actually runs.
    pub ns_per_lookup_vectorized: f64,
    /// Best-round ns/lookup through the per-key reference path.
    pub ns_per_lookup_per_key: f64,
    /// Millions of lookups per second through the vectorized path.
    pub mlookups_per_s: f64,
    /// `per_key / batch` — the depth-1 sorted-batch path's speedup over
    /// the old serve path on identical probes.
    pub batch_speedup: f64,
    /// `batch / vectorized` — what prefetch pipelining adds on top of
    /// the sorted-batch path.
    pub pipeline_speedup: f64,
    /// Mean lookup cost units (comparisons/probes) per probe — the
    /// hardware-independent number the paper's figures use.
    pub mean_cost: f64,
}

/// The full measured grid plus its configuration.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Keyset size measured.
    pub keys: usize,
    /// Batch size of the batched path.
    pub batch: usize,
    /// Timing rounds per cell.
    pub rounds: usize,
    /// Poison budget (percent).
    pub poison_pct: f64,
    /// Poison keys the campaign actually placed.
    pub poison_keys: usize,
    /// Campaign ratio loss (poisoned/clean RMI loss).
    pub ratio_loss: f64,
    /// Worker threads of the persistent pool the run installed
    /// (`LIS_POOL_THREADS` override or available parallelism) — the
    /// fan-out width behind sharded oversize batches and index builds.
    pub pool_threads: usize,
    /// All measured cells, in (index, dataset) order.
    pub cells: Vec<HotpathCell>,
}

impl HotpathReport {
    /// The cell for `(index, dataset)`, if measured.
    pub fn cell(&self, index: &str, dataset: &str) -> Option<&HotpathCell> {
        self.cells
            .iter()
            .find(|c| c.index == index && c.dataset == dataset)
    }

    /// Renders the grid as a printable/CSV-exportable [`ResultTable`].
    pub fn table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "hotpath",
            &[
                "index",
                "dataset",
                "ns_batch",
                "ns_vectorized",
                "ns_per_key",
                "mlookups_per_s",
                "batch_speedup",
                "pipeline_speedup",
                "mean_cost",
            ],
        );
        for c in &self.cells {
            table.push_row([
                c.index.clone(),
                c.dataset.clone(),
                format!("{:.1}", c.ns_per_lookup_batch),
                format!("{:.1}", c.ns_per_lookup_vectorized),
                format!("{:.1}", c.ns_per_lookup_per_key),
                format!("{:.2}", c.mlookups_per_s),
                format!("{:.2}", c.batch_speedup),
                format!("{:.2}", c.pipeline_speedup),
                format!("{:.2}", c.mean_cost),
            ]);
        }
        table
    }

    /// Machine-readable JSON for `BENCH_hotpath.json` (hand-rendered; the
    /// workspace carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"hotpath\",");
        let _ = writeln!(
            out,
            "  \"units\": {{\"ns_per_lookup\": \"nanoseconds\", \"mlookups_per_s\": \"1e6 lookups/s\", \"mean_cost\": \"key comparisons\"}},"
        );
        let _ = writeln!(out, "  \"keys\": {},", self.keys);
        let _ = writeln!(out, "  \"batch\": {},", self.batch);
        let _ = writeln!(out, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(out, "  \"poison_pct\": {},", self.poison_pct);
        let _ = writeln!(out, "  \"poison_keys\": {},", self.poison_keys);
        let _ = writeln!(out, "  \"ratio_loss\": {:.4},", self.ratio_loss);
        let _ = writeln!(out, "  \"pool_threads\": {},", self.pool_threads);
        let _ = writeln!(out, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"index\": \"{}\", \"dataset\": \"{}\", \
                 \"ns_per_lookup_batch\": {:.2}, \"ns_per_lookup_vectorized\": {:.2}, \
                 \"ns_per_lookup_per_key\": {:.2}, \
                 \"mlookups_per_s\": {:.3}, \"batch_speedup\": {:.3}, \
                 \"pipeline_speedup\": {:.3}, \"mean_cost\": {:.3}}}{comma}",
                c.index,
                c.dataset,
                c.ns_per_lookup_batch,
                c.ns_per_lookup_vectorized,
                c.ns_per_lookup_per_key,
                c.mlookups_per_s,
                c.batch_speedup,
                c.pipeline_speedup,
                c.mean_cost
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`HotpathReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Best-of-rounds timings of one (index, probe-stream) pair through the
/// three serve paths, plus the mean comparison cost.
struct PathTimings {
    per_key: f64,
    batch_depth1: f64,
    vectorized: f64,
    mean_cost: f64,
}

/// Times one (index, probe-stream) pair through the per-key reference
/// path, the sorted-batch path at pipeline depth 1, and the full
/// vectorized default-depth pipeline, with best-of-`rounds` timing and a
/// membership sanity check on the final round.
fn measure(index: &DynIndex, probes: &[Key], batch: usize, rounds: usize) -> PathTimings {
    let mut out: Vec<Lookup> = Vec::new();
    let mut best_per_key = f64::INFINITY;
    let mut best_batch = f64::INFINITY;
    let mut best_vectorized = f64::INFINITY;
    let mut total_cost = 0usize;
    let prev_depth = set_pipeline_depth(0);
    for _ in 0..rounds.max(1) {
        // Per-key reference path (the pre-batching serve loop).
        let start = Instant::now();
        for chunk in probes.chunks(batch) {
            index.lookup_each_into(black_box(chunk), &mut out);
            black_box(&out);
        }
        best_per_key = best_per_key.min(start.elapsed().as_nanos() as f64 / probes.len() as f64);

        // Sorted-batch path, pipeline depth 1: serve each probe as soon
        // as it is planned — the pre-pipelining baseline.
        set_pipeline_depth(1);
        let start = Instant::now();
        for chunk in probes.chunks(batch) {
            index.lookup_batch_into(black_box(chunk), &mut out);
            black_box(&out);
        }
        best_batch = best_batch.min(start.elapsed().as_nanos() as f64 / probes.len() as f64);

        // Full vectorized serve path: default-depth prefetch pipeline.
        set_pipeline_depth(0);
        let start = Instant::now();
        let mut cost = 0usize;
        let mut found = 0usize;
        for chunk in probes.chunks(batch) {
            index.lookup_batch_into(black_box(chunk), &mut out);
            black_box(&out);
            cost += out.iter().map(|r| r.cost).sum::<usize>();
            found += out.iter().filter(|r| r.found).count();
        }
        best_vectorized =
            best_vectorized.min(start.elapsed().as_nanos() as f64 / probes.len() as f64);
        total_cost = cost;
        // Fast-but-wrong must never be recorded as a speedup: every probe
        // is a member key, so every lookup must hit.
        assert_eq!(found, probes.len(), "{}: member probe missed", index.name());
    }
    set_pipeline_depth(prev_depth);
    PathTimings {
        per_key: best_per_key,
        batch_depth1: best_batch,
        vectorized: best_vectorized,
        mean_cost: total_cost as f64 / probes.len() as f64,
    }
}

/// Runs the full hotpath grid: every configured index × {clean, poisoned},
/// probing the clean member keys in a shuffled (cache-unfriendly) order.
pub fn run_hotpath(cfg: &HotpathConfig) -> Result<HotpathReport> {
    if cfg.keys < 2 || cfg.batch == 0 {
        return Err(LisError::Invariant(
            "hotpath needs at least 2 keys and a non-zero batch".into(),
        ));
    }
    let mut rng = trial_rng(cfg.seed, 0);
    let domain = domain_for_density(cfg.keys, 0.1)?;
    let clean = uniform_keys(&mut rng, cfg.keys, domain)?;

    // Algorithm 2 against the registry's ~100-keys-per-leaf victims: the
    // campaign that inflates second-stage error radii, i.e. served cost.
    let num_models = (cfg.keys / 100).max(1);
    let attack = rmi_attack(
        &clean,
        num_models,
        &RmiAttackConfig::new(cfg.poison_pct).with_max_exchanges(num_models.min(64)),
    )?;
    let poisoned = attack.poisoned_keyset(&clean)?;

    // Shuffled member probes: every probe is a clean key (also present in
    // the poisoned keyset — the attack only inserts), so `found` must hold
    // everywhere and clean/poisoned cells measure identical traffic.
    let mut probes: Vec<Key> = clean.keys().to_vec();
    let len = probes.len();
    for i in 0..len {
        let j = (lis_workloads::rng::splitmix64(cfg.seed ^ i as u64) % len as u64) as usize;
        probes.swap(i, j);
    }

    // Bring up the persistent pool before any build or measurement:
    // index training fans out on it, and oversize sharded batches
    // scatter across its workers instead of spawning scoped threads.
    let pool_threads = lis_server::pool::shared().threads();

    let registry = IndexRegistry::with_defaults();
    let mut cells = Vec::new();
    for name in &cfg.indexes {
        if !registry.resolves(name) {
            return Err(LisError::UnknownIndex {
                name: name.clone(),
                available: format!("{}, sharded:<name>:<N>", registry.names().join(", ")),
            });
        }
        for (dataset, ks) in [("clean", &clean), ("poisoned", &poisoned)] {
            let index = registry.build(name, ks)?;
            let t = measure(&index, &probes, cfg.batch, cfg.rounds);
            cells.push(HotpathCell {
                index: name.clone(),
                dataset: dataset.to_string(),
                ns_per_lookup_batch: t.batch_depth1,
                ns_per_lookup_vectorized: t.vectorized,
                ns_per_lookup_per_key: t.per_key,
                mlookups_per_s: 1_000.0 / t.vectorized,
                batch_speedup: t.per_key / t.batch_depth1,
                pipeline_speedup: t.batch_depth1 / t.vectorized,
                mean_cost: t.mean_cost,
            });
        }
    }
    Ok(HotpathReport {
        keys: cfg.keys,
        batch: cfg.batch,
        rounds: cfg.rounds,
        poison_pct: cfg.poison_pct,
        poison_keys: attack.total_poison,
        ratio_loss: attack.rmi_ratio(),
        pool_threads,
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> HotpathConfig {
        HotpathConfig {
            keys: 4_000,
            batch: 256,
            rounds: 1,
            poison_pct: 10.0,
            seed: 7,
            indexes: vec!["rmi".into(), "btree".into(), "sharded:rmi:4".into()],
        }
    }

    #[test]
    fn grid_covers_every_index_and_dataset() {
        let report = run_hotpath(&smoke_config()).unwrap();
        assert_eq!(report.cells.len(), 6);
        for name in ["rmi", "btree", "sharded:rmi:4"] {
            for dataset in ["clean", "poisoned"] {
                let cell = report.cell(name, dataset).expect("cell measured");
                assert!(cell.ns_per_lookup_batch > 0.0);
                assert!(cell.ns_per_lookup_vectorized > 0.0);
                assert!(cell.ns_per_lookup_per_key > 0.0);
                assert!(cell.mlookups_per_s > 0.0);
                assert!(cell.pipeline_speedup > 0.0);
                assert!(cell.mean_cost > 0.0);
            }
        }
        assert!(report.poison_keys > 0);
        assert!(report.pool_threads >= 1, "the run must install the pool");
    }

    #[test]
    fn poisoning_inflates_rmi_cost() {
        // (The btree-barely-moves claim is scale-sensitive — at smoke
        // scale bulk-load boundary effects dominate its log factor — so
        // the full-scale bench, not this unit test, asserts it.)
        let report = run_hotpath(&smoke_config()).unwrap();
        let rmi_clean = report.cell("rmi", "clean").unwrap().mean_cost;
        let rmi_poisoned = report.cell("rmi", "poisoned").unwrap().mean_cost;
        assert!(
            rmi_poisoned > rmi_clean,
            "poisoned rmi cost {rmi_poisoned} vs clean {rmi_clean}"
        );
    }

    #[test]
    fn json_is_well_formed_enough_to_grep() {
        let report = run_hotpath(&smoke_config()).unwrap();
        let json = report.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"index\"").count(), 6);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"bench\": \"hotpath\""));
        assert_eq!(json.matches("\"ns_per_lookup_vectorized\"").count(), 6);
        assert!(json.contains("\"pool_threads\""));
        let table = report.table();
        assert_eq!(table.rows.len(), 6);
    }

    #[test]
    fn rejects_degenerate_configs_and_unknown_indexes() {
        let mut cfg = smoke_config();
        cfg.keys = 1;
        assert!(run_hotpath(&cfg).is_err());
        let mut cfg = smoke_config();
        cfg.indexes = vec!["skiplist".into()];
        assert!(run_hotpath(&cfg).is_err());
    }
}
