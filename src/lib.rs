//! # lis — poisoning attacks on learned index structures
//!
//! Umbrella crate for the reproduction of *"The Price of Tailoring the
//! Index to Your Data: Poisoning Attacks on Learned Index Structures"*
//! (Kornaropoulos, Ren, Tamassia — SIGMOD 2022).
//!
//! Re-exports the four subsystem crates and adds the experiment
//! [`pipeline`]:
//!
//! * [`core`] — the learned-index substrate (CDF regression, RMI,
//!   B+-tree baseline, record store, metrics) and the unified
//!   [`LearnedIndex`](lis_core::index::LearnedIndex) trait layer;
//! * [`poison`] — the paper's attacks behind the
//!   [`Attack`](lis_poison::Attack) trait (optimal single-point, greedy
//!   multi-point, RMI volume allocation, deletion adversaries);
//! * [`defense`] — TRIM adaptation and outlier filters behind the
//!   [`Defense`](lis_defense::Defense) trait;
//! * [`workloads`] — synthetic and simulated-real keysets;
//! * [`server`] — the concurrent serving front end (bounded request
//!   queue, adaptive micro-batcher, worker pool, latency histogram, live
//!   benign/adversarial traffic sources, and the epoch-swapped write
//!   plane with pluggable admission control);
//! * [`online`] — the online attack plane: live Algorithm-2 poisoning
//!   campaigns through the serve path, plus the benign / undefended /
//!   defended harness behind `BENCH_online.json`;
//! * [`pipeline`] — the workload → attack → defense → index → report
//!   builder composing all of the above, measuring through [`server`];
//! * [`hotpath`] — the read-hot-path microbenchmark engine producing the
//!   repo's machine-readable read-path baseline (`BENCH_hotpath.json`);
//! * [`buildpath`] — its build-plane sibling: index-training and
//!   campaign-generation timings, with output-identity verification,
//!   producing `BENCH_build.json`;
//! * [`chaos`] — the robustness ladder: deterministic fault injection
//!   (see [`lis_server::fault`]) against the live server, scored on
//!   availability, correctness under faults, recovery time, and
//!   attack-triggered epoch rollback, producing `BENCH_chaos.json`;
//! * [`durability`] — the durability grid: the write-ahead-log fsync
//!   levels (see [`lis_server::durability`]) under identical load, plus
//!   a kill-and-recover cell, scored on acked-write survival, recovery
//!   time, and replay throughput, producing `BENCH_durability.json`.
//!
//! ## End-to-end example
//!
//! ```
//! use lis::prelude::*;
//!
//! // 1. A uniform keyset — the friendliest case for a learned index.
//! let mut rng = lis::workloads::trial_rng(42, 0);
//! let domain = lis::workloads::domain_for_density(1_000, 0.2).unwrap();
//! let clean = lis::workloads::uniform_keys(&mut rng, 1_000, domain).unwrap();
//!
//! // 2. Poison 10% of it with the greedy CDF attack.
//! let budget = PoisonBudget::percentage(10.0, clean.len()).unwrap();
//! let plan = greedy_poison(&clean, budget).unwrap();
//! assert!(plan.ratio_loss() > 1.0);
//!
//! // 3. Build RMIs over both and compare their loss.
//! let poisoned = plan.poisoned_keyset(&clean).unwrap();
//! let clean_rmi = Rmi::build(&clean, &RmiConfig::linear_root(10)).unwrap();
//! let bad_rmi = Rmi::build(&poisoned, &RmiConfig::linear_root(10)).unwrap();
//! assert!(bad_rmi.rmi_loss() >= clean_rmi.rmi_loss());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use lis_core as core;
pub use lis_defense as defense;
pub use lis_online as online;
pub use lis_poison as poison;
pub use lis_server as server;
pub use lis_workloads as workloads;

pub mod buildpath;
pub mod chaos;
pub mod durability;
pub mod hotpath;
pub mod pipeline;

/// Convenience prelude importing the types used by almost every experiment.
pub mod prelude {
    pub use crate::buildpath::{run_buildpath, BuildpathConfig, BuildpathReport};
    pub use crate::chaos::{
        run_chaos, run_chaos_scenario, ChaosConfig, ChaosReport, ChaosScenarioReport,
    };
    pub use crate::durability::{
        run_durability, DurabilityBenchConfig, DurabilityCellReport, DurabilityReport,
    };
    pub use crate::hotpath::{run_hotpath, HotpathConfig, HotpathReport};
    pub use crate::pipeline::{BuildCache, Pipeline, PipelineReport, WorkloadSpec};
    pub use lis_core::btree::BPlusTree;
    pub use lis_core::index::{DynIndex, IndexRegistry, LearnedIndex, Lookup};
    pub use lis_core::keys::{Key, KeyDomain, KeySet};
    pub use lis_core::linreg::LinearModel;
    pub use lis_core::metrics::{ratio_loss, rmi_ratio_report};
    pub use lis_core::rmi::{Rmi, RmiConfig, Routing};
    pub use lis_core::shard::{ShardConfig, ShardedIndex};
    pub use lis_core::stats::BoxplotSummary;
    pub use lis_defense::{Defense, DefenseOutcome};
    pub use lis_defense::{DensityScreen, SourceRateLimit, TrustedFence};
    pub use lis_online::{run_campaign, run_online, Campaign, CampaignConfig, OnlineConfig};
    pub use lis_poison::{
        greedy_poison, greedy_poison_lazy, optimal_single_point, rmi_attack, Attack, AttackOutcome,
        GreedyPlan, IncrementalOracle, PoisonBudget, RmiAttackConfig, RmiAttackResult,
    };
    pub use lis_server::{
        AdmissionChain, AdmissionPolicy, AdmitAll, BenignSource, LatencyHistogram, MixedSource,
        ReplaySource, ServeConfig, ServeReport, Server, TrafficSource, WriteOp, WriteStatus,
    };
}
