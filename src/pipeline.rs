//! The experiment pipeline: workload → attack → defense → index → report,
//! in one fluent chain.
//!
//! Every figure of the paper — and every scenario the ROADMAP adds — is an
//! instance of the same composition: sample a keyset, let an adversary
//! manipulate it, optionally sanitize it, build one or more victim
//! structures over the result, and measure loss, lookup cost, and memory
//! against the clean baseline. [`Pipeline`] captures that composition over
//! the unified traits ([`LearnedIndex`](lis_core::index::LearnedIndex) via
//! the [`IndexRegistry`], [`Attack`], [`Defense`]), so a new experiment is
//! a few lines instead of a hand-wired harness.
//!
//! Lookups are measured through the serving front end
//! ([`lis_server::Server`]): probes flow through the same bounded queue,
//! micro-batcher, and worker pool that serve live traffic, draining into
//! [`DynIndex::lookup_batch`] — one serve code path for offline
//! experiments and the live harness, with the virtual dispatch amortized
//! over whole batches.
//!
//! ## Example
//!
//! ```
//! use lis::pipeline::{Pipeline, WorkloadSpec};
//! use lis::poison::{GreedyCdfAttack, PoisonBudget};
//!
//! let report = Pipeline::new(WorkloadSpec::Uniform { n: 1_000, density: 0.2 })
//!     .seed(7)
//!     .attack(GreedyCdfAttack { budget: PoisonBudget::keys(100) })
//!     .index("rmi")
//!     .index("btree")
//!     .queries(500)
//!     .run()
//!     .unwrap();
//!
//! let rmi = report.index("rmi").unwrap();
//! let btree = report.index("btree").unwrap();
//! assert!(rmi.all_members_found && btree.all_members_found);
//! // Poisoning hurts the learned index, not the B+-tree baseline.
//! assert!(rmi.cost_ratio() > btree.cost_ratio() * 0.99);
//! ```

use lis_core::error::{LisError, Result};
use lis_core::index::{DynIndex, IndexRegistry};
use lis_core::keys::KeySet;
use lis_core::metrics::{ratio_loss, LookupCostSummary};
use lis_core::Key;
use lis_defense::{evaluate_defense_campaign, Defense, DefenseOutcome, DefenseReport};
use lis_poison::{Attack, AttackOutcome};
use lis_server::{ServeConfig, Server};
use lis_workloads::{
    domain_for_density, lognormal_keys, normal_keys, realsim, trial_rng, uniform_keys, ResultTable,
    DEFAULT_SEED,
};
use rand::Rng;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which keyset the pipeline starts from.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// `n` distinct keys uniform over a domain of density `density`.
    Uniform {
        /// Number of keys.
        n: usize,
        /// Keyset density over the domain, in `(0, 1]`.
        density: f64,
    },
    /// Normal distribution (Figure 8 parameterization).
    Normal {
        /// Number of keys.
        n: usize,
        /// Keyset density over the domain, in `(0, 1]`.
        density: f64,
    },
    /// Log-normal distribution (Figure 6 parameterization).
    LogNormal {
        /// Number of keys.
        n: usize,
        /// Keyset density over the domain, in `(0, 1]`.
        density: f64,
    },
    /// The simulated Miami-Dade salary dataset (Figure 7).
    MiamiSalaries {
        /// Number of keys (capped at the dataset size).
        n: usize,
    },
    /// The simulated OSM school-latitude dataset (Figure 7).
    OsmLatitudes {
        /// Number of keys.
        n: usize,
    },
    /// A caller-supplied keyset (no sampling).
    Fixed(KeySet),
}

impl WorkloadSpec {
    /// Samples the keyset for `(seed, trial)`.
    pub fn sample(&self, seed: u64, trial: u64) -> Result<KeySet> {
        let mut rng = trial_rng(seed, trial);
        match self {
            Self::Uniform { n, density } => {
                uniform_keys(&mut rng, *n, domain_for_density(*n, *density)?)
            }
            Self::Normal { n, density } => {
                normal_keys(&mut rng, *n, domain_for_density(*n, *density)?)
            }
            Self::LogNormal { n, density } => {
                lognormal_keys(&mut rng, *n, domain_for_density(*n, *density)?)
            }
            Self::MiamiSalaries { n } => {
                realsim::miami_salaries_scaled(seed ^ trial, (*n).min(realsim::miami_stats::N))
            }
            Self::OsmLatitudes { n } => realsim::osm_latitudes_scaled(seed ^ trial, *n),
            Self::Fixed(ks) => Ok(ks.clone()),
        }
    }

    /// Short label for report rows.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Uniform { .. } => "uniform",
            Self::Normal { .. } => "normal",
            Self::LogNormal { .. } => "lognormal",
            Self::MiamiSalaries { .. } => "miami-salaries",
            Self::OsmLatitudes { .. } => "osm-latitudes",
            Self::Fixed(_) => "fixed",
        }
    }

    /// A string identifying this workload's *sampled keyset* for a given
    /// parameterization — the workload component of a [`BuildCache`] key.
    /// Two specs with equal cache keys sample identical keysets under the
    /// same `(seed, trial)`. Fixed keysets are fingerprinted by content.
    pub fn cache_key(&self) -> String {
        match self {
            Self::Uniform { n, density } => format!("uniform:{n}:{density}"),
            Self::Normal { n, density } => format!("normal:{n}:{density}"),
            Self::LogNormal { n, density } => format!("lognormal:{n}:{density}"),
            Self::MiamiSalaries { n } => format!("miami-salaries:{n}"),
            Self::OsmLatitudes { n } => format!("osm-latitudes:{n}"),
            Self::Fixed(ks) => {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                ks.keys().hash(&mut h);
                ks.domain().min.hash(&mut h);
                ks.domain().max.hash(&mut h);
                format!("fixed:{:016x}", h.finish())
            }
        }
    }
}

/// Key of one cached clean build: `(workload, seed, trial, index)`.
type BuildKey = (String, u64, u64, String);

/// A cross-run cache of *clean* index builds, keyed by
/// `(workload, seed, trial, index)`.
///
/// [`Pipeline::run`] builds every victim twice — once on the clean keyset
/// (the baseline) and once on the final keyset. The clean build depends
/// only on the workload sample, never on the attack or defense, so sweeps
/// that vary the adversary, the defense, or repeat trials keep paying for
/// identical clean rebuilds. Clone one `BuildCache` into each pipeline of a
/// sweep (clones share storage) and those rebuilds become lookups.
///
/// Entries are keyed by the index's registry *name*, not by the registry
/// that resolved it: every pipeline sharing a cache must resolve each name
/// to the same structure. When sweeping over different
/// [`Pipeline::registry`] configurations that reuse a name, give each
/// registry its own cache (or [`BuildCache::clear`] between sweeps) —
/// otherwise a stale clean baseline is served silently:
///
/// ```
/// use lis::pipeline::{BuildCache, Pipeline, WorkloadSpec};
/// use lis::poison::{GreedyCdfAttack, PoisonBudget, RemovalAttack};
///
/// let cache = BuildCache::new();
/// let spec = WorkloadSpec::Uniform { n: 500, density: 0.2 };
/// for budget in [25, 50] {
///     Pipeline::new(spec.clone())
///         .attack(GreedyCdfAttack { budget: PoisonBudget::keys(budget) })
///         .index("rmi")
///         .queries(100)
///         .cache(cache.clone())
///         .run()
///         .unwrap();
/// }
/// assert_eq!(cache.len(), 1); // one clean rmi build served both runs
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Clone, Default)]
pub struct BuildCache {
    entries: Arc<Mutex<HashMap<BuildKey, Arc<DynIndex>>>>,
    hits: Arc<AtomicUsize>,
    misses: Arc<AtomicUsize>,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached builds.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("build cache poisoned").len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to build.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached build (e.g. between sweeps over different
    /// registries).
    pub fn clear(&self) {
        self.entries.lock().expect("build cache poisoned").clear();
    }

    /// Returns the cached build for `key` (and whether it was a hit),
    /// constructing and inserting it with `build` on a miss. The build
    /// runs outside the lock, so concurrent victims never serialize on
    /// each other's construction.
    fn get_or_build(
        &self,
        key: BuildKey,
        build: impl FnOnce() -> Result<DynIndex>,
    ) -> Result<(Arc<DynIndex>, bool)> {
        if let Some(hit) = self.entries.lock().expect("build cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(hit), true));
        }
        let built = Arc::new(build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok((
            Arc::clone(
                self.entries
                    .lock()
                    .expect("build cache poisoned")
                    .entry(key)
                    .or_insert(built),
            ),
            false,
        ))
    }
}

impl std::fmt::Debug for BuildCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuildCache")
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// Per-victim measurements of one pipeline run.
#[derive(Debug, Clone)]
pub struct IndexReport {
    /// Registry name of the victim structure.
    pub name: String,
    /// Training loss of the index built on the clean keyset.
    pub clean_loss: f64,
    /// Training loss of the index built on the final (attacked/defended)
    /// keyset.
    pub final_loss: f64,
    /// Lookup-cost summary on the clean build.
    pub clean_cost: LookupCostSummary,
    /// Lookup-cost summary on the final build, over the same probe keys.
    pub final_cost: LookupCostSummary,
    /// Estimated resident bytes of the final build.
    pub memory_bytes: usize,
    /// Estimated resident bytes of the clean build.
    pub clean_memory_bytes: usize,
    /// Whether every probed member key was found in both builds.
    pub all_members_found: bool,
    /// Wall-clock nanoseconds spent building the final (attacked/defended)
    /// index — the build-plane cost this victim paid in this run.
    pub final_build_ns: u64,
    /// Wall-clock nanoseconds spent obtaining the clean baseline build: a
    /// cold build's full training time, or the (near-zero) cache lookup
    /// when [`BuildCache`] served it.
    pub clean_build_ns: u64,
    /// Whether the clean baseline came out of the shared [`BuildCache`]
    /// (so `clean_build_ns` measured a lookup, not a build).
    pub clean_build_cached: bool,
}

impl IndexReport {
    /// Ratio Loss of the victim's model(s): `final / clean`. Model-free
    /// structures (both losses zero) report 1.0 — nothing degraded.
    pub fn loss_ratio(&self) -> f64 {
        if self.final_loss == 0.0 && self.clean_loss == 0.0 {
            return 1.0;
        }
        ratio_loss(self.final_loss, self.clean_loss)
    }

    /// Lookup-cost inflation: mean final cost over mean clean cost.
    pub fn cost_ratio(&self) -> f64 {
        self.final_cost.mean / self.clean_cost.mean.max(f64::MIN_POSITIVE)
    }

    /// Memory inflation: final bytes over clean bytes (the PLA attack's
    /// target metric).
    pub fn memory_ratio(&self) -> f64 {
        self.memory_bytes as f64 / (self.clean_memory_bytes as f64).max(1.0)
    }
}

/// Everything one pipeline run produced.
#[derive(Debug)]
pub struct PipelineReport {
    /// Workload label.
    pub workload: String,
    /// The sampled clean keyset.
    pub clean: KeySet,
    /// Attack name, when an attack ran.
    pub attack_name: Option<String>,
    /// The attack's outcome, when one ran.
    pub attack: Option<AttackOutcome>,
    /// Defense name, when a defense ran.
    pub defense_name: Option<String>,
    /// The defense's outcome, when one ran.
    pub defense: Option<DefenseOutcome>,
    /// Ground-truth defense scoring — present whenever both an attack and a
    /// defense ran, covering insertion, deletion, and mixed campaigns (via
    /// [`evaluate_defense_campaign`]).
    pub defense_report: Option<DefenseReport>,
    /// The keyset the final indexes were built on.
    pub final_keyset: KeySet,
    /// One report per requested index.
    pub indexes: Vec<IndexReport>,
    /// Number of member-key probes per build.
    pub probes: usize,
}

impl PipelineReport {
    /// The report for a named index, if requested.
    pub fn index(&self, name: &str) -> Option<&IndexReport> {
        self.indexes.iter().find(|r| r.name == name)
    }

    /// Renders the per-index measurements as an alignable table.
    pub fn table(&self) -> ResultTable {
        let mut table = ResultTable::new(
            "pipeline",
            &[
                "index",
                "clean_loss",
                "final_loss",
                "loss_ratio",
                "clean_cost",
                "final_cost",
                "cost_ratio",
                "mem_ratio",
                "build_ms",
                "clean_build",
                "members_ok",
            ],
        );
        for r in &self.indexes {
            table.push_row([
                r.name.clone(),
                format!("{:.4}", r.clean_loss),
                format!("{:.4}", r.final_loss),
                format!("{:.2}", r.loss_ratio()),
                format!("{:.2}", r.clean_cost.mean),
                format!("{:.2}", r.final_cost.mean),
                format!("{:.2}", r.cost_ratio()),
                format!("{:.2}", r.memory_ratio()),
                format!("{:.2}", r.final_build_ns as f64 / 1e6),
                if r.clean_build_cached {
                    "cached".to_string()
                } else {
                    format!("{:.2}ms", r.clean_build_ns as f64 / 1e6)
                },
                r.all_members_found.to_string(),
            ]);
        }
        table
    }

    /// A multi-line human-readable summary (workload, attack, defense, and
    /// the per-index table).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("workload: {} — {}\n", self.workload, self.clean));
        match (&self.attack_name, &self.attack) {
            (Some(name), Some(a)) => out.push_str(&format!(
                "attack:   {name} — {} inserted, {} removed, ratio loss {:.2}x\n",
                a.inserted.len(),
                a.removed.len(),
                a.ratio_loss()
            )),
            _ => out.push_str("attack:   none\n"),
        }
        match (&self.defense_name, &self.defense) {
            (Some(name), Some(d)) => {
                out.push_str(&format!(
                    "defense:  {name} — removed {} keys",
                    d.removed.len()
                ));
                if let Some(rep) = &self.defense_report {
                    out.push_str(&format!(
                        " (recall {:.0}%, precision {:.0}%, recovery {:.0}%)",
                        100.0 * rep.poison_recall,
                        100.0 * rep.removal_precision,
                        100.0 * rep.recovery()
                    ));
                }
                out.push('\n');
            }
            _ => out.push_str("defense:  none\n"),
        }
        out.push_str(&format!("probes:   {} member keys\n\n", self.probes));
        out.push_str(&self.table().render());
        out
    }
}

/// Builder composing one experiment end to end. See the module docs for an
/// example.
pub struct Pipeline {
    workload: WorkloadSpec,
    seed: u64,
    trial: u64,
    attack: Option<Box<dyn Attack>>,
    defense: Option<Box<dyn Defense>>,
    index_names: Vec<String>,
    registry: IndexRegistry,
    queries: usize,
    cache: Option<BuildCache>,
}

impl Pipeline {
    /// Starts a pipeline over a workload. Defaults: seed
    /// [`DEFAULT_SEED`], trial 0, no attack, no defense, 2,000 probes, the
    /// default index registry, and — until [`Pipeline::index`] is called —
    /// an empty victim list.
    pub fn new(workload: WorkloadSpec) -> Self {
        Self {
            workload,
            seed: DEFAULT_SEED,
            trial: 0,
            attack: None,
            defense: None,
            index_names: Vec::new(),
            registry: IndexRegistry::with_defaults(),
            queries: 2_000,
            cache: None,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the trial number (independent re-run under the same seed).
    pub fn trial(mut self, trial: u64) -> Self {
        self.trial = trial;
        self
    }

    /// Mounts an attack between workload and index build.
    pub fn attack(mut self, attack: impl Attack + 'static) -> Self {
        self.attack = Some(Box::new(attack));
        self
    }

    /// Runs a defense over the attacked keyset before the index build.
    pub fn defense(mut self, defense: impl Defense + 'static) -> Self {
        self.defense = Some(Box::new(defense));
        self
    }

    /// Adds a victim index by registry name (callable repeatedly).
    pub fn index(mut self, name: &str) -> Self {
        self.index_names.push(name.to_string());
        self
    }

    /// Adds several victim indexes by registry name.
    pub fn indexes<'a>(mut self, names: impl IntoIterator<Item = &'a str>) -> Self {
        self.index_names.extend(names.into_iter().map(String::from));
        self
    }

    /// Replaces the index registry (to supply custom configurations).
    ///
    /// [`BuildCache`] entries are keyed by index *name*: if a custom
    /// registry redefines a name, do not share a cache with pipelines using
    /// a different registry (see the [`BuildCache`] docs).
    pub fn registry(mut self, registry: IndexRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the number of member-key probes per index build. Must be
    /// non-zero — [`Pipeline::run`] rejects a zero-probe pipeline with
    /// [`LisError::Invariant`] instead of silently probing anyway.
    pub fn queries(mut self, count: usize) -> Self {
        self.queries = count;
        self
    }

    /// Shares a [`BuildCache`] with this run: clean builds are looked up by
    /// `(workload, seed, trial, index)` and only constructed on a miss.
    /// Clone the same cache into every pipeline of a sweep — provided they
    /// all resolve index names through equivalent registries (see the
    /// [`BuildCache`] docs).
    pub fn cache(mut self, cache: BuildCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Runs the composition: sample → attack → defend → build → measure.
    ///
    /// Per-victim builds and measurements run concurrently on scoped
    /// threads (every structure in the workspace is `Send + Sync`), and
    /// *within* each victim the model-based builds fan their own training
    /// out too (RMI leaf fits, deep-RMI stage fits — see
    /// [`lis_core::par`]); clean builds are served from the shared
    /// [`BuildCache`] when one is mounted, and per-victim build times and
    /// cache hits are reported in each [`IndexReport`]. Probe measurements flow through the concurrent serving
    /// front end ([`lis_server::Server`]), and a panicking victim build
    /// surfaces as [`LisError::Invariant`] instead of crashing the run.
    pub fn run(self) -> Result<PipelineReport> {
        if self.index_names.is_empty() {
            return Err(LisError::Invariant(
                "pipeline needs at least one index (call .index(name))".into(),
            ));
        }
        if self.queries == 0 {
            return Err(LisError::Invariant(
                "pipeline needs at least one probe (queries(0) measures nothing)".into(),
            ));
        }
        let clean = self.workload.sample(self.seed, self.trial)?;

        // Attack.
        let (attack_name, attack_outcome) = match &self.attack {
            Some(attack) => (Some(attack.name().to_string()), Some(attack.run(&clean)?)),
            None => (None, None),
        };
        let suspect = attack_outcome
            .as_ref()
            .map(|a| a.poisoned.clone())
            .unwrap_or_else(|| clean.clone());

        // Defense.
        let (defense_name, defense_outcome) = match &self.defense {
            Some(defense) => (
                Some(defense.name().to_string()),
                Some(defense.sanitize(&suspect)?),
            ),
            None => (None, None),
        };
        let defense_report = match (&defense_outcome, &attack_outcome) {
            (Some(d), Some(a)) => Some(evaluate_defense_campaign(
                &clean,
                &a.inserted,
                &a.removed,
                &d.retained,
            )?),
            _ => None,
        };
        let final_keyset = defense_outcome
            .as_ref()
            .map(|d| d.retained.clone())
            .unwrap_or(suspect);

        // Probe keys: legitimate keys that survived the whole pipeline, so
        // both builds must answer them and costs are comparable.
        let survivors: Vec<Key> = final_keyset
            .keys()
            .iter()
            .copied()
            .filter(|&k| clean.contains(k))
            .collect();
        if survivors.is_empty() {
            return Err(LisError::Invariant(
                "no legitimate key survived the pipeline".into(),
            ));
        }
        let mut rng = trial_rng(self.seed ^ 0x51ED_BEEF, self.trial);
        let probes: Vec<Key> = (0..self.queries)
            .map(|_| survivors[rng.gen_range(0..survivors.len())])
            .collect();

        // Build and measure every distinct victim on a bounded scoped
        // thread pool: repeated names are measured once (builds are
        // deterministic, so their rows are identical), and at most
        // available-parallelism workers run — a sharded victim's own
        // fan-out multiplies per *running* worker, not per requested name.
        let cache = self.cache.clone().unwrap_or_default();
        let workload_key = self.workload.cache_key();
        let mut unique: Vec<&String> = Vec::new();
        for name in &self.index_names {
            if !unique.contains(&name) {
                unique.push(name);
            }
        }
        let measure = |name: &String| -> Result<IndexReport> {
            let clean_started = std::time::Instant::now();
            let (clean_idx, clean_cached) = cache.get_or_build(
                (workload_key.clone(), self.seed, self.trial, name.clone()),
                || self.registry.build(name, &clean),
            )?;
            let clean_build_ns = clean_started.elapsed().as_nanos() as u64;
            let final_started = std::time::Instant::now();
            let final_idx = Arc::new(self.registry.build(name, &final_keyset)?);
            let final_build_ns = final_started.elapsed().as_nanos() as u64;
            let clean_costs = served_costs(&clean_idx, &probes)?;
            let final_costs = served_costs(&final_idx, &probes)?;
            Ok(IndexReport {
                name: name.clone(),
                clean_loss: clean_idx.loss(),
                final_loss: final_idx.loss(),
                all_members_found: clean_costs.1 && final_costs.1,
                clean_cost: clean_costs.0,
                final_cost: final_costs.0,
                memory_bytes: final_idx.memory_bytes(),
                clean_memory_bytes: clean_idx.memory_bytes(),
                final_build_ns,
                clean_build_ns,
                clean_build_cached: clean_cached,
            })
        };
        // A panicking victim build (a buggy custom registry entry, a bug in
        // a structure) is reported as `LisError::Invariant` for that name
        // instead of poisoning the whole run.
        let measure_caught = |name: &String| -> (String, Result<IndexReport>) {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| measure(name)))
                .unwrap_or_else(|payload| {
                    Err(LisError::Invariant(format!(
                        "victim build for '{name}' panicked: {}",
                        panic_message(payload.as_ref())
                    )))
                });
            (name.clone(), result)
        };
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(unique.len())
            .max(1);
        let measured: Vec<(String, Result<IndexReport>)> = if workers <= 1 {
            unique.iter().map(|name| measure_caught(name)).collect()
        } else {
            let per_worker = unique.len().div_ceil(workers);
            // lis-analysis: allow(thread-discipline) — index *training*
            // fan-out: each worker owns a group of whole index builds
            // returning owned reports, outside `par::map_chunks`'s
            // borrowed-slice mapping shape.
            std::thread::scope(|scope| {
                let measure_caught = &measure_caught;
                let handles: Vec<_> = unique
                    .chunks(per_worker)
                    .map(|group| {
                        let handle = scope.spawn(move || {
                            // The victim fan-out owns the parallelism
                            // budget here: builds running on this worker
                            // (RMI leaf fits, sharded shard builds) must
                            // not spawn a second layer of workers.
                            let _guard = lis_core::par::enter_fanout_worker();
                            group
                                .iter()
                                .map(|name| measure_caught(name))
                                .collect::<Vec<_>>()
                        });
                        (group, handle)
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|(group, handle)| match handle.join() {
                        Ok(rows) => rows,
                        // Panics are caught per victim above; a panic that
                        // still escapes the worker (e.g. in the harness
                        // itself) is charged to every name in its group.
                        Err(payload) => {
                            let msg = panic_message(payload.as_ref());
                            group
                                .iter()
                                .map(|name| {
                                    (
                                        (*name).clone(),
                                        Err(LisError::Invariant(format!(
                                            "victim build worker panicked: {msg}"
                                        ))),
                                    )
                                })
                                .collect()
                        }
                    })
                    .collect()
            })
        };
        let mut by_name = HashMap::with_capacity(measured.len());
        for (name, report) in measured {
            by_name.insert(name, report?);
        }
        let indexes: Vec<IndexReport> = self
            .index_names
            .iter()
            .map(|name| by_name.get(name).expect("measured above").clone())
            .collect();

        Ok(PipelineReport {
            workload: self.workload.label().to_string(),
            clean,
            attack_name,
            attack: attack_outcome,
            defense_name,
            defense: defense_outcome,
            defense_report,
            final_keyset,
            indexes,
            probes: probes.len(),
        })
    }
}

/// Serves the probe set through the concurrent front end — the same
/// bounded-queue → micro-batcher → worker-pool path live traffic takes —
/// and returns the cost summary plus whether every probe was found. An
/// empty probe set is propagated as an error rather than asserted away.
fn served_costs(index: &Arc<DynIndex>, probes: &[Key]) -> Result<(LookupCostSummary, bool)> {
    let server = Server::start(Arc::clone(index), ServeConfig::offline());
    let results = server.serve_all(probes)?;
    server.shutdown();
    let costs: Vec<usize> = results.iter().map(|r| r.cost).collect();
    let all_found = results.iter().all(|r| r.found);
    let summary = LookupCostSummary::from_counts(&costs).ok_or_else(|| {
        LisError::Invariant("lookup batch over an empty probe set has no cost summary".into())
    })?;
    Ok((summary, all_found))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_defense::TrimDefense;
    use lis_poison::{GreedyCdfAttack, PoisonBudget, RemovalAttack};

    #[test]
    fn pipeline_requires_an_index() {
        let err = Pipeline::new(WorkloadSpec::Uniform {
            n: 100,
            density: 0.2,
        })
        .run();
        assert!(err.is_err());
    }

    #[test]
    fn clean_pipeline_reports_unit_ratios() {
        let report = Pipeline::new(WorkloadSpec::Uniform {
            n: 500,
            density: 0.2,
        })
        .seed(3)
        .index("rmi")
        .index("btree")
        .queries(200)
        .run()
        .unwrap();
        assert_eq!(report.indexes.len(), 2);
        for idx in &report.indexes {
            assert!(idx.all_members_found, "{}", idx.name);
            assert!((idx.cost_ratio() - 1.0).abs() < 1e-9, "{}", idx.name);
        }
        assert!(report.attack.is_none() && report.defense.is_none());
    }

    #[test]
    fn attack_inflates_learned_cost_not_btree() {
        let report = Pipeline::new(WorkloadSpec::Uniform {
            n: 2_000,
            density: 0.15,
        })
        .seed(5)
        .attack(GreedyCdfAttack {
            budget: PoisonBudget::keys(200),
        })
        .index("rmi")
        .index("btree")
        .queries(1_000)
        .run()
        .unwrap();
        let rmi = report.index("rmi").unwrap();
        let btree = report.index("btree").unwrap();
        assert!(rmi.all_members_found && btree.all_members_found);
        assert!(
            rmi.loss_ratio() > 1.0,
            "rmi loss ratio {}",
            rmi.loss_ratio()
        );
        // The B+-tree fits no model: loss stays zero either way.
        assert_eq!(btree.final_loss, 0.0);
    }

    #[test]
    fn defense_stage_reports_ground_truth() {
        let n = 800;
        let report = Pipeline::new(WorkloadSpec::Uniform { n, density: 0.1 })
            .seed(6)
            .attack(GreedyCdfAttack {
                budget: PoisonBudget::keys(80),
            })
            .defense(TrimDefense::keys(n))
            .index("rmi")
            .queries(300)
            .run()
            .unwrap();
        let rep = report
            .defense_report
            .expect("insertion attack + defense => report");
        assert!((0.0..=1.0).contains(&rep.poison_recall));
        assert_eq!(report.final_keyset.len(), n);
        assert!(report.render().contains("defense:  trim"));
    }

    #[test]
    fn removal_attack_scores_defense_ground_truth() {
        let report = Pipeline::new(WorkloadSpec::Uniform {
            n: 400,
            density: 0.2,
        })
        .seed(8)
        .attack(RemovalAttack { count: 40 })
        .defense(TrimDefense::fraction(1.0))
        .index("btree")
        .queries(100)
        .run()
        .unwrap();
        // A deletion campaign no longer drops the ground truth on the
        // floor: the report scores the defense against the suspect set the
        // attacker actually produced.
        let rep = report
            .defense_report
            .expect("deletion campaign + defense => report");
        assert_eq!(rep.attack_removed, 40);
        assert_eq!(rep.poison_seen, 0);
        assert_eq!(rep.poison_recall, 1.0);
        assert_eq!(report.final_keyset.len(), 360);
        assert!(report.index("btree").unwrap().all_members_found);
    }

    #[test]
    fn mixed_attack_scores_defense_ground_truth() {
        use lis_poison::MixedAttack;
        let n = 500;
        let report = Pipeline::new(WorkloadSpec::Uniform { n, density: 0.15 })
            .seed(11)
            .attack(MixedAttack {
                budget: PoisonBudget::keys(50),
            })
            .defense(TrimDefense::keys(n))
            .index("rmi")
            .queries(200)
            .run()
            .unwrap();
        let rep = report.defense_report.expect("mixed campaign => report");
        let attack = report.attack.as_ref().unwrap();
        assert_eq!(rep.poison_seen, attack.inserted.len());
        assert_eq!(rep.attack_removed, attack.removed.len());
        assert!((0.0..=1.0).contains(&rep.poison_recall));
        assert!((0.0..=1.0).contains(&rep.removal_precision));
    }

    #[test]
    fn zero_queries_is_an_invariant_error() {
        let err = Pipeline::new(WorkloadSpec::Uniform {
            n: 200,
            density: 0.2,
        })
        .index("btree")
        .queries(0)
        .run();
        assert!(matches!(err, Err(LisError::Invariant(_))), "{err:?}");
    }

    #[test]
    fn sharded_victims_flow_through_the_pipeline() {
        let report = Pipeline::new(WorkloadSpec::Uniform {
            n: 1_000,
            density: 0.2,
        })
        .seed(13)
        .attack(GreedyCdfAttack {
            budget: PoisonBudget::keys(100),
        })
        .index("rmi")
        .index("sharded:rmi:8")
        .queries(500)
        .run()
        .unwrap();
        let sharded = report.index("sharded:rmi:8").unwrap();
        let plain = report.index("rmi").unwrap();
        assert!(sharded.all_members_found && plain.all_members_found);
        assert!(sharded.loss_ratio() > 1.0);
    }

    #[test]
    fn repeated_index_names_measure_once_but_report_per_request() {
        let cache = BuildCache::new();
        let report = Pipeline::new(WorkloadSpec::Uniform {
            n: 300,
            density: 0.2,
        })
        .index("btree")
        .index("btree")
        .queries(100)
        .cache(cache.clone())
        .run()
        .unwrap();
        assert_eq!(report.indexes.len(), 2);
        assert_eq!(cache.misses(), 1);
        assert_eq!(report.indexes[0].clean_cost, report.indexes[1].clean_cost);
    }

    #[test]
    fn build_times_and_cache_hits_are_reported_per_victim() {
        let spec = WorkloadSpec::Uniform {
            n: 400,
            density: 0.2,
        };
        let cache = BuildCache::new();
        let run = || {
            Pipeline::new(spec.clone())
                .seed(17)
                .index("rmi")
                .queries(100)
                .cache(cache.clone())
                .run()
                .unwrap()
        };
        let cold = run();
        let rmi = cold.index("rmi").unwrap();
        assert!(rmi.final_build_ns > 0);
        assert!(rmi.clean_build_ns > 0);
        assert!(!rmi.clean_build_cached, "first run must build cold");
        let warm = run();
        let rmi = warm.index("rmi").unwrap();
        assert!(
            rmi.clean_build_cached,
            "second run must serve the clean baseline from the cache"
        );
        let rendered = warm.table().render();
        assert!(rendered.contains("build_ms"), "{rendered}");
        assert!(rendered.contains("cached"), "{rendered}");
    }

    #[test]
    fn build_cache_yields_identical_reports_across_trials() {
        let spec = WorkloadSpec::Uniform {
            n: 600,
            density: 0.2,
        };
        let cache = BuildCache::new();
        let run = |trial: u64, cache: Option<BuildCache>| {
            let mut p = Pipeline::new(spec.clone())
                .seed(21)
                .trial(trial)
                .attack(GreedyCdfAttack {
                    budget: PoisonBudget::keys(60),
                })
                .index("rmi")
                .index("btree")
                .queries(300);
            if let Some(c) = cache {
                p = p.cache(c);
            }
            p.run().unwrap()
        };
        for trial in 0..3 {
            let cached = run(trial, Some(cache.clone()));
            let uncached = run(trial, None);
            for (a, b) in cached.indexes.iter().zip(&uncached.indexes) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.clean_loss, b.clean_loss, "trial {trial} {}", a.name);
                assert_eq!(a.final_loss, b.final_loss, "trial {trial} {}", a.name);
                assert_eq!(a.clean_cost, b.clean_cost, "trial {trial} {}", a.name);
                assert_eq!(a.final_cost, b.final_cost, "trial {trial} {}", a.name);
                assert_eq!(a.memory_bytes, b.memory_bytes);
                assert_eq!(a.clean_memory_bytes, b.clean_memory_bytes);
            }
        }
        // 3 trials x 2 indexes, each built exactly once...
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.misses(), 6);
        // ...and a repeated trial is served entirely from the cache.
        let before = cache.hits();
        run(0, Some(cache.clone()));
        assert_eq!(cache.hits(), before + 2);
        assert_eq!(cache.len(), 6);
    }

    #[test]
    fn panicking_victim_build_is_an_error_not_a_crash() {
        let mut registry = IndexRegistry::with_defaults();
        registry.register("panicker", "always panics", |_| {
            panic!("intentional build panic")
        });
        let err = Pipeline::new(WorkloadSpec::Uniform {
            n: 200,
            density: 0.2,
        })
        .registry(registry)
        .index("btree")
        .index("panicker")
        .queries(50)
        .run();
        match err {
            Err(LisError::Invariant(msg)) => {
                assert!(
                    msg.contains("panicker") && msg.contains("intentional build panic"),
                    "{msg}"
                );
            }
            other => panic!("expected Invariant error, got {other:?}"),
        }
    }

    #[test]
    fn every_workload_spec_samples() {
        for spec in [
            WorkloadSpec::Uniform {
                n: 300,
                density: 0.2,
            },
            WorkloadSpec::Normal {
                n: 300,
                density: 0.2,
            },
            WorkloadSpec::LogNormal {
                n: 300,
                density: 0.2,
            },
            WorkloadSpec::MiamiSalaries { n: 300 },
            WorkloadSpec::OsmLatitudes { n: 300 },
        ] {
            let ks = spec.sample(1, 0).unwrap();
            assert_eq!(ks.len(), 300, "{}", spec.label());
        }
    }

    #[test]
    fn fixed_workload_is_passed_through() {
        let ks = KeySet::from_keys((0..200u64).map(|i| i * 5).collect()).unwrap();
        let report = Pipeline::new(WorkloadSpec::Fixed(ks.clone()))
            .index("pla")
            .queries(50)
            .run()
            .unwrap();
        assert_eq!(report.clean, ks);
        assert!(report.index("pla").unwrap().all_members_found);
    }
}
