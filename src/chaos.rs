//! The chaos scenario ladder: deterministic fault injection against the
//! live server, scored on availability, correctness, and recovery.
//!
//! Robustness claims are cheap; this module makes them measurable. Each
//! scenario runs one server lifetime under a seeded fault schedule (see
//! `lis_server::fault`) while closed-loop clients ride out the faults
//! with bounded retry/backoff, and scores three things:
//!
//! * **availability** — the fraction of benign requests answered within
//!   the client retry budget;
//! * **correctness** — every answered request must return the *same
//!   result a fault-free run would* (reads are checked against direct
//!   index answers, writes against final membership);
//! * **recovery** — after the injector is disarmed, how long until a
//!   clean closed-loop sweep completes with zero failures.
//!
//! The ladder (see [`SCENARIOS`]) climbs one fault class at a time:
//! `baseline` (no faults — the control), `worker-panic` (serve workers
//! die mid-batch and are respawned under supervision), `queue-saturation`
//! (injected latency spikes engage deadline-aware load shedding),
//! `delayed-publish` (epoch publication stalls; readers pin the previous
//! epoch), `writer-crash` (the writer dies with writes queued and
//! rebuilds from the authoritative keyset), `rollback` (an
//! Algorithm-2 poisoning campaign degrades serving cost until the
//! [`CostDriftMonitor`](lis_defense::CostDriftMonitor) triggers epoch
//! rollback to the trusted checkpoint), `kill-recover` (a
//! SIGKILL-equivalent storage fault drops the durable write plane
//! mid-load; the server is shut down and *recovered from disk* into a
//! fresh server — every acked write must survive, no un-acked write may
//! half-apply), and `torn-tail` (the process dies inside a WAL append:
//! recovery truncates the torn record and keeps the acked prefix, and a
//! mid-log bit flip is *refused* as corruption rather than replayed).
//!
//! Every schedule derives from one seed (`LIS_CHAOS_SEED` overrides it),
//! so a failing ladder run reproduces exactly. The `chaos` bench commits
//! the resulting `BENCH_chaos.json`; its gates (availability ≥ 99%, zero
//! mismatches, bounded recovery, rollback restoring mean lookup cost to
//! ≤ 1.01× the pre-campaign baseline) arm at full scale and are relaxed
//! for CI smoke runs — see [`ChaosScenarioReport::violations`].

use lis_core::error::{LisError, Result};
use lis_core::index::IndexRegistry;
use lis_core::keys::{Key, KeySet};
use lis_defense::CostDriftMonitor;
use lis_online::{run_campaign, Campaign, CampaignConfig};
use lis_server::fault::FaultConfig;
use lis_server::{
    AdmitAll, Durability, FaultInjector, RetryPolicy, ServeConfig, ServeReport, Server,
    ServerHandle, WriteOp, WriteStatus, WriteTicket,
};
use lis_workloads::{domain_for_density, trial_rng, uniform_keys};
use rand::Rng;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The scenario ladder, in run order.
pub const SCENARIOS: [&str; 8] = [
    "baseline",
    "worker-panic",
    "queue-saturation",
    "delayed-publish",
    "writer-crash",
    "rollback",
    "kill-recover",
    "torn-tail",
];

/// Source id the rollback scenario's campaign writes under.
const ADVERSARY_SOURCE: u64 = 1_000;
/// In-flight window for pipelined write driving.
const WRITE_WINDOW: usize = 32;
/// Probes in the post-disarm recovery sweep.
const RECOVERY_SWEEP: usize = 2_000;

/// Scale and shape of one [`run_chaos`] ladder.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Victim keyset size.
    pub keys: usize,
    /// Keyset density `n / |domain|`.
    pub density: f64,
    /// Registry name of the victim index.
    pub index: String,
    /// Benign read requests per scenario.
    pub requests: usize,
    /// Benign writes in the write-plane scenarios.
    pub writes: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Serving worker threads.
    pub workers: usize,
    /// Master fault-schedule seed (see
    /// [`seed_from_env`](lis_server::seed_from_env) / `LIS_CHAOS_SEED`).
    pub seed: u64,
    /// Poison budget of the rollback scenario's campaign (`φ·100`).
    pub poison_percent: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            keys: 100_000,
            density: 0.1,
            index: "rmi".into(),
            requests: 40_000,
            writes: 512,
            clients: 4,
            workers: 2,
            seed: lis_server::seed_from_env(0xC4A0_5EED),
            poison_percent: 10.0,
        }
    }
}

/// Outcome of one scenario (one server lifetime under one fault class).
#[derive(Debug, Clone)]
pub struct ChaosScenarioReport {
    /// Scenario name (see [`SCENARIOS`]).
    pub name: String,
    /// Benign read requests attempted.
    pub requests: usize,
    /// Requests answered within the retry budget.
    pub answered: usize,
    /// Answered requests whose result differed from the fault-free
    /// reference (must be zero: faults may cost retries, never wrong
    /// answers).
    pub mismatches: usize,
    /// Retry attempts spent across all requests.
    pub retries: u64,
    /// Writes driven through the pipelined retry loop.
    pub writes_submitted: usize,
    /// Writes acknowledged applied.
    pub writes_acked: usize,
    /// Writes lost to a terminal failure (must be zero).
    pub writes_lost: usize,
    /// Applied writes no longer (or never) visible when verified after
    /// the drive (must be zero outside the rollback scenario, where
    /// quarantine makes losing them the *point*).
    pub writes_missing: usize,
    /// Faults the injector actually fired.
    pub faults_fired: u64,
    /// Post-disarm clean-sweep duration.
    pub recovery_ms: f64,
    /// Failures during the recovery sweep (must be zero).
    pub recovery_failures: usize,
    /// Mean lookup cost before the campaign (rollback scenario only).
    pub pre_mean_cost: f64,
    /// Mean lookup cost after recovery (rollback scenario only).
    pub post_mean_cost: f64,
    /// WAL ops replayed on top of the snapshot during recovery (durable
    /// scenarios only).
    pub replayed_ops: usize,
    /// Torn-tail bytes recovery truncated (durable scenarios only).
    pub truncated_bytes: u64,
    /// Whether the recovered state matched the live timeline exactly:
    /// base ∪ acked ⊆ recovered ⊆ base ∪ submitted, deterministically
    /// across repeated recoveries (`true` for non-durable scenarios).
    pub recovered_ok: bool,
    /// Whether recovery *refused* the injected mid-log bit flip with a
    /// corruption error (torn-tail scenario only).
    pub corruption_detected: bool,
    /// The server's own final report (shed/restart/rollback counters,
    /// latency, timeline).
    pub serve: ServeReport,
}

impl ChaosScenarioReport {
    /// Fraction of benign requests answered within the retry budget.
    pub fn availability(&self) -> f64 {
        if self.requests == 0 {
            return 1.0;
        }
        self.answered as f64 / self.requests as f64
    }

    /// Post-recovery cost over the pre-campaign baseline (1.0 when the
    /// scenario measured no cost phases).
    pub fn rollback_ratio(&self) -> f64 {
        if self.pre_mean_cost <= 0.0 {
            return 1.0;
        }
        self.post_mean_cost / self.pre_mean_cost
    }

    /// The ladder's structural gates, as a list of violations (empty =
    /// the scenario holds). Scale-dependent gates arm only when the run
    /// is big enough to make them statistically meaningful; the
    /// always-on core is *correctness*: zero mismatches, zero lost
    /// writes, zero recovery failures.
    pub fn violations(&self, cfg: &ChaosConfig) -> Vec<String> {
        let mut out = Vec::new();
        if self.mismatches > 0 {
            out.push(format!(
                "{}: {} answered requests diverged from the fault-free reference",
                self.name, self.mismatches
            ));
        }
        if self.writes_lost > 0 {
            out.push(format!(
                "{}: {} writes lost to terminal failures",
                self.name, self.writes_lost
            ));
        }
        if self.writes_missing > 0 && self.name != "rollback" {
            out.push(format!(
                "{}: {} acked writes not visible after the drive",
                self.name, self.writes_missing
            ));
        }
        if self.recovery_failures > 0 {
            out.push(format!(
                "{}: {} failures in the post-disarm recovery sweep",
                self.name, self.recovery_failures
            ));
        }
        if self.recovery_ms >= 5_000.0 {
            out.push(format!(
                "{}: recovery took {:.0}ms (bound 5000ms)",
                self.name, self.recovery_ms
            ));
        }
        if matches!(self.name.as_str(), "kill-recover" | "torn-tail") && !self.recovered_ok {
            out.push(format!(
                "{}: recovered state diverges from the live timeline",
                self.name
            ));
        }
        if self.name == "torn-tail" && !self.corruption_detected {
            out.push("torn-tail: mid-log bit-flip corruption was not refused".into());
        }
        let at_scale = cfg.requests >= 10_000 && cfg.keys >= 100_000;
        if at_scale {
            if self.availability() < 0.99 {
                out.push(format!(
                    "{}: availability {:.4} below 0.99",
                    self.name,
                    self.availability()
                ));
            }
            match self.name.as_str() {
                "worker-panic" if self.serve.workers_restarted == 0 => {
                    out.push("worker-panic: no worker was ever restarted".into());
                }
                "queue-saturation" if self.serve.shed == 0 => {
                    out.push("queue-saturation: load shedding never engaged".into());
                }
                "writer-crash" if self.serve.writer_restarts == 0 => {
                    out.push("writer-crash: the writer never crashed".into());
                }
                "rollback" => {
                    if self.serve.rollbacks == 0 {
                        out.push("rollback: drift never triggered a rollback".into());
                    } else if self.rollback_ratio() > 1.01 {
                        out.push(format!(
                            "rollback: post/pre cost {:.4} above 1.01",
                            self.rollback_ratio()
                        ));
                    }
                }
                name if name != "baseline" && self.faults_fired == 0 => {
                    out.push(format!("{name}: the fault schedule never fired"));
                }
                _ => {}
            }
        }
        out
    }
}

/// Outcome of a whole ladder: one [`ChaosScenarioReport`] per scenario.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The configuration the ladder ran.
    pub config: ChaosConfig,
    /// Per-scenario results, in run order.
    pub scenarios: Vec<ChaosScenarioReport>,
}

impl ChaosReport {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ChaosScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// All gate violations across the ladder (empty = the ladder holds).
    pub fn violations(&self) -> Vec<String> {
        self.scenarios
            .iter()
            .flat_map(|s| s.violations(&self.config))
            .collect()
    }

    /// Renders the machine-readable `BENCH_chaos.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"chaos\",");
        let _ = writeln!(
            out,
            "  \"units\": {{\"availability\": \"fraction answered within retry budget\", \
             \"recovery_ms\": \"milliseconds\", \"latency\": \"nanoseconds\", \
             \"rollback_ratio\": \"post/pre mean cost\"}},"
        );
        let _ = writeln!(out, "  \"keys\": {},", self.config.keys);
        let _ = writeln!(out, "  \"density\": {},", self.config.density);
        let _ = writeln!(out, "  \"index\": \"{}\",", self.config.index);
        let _ = writeln!(out, "  \"requests\": {},", self.config.requests);
        let _ = writeln!(out, "  \"writes\": {},", self.config.writes);
        let _ = writeln!(out, "  \"clients\": {},", self.config.clients);
        let _ = writeln!(out, "  \"workers\": {},", self.config.workers);
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(out, "  \"poison_percent\": {},", self.config.poison_percent);
        let _ = writeln!(out, "  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"requests\": {},", s.requests);
            let _ = writeln!(out, "      \"answered\": {},", s.answered);
            let _ = writeln!(out, "      \"availability\": {:.6},", s.availability());
            let _ = writeln!(out, "      \"mismatches\": {},", s.mismatches);
            let _ = writeln!(out, "      \"retries\": {},", s.retries);
            let _ = writeln!(out, "      \"writes_submitted\": {},", s.writes_submitted);
            let _ = writeln!(out, "      \"writes_acked\": {},", s.writes_acked);
            let _ = writeln!(out, "      \"writes_lost\": {},", s.writes_lost);
            let _ = writeln!(out, "      \"writes_missing\": {},", s.writes_missing);
            let _ = writeln!(out, "      \"faults_fired\": {},", s.faults_fired);
            let _ = writeln!(out, "      \"shed\": {},", s.serve.shed);
            let _ = writeln!(
                out,
                "      \"workers_restarted\": {},",
                s.serve.workers_restarted
            );
            let _ = writeln!(
                out,
                "      \"writer_restarts\": {},",
                s.serve.writer_restarts
            );
            let _ = writeln!(out, "      \"rollbacks\": {},", s.serve.rollbacks);
            let _ = writeln!(
                out,
                "      \"writes_quarantined\": {},",
                s.serve.writes_quarantined
            );
            let _ = writeln!(out, "      \"recovery_ms\": {:.3},", s.recovery_ms);
            let _ = writeln!(out, "      \"recovery_failures\": {},", s.recovery_failures);
            let _ = writeln!(out, "      \"replayed_ops\": {},", s.replayed_ops);
            let _ = writeln!(out, "      \"truncated_bytes\": {},", s.truncated_bytes);
            let _ = writeln!(out, "      \"recovered_ok\": {},", s.recovered_ok);
            let _ = writeln!(
                out,
                "      \"corruption_detected\": {},",
                s.corruption_detected
            );
            let _ = writeln!(out, "      \"pre_mean_cost\": {:.4},", s.pre_mean_cost);
            let _ = writeln!(out, "      \"post_mean_cost\": {:.4},", s.post_mean_cost);
            let _ = writeln!(out, "      \"rollback_ratio\": {:.4},", s.rollback_ratio());
            let _ = writeln!(out, "      \"p50_ns\": {},", s.serve.latency.p50());
            let _ = writeln!(out, "      \"p99_ns\": {},", s.serve.latency.p99());
            let _ = writeln!(out, "      \"epochs\": {}", s.serve.epochs);
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`ChaosReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// What one striped read drive observed.
#[derive(Debug, Default, Clone, Copy)]
struct ReadDrive {
    answered: usize,
    mismatches: usize,
    retries: u64,
}

/// Drives `probes` through closed-loop client threads, each request
/// retried per `policy` with the engine counting every retry — the exact
/// spend of riding out the fault schedule. `expected[i]` is the
/// fault-free membership answer for `probes[i]`.
fn drive_reads(
    server: &Server,
    probes: &[Key],
    expected: &[bool],
    clients: usize,
    policy: &RetryPolicy,
) -> ReadDrive {
    let clients = clients.max(1);
    let mut total = ReadDrive::default();
    // lis-analysis: allow(thread-discipline) — closed-loop benign client
    // fleets are role-parallel load generators against one server, not a
    // data-parallel computation for `par::map_chunks`.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let handle = server.handle();
                scope.spawn(move || {
                    let mut local = ReadDrive::default();
                    let mut i = c;
                    while i < probes.len() {
                        let (key, want) = (probes[i], expected[i]);
                        i += clients;
                        let mut attempt = 0u32;
                        loop {
                            let outcome = submit_once(&handle, key, policy);
                            match outcome {
                                Ok(hit) => {
                                    local.answered += 1;
                                    if hit != want {
                                        local.mismatches += 1;
                                    }
                                    break;
                                }
                                Err(e) if e.is_retryable() && attempt + 1 < policy.attempts => {
                                    attempt += 1;
                                    local.retries += 1;
                                    std::thread::sleep(policy.backoff(attempt, key));
                                }
                                Err(_) => break,
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // lis-analysis: allow(serve-no-panic) — test/bench harness
            // aggregation; a panicked client is a harness bug.
            let local = handle.join().expect("chaos read client panicked");
            total.answered += local.answered;
            total.mismatches += local.mismatches;
            total.retries += local.retries;
        }
    });
    total
}

/// One submit + wait under the policy's deadline/timeout knobs.
fn submit_once(handle: &ServerHandle, key: Key, policy: &RetryPolicy) -> Result<bool> {
    let ticket = match policy.deadline {
        Some(deadline) => handle.submit_with_deadline(key, deadline)?,
        None => handle.submit(key)?,
    };
    let hit = match policy.wait_timeout {
        Some(timeout) => ticket.wait_timeout(timeout)?,
        None => ticket.wait()?,
    };
    Ok(hit.found)
}

/// What one pipelined write drive observed.
#[derive(Debug, Default, Clone, Copy)]
struct WriteDrive {
    submitted: usize,
    acked: usize,
    lost: usize,
    retries: u64,
}

/// Drives `keys` as inserts with up to [`WRITE_WINDOW`] writes in flight,
/// resubmitting transient failures (writer crashed with the write
/// queued) with backoff. Terminal failures count as lost.
fn drive_writes(handle: &ServerHandle, keys: &[Key], policy: &RetryPolicy) -> WriteDrive {
    let mut drive = WriteDrive::default();
    let mut inflight: VecDeque<(Key, u32, WriteTicket)> = VecDeque::new();
    let mut next = 0usize;
    loop {
        while inflight.len() < WRITE_WINDOW && next < keys.len() {
            let key = keys[next];
            next += 1;
            drive.submitted += 1;
            match handle.submit_write(WriteOp::Insert(key), key % 16) {
                Ok(ticket) => inflight.push_back((key, 0, ticket)),
                Err(_) => drive.lost += 1,
            }
        }
        let Some((key, attempt, ticket)) = inflight.pop_front() else {
            break;
        };
        let transient = match ticket.wait() {
            Ok(status) if status.is_transient_failure() => true,
            Ok(WriteStatus::Applied { .. }) => {
                drive.acked += 1;
                false
            }
            Ok(_) => {
                drive.lost += 1;
                false
            }
            Err(e) => {
                if e.is_retryable() {
                    true
                } else {
                    drive.lost += 1;
                    false
                }
            }
        };
        if transient {
            if attempt + 1 < policy.attempts {
                drive.retries += 1;
                std::thread::sleep(policy.backoff(attempt + 1, key));
                match handle.submit_write(WriteOp::Insert(key), key % 16) {
                    Ok(ticket) => inflight.push_back((key, attempt + 1, ticket)),
                    Err(_) => drive.lost += 1,
                }
            } else {
                drive.lost += 1;
            }
        }
    }
    drive
}

/// Post-disarm clean sweep: closed-loop lookups with *no* retry budget.
/// Returns (duration, failures) — a recovered server answers everything.
fn recovery_sweep(server: &Server, probes: &[Key]) -> (Duration, usize) {
    let handle = server.handle();
    let started = Instant::now();
    let mut failures = 0usize;
    for &key in probes.iter().take(RECOVERY_SWEEP) {
        if handle.lookup(key).is_err() {
            failures += 1;
        }
    }
    (started.elapsed(), failures)
}

/// Mid-gap insert keys for the write-plane scenarios: distinct from each
/// other and from every member.
fn benign_insert_keys(ks: &KeySet, count: usize, seed: u64) -> Vec<Key> {
    let keys = ks.keys();
    let mut rng = trial_rng(seed, 9_301);
    let mut out = Vec::with_capacity(count);
    let mut used = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let i = rng.gen_range(0..keys.len() - 1);
        let (a, b) = (keys[i], keys[i + 1]);
        if b - a < 6 {
            continue;
        }
        let mid = a + (b - a) / 2;
        if used.insert(mid) {
            out.push(mid);
        }
    }
    out
}

/// Mean lookup cost of serving `probes` once, from server counter deltas.
fn measured_sweep(server: &Server, probes: &[Key]) -> Result<f64> {
    let before = server.stats();
    server.serve_all(probes)?;
    let after = server.stats();
    Ok((after.cost_units - before.cost_units) as f64
        / ((after.served - before.served) as f64).max(1.0))
}

/// Deterministic probe stream plus its fault-free reference answers:
/// mostly members (found) with a salting of misses (not found). The
/// misses are `member + 1`, which never collides with the mid-gap keys
/// [`benign_insert_keys`] produces (those sit ≥ 3 above a member).
fn probe_stream(ks: &KeySet, requests: usize, seed: u64) -> (Vec<Key>, Vec<bool>) {
    let members = ks.keys();
    let mut probe_rng = trial_rng(seed, 19);
    let mut probes = Vec::with_capacity(requests);
    let mut expected = Vec::with_capacity(requests);
    for _ in 0..requests {
        if probe_rng.gen_range(0..16usize) == 0 {
            let miss = members[probe_rng.gen_range(0..members.len())] + 1;
            probes.push(miss);
            expected.push(ks.contains(miss));
        } else {
            let member = members[probe_rng.gen_range(0..members.len())];
            probes.push(member);
            expected.push(true);
        }
    }
    (probes, expected)
}

/// What the kill-aware write driver observed.
#[derive(Debug, Default, Clone)]
struct DurableWriteDrive {
    submitted: usize,
    acked_keys: Vec<Key>,
    lost: usize,
    halted: bool,
}

/// Sequential write driver for the *durable* rungs: one write per flush
/// (maximizing storage fault events), and a retryable error or closed
/// queue means the write plane was killed — the driver halts there
/// instead of counting the remainder as lost, because from the kill
/// onward the contract under test is recovery, not availability. The
/// acked keys are the durability obligation: every one must survive
/// `recover`.
fn drive_writes_durable(handle: &ServerHandle, keys: &[Key]) -> DurableWriteDrive {
    let mut drive = DurableWriteDrive::default();
    for &key in keys {
        drive.submitted += 1;
        let ticket = match handle.submit_write(WriteOp::Insert(key), key % 16) {
            Ok(ticket) => ticket,
            Err(_) => {
                drive.halted = true;
                break;
            }
        };
        match ticket.wait() {
            Ok(WriteStatus::Applied { .. }) => drive.acked_keys.push(key),
            Ok(_) => drive.lost += 1,
            Err(e) if e.is_retryable() => {
                drive.halted = true;
                break;
            }
            Err(_) => drive.lost += 1,
        }
    }
    drive
}

/// The fault schedule of one scenario, derived from the master seed so
/// each scenario's stream is independent but reproducible.
fn faults_for(scenario: &str, seed: u64) -> FaultInjector {
    let cfg = FaultConfig::new(seed ^ scenario.len() as u64);
    match scenario {
        "worker-panic" => FaultInjector::seeded(cfg.worker_panic(0.02)),
        "queue-saturation" => FaultInjector::seeded(cfg.slow_batch(0.3, Duration::from_millis(5))),
        // One scenario for both publication-path delays: stalled flushes
        // and late epoch swaps have the same observable contract (readers
        // pin the previous epoch; no write is lost).
        "delayed-publish" => FaultInjector::seeded(
            cfg.writer_stall(0.3, Duration::from_millis(1))
                .delayed_publish(0.5, Duration::from_millis(2)),
        ),
        // Flushes are far rarer events than batches (writes arrive in
        // micro-batches), so the per-event probability is high to get a
        // handful of crashes per run.
        "writer-crash" => FaultInjector::seeded(cfg.writer_crash(0.5)),
        // The durable rungs drive writes sequentially (one flush per
        // write), so per-flush probabilities are low: the kill should
        // land mid-load with a meaningful acked prefix already on disk,
        // not on the first append.
        "kill-recover" => {
            FaultInjector::seeded(cfg.crash_after_append(0.006).crash_before_append(0.003))
        }
        "torn-tail" => FaultInjector::seeded(cfg.torn_write(0.01)),
        _ => FaultInjector::disabled(),
    }
}

/// A fresh scratch directory for one durable scenario, unique per
/// process and seed so parallel test runs never collide.
fn chaos_dir(seed: u64, scenario: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lis-chaos-{}-{seed:016x}-{scenario}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one scenario end to end. See the module docs for the phases.
fn run_scenario(scenario: &str, cfg: &ChaosConfig) -> Result<ChaosScenarioReport> {
    if matches!(scenario, "kill-recover" | "torn-tail") {
        return run_durable_scenario(scenario, cfg);
    }
    let domain = domain_for_density(cfg.keys, cfg.density)?;
    let mut rng = trial_rng(cfg.seed, 17);
    let ks = uniform_keys(&mut rng, cfg.keys, domain)?;
    let scenario_requests = if scenario == "queue-saturation" {
        // Saturation runs orders of magnitude slower by design (every
        // batch risks a 5ms spike on a single worker); a shorter stream
        // keeps the ladder's wall clock bounded without weakening the
        // shed/availability gates.
        (cfg.requests / 8).max(512)
    } else {
        cfg.requests
    };
    let (probes, expected) = probe_stream(&ks, scenario_requests, cfg.seed);

    let faults = faults_for(scenario, cfg.seed);
    let online = matches!(scenario, "delayed-publish" | "writer-crash" | "rollback");
    let index_name = cfg.index.clone();
    let registry = IndexRegistry::with_defaults();
    let mut serve_cfg = ServeConfig::new()
        .workers(cfg.workers)
        .batch(64)
        .deadline(Duration::from_micros(200))
        .write_batch(WRITE_WINDOW)
        .window(Duration::from_millis(25));
    if scenario == "queue-saturation" {
        // One slow worker, small batches, shallow queue: the estimated
        // wait inflates fast and the deadline admission check has
        // something to push back against.
        serve_cfg = serve_cfg.workers(1).batch(4).queue_depth(16);
    }
    let builder = Server::builder(serve_cfg).faults(faults.clone());
    let server = if scenario == "rollback" {
        builder
            .rollback(Box::new(CostDriftMonitor::new(
                1.02,
                (scenario_requests as u64 / 80).clamp(50, 500),
                3,
            )))
            .start_online(
                ks.clone(),
                move |ks| registry.build(&index_name, ks),
                Box::new(AdmitAll),
            )?
    } else if online {
        builder.start_online(
            ks.clone(),
            move |ks| registry.build(&index_name, ks),
            Box::new(AdmitAll),
        )?
    } else {
        builder.start(std::sync::Arc::new(registry.build(&index_name, &ks)?))
    };
    let handle = server.handle();

    let policy = if scenario == "queue-saturation" {
        RetryPolicy::new(16)
            .seed(cfg.seed)
            .deadline(Duration::from_millis(2))
            .wait_timeout(Duration::from_millis(500))
            .backoff_bounds(Duration::from_micros(200), Duration::from_millis(20))
    } else {
        RetryPolicy::new(16).seed(cfg.seed)
    };

    let mut pre_mean_cost = 0.0;
    let mut post_mean_cost = 0.0;
    let mut write_drive = WriteDrive::default();
    let mut writes_missing = 0usize;
    let read_drive;

    if scenario == "rollback" {
        // Calibration: spread clean reads over enough windows for the
        // drift monitor to fix its baseline.
        let chunk = (probes.len() / 6).max(1);
        let mut cost_sum = 0.0;
        let mut chunks = 0.0f64;
        for part in probes.chunks(chunk) {
            cost_sum += measured_sweep(&server, part)?;
            chunks += 1.0;
            std::thread::sleep(Duration::from_millis(26));
        }
        pre_mean_cost = cost_sum / chunks.max(1.0);
        read_drive = ReadDrive {
            answered: probes.len(),
            mismatches: 0,
            retries: 0,
        };
        // The live Algorithm-2 campaign lands its poison through the
        // serve path; every applied write is provisional post-checkpoint
        // state.
        let mut campaign = Campaign::plan(
            &ks,
            &CampaignConfig {
                poison_percent: cfg.poison_percent,
                ..CampaignConfig::default()
            },
        )?;
        run_campaign(&handle, &mut campaign, ADVERSARY_SOURCE, WRITE_WINDOW)?;
        write_drive.submitted = campaign.submitted();
        write_drive.acked = campaign.applied();
        // Keep reading until the drift monitor sees the degraded windows
        // and the writer rolls back (bounded so a broken monitor fails
        // the gate instead of hanging the ladder).
        let detect_deadline = Instant::now() + Duration::from_secs(30);
        while server.stats().rollbacks == 0 && Instant::now() < detect_deadline {
            measured_sweep(&server, &probes[..chunk.min(probes.len())])?;
            std::thread::sleep(Duration::from_millis(26));
        }
        // Recovered cost: the quarantined epoch is gone, the checkpoint
        // is back.
        post_mean_cost = measured_sweep(&server, &probes)?;
        // Quarantine *should* make the campaign's writes invisible.
        writes_missing = campaign
            .applied_keys()
            .iter()
            .filter(|&&k| handle.lookup(k).map(|h| h.found).unwrap_or(false))
            .count();
    } else if online {
        // Write-plane fault classes: concurrent benign readers while the
        // pipelined writer rides out crashes/stalls.
        let insert_keys = benign_insert_keys(&ks, cfg.writes, cfg.seed);
        let mut drive_result = ReadDrive::default();
        // lis-analysis: allow(thread-discipline) — role parallelism:
        // one write driver and a read fleet against one server.
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| drive_writes(&handle, &insert_keys, &policy));
            drive_result = drive_reads(&server, &probes, &expected, cfg.clients, &policy);
            // lis-analysis: allow(serve-no-panic) — harness aggregation.
            write_drive = writer.join().expect("chaos write driver panicked");
        });
        read_drive = drive_result;
        faults.disarm();
        // Every acked write must be durable across writer restarts.
        writes_missing = insert_keys
            .iter()
            .filter(|&&k| !handle.lookup(k).map(|h| h.found).unwrap_or(false))
            .count()
            .saturating_sub(insert_keys.len() - write_drive.acked);
    } else {
        read_drive = drive_reads(&server, &probes, &expected, cfg.clients, &policy);
        faults.disarm();
    }

    faults.disarm();
    let (recovery, recovery_failures) = recovery_sweep(&server, &probes);
    let serve = server.shutdown();
    Ok(ChaosScenarioReport {
        name: scenario.to_string(),
        requests: probes.len(),
        answered: read_drive.answered,
        mismatches: read_drive.mismatches,
        retries: read_drive.retries + write_drive.retries,
        writes_submitted: write_drive.submitted,
        writes_acked: write_drive.acked,
        writes_lost: write_drive.lost,
        writes_missing,
        faults_fired: faults.total_fired(),
        recovery_ms: recovery.as_secs_f64() * 1_000.0,
        recovery_failures,
        pre_mean_cost,
        post_mean_cost,
        replayed_ops: 0,
        truncated_bytes: 0,
        recovered_ok: true,
        corruption_detected: false,
        serve,
    })
}

/// The durable rungs (7 and 8): a storage fault kills the write plane
/// mid-load, the server is torn down, and the authoritative state is
/// recovered *from disk* into a fresh server.
///
/// Phases, both scenarios:
/// 1. **Drive** — an online durable server under the storage fault
///    schedule: a benign read fleet rides alongside a sequential write
///    driver that halts when the kill lands (reads keep serving — the
///    read plane survives the write plane's death).
/// 2. **Recover** — shut the (possibly half-dead) server down, then
///    `recover(dir)` twice (determinism check) and resume a fresh server
///    from the recovered state. `recovery_ms` is recover + rebuild.
/// 3. **Verify** — `recovered_ok` requires base ∪ acked ⊆ recovered ⊆
///    base ∪ submitted: every acked write survived, nothing half-applied,
///    and only driven keys appeared. A clean sweep on the resumed server
///    counts `recovery_failures`.
///
/// `torn-tail` adds phase 4: resume the same directory under
/// `bit_flip(1.0)`, ack a handful of writes (every record flipped on
/// disk), and require `recover` on the live directory to *refuse* with a
/// corruption error — then a clean shutdown checkpoints past the damage
/// and a final recovery must hold those acked writes too.
fn run_durable_scenario(scenario: &str, cfg: &ChaosConfig) -> Result<ChaosScenarioReport> {
    let domain = domain_for_density(cfg.keys, cfg.density)?;
    let mut rng = trial_rng(cfg.seed, 17);
    let ks = uniform_keys(&mut rng, cfg.keys, domain)?;
    let (probes, expected) = probe_stream(&ks, cfg.requests, cfg.seed);
    let dir = chaos_dir(cfg.seed, scenario);
    let faults = faults_for(scenario, cfg.seed);
    let serve_cfg = ServeConfig::new()
        .workers(cfg.workers)
        .batch(64)
        .deadline(Duration::from_micros(200))
        .write_batch(WRITE_WINDOW)
        .window(Duration::from_millis(25));
    let policy = RetryPolicy::new(16).seed(cfg.seed);
    let index_name = cfg.index.clone();
    let registry = IndexRegistry::with_defaults();
    let server = Server::builder(serve_cfg)
        .faults(faults.clone())
        .durability(Durability::dir(&dir).snapshot_every((cfg.writes as u64 / 4).max(8)))
        .start_online(
            ks.clone(),
            move |k| registry.build(&index_name, k),
            Box::new(AdmitAll),
        )?;
    let handle = server.handle();
    let insert_keys = benign_insert_keys(&ks, cfg.writes, cfg.seed);
    let mut write_drive = DurableWriteDrive::default();
    let mut read_drive = ReadDrive::default();
    // lis-analysis: allow(thread-discipline) — role parallelism: one
    // write driver and a read fleet against one server.
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| drive_writes_durable(&handle, &insert_keys));
        read_drive = drive_reads(&server, &probes, &expected, cfg.clients, &policy);
        // lis-analysis: allow(serve-no-panic) — harness aggregation.
        write_drive = writer.join().expect("chaos write driver panicked");
    });
    faults.disarm();
    let faults_fired = faults.total_fired();
    let serve = server.shutdown();

    // Recovery. The determinism re-check runs *before* the resumed
    // server bootstraps (bootstrap checkpoints and truncates the WAL).
    let started = Instant::now();
    let rec = lis_server::recover(&dir)?;
    let rec_again = lis_server::recover(&dir)?;
    let deterministic = rec.keyset.keys() == rec_again.keyset.keys();
    let index_name = cfg.index.clone();
    let registry = IndexRegistry::with_defaults();
    let resumed = Server::builder(serve_cfg)
        .durability(Durability::resume(&dir, &rec))
        .start_online(
            rec.keyset.clone(),
            move |k| registry.build(&index_name, k),
            Box::new(AdmitAll),
        )?;
    let recovery = started.elapsed();

    let submitted: std::collections::BTreeSet<Key> = insert_keys.iter().copied().collect();
    let writes_missing = write_drive
        .acked_keys
        .iter()
        .filter(|&&k| !rec.keyset.contains(k))
        .count();
    let base_survives = ks.keys().iter().all(|&k| rec.keyset.contains(k));
    let nothing_foreign = rec
        .keyset
        .keys()
        .iter()
        .all(|&k| ks.contains(k) || submitted.contains(&k));
    let mut recovered_ok = deterministic && base_survives && nothing_foreign;
    let (_, recovery_failures) = recovery_sweep(&resumed, &probes);

    let mut corruption_detected = false;
    let mut writes_submitted = write_drive.submitted;
    let mut writes_acked = write_drive.acked_keys.len();
    if scenario == "torn-tail" {
        // Phase 4: silent media corruption. Every WAL record written from
        // here on is bit-flipped after its checksum was computed;
        // recovery against the live directory must refuse to replay the
        // damage (with ≥ 2 records the first flip is mid-log — the
        // deterministic refusal path, any seed).
        resumed.shutdown();
        let rec2 = lis_server::recover(&dir)?;
        let flip_faults =
            FaultInjector::seeded(FaultConfig::new(cfg.seed ^ scenario.len() as u64).bit_flip(1.0));
        let index_name = cfg.index.clone();
        let registry = IndexRegistry::with_defaults();
        let flipped = Server::builder(serve_cfg)
            .faults(flip_faults)
            .durability(Durability::resume(&dir, &rec2))
            .start_online(
                rec2.keyset.clone(),
                move |k| registry.build(&index_name, k),
                Box::new(AdmitAll),
            )?;
        let flip_handle = flipped.handle();
        let flip_keys = benign_insert_keys(&rec2.keyset, 4, cfg.seed ^ 0xF11F);
        let mut flip_acked = Vec::new();
        for &key in &flip_keys {
            writes_submitted += 1;
            if flip_handle.write(WriteOp::Insert(key), 2)?.is_applied() {
                writes_acked += 1;
                flip_acked.push(key);
            }
        }
        corruption_detected = matches!(lis_server::recover(&dir), Err(LisError::Corruption { .. }));
        // A clean shutdown checkpoints the authoritative keyset past the
        // damaged log; the directory must be recoverable again, acked
        // flips included.
        flipped.shutdown();
        let after = lis_server::recover(&dir)?;
        let flips_survive = flip_acked.iter().all(|&k| after.keyset.contains(k));
        let tail_intact = rec2.keyset.keys().iter().all(|&k| after.keyset.contains(k));
        let exact = after.keyset.len() == rec2.keyset.len() + flip_acked.len();
        recovered_ok = recovered_ok && flips_survive && tail_intact && exact;
    } else {
        resumed.shutdown();
    }

    Ok(ChaosScenarioReport {
        name: scenario.to_string(),
        requests: probes.len(),
        answered: read_drive.answered,
        mismatches: read_drive.mismatches,
        retries: read_drive.retries,
        writes_submitted,
        writes_acked,
        writes_lost: write_drive.lost,
        writes_missing,
        faults_fired,
        recovery_ms: recovery.as_secs_f64() * 1_000.0,
        recovery_failures,
        pre_mean_cost: 0.0,
        post_mean_cost: 0.0,
        replayed_ops: rec.replayed_ops,
        truncated_bytes: rec.truncated_bytes,
        recovered_ok,
        corruption_detected,
        serve,
    })
}

/// Runs the full scenario ladder (see [`SCENARIOS`]) and returns the
/// report behind `BENCH_chaos.json`.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport> {
    let mut scenarios = Vec::with_capacity(SCENARIOS.len());
    for scenario in SCENARIOS {
        scenarios.push(run_scenario(scenario, cfg)?);
    }
    Ok(ChaosReport {
        config: cfg.clone(),
        scenarios,
    })
}

/// Runs a single named scenario from the ladder.
pub fn run_chaos_scenario(scenario: &str, cfg: &ChaosConfig) -> Result<ChaosReport> {
    if !SCENARIOS.contains(&scenario) {
        return Err(LisError::Invariant(format!(
            "unknown chaos scenario '{scenario}' (available: {})",
            SCENARIOS.join(", ")
        )));
    }
    Ok(ChaosReport {
        config: cfg.clone(),
        scenarios: vec![run_scenario(scenario, cfg)?],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ChaosConfig {
        ChaosConfig {
            keys: 4_000,
            requests: 2_000,
            writes: 128,
            clients: 2,
            workers: 2,
            seed: 0xC4A0_5EED,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn baseline_is_perfectly_available_and_correct() {
        let report = run_chaos_scenario("baseline", &smoke_config()).unwrap();
        let s = report.scenario("baseline").unwrap();
        assert_eq!(s.answered, s.requests);
        assert_eq!(s.mismatches, 0);
        assert_eq!(s.retries, 0);
        assert_eq!(s.faults_fired, 0);
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn worker_panic_scenario_survives_with_retries() {
        let report = run_chaos_scenario("worker-panic", &smoke_config()).unwrap();
        let s = report.scenario("worker-panic").unwrap();
        assert_eq!(s.answered, s.requests, "requests lost under worker deaths");
        assert_eq!(s.mismatches, 0);
        assert!(s.faults_fired >= 1, "schedule never fired");
        assert!(s.serve.workers_restarted >= 1);
        assert_eq!(s.recovery_failures, 0);
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn writer_crash_scenario_loses_no_acked_write() {
        // At smoke scale only a handful of flush events happen; this
        // seed's schedule is known to crash several of them.
        let cfg = ChaosConfig {
            seed: 0xDEAD,
            ..smoke_config()
        };
        let report = run_chaos_scenario("writer-crash", &cfg).unwrap();
        let s = report.scenario("writer-crash").unwrap();
        assert_eq!(s.writes_lost, 0);
        assert_eq!(s.writes_missing, 0);
        assert_eq!(s.mismatches, 0);
        assert!(s.serve.writer_restarts >= 1, "crash schedule never fired");
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn kill_recover_scenario_loses_no_acked_write() {
        // Smoke scale drives few flushes; this seed's schedule is known
        // to kill the write plane mid-drive.
        let cfg = ChaosConfig {
            seed: 0xBEEF,
            ..smoke_config()
        };
        let report = run_chaos_scenario("kill-recover", &cfg).unwrap();
        let s = report.scenario("kill-recover").unwrap();
        assert!(s.faults_fired >= 1, "kill schedule never fired");
        assert_eq!(s.serve.writer_restarts, 0, "a kill must not restart");
        assert_eq!(s.writes_missing, 0, "acked write lost across recovery");
        assert_eq!(s.mismatches, 0);
        assert_eq!(s.recovery_failures, 0);
        assert!(s.recovered_ok, "recovered state diverged");
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn torn_tail_scenario_truncates_and_refuses_corruption() {
        let cfg = ChaosConfig {
            seed: 0xBEEF,
            ..smoke_config()
        };
        let report = run_chaos_scenario("torn-tail", &cfg).unwrap();
        let s = report.scenario("torn-tail").unwrap();
        assert!(s.faults_fired >= 1, "torn-write schedule never fired");
        assert!(s.truncated_bytes > 0, "no torn tail was truncated");
        assert!(s.recovered_ok, "recovered state diverged");
        assert!(
            s.corruption_detected,
            "mid-log bit flip must be refused as corruption"
        );
        assert_eq!(s.writes_missing, 0);
        assert!(report.violations().is_empty(), "{:?}", report.violations());
    }

    #[test]
    fn unknown_scenario_is_rejected() {
        assert!(run_chaos_scenario("nope", &smoke_config()).is_err());
    }

    #[test]
    fn json_document_carries_the_gate_inputs() {
        let report = run_chaos_scenario("baseline", &smoke_config()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"chaos\""));
        assert!(json.contains("\"availability\""));
        assert!(json.contains("\"recovery_ms\""));
        assert!(json.contains("\"rollback_ratio\""));
    }
}
