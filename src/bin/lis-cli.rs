//! `lis-cli` — command-line front end for the learned-index poisoning
//! toolkit.
//!
//! ```text
//! lis-cli generate --dist lognormal --keys 10000 --density 0.05 --out keys.txt
//! lis-cli attack-regression --dist uniform --keys 1000 --density 0.1 --poison-pct 10
//! lis-cli attack-rmi --dist lognormal --keys 20000 --density 0.05 --model-size 200 --poison-pct 10 --alpha 3
//! lis-cli defend --dist uniform --keys 1000 --density 0.1 --poison-pct 10
//! lis-cli inspect --in keys.txt --index rmi,btree,pla
//! lis-cli pipeline --dist lognormal --keys 5000 --attack rmi --defense trim --index rmi,btree
//! lis-cli serve-bench --keys 100000 --index rmi,btree --attack-ratio 0,0.5 --workers 4
//! lis-cli bench-build --keys 1000000 --index rmi,deep-rmi,pla,btree
//! lis-cli chaos --keys 100000 --scenario worker-panic --seed 7
//! lis-cli durability --keys 100000 --writes 2048 --seed 7
//! lis-cli list-indexes
//! ```
//!
//! Victim structures are resolved by name through the
//! [`IndexRegistry`]; `list-indexes` prints what is available. Argument
//! parsing is hand-rolled (the workspace intentionally carries no CLI
//! dependency); every flag takes the form `--name value`.

#![forbid(unsafe_code)]

use lis::defense::{
    evaluate_defense, trim_defense, DensityDefense, IqrDefense, TrimConfig, TrimDefense,
};
use lis::pipeline::{BuildCache, Pipeline};
use lis::poison::{
    DpRmiPoisonAttack, GreedyCdfAttack, MixedAttack, RemovalAttack, RmiPoisonAttack,
};
use lis::prelude::*;
use lis::workloads::realsim;
use lis::workloads::{domain_for_density, lognormal_keys, normal_keys, trial_rng, uniform_keys};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse_args(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "attack-regression" => cmd_attack_regression(&flags),
        "attack-rmi" => cmd_attack_rmi(&flags),
        "attack-rmi-dp" => cmd_attack_rmi_dp(&flags),
        "attack-removal" => cmd_attack_removal(&flags),
        "defend" => cmd_defend(&flags),
        "inspect" => cmd_inspect(&flags),
        "pipeline" => cmd_pipeline(&flags),
        "serve-bench" => cmd_serve_bench(&flags),
        "serve-online" => cmd_serve_online(&flags),
        "chaos" => cmd_chaos(&flags),
        "durability" => cmd_durability(&flags),
        "bench-hotpath" => cmd_bench_hotpath(&flags),
        "bench-build" => cmd_bench_build(&flags),
        "list-indexes" => cmd_list_indexes(),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
lis-cli — poisoning attacks on learned index structures

USAGE:
  lis-cli <command> [--flag value]...

COMMANDS:
  generate            sample a keyset and write it (one key per line)
      --dist D        uniform | normal | lognormal | miami | osm  [uniform]
      --keys N        number of keys                              [1000]
      --density F     keyset density in (0, 1]                    [0.1]
      --seed S        RNG seed                                    [42]
      --out FILE      output path (default: stdout)

  attack-regression   greedy CDF poisoning of a linear regression
      (generate flags) --poison-pct P                             [10]

  attack-rmi          Algorithm-2 attack on a two-stage RMI
      (generate flags) --poison-pct P --model-size M --alpha A    [10 / 100 / 3]

  attack-rmi-dp       exact-DP volume allocation variant (stronger)
      (same flags as attack-rmi)

  attack-removal      greedy key-deletion adversary
      (generate flags) --remove N                                 [50]

  defend              run the TRIM defense against the greedy attack
      (generate flags) --poison-pct P                             [10]

  inspect             index statistics for a keyset
      --in FILE       keys, one per line (or generate flags)
      --index NAMES   comma-separated registry names       [rmi,btree,pla]

  pipeline            workload -> attack -> defense -> index sweep
      (generate flags)
      --index NAMES   comma-separated registry names       [rmi,btree]
      --attack A      none|greedy|rmi|rmi-dp|removal|mixed      [greedy]
      --defense D     none|trim|iqr|density                       [none]
      --poison-pct P  attack budget as a percentage                 [10]
      --model-size M  keys per second-stage model (rmi attacks)    [100]
      --alpha A       per-model threshold multiplier                 [3]
      --queries Q     member-key probes per index                 [2000]
      --shards N      serve each victim as sharded:<name>:N          [1]

  serve-bench         concurrent serving harness with live adversary traffic
      (generate flags)
      --index NAMES       comma-separated registry names     [rmi,btree]
      --shards N          serve each victim as sharded:<name>:N      [1]
      --workers W         worker threads draining micro-batches      [4]
      --batch B           max requests per micro-batch              [64]
      --deadline-us D     micro-batch flush deadline in µs         [200]
      --attack-ratio R    comma-separated adversarial fractions [0,0.1,0.5]
      --requests N        requests per (index, ratio) session    [20000]
      --clients C         concurrent traffic generator threads       [2]
      --poison-pct P      RMI-attack budget percentage              [10]
      --model-size M      keys per second-stage model (campaign)   [100]

  serve-online        online attack plane: live poisoning + admission defenses
      --keys N            victim keyset size                      [200000]
      --density F         keyset density in (0, 1]                   [0.1]
      --index NAME        victim registry name                       [rmi]
      --poison-pct P      campaign budget percentage                  [10]
      --benign-writes N   benign inserts trickled during campaign   [2000]
      --requests N        benign reads per pre/post phase          [60000]
      --readers R         concurrent benign reader threads             [2]
      --workers W         serving worker threads                       [2]
      --seed S            workload RNG seed                           [42]
      --out FILE          JSON report path            [BENCH_online.json]

  chaos               robustness ladder: seeded fault injection vs the live server
      --keys N            victim keyset size                      [100000]
      --density F         keyset density in (0, 1]                   [0.1]
      --index NAME        victim registry name                       [rmi]
      --requests N        benign reads per scenario                [40000]
      --writes N          benign writes (write-plane scenarios)      [512]
      --clients C         closed-loop client threads                   [4]
      --workers W         serving worker threads                       [2]
      --seed S            fault-schedule seed (or LIS_CHAOS_SEED)
      --poison-pct P      rollback-scenario campaign budget           [10]
      --scenario NAME     run one rung instead of the whole ladder
                          (baseline | worker-panic | queue-saturation |
                           delayed-publish | writer-crash | rollback |
                           kill-recover | torn-tail)
      --out FILE          JSON report path             [BENCH_chaos.json]

  durability          WAL fsync-level grid + kill-and-recover acceptance
      --keys N            base keyset size                        [100000]
      --density F         keyset density in (0, 1]                   [0.1]
      --index NAME        served registry name                       [rmi]
      --writes N          durable inserts per cell                  [2048]
      --workers W         serving worker threads                       [2]
      --seed S            kill-schedule seed (or LIS_CHAOS_SEED)
      --out FILE          JSON report path        [BENCH_durability.json]

  bench-hotpath       read-hot-path microbench: ns/lookup + Mlookups/s grid
      --keys N            keyset size                            [1000000]
      --batch B           probes per batch                         [16384]
      --rounds R          timing rounds (best reported)                [3]
      --poison-pct P      Algorithm-2 poison budget percentage        [10]
      --seed S            workload/attack RNG seed                    [42]
      --index NAMES       comma-separated registry names
                                     [rmi,deep-rmi,pla,btree,sharded:rmi:8]
      --out FILE          JSON baseline path          [BENCH_hotpath.json]

  bench-build         build-plane microbench: index training + campaign generation
      --keys N            keyset size (campaigns also run at N/4)  [1000000]
      --rounds R          timing rounds per build variant (best)        [3]
      --seed S            workload RNG seed                            [42]
      --points P          large campaign budget (marginal vs 32)      [232]
      --index NAMES       comma-separated names      [rmi,deep-rmi,pla,btree]
      --out FILE          JSON baseline path            [BENCH_build.json]

  list-indexes        print the registered index names

  help                print this message";

type Flags = HashMap<String, String>;

/// Splits `[command, --k v, --k v, ...]`; returns `None` on malformed input.
fn parse_args(args: &[String]) -> Option<(String, Flags)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(flag) = it.next() {
        let name = flag.strip_prefix("--")?;
        let value = it.next()?;
        flags.insert(name.to_string(), value.clone());
    }
    Some((cmd, flags))
}

fn flag<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --{name}")),
    }
}

fn load_or_generate(flags: &Flags) -> Result<KeySet, String> {
    if let Some(path) = flags.get("in") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let keys: Result<Vec<Key>, _> = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| l.trim().parse())
            .collect();
        let keys = keys.map_err(|e| format!("parsing {path}: {e}"))?;
        return KeySet::from_keys(keys).map_err(|e| e.to_string());
    }
    let dist = flags.get("dist").map(String::as_str).unwrap_or("uniform");
    let n: usize = flag(flags, "keys", 1_000)?;
    let density: f64 = flag(flags, "density", 0.1)?;
    let seed: u64 = flag(flags, "seed", 42)?;
    let mut rng = trial_rng(seed, 0);
    match dist {
        "uniform" => {
            let domain = domain_for_density(n, density).map_err(|e| e.to_string())?;
            uniform_keys(&mut rng, n, domain).map_err(|e| e.to_string())
        }
        "normal" => {
            let domain = domain_for_density(n, density).map_err(|e| e.to_string())?;
            normal_keys(&mut rng, n, domain).map_err(|e| e.to_string())
        }
        "lognormal" => {
            let domain = domain_for_density(n, density).map_err(|e| e.to_string())?;
            lognormal_keys(&mut rng, n, domain).map_err(|e| e.to_string())
        }
        "miami" => realsim::miami_salaries_scaled(seed, n.min(realsim::miami_stats::N))
            .map_err(|e| e.to_string()),
        "osm" => realsim::osm_latitudes_scaled(seed, n).map_err(|e| e.to_string()),
        other => Err(format!("unknown distribution '{other}'")),
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let mut out = String::with_capacity(ks.len() * 8);
    for &k in ks.keys() {
        out.push_str(&k.to_string());
        out.push('\n');
    }
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} keys to {path} ({ks})", ks.len());
        }
        None => print!("{out}"),
    }
    Ok(())
}

fn cmd_attack_regression(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let budget = PoisonBudget::percentage(pct, ks.len()).map_err(|e| e.to_string())?;
    let plan = greedy_poison(&ks, budget).map_err(|e| e.to_string())?;
    println!("keyset:        {ks}");
    println!("poison keys:   {} ({pct}%)", plan.keys.len());
    println!("clean MSE:     {:.6}", plan.clean_mse);
    println!("poisoned MSE:  {:.6}", plan.final_mse());
    println!("ratio loss:    {:.2}x", plan.ratio_loss());
    if let Some(path) = flags.get("out") {
        let body: String = plan.keys.iter().map(|k| format!("{k}\n")).collect();
        std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("poison keys written to {path}");
    }
    Ok(())
}

fn cmd_attack_rmi(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let model_size: usize = flag(flags, "model-size", 100)?;
    let alpha: f64 = flag(flags, "alpha", 3.0)?;
    let num_models = (ks.len() / model_size).max(1);
    let cfg = RmiAttackConfig::new(pct)
        .with_alpha(alpha)
        .with_max_exchanges(num_models.min(64));
    let res = rmi_attack(&ks, num_models, &cfg).map_err(|e| e.to_string())?;
    let ratios = res.model_ratios();
    let summary = BoxplotSummary::from_samples(&ratios).ok_or("no models")?;
    println!("keyset:            {ks}");
    println!("second stage:      {num_models} models x {model_size} keys");
    println!(
        "poison placed:     {} ({pct}% requested, alpha {alpha})",
        res.total_poison
    );
    println!("exchanges applied: {}", res.exchanges_applied);
    println!("per-model ratio:   {summary}");
    println!("RMI ratio loss:    {:.2}x", res.rmi_ratio());
    Ok(())
}

fn cmd_attack_rmi_dp(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let model_size: usize = flag(flags, "model-size", 100)?;
    let alpha: f64 = flag(flags, "alpha", 3.0)?;
    let num_models = (ks.len() / model_size).max(1);
    let res = lis::poison::volume::dp_rmi_attack(&ks, num_models, pct, alpha)
        .map_err(|e| e.to_string())?;
    let ratios = res.model_ratios();
    let summary = BoxplotSummary::from_samples(&ratios).ok_or("no models")?;
    println!("keyset:          {ks}");
    println!("second stage:    {num_models} models x {model_size} keys");
    println!(
        "poison placed:   {} ({pct}% requested, alpha {alpha}, exact DP)",
        res.total_poison
    );
    println!("per-model ratio: {summary}");
    println!("RMI ratio loss:  {:.2}x", res.rmi_ratio());
    Ok(())
}

fn cmd_attack_removal(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let count: usize = flag(flags, "remove", 50)?;
    let campaign = lis::poison::greedy_removal(&ks, count).map_err(|e| e.to_string())?;
    println!("keyset:        {ks}");
    println!("keys deleted:  {}", campaign.removed.len());
    println!("clean MSE:     {:.6}", campaign.clean_mse);
    println!("poisoned MSE:  {:.6}", campaign.final_mse());
    println!("ratio loss:    {:.2}x", campaign.ratio_loss());
    Ok(())
}

fn cmd_defend(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let budget = PoisonBudget::percentage(pct, ks.len()).map_err(|e| e.to_string())?;
    let plan = greedy_poison(&ks, budget).map_err(|e| e.to_string())?;
    let poisoned = plan.poisoned_keyset(&ks).map_err(|e| e.to_string())?;
    let out = trim_defense(&poisoned, &TrimConfig::new(ks.len())).map_err(|e| e.to_string())?;
    let report = evaluate_defense(&ks, &plan.keys, &out.retained).map_err(|e| e.to_string())?;
    println!("attack ratio loss:   {:.2}x", report.ratio_before());
    println!("TRIM iterations:     {}", out.iterations);
    println!("poison recall:       {:.1}%", 100.0 * report.poison_recall);
    println!(
        "removal precision:   {:.1}%",
        100.0 * report.removal_precision
    );
    println!("legitimate removed:  {}", report.legit_removed);
    println!(
        "post-defense ratio:  {:.2}x (recovery {:.0}%)",
        report.ratio_after(),
        100.0 * report.recovery()
    );
    Ok(())
}

fn cmd_inspect(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let names = flags
        .get("index")
        .cloned()
        .unwrap_or_else(|| "rmi,btree,pla".into());
    let registry = IndexRegistry::with_defaults();
    let probes: Vec<Key> = ks
        .keys()
        .iter()
        .step_by((ks.len() / 256).max(1))
        .copied()
        .collect();
    println!("keyset: {ks}\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14}",
        "index", "loss", "mem_bytes", "mean_cost"
    );
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let idx = registry.build(name, &ks).map_err(|e| e.to_string())?;
        let results = idx.lookup_batch(&probes);
        let mean_cost =
            results.iter().map(|r| r.cost).sum::<usize>() as f64 / probes.len().max(1) as f64;
        if let Some(miss) = results.iter().position(|r| !r.found) {
            return Err(format!("{name} lost member key {}", probes[miss]));
        }
        println!(
            "{:<12} {:>12.4} {:>12} {:>14.2}",
            idx.name(),
            idx.loss(),
            idx.memory_bytes(),
            mean_cost
        );
    }
    Ok(())
}

fn cmd_serve_bench(flags: &Flags) -> Result<(), String> {
    use lis::server::{drive, BenignSource, MixedSource, ReplaySource, TrafficSource};
    use std::sync::Arc;
    use std::time::Duration;

    let ks = load_or_generate(flags)?;
    let seed: u64 = flag(flags, "seed", 42)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let workers: usize = flag(flags, "workers", 4)?;
    let batch: usize = flag(flags, "batch", 64)?;
    let deadline_us: u64 = flag(flags, "deadline-us", 200)?;
    let requests: usize = flag(flags, "requests", 20_000)?;
    let clients: usize = flag(flags, "clients", 2)?;
    let shards: usize = flag(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1 (1 serves unsharded)".into());
    }
    if clients == 0 || requests == 0 {
        return Err("--clients and --requests must be at least 1".into());
    }
    let ratios: Vec<f64> = flags
        .get("attack-ratio")
        .map(String::as_str)
        .unwrap_or("0,0.1,0.5")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("invalid value '{s}' for --attack-ratio"))
                .and_then(|r| {
                    if (0.0..=1.0).contains(&r) {
                        Ok(r)
                    } else {
                        Err(format!("--attack-ratio {r} outside [0, 1]"))
                    }
                })
        })
        .collect::<Result<_, _>>()?;
    if ratios.is_empty() {
        return Err("--attack-ratio needs at least one fraction".into());
    }

    // The live adversary replays the campaign's poison keys; the victims
    // serve the keyset that campaign already corrupted. Algorithm 2 is the
    // campaign that inflates second-stage errors — i.e. served lookup
    // cost — not just the root regression's loss.
    let model_size: usize = flag(flags, "model-size", 100)?;
    let num_models = (ks.len() / model_size).max(1);
    let outcome = RmiPoisonAttack {
        num_models,
        cfg: RmiAttackConfig::new(pct).with_max_exchanges(num_models.min(64)),
    }
    .run(&ks)
    .map_err(|e| e.to_string())?;
    println!(
        "serve-bench: {} keys, {} poison keys ({pct}%), attack ratio loss {:.1}x",
        ks.len(),
        outcome.inserted.len(),
        outcome.ratio_loss()
    );
    println!(
        "{} workers, batch {batch}, deadline {deadline_us}µs, {clients} clients x {} requests\n",
        workers,
        requests.div_ceil(clients)
    );

    let registry = IndexRegistry::with_defaults();
    let names = flags
        .get("index")
        .cloned()
        .unwrap_or_else(|| "rmi,btree".into());
    let cfg = lis::server::ServeConfig::new()
        .workers(workers)
        .batch(batch)
        .deadline(Duration::from_micros(deadline_us));

    let mut table = lis::workloads::ResultTable::new(
        "serve_bench",
        &[
            "index",
            "attack_ratio",
            "p50_us",
            "p90_us",
            "p99_us",
            "max_us",
            "kreq_per_s",
            "mlookups_per_s",
            "mean_batch",
            "mean_cost",
        ],
    );
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let resolved = if shards > 1 {
            format!("sharded:{name}:{shards}")
        } else {
            name.to_string()
        };
        if !registry.resolves(&resolved) {
            return Err(format!(
                "unknown index '{resolved}' (available: {}, sharded:<name>:<N>)",
                registry.names().join(", ")
            ));
        }
        let index = Arc::new(
            registry
                .build(&resolved, &outcome.poisoned)
                .map_err(|e| e.to_string())?,
        );
        for &ratio in &ratios {
            let server = lis::server::Server::start(Arc::clone(&index), cfg);
            let sources: Vec<Box<dyn TrafficSource>> = (0..clients)
                .map(|c| {
                    let benign = BenignSource::new(ks.keys().to_vec(), seed ^ c as u64)
                        .map_err(|e| e.to_string())?;
                    let adversary =
                        ReplaySource::new(outcome.inserted.clone()).map_err(|e| e.to_string())?;
                    Ok(Box::new(MixedSource::new(
                        benign,
                        adversary,
                        ratio,
                        seed.wrapping_add(0xA77A).wrapping_add(c as u64),
                    )) as Box<dyn TrafficSource>)
                })
                .collect::<Result<_, String>>()?;
            drive(&server, sources, requests.div_ceil(clients)).map_err(|e| e.to_string())?;
            let report = server.shutdown();
            table.push_row([
                resolved.clone(),
                format!("{ratio:.2}"),
                format!("{:.1}", report.latency.p50() as f64 / 1_000.0),
                format!("{:.1}", report.latency.p90() as f64 / 1_000.0),
                format!("{:.1}", report.latency.p99() as f64 / 1_000.0),
                format!("{:.1}", report.latency.max() as f64 / 1_000.0),
                format!("{:.1}", report.throughput() / 1_000.0),
                format!("{:.3}", report.mlookups_per_s()),
                format!("{:.1}", report.mean_batch()),
                format!("{:.2}", report.mean_cost()),
            ]);
        }
    }
    table.print();
    Ok(())
}

fn cmd_bench_hotpath(flags: &Flags) -> Result<(), String> {
    use lis::hotpath::{run_hotpath, HotpathConfig};

    let defaults = HotpathConfig::default();
    let indexes: Vec<String> = match flags.get("index") {
        Some(names) => names
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
        None => defaults.indexes.clone(),
    };
    if indexes.is_empty() {
        return Err("--index needs at least one registry name".into());
    }
    let cfg = HotpathConfig {
        keys: flag(flags, "keys", defaults.keys)?,
        batch: flag(flags, "batch", defaults.batch)?,
        rounds: flag(flags, "rounds", defaults.rounds)?,
        poison_pct: flag(flags, "poison-pct", defaults.poison_pct)?,
        seed: flag(flags, "seed", defaults.seed)?,
        indexes,
    };
    println!(
        "hotpath: {} keys, batch {}, best of {} rounds, {}% poison",
        cfg.keys, cfg.batch, cfg.rounds, cfg.poison_pct
    );
    let report = run_hotpath(&cfg).map_err(|e| e.to_string())?;
    println!(
        "campaign: {} poison keys, ratio loss {:.1}x\n",
        report.poison_keys, report.ratio_loss
    );
    report.table().print();
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    report
        .write_json(std::path::Path::new(&out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

fn cmd_serve_online(flags: &Flags) -> Result<(), String> {
    use lis::online::{run_online, OnlineConfig};

    let defaults = OnlineConfig::default();
    let cfg = OnlineConfig {
        keys: flag(flags, "keys", defaults.keys)?,
        density: flag(flags, "density", defaults.density)?,
        index: flags.get("index").cloned().unwrap_or(defaults.index),
        poison_percent: flag(flags, "poison-pct", defaults.poison_percent)?,
        benign_writes: flag(flags, "benign-writes", defaults.benign_writes)?,
        probe_requests: flag(flags, "requests", defaults.probe_requests)?,
        readers: flag(flags, "readers", defaults.readers)?,
        workers: flag(flags, "workers", defaults.workers)?,
        seed: flag(flags, "seed", defaults.seed)?,
    };
    println!(
        "serve-online: {} keys ({}), {}% campaign, {} benign writes, {} probes/phase\n",
        cfg.keys, cfg.index, cfg.poison_percent, cfg.benign_writes, cfg.probe_requests
    );
    let report = run_online(&cfg).map_err(|e| e.to_string())?;
    println!(
        "{:<22} {:>9} {:>8} {:>8} {:>10} {:>9} {:>7}",
        "scenario", "drift", "recall", "collat", "applied", "rejected", "epochs"
    );
    for s in &report.scenarios {
        println!(
            "{:<22} {:>8.3}x {:>8.3} {:>8.3} {:>10} {:>9} {:>7}",
            s.name,
            s.drift(),
            s.recall(),
            s.collateral(),
            s.serve.writes_applied,
            s.serve.writes_rejected,
            s.serve.epochs
        );
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_online.json".into());
    report
        .write_json(std::path::Path::new(&out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

fn cmd_chaos(flags: &Flags) -> Result<(), String> {
    use lis::chaos::{run_chaos, run_chaos_scenario, ChaosConfig};

    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        keys: flag(flags, "keys", defaults.keys)?,
        density: flag(flags, "density", defaults.density)?,
        index: flags.get("index").cloned().unwrap_or(defaults.index),
        requests: flag(flags, "requests", defaults.requests)?,
        writes: flag(flags, "writes", defaults.writes)?,
        clients: flag(flags, "clients", defaults.clients)?,
        workers: flag(flags, "workers", defaults.workers)?,
        seed: flag(flags, "seed", defaults.seed)?,
        poison_percent: flag(flags, "poison-pct", defaults.poison_percent)?,
    };
    println!(
        "chaos: {} keys ({}), {} requests, {} writes, seed {:#x}\n",
        cfg.keys, cfg.index, cfg.requests, cfg.writes, cfg.seed
    );
    let report = match flags.get("scenario") {
        Some(name) => run_chaos_scenario(name, &cfg).map_err(|e| e.to_string())?,
        None => run_chaos(&cfg).map_err(|e| e.to_string())?,
    };
    println!(
        "{:<18} {:>7} {:>8} {:>8} {:>7} {:>6} {:>9} {:>9} {:>10}",
        "scenario",
        "avail%",
        "retries",
        "faults",
        "shed",
        "resp",
        "p99_us",
        "recov_ms",
        "rollbacks"
    );
    for s in &report.scenarios {
        println!(
            "{:<18} {:>7.3} {:>8} {:>8} {:>7} {:>6} {:>9.1} {:>9.1} {:>10}",
            s.name,
            100.0 * s.availability(),
            s.retries,
            s.faults_fired,
            s.serve.shed,
            s.serve.workers_restarted + s.serve.writer_restarts,
            s.serve.latency.p99() as f64 / 1_000.0,
            s.recovery_ms,
            s.serve.rollbacks
        );
    }
    let violations = report.violations();
    if violations.is_empty() {
        println!("\nall chaos gates hold");
    } else {
        println!("\ngate violations:");
        for v in &violations {
            println!("  {v}");
        }
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".into());
    report
        .write_json(std::path::Path::new(&out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} chaos gate violation(s)", violations.len()))
    }
}

fn cmd_durability(flags: &Flags) -> Result<(), String> {
    use lis::durability::{run_durability, DurabilityBenchConfig};

    let defaults = DurabilityBenchConfig::default();
    let cfg = DurabilityBenchConfig {
        keys: flag(flags, "keys", defaults.keys)?,
        density: flag(flags, "density", defaults.density)?,
        index: flags.get("index").cloned().unwrap_or(defaults.index),
        writes: flag(flags, "writes", defaults.writes)?,
        workers: flag(flags, "workers", defaults.workers)?,
        seed: flag(flags, "seed", defaults.seed)?,
    };
    println!(
        "durability: {} keys ({}), {} writes per cell, seed {:#x}\n",
        cfg.keys, cfg.index, cfg.writes, cfg.seed
    );
    let report = run_durability(&cfg).map_err(|e| e.to_string())?;
    println!(
        "{:<8} {:>7} {:>10} {:>9} {:>8} {:>12} {:>10} {:>7} {:>6}",
        "cell",
        "acked",
        "writes/s",
        "recov_ms",
        "replayed",
        "replay_ops/s",
        "wal_bytes",
        "killed",
        "lost"
    );
    for c in &report.cells {
        println!(
            "{:<8} {:>7} {:>10.1} {:>9.2} {:>8} {:>12.1} {:>10} {:>7} {:>6}",
            c.name,
            c.writes_acked,
            c.writes_per_s(),
            c.recover_ms,
            c.replayed_ops,
            c.replay_ops_per_s(),
            c.wal_bytes,
            c.killed,
            c.lost_acked
        );
    }
    let violations = report.violations();
    if violations.is_empty() {
        println!("\nall durability gates hold");
    } else {
        println!("\ngate violations:");
        for v in &violations {
            println!("  {v}");
        }
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_durability.json".into());
    report
        .write_json(std::path::Path::new(&out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} durability gate violation(s)", violations.len()))
    }
}

fn cmd_bench_build(flags: &Flags) -> Result<(), String> {
    use lis::buildpath::{run_buildpath, BuildpathConfig};

    let defaults = BuildpathConfig::default();
    let indexes: Vec<String> = match flags.get("index") {
        Some(names) => names
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
        None => defaults.indexes.clone(),
    };
    if indexes.is_empty() {
        return Err("--index needs at least one name".into());
    }
    let cfg = BuildpathConfig {
        keys: flag(flags, "keys", defaults.keys)?,
        rounds: flag(flags, "rounds", defaults.rounds)?,
        seed: flag(flags, "seed", defaults.seed)?,
        campaign_points: flag(flags, "points", defaults.campaign_points)?,
        indexes,
    };
    println!(
        "buildpath: {} keys (campaigns also at {}), best of {} rounds, budgets 32/{}",
        cfg.keys,
        cfg.keys / 4,
        cfg.rounds,
        cfg.campaign_points
    );
    let report = run_buildpath(&cfg).map_err(|e| e.to_string())?;
    report.table().print();
    if let (Some(lazy), Some(reference)) = (
        report.marginal_scaling("greedy-lazy"),
        report.marginal_scaling("greedy-reference"),
    ) {
        println!(
            "\ncampaign marginal scaling over 4x keys (linear = 4.0): \
             reference {reference:.2}, lazy {lazy:.2}"
        );
    }
    let out = flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_build.json".into());
    report
        .write_json(std::path::Path::new(&out))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("\nwrote {out}");
    Ok(())
}

fn cmd_list_indexes() -> Result<(), String> {
    let registry = IndexRegistry::with_defaults();
    for name in registry.names() {
        println!(
            "{name:<12} {}",
            registry.description(name).unwrap_or_default()
        );
    }
    println!();
    println!("sharded:<name>:<N>  range-partitioned composite over any entry above,");
    println!("                    served by a scoped thread pool (e.g. sharded:rmi:8)");
    Ok(())
}

fn cmd_pipeline(flags: &Flags) -> Result<(), String> {
    let ks = load_or_generate(flags)?;
    let n = ks.len();
    let seed: u64 = flag(flags, "seed", 42)?;
    let pct: f64 = flag(flags, "poison-pct", 10.0)?;
    let model_size: usize = flag(flags, "model-size", 100)?;
    let alpha: f64 = flag(flags, "alpha", 3.0)?;
    let queries: usize = flag(flags, "queries", 2_000)?;
    let num_models = (n / model_size).max(1);

    let mut pipeline = Pipeline::new(WorkloadSpec::Fixed(ks))
        .seed(seed)
        .queries(queries);

    let attack = flags.get("attack").map(String::as_str).unwrap_or("greedy");
    pipeline = match attack {
        // No attack stage at all: the report then shows a plain clean run
        // instead of a vacuous null-adversary ground truth.
        "none" => pipeline,
        "greedy" => pipeline.attack(GreedyCdfAttack {
            budget: PoisonBudget::percentage(pct, n).map_err(|e| e.to_string())?,
        }),
        "rmi" => pipeline.attack(RmiPoisonAttack {
            num_models,
            cfg: RmiAttackConfig::new(pct)
                .with_alpha(alpha)
                .with_max_exchanges(num_models.min(64)),
        }),
        "rmi-dp" => pipeline.attack(DpRmiPoisonAttack {
            num_models,
            poison_percent: pct,
            alpha,
        }),
        "removal" => pipeline.attack(RemovalAttack {
            count: (pct / 100.0 * n as f64).floor() as usize,
        }),
        "mixed" => pipeline.attack(MixedAttack {
            budget: PoisonBudget::percentage(pct, n).map_err(|e| e.to_string())?,
        }),
        other => return Err(format!("unknown attack '{other}'")),
    };

    let defense = flags.get("defense").map(String::as_str).unwrap_or("none");
    pipeline = match defense {
        "none" => pipeline,
        "trim" => pipeline.defense(TrimDefense::keys(n)),
        "iqr" => pipeline.defense(IqrDefense { k: 1.5 }),
        "density" => pipeline.defense(DensityDefense {
            window: 3,
            crowd_factor: 3.0,
        }),
        other => return Err(format!("unknown defense '{other}'")),
    };

    let shards: usize = flag(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1 (1 serves unsharded)".into());
    }
    let names = flags
        .get("index")
        .cloned()
        .unwrap_or_else(|| "rmi,btree".into());
    let registry = IndexRegistry::with_defaults();
    for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let resolved = if shards > 1 {
            format!("sharded:{name}:{shards}")
        } else {
            name.to_string()
        };
        // Fail fast on unresolvable names, before sampling and attacking.
        if !registry.resolves(&resolved) {
            return Err(format!(
                "unknown index '{resolved}' (available: {}, sharded:<name>:<N>)",
                registry.names().join(", ")
            ));
        }
        pipeline = pipeline.index(&resolved);
    }

    // Mount a cache so its effectiveness is visible in the output even on
    // a single run (repeated names hit; sweeps wrapping this command see
    // the same counters programmatically via `Pipeline::cache`).
    let cache = BuildCache::new();
    let report = pipeline
        .cache(cache.clone())
        .run()
        .map_err(|e| e.to_string())?;
    print!("{}", report.render());
    println!(
        "\nbuild cache: {} clean builds retained — {} hits, {} misses",
        cache.len(),
        cache.hits(),
        cache.misses()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_valid_args() {
        let (cmd, flags) = parse_args(&s(&["generate", "--keys", "10", "--dist", "osm"])).unwrap();
        assert_eq!(cmd, "generate");
        assert_eq!(flags.get("keys").unwrap(), "10");
        assert_eq!(flags.get("dist").unwrap(), "osm");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_args(&s(&[])).is_none());
        assert!(parse_args(&s(&["generate", "keys", "10"])).is_none());
        assert!(parse_args(&s(&["generate", "--keys"])).is_none());
    }

    #[test]
    fn flag_defaults_and_parsing() {
        let (_, flags) = parse_args(&s(&["x", "--keys", "7"])).unwrap();
        assert_eq!(flag(&flags, "keys", 1usize).unwrap(), 7);
        assert_eq!(flag(&flags, "density", 0.5f64).unwrap(), 0.5);
        assert!(flag::<usize>(&flags, "keys", 1).is_ok());
        let (_, bad) = parse_args(&s(&["x", "--keys", "abc"])).unwrap();
        assert!(flag::<usize>(&bad, "keys", 1).is_err());
    }

    #[test]
    fn generate_and_roundtrip_via_file() {
        let dir = std::env::temp_dir().join("lis_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("keys.txt").to_string_lossy().to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "50".into());
        flags.insert("out".into(), path.clone());
        cmd_generate(&flags).unwrap();

        let mut in_flags = Flags::new();
        in_flags.insert("in".into(), path);
        let ks = load_or_generate(&in_flags).unwrap();
        assert_eq!(ks.len(), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_distribution_errors() {
        let mut flags = Flags::new();
        flags.insert("dist".into(), "zipf".into());
        assert!(load_or_generate(&flags).is_err());
    }

    #[test]
    fn pipeline_command_serves_sharded_victims() {
        let mut flags = Flags::new();
        flags.insert("keys".into(), "400".into());
        flags.insert("index".into(), "rmi,btree".into());
        flags.insert("shards".into(), "4".into());
        flags.insert("queries".into(), "200".into());
        cmd_pipeline(&flags).unwrap();
        cmd_list_indexes().unwrap();
    }

    #[test]
    fn serve_bench_command_runs_two_indexes_two_ratios() {
        let mut flags = Flags::new();
        flags.insert("keys".into(), "600".into());
        flags.insert("index".into(), "rmi,btree".into());
        flags.insert("attack-ratio".into(), "0,0.5".into());
        flags.insert("requests".into(), "400".into());
        flags.insert("workers".into(), "2".into());
        flags.insert("batch".into(), "16".into());
        cmd_serve_bench(&flags).unwrap();
    }

    #[test]
    fn serve_bench_rejects_bad_ratio() {
        let mut flags = Flags::new();
        flags.insert("keys".into(), "200".into());
        flags.insert("attack-ratio".into(), "1.5".into());
        assert!(cmd_serve_bench(&flags).is_err());
        flags.insert("attack-ratio".into(), "abc".into());
        assert!(cmd_serve_bench(&flags).is_err());
    }

    #[test]
    fn serve_online_writes_json_report() {
        let dir = std::env::temp_dir().join("lis_cli_online_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_online.json").to_string_lossy().to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "3000".into());
        flags.insert("benign-writes".into(), "60".into());
        flags.insert("requests".into(), "1500".into());
        flags.insert("readers".into(), "1".into());
        flags.insert("workers".into(), "2".into());
        flags.insert("out".into(), out.clone());
        cmd_serve_online(&flags).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"online_serving\""));
        assert!(json.contains("\"name\": \"undefended\""));
        assert!(json.contains("\"name\": \"defended:density\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_command_runs_one_rung_and_writes_json() {
        let dir = std::env::temp_dir().join("lis_cli_chaos_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_chaos.json").to_string_lossy().to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "3000".into());
        flags.insert("requests".into(), "800".into());
        flags.insert("writes".into(), "32".into());
        flags.insert("clients".into(), "2".into());
        flags.insert("scenario".into(), "worker-panic".into());
        flags.insert("seed".into(), "51966".into());
        flags.insert("out".into(), out.clone());
        cmd_chaos(&flags).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"chaos\""));
        assert!(json.contains("\"name\": \"worker-panic\""));
        let _ = std::fs::remove_dir_all(&dir);

        flags.insert("scenario".into(), "nope".into());
        assert!(cmd_chaos(&flags).is_err());
    }

    #[test]
    fn durability_command_runs_the_grid_and_writes_json() {
        let dir = std::env::temp_dir().join("lis_cli_durability_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir
            .join("BENCH_durability.json")
            .to_string_lossy()
            .to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "3000".into());
        flags.insert("writes".into(), "96".into());
        flags.insert("workers".into(), "2".into());
        flags.insert("seed".into(), "61453".into()); // 0xF00D
        flags.insert("out".into(), out.clone());
        cmd_durability(&flags).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"durability\""));
        assert!(json.contains("\"name\": \"kill\""));
        assert!(json.contains("\"recovered_matches_live\": true"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_hotpath_writes_json_baseline() {
        let dir = std::env::temp_dir().join("lis_cli_hotpath_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_hotpath.json").to_string_lossy().to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "3000".into());
        flags.insert("batch".into(), "256".into());
        flags.insert("rounds".into(), "1".into());
        flags.insert("index".into(), "rmi,btree".into());
        flags.insert("out".into(), out.clone());
        cmd_bench_hotpath(&flags).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"hotpath\""));
        assert_eq!(json.matches("\"index\"").count(), 4);
        let _ = std::fs::remove_dir_all(&dir);

        flags.insert("index".into(), " ".into());
        assert!(cmd_bench_hotpath(&flags).is_err());
    }

    #[test]
    fn bench_build_writes_json_baseline() {
        let dir = std::env::temp_dir().join("lis_cli_buildpath_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_build.json").to_string_lossy().to_string();
        let mut flags = Flags::new();
        flags.insert("keys".into(), "6000".into());
        flags.insert("rounds".into(), "1".into());
        flags.insert("points".into(), "48".into());
        flags.insert("index".into(), "rmi,btree".into());
        flags.insert("out".into(), out.clone());
        cmd_bench_build(&flags).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"bench\": \"buildpath\""));
        assert!(json.contains("\"build_speedup\""));
        assert!(json.contains("\"marginal_ns_per_point\""));
        let _ = std::fs::remove_dir_all(&dir);

        flags.insert("index".into(), " ".into());
        assert!(cmd_bench_build(&flags).is_err());
    }

    #[test]
    fn attack_commands_run() {
        let mut flags = Flags::new();
        flags.insert("keys".into(), "300".into());
        cmd_attack_regression(&flags).unwrap();
        flags.insert("model-size".into(), "50".into());
        cmd_attack_rmi(&flags).unwrap();
        cmd_attack_rmi_dp(&flags).unwrap();
        cmd_inspect(&flags).unwrap();
        flags.insert("remove".into(), "20".into());
        cmd_attack_removal(&flags).unwrap();
    }
}
