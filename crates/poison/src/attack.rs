//! The unified [`Attack`] trait: every adversary in the crate behind one
//! interface, so harnesses compose *any* attack with *any* workload,
//! defense, and victim structure.
//!
//! Wrappers are provided for the paper's attacks and the future-work
//! extensions: [`GreedyCdfAttack`] (Algorithm 1), [`RmiPoisonAttack`]
//! (Algorithm 2), [`DpRmiPoisonAttack`] (the exact-DP volume allocator),
//! [`RemovalAttack`] and [`MixedAttack`] (deletion-capable adversaries),
//! and the [`NullAttack`] baseline.
//!
//! ## Example
//!
//! ```
//! use lis_core::keys::KeySet;
//! use lis_poison::attack::{Attack, GreedyCdfAttack};
//! use lis_poison::PoisonBudget;
//!
//! let ks = KeySet::from_keys((0..90u64).map(|i| i * 5).collect()).unwrap();
//! let attack = GreedyCdfAttack { budget: PoisonBudget::keys(10) };
//! let outcome = attack.run(&ks).unwrap();
//! assert!(outcome.ratio_loss() > 5.0);
//! assert_eq!(outcome.poisoned.len(), ks.len() + outcome.inserted.len());
//! ```

use crate::greedy::{greedy_poison, PoisonBudget};
use crate::removal::{greedy_mixed, greedy_removal, MixedAction};
use crate::rmi_attack::{rmi_attack, RmiAttackConfig};
use crate::volume::dp_rmi_attack;
use lis_core::error::Result;
use lis_core::keys::{Key, KeySet};
use lis_core::metrics::ratio_loss;

/// The result every [`Attack`] produces: the manipulated keyset plus the
/// ground truth a defense evaluation needs.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Poisoning keys the adversary inserted (ground truth for defenses).
    pub inserted: Vec<Key>,
    /// Legitimate keys the adversary deleted (empty for insert-only
    /// attacks).
    pub removed: Vec<Key>,
    /// The keyset after the campaign: `(K ∪ inserted) ∖ removed`.
    pub poisoned: KeySet,
    /// Loss of the victim model family on the clean keyset.
    pub clean_loss: f64,
    /// Loss on the poisoned keyset.
    pub poisoned_loss: f64,
}

impl AttackOutcome {
    /// The paper's Ratio Loss, `poisoned / clean` with the epsilon guard.
    pub fn ratio_loss(&self) -> f64 {
        ratio_loss(self.poisoned_loss, self.clean_loss)
    }

    /// Total adversarial actions (insertions + deletions).
    pub fn actions(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }
}

/// A poisoning adversary: consumes the clean keyset, produces the poisoned
/// one plus ground truth. Object safe, so harnesses can sweep
/// `Vec<Box<dyn Attack>>` campaigns.
pub trait Attack {
    /// Short display name for tables and CLI flags.
    fn name(&self) -> &str;

    /// Mounts the attack against `clean`.
    fn run(&self, clean: &KeySet) -> Result<AttackOutcome>;
}

/// The no-op adversary — the clean baseline row of every sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAttack;

impl Attack for NullAttack {
    fn name(&self) -> &str {
        "none"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let loss = clean_regression_loss(clean);
        Ok(AttackOutcome {
            inserted: Vec::new(),
            removed: Vec::new(),
            poisoned: clean.clone(),
            clean_loss: loss,
            poisoned_loss: loss,
        })
    }
}

/// Algorithm 1: greedy multi-point CDF poisoning of the regression model.
#[derive(Debug, Clone, Copy)]
pub struct GreedyCdfAttack {
    /// Number of poisoning keys to insert.
    pub budget: PoisonBudget,
}

impl Attack for GreedyCdfAttack {
    fn name(&self) -> &str {
        "greedy-cdf"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let plan = greedy_poison(clean, self.budget)?;
        Ok(AttackOutcome {
            poisoned: plan.poisoned_keyset(clean)?,
            clean_loss: plan.clean_mse,
            poisoned_loss: plan.final_mse(),
            inserted: plan.keys,
            removed: Vec::new(),
        })
    }
}

/// Algorithm 2: the two-stage RMI attack with greedy volume allocation and
/// CHANGELOSS neighbour exchanges.
#[derive(Debug, Clone, Copy)]
pub struct RmiPoisonAttack {
    /// Number of second-stage models the victim partitions into.
    pub num_models: usize,
    /// Attack parameters (`φ`, `α`, exchange bounds).
    pub cfg: RmiAttackConfig,
}

impl Attack for RmiPoisonAttack {
    fn name(&self) -> &str {
        "rmi-greedy"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let res = rmi_attack(clean, self.num_models, &self.cfg)?;
        Ok(AttackOutcome {
            inserted: res.poison_keys(),
            removed: Vec::new(),
            poisoned: res.poisoned_keyset(clean)?,
            clean_loss: res.clean_rmi_loss,
            poisoned_loss: res.poisoned_rmi_loss,
        })
    }
}

/// The exact-DP volume allocation variant — a strictly stronger adversary
/// than Algorithm 2 on skewed data.
#[derive(Debug, Clone, Copy)]
pub struct DpRmiPoisonAttack {
    /// Number of second-stage models the victim partitions into.
    pub num_models: usize,
    /// Overall poisoning percentage `φ·100`.
    pub poison_percent: f64,
    /// Per-model threshold multiplier `α`.
    pub alpha: f64,
}

impl Attack for DpRmiPoisonAttack {
    fn name(&self) -> &str {
        "rmi-dp"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let res = dp_rmi_attack(clean, self.num_models, self.poison_percent, self.alpha)?;
        Ok(AttackOutcome {
            inserted: res.poison_keys(),
            removed: Vec::new(),
            poisoned: res.poisoned_keyset(clean)?,
            clean_loss: res.clean_rmi_loss,
            poisoned_loss: res.poisoned_rmi_loss,
        })
    }
}

/// The deletion-capable adversary of the paper's future-work section.
#[derive(Debug, Clone, Copy)]
pub struct RemovalAttack {
    /// Number of legitimate keys to delete.
    pub count: usize,
}

impl Attack for RemovalAttack {
    fn name(&self) -> &str {
        "greedy-removal"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let campaign = greedy_removal(clean, self.count)?;
        let mut poisoned = clean.clone();
        for &k in &campaign.removed {
            poisoned.remove(k)?;
        }
        Ok(AttackOutcome {
            inserted: Vec::new(),
            removed: campaign.removed.clone(),
            poisoned,
            clean_loss: campaign.clean_mse,
            poisoned_loss: campaign.final_mse(),
        })
    }
}

/// The combined insert/delete adversary: each step takes whichever single
/// action increases the loss more.
#[derive(Debug, Clone, Copy)]
pub struct MixedAttack {
    /// Total action budget (insertions + deletions).
    pub budget: PoisonBudget,
}

impl Attack for MixedAttack {
    fn name(&self) -> &str {
        "greedy-mixed"
    }

    fn run(&self, clean: &KeySet) -> Result<AttackOutcome> {
        let campaign = greedy_mixed(clean, self.budget)?;
        let mut poisoned = clean.clone();
        let mut inserted = Vec::new();
        let mut removed = Vec::new();
        // Ground truth must net out action pairs on the same key: removing
        // earlier poison is not a legitimate casualty, and re-inserting a
        // previously removed legitimate key is not poison — otherwise the
        // `poisoned = (K ∪ inserted) ∖ removed` invariant breaks.
        for action in &campaign.actions {
            match *action {
                MixedAction::Insert(k) => {
                    poisoned.insert(k)?;
                    if let Some(i) = removed.iter().position(|&p| p == k) {
                        removed.swap_remove(i);
                    } else {
                        inserted.push(k);
                    }
                }
                MixedAction::Remove(k) => {
                    poisoned.remove(k)?;
                    if let Some(i) = inserted.iter().position(|&p| p == k) {
                        inserted.swap_remove(i);
                    } else {
                        removed.push(k);
                    }
                }
            }
        }
        Ok(AttackOutcome {
            inserted,
            removed,
            poisoned,
            clean_loss: campaign.clean_mse,
            poisoned_loss: campaign.final_mse(),
        })
    }
}

/// Regression MSE of a keyset, `0.0` for degenerate (< 2 key) sets.
fn clean_regression_loss(ks: &KeySet) -> f64 {
    if ks.len() < 2 {
        return 0.0;
    }
    lis_core::linreg::LinearModel::fit(ks)
        .map(|m| m.mse)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    fn check_consistency(outcome: &AttackOutcome, clean: &KeySet) {
        assert_eq!(
            outcome.poisoned.len(),
            clean.len() + outcome.inserted.len() - outcome.removed.len()
        );
        for &k in &outcome.inserted {
            assert!(outcome.poisoned.contains(k), "inserted {k} missing");
            assert!(!clean.contains(k), "inserted {k} collides with legit");
        }
        for &k in &outcome.removed {
            assert!(!outcome.poisoned.contains(k), "removed {k} still present");
            assert!(clean.contains(k), "removed {k} was never legit");
        }
    }

    #[test]
    fn null_attack_is_identity() {
        // Quadratic spacing keeps the clean loss above the epsilon guard so
        // the ratio is a meaningful 1.0.
        let ks = KeySet::from_keys((1..50u64).map(|i| i * i).collect()).unwrap();
        let out = NullAttack.run(&ks).unwrap();
        assert_eq!(out.poisoned, ks);
        assert_eq!(out.ratio_loss(), 1.0);
        assert_eq!(out.actions(), 0);
    }

    #[test]
    fn greedy_cdf_attack_via_trait() {
        let ks = uniform(90, 5);
        let attack = GreedyCdfAttack {
            budget: PoisonBudget::keys(10),
        };
        assert_eq!(attack.name(), "greedy-cdf");
        let out = attack.run(&ks).unwrap();
        check_consistency(&out, &ks);
        assert_eq!(out.inserted.len(), 10);
        assert!(out.ratio_loss() > 5.0, "ratio {}", out.ratio_loss());
    }

    #[test]
    fn rmi_attacks_via_trait() {
        let ks = uniform(400, 9);
        let greedy = RmiPoisonAttack {
            num_models: 8,
            cfg: RmiAttackConfig::new(10.0).with_max_exchanges(8),
        };
        let dp = DpRmiPoisonAttack {
            num_models: 8,
            poison_percent: 10.0,
            alpha: 3.0,
        };
        for attack in [&greedy as &dyn Attack, &dp as &dyn Attack] {
            let out = attack.run(&ks).unwrap();
            check_consistency(&out, &ks);
            assert!(out.ratio_loss() > 1.0, "{}", attack.name());
            assert!(out.inserted.len() <= 40, "{} over budget", attack.name());
        }
    }

    #[test]
    fn removal_attack_via_trait() {
        let ks = uniform(200, 11);
        let out = RemovalAttack { count: 20 }.run(&ks).unwrap();
        check_consistency(&out, &ks);
        assert_eq!(out.removed.len(), 20);
        assert!(out.inserted.is_empty());
        assert!(out.poisoned_loss >= out.clean_loss * 0.5);
    }

    #[test]
    fn mixed_attack_accounts_actions() {
        let ks = uniform(150, 13);
        let out = MixedAttack {
            budget: PoisonBudget::keys(30),
        }
        .run(&ks)
        .unwrap();
        check_consistency(&out, &ks);
        assert!(out.actions() <= 30);
        assert!(out.ratio_loss() >= 1.0);
    }

    #[test]
    fn attacks_are_object_safe_and_sweepable() {
        let ks = uniform(120, 6);
        let fleet: Vec<Box<dyn Attack>> = vec![
            Box::new(NullAttack),
            Box::new(GreedyCdfAttack {
                budget: PoisonBudget::keys(5),
            }),
            Box::new(RemovalAttack { count: 5 }),
        ];
        let mut ratios = Vec::new();
        for attack in &fleet {
            ratios.push(attack.run(&ks).unwrap().ratio_loss());
        }
        assert_eq!(ratios.len(), 3);
        assert!(ratios[1] >= ratios[0]);
    }
}
