//! The full loss sequence `L(kp)` over the key domain and its discrete
//! derivative (Definition 3 / Figure 3).
//!
//! The paper visualizes the poisoning loss as a *sequence* indexed by the
//! candidate key, undefined (`⊥`) at occupied keys, and proves per-gap
//! convexity from its discrete second difference. This module materializes
//! that sequence for analysis and plotting; the optimal attack itself never
//! needs it (it only visits gap endpoints), but Figure 3, the brute-force
//! baseline, and the convexity property tests all do.

use crate::oracle::PoisonOracle;
use lis_core::keys::{Key, KeySet};

/// One entry of the loss sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossPoint {
    /// Candidate poisoning key.
    pub key: Key,
    /// `Some(mse)` for unoccupied keys, `None` (the paper's `⊥`) for
    /// occupied ones.
    pub loss: Option<f64>,
}

/// The loss sequence across `[min K, max K]`, plus the clean loss.
#[derive(Debug, Clone)]
pub struct LossSequence {
    /// Entries for every key in the closed span of the keyset.
    pub points: Vec<LossPoint>,
    /// Loss of the regression on the clean keyset (the paper's dashed
    /// baseline in Figure 3).
    pub clean_mse: f64,
}

impl LossSequence {
    /// Evaluates the sequence for every key in `[min K, max K]`.
    ///
    /// `O(n + span)`: the oracle costs `O(n)` to build and `O(1)` per
    /// candidate (the insertion rank is tracked incrementally along the
    /// walk). Intended for analysis at illustration scale; the optimal
    /// attack uses [`crate::single::optimal_single_point`] instead.
    pub fn evaluate(ks: &KeySet) -> Self {
        let oracle = PoisonOracle::new(ks);
        let keys = ks.keys();
        let mut points = Vec::with_capacity((ks.max_key() - ks.min_key() + 1) as usize);
        let mut idx = 0usize; // number of legitimate keys < current candidate
        for key in ks.min_key()..=ks.max_key() {
            if idx < keys.len() && keys[idx] == key {
                points.push(LossPoint { key, loss: None });
                idx += 1;
            } else {
                points.push(LossPoint {
                    key,
                    loss: Some(oracle.loss_with_rank(key, idx)),
                });
            }
        }
        Self {
            points,
            clean_mse: oracle.clean_mse(),
        }
    }

    /// Discrete first derivative `ΔL(kp) = L(kp+1) − L(kp)` (Definition 3),
    /// defined only where both neighbours are unoccupied.
    pub fn first_derivative(&self) -> Vec<LossPoint> {
        self.points
            .windows(2)
            .map(|w| LossPoint {
                key: w[0].key,
                loss: match (w[0].loss, w[1].loss) {
                    (Some(a), Some(b)) => Some(b - a),
                    _ => None,
                },
            })
            .collect()
    }

    /// Checks Theorem 2 numerically: within every maximal run of unoccupied
    /// keys the second difference must be non-negative (convexity), up to
    /// `tol` of absolute slack for float noise.
    pub fn is_convex_per_gap(&self, tol: f64) -> bool {
        for run in self.unoccupied_runs() {
            for w in run.windows(3) {
                let second = w[2] - 2.0 * w[1] + w[0];
                if second < -tol {
                    return false;
                }
            }
        }
        true
    }

    /// The maximum of the sequence (key, loss), if any key is unoccupied.
    pub fn argmax(&self) -> Option<(Key, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.loss.map(|l| (p.key, l)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }

    /// Loss values of each maximal unoccupied run, in key order.
    fn unoccupied_runs(&self) -> Vec<Vec<f64>> {
        let mut runs = Vec::new();
        let mut current = Vec::new();
        for p in &self.points {
            match p.loss {
                Some(l) => current.push(l),
                None => {
                    if !current.is_empty() {
                        runs.push(std::mem::take(&mut current));
                    }
                }
            }
        }
        if !current.is_empty() {
            runs.push(current);
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_like_keys() -> KeySet {
        // 10 keys in [0, 40], the scale of the paper's Figure 2/3.
        KeySet::from_keys(vec![0, 4, 9, 13, 18, 22, 27, 31, 36, 40]).unwrap()
    }

    #[test]
    fn sequence_covers_span_and_marks_occupied() {
        let ks = fig2_like_keys();
        let seq = LossSequence::evaluate(&ks);
        assert_eq!(seq.points.len(), 41);
        for p in &seq.points {
            assert_eq!(p.loss.is_none(), ks.contains(p.key), "key {}", p.key);
        }
    }

    #[test]
    fn per_gap_convexity_holds() {
        for keys in [
            vec![0u64, 4, 9, 13, 18, 22, 27, 31, 36, 40],
            vec![2, 6, 7, 12],
            (0..30u64).map(|i| i * 7).collect::<Vec<_>>(),
            vec![1, 100, 101, 102, 400],
        ] {
            let ks = KeySet::from_keys(keys.clone()).unwrap();
            let seq = LossSequence::evaluate(&ks);
            assert!(
                seq.is_convex_per_gap(1e-7),
                "convexity failed for {:?}",
                keys
            );
        }
    }

    #[test]
    fn argmax_matches_optimal_single_point() {
        let ks = fig2_like_keys();
        let seq = LossSequence::evaluate(&ks);
        let (bf_key, bf_loss) = seq.argmax().unwrap();
        let plan = crate::single::optimal_single_point(&ks).unwrap();
        assert!(
            (plan.poisoned_mse - bf_loss).abs() < 1e-9,
            "endpoint attack {} vs sequence max {} (keys {} vs {})",
            plan.poisoned_mse,
            bf_loss,
            plan.key,
            bf_key
        );
    }

    #[test]
    fn derivative_crosses_zero_inside_span() {
        // Figure 3: the derivative starts positive-ish and ends negative or
        // vice versa — at minimum it must change sign somewhere or the max
        // would sit at the boundary of a single gap.
        let ks = fig2_like_keys();
        let seq = LossSequence::evaluate(&ks);
        let deriv = seq.first_derivative();
        let signs: Vec<f64> = deriv.iter().filter_map(|p| p.loss).collect();
        assert!(signs.iter().any(|&d| d > 0.0));
        assert!(signs.iter().any(|&d| d < 0.0));
    }

    #[test]
    fn clean_mse_is_baseline() {
        let ks = fig2_like_keys();
        let seq = LossSequence::evaluate(&ks);
        let fit = lis_core::linreg::LinearModel::fit(&ks).unwrap();
        assert!((seq.clean_mse - fit.mse).abs() < 1e-12);
    }
}
