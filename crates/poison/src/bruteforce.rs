//! Brute-force poisoning baselines ("A First Attempt", Section IV-C).
//!
//! These implementations exist to *validate* the optimal attack, exactly as
//! the paper uses them: the single-point brute force scans every unoccupied
//! in-range key (`O(m)` candidates, each `O(1)` through the oracle — the
//! naive `O(mn)` variant recomputes the fit from scratch and is also
//! provided for the complexity ablation), and the multi-point brute force
//! explores all `C(free, p)` insertion sets on illustration-scale inputs.

use crate::oracle::PoisonOracle;
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::LinearModel;

/// Best single poisoning key found by scanning the whole domain span with
/// O(1) oracle evaluations.
pub fn bruteforce_single_point(ks: &KeySet) -> Result<(Key, f64)> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let oracle = PoisonOracle::new(ks);
    let keys = ks.keys();
    let mut idx = 0usize;
    let mut best: Option<(Key, f64)> = None;
    for kp in ks.min_key()..=ks.max_key() {
        if idx < keys.len() && keys[idx] == kp {
            idx += 1;
            continue;
        }
        let loss = oracle.loss_with_rank(kp, idx);
        if best.is_none_or(|(_, b)| loss > b) {
            best = Some((kp, loss));
        }
    }
    best.ok_or(LisError::NoPoisoningCandidates)
}

/// The truly naive `O(mn)` attack: refits the regression from scratch for
/// every candidate. Exists only for the runtime-complexity ablation.
pub fn bruteforce_single_point_naive(ks: &KeySet) -> Result<(Key, f64)> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let mut best: Option<(Key, f64)> = None;
    for kp in ks.min_key()..=ks.max_key() {
        if ks.contains(kp) {
            continue;
        }
        let augmented = ks.with_key(kp)?;
        let loss = LinearModel::fit(&augmented)?.mse;
        if best.is_none_or(|(_, b)| loss > b) {
            best = Some((kp, loss));
        }
    }
    best.ok_or(LisError::NoPoisoningCandidates)
}

/// Exhaustive multi-point attack: maximises the refit MSE over every
/// `p`-subset of unoccupied in-range keys. Cost grows as `C(free, p)`; the
/// call refuses inputs whose search space exceeds `max_combinations`.
#[allow(clippy::needless_range_loop)] // combination-enumeration indices are clearer explicit
pub fn bruteforce_multi_point(
    ks: &KeySet,
    p: usize,
    max_combinations: u64,
) -> Result<(Vec<Key>, f64)> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let free: Vec<Key> = (ks.min_key()..=ks.max_key())
        .filter(|&k| !ks.contains(k))
        .collect();
    if free.len() < p || p == 0 {
        return Err(LisError::NoPoisoningCandidates);
    }
    let combos = binomial(free.len() as u64, p as u64);
    if combos > max_combinations {
        return Err(LisError::InvalidBudget(format!(
            "brute force over {combos} combinations exceeds cap {max_combinations}"
        )));
    }

    let mut chosen = vec![0usize; p];
    let mut best_keys = Vec::new();
    let mut best_loss = f64::NEG_INFINITY;
    // Iterative combination enumeration.
    for i in 0..p {
        chosen[i] = i;
    }
    loop {
        let mut augmented = ks.clone();
        for &i in &chosen {
            augmented.insert(free[i])?;
        }
        let loss = LinearModel::fit(&augmented)?.mse;
        if loss > best_loss {
            best_loss = loss;
            best_keys = chosen.iter().map(|&i| free[i]).collect();
        }
        // Advance to the next combination.
        let mut i = p;
        loop {
            if i == 0 {
                return Ok((best_keys, best_loss));
            }
            i -= 1;
            if chosen[i] != i + free.len() - p {
                chosen[i] += 1;
                for j in i + 1..p {
                    chosen[j] = chosen[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::{greedy_poison, PoisonBudget};
    use crate::single::optimal_single_point;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 0), 1);
        assert_eq!(binomial(4, 5), 0);
        assert_eq!(binomial(40, 20), 137_846_528_820);
    }

    #[test]
    fn oracle_and_naive_bruteforce_agree() {
        let ks = KeySet::from_keys(vec![3, 9, 14, 30, 47, 60]).unwrap();
        let (k_fast, l_fast) = bruteforce_single_point(&ks).unwrap();
        let (k_naive, l_naive) = bruteforce_single_point_naive(&ks).unwrap();
        assert_eq!(k_fast, k_naive);
        assert!((l_fast - l_naive).abs() < 1e-9);
    }

    #[test]
    fn endpoint_attack_matches_full_scan() {
        for keys in [
            vec![0u64, 11, 19, 44, 68, 90],
            (0..40u64).map(|i| i * 3 + (i % 5)).collect::<Vec<_>>(),
        ] {
            let ks = KeySet::from_keys(keys).unwrap();
            let plan = optimal_single_point(&ks).unwrap();
            let (_, bf_loss) = bruteforce_single_point(&ks).unwrap();
            assert!((plan.poisoned_mse - bf_loss).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_two_points_close_to_exhaustive() {
        // Paper Section IV-D: greedy matched brute force on every tested
        // dataset. Verify on an illustration-scale keyset.
        let ks = KeySet::from_keys(vec![0, 6, 11, 19, 25]).unwrap();
        let greedy = greedy_poison(&ks, PoisonBudget::keys(2)).unwrap();
        let (_, bf_loss) = bruteforce_multi_point(&ks, 2, 1_000_000).unwrap();
        assert!(
            greedy.final_mse() >= 0.95 * bf_loss,
            "greedy {} vs exhaustive {}",
            greedy.final_mse(),
            bf_loss
        );
    }

    #[test]
    fn multi_point_respects_cap() {
        let ks = KeySet::from_keys((0..50u64).map(|i| i * 10).collect()).unwrap();
        assert!(matches!(
            bruteforce_multi_point(&ks, 5, 10),
            Err(LisError::InvalidBudget(_))
        ));
    }

    #[test]
    fn multi_point_rejects_empty_budget() {
        let ks = KeySet::from_keys(vec![0, 5, 9]).unwrap();
        assert!(bruteforce_multi_point(&ks, 0, 100).is_err());
    }
}
