//! Greedy multiple-point poisoning (Algorithm 1,
//! `GreedyPoisoningRegressionCDF`).
//!
//! The attack inserts `p` poisoning keys one at a time; each iteration runs
//! the optimal single-point attack against the keyset *as poisoned so far*
//! (legitimate ∪ previously chosen poison keys) and commits the
//! loss-maximising key. The paper does not prove global optimality of the
//! greedy composition but reports that it matched brute force on every
//! tested dataset — our `ablation_greedy_vs_bruteforce` bench and the
//! property tests below reproduce that observation.
//!
//! Total complexity: `O(p·n)` (each iteration rebuilds the `O(n)` oracle
//! and scans `O(n)` gap endpoints).

use crate::single::optimal_single_point_with;
use crate::PoisonOracle;
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};

/// Poisoning budget expressed the way the paper parameterizes experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonBudget {
    /// Number of poisoning keys to insert.
    pub count: usize,
}

impl PoisonBudget {
    /// Budget as an absolute key count.
    pub fn keys(count: usize) -> Self {
        Self { count }
    }

    /// Budget as a percentage of the legitimate key count, e.g.
    /// `percentage(10.0, n)` for the paper's "10% poisoning". Rounds down.
    /// Errors when the percentage is negative or exceeds the paper's 20%
    /// allowable maximum (Section III-C).
    pub fn percentage(percent: f64, n: usize) -> Result<Self> {
        if !(0.0..=20.0).contains(&percent) {
            return Err(LisError::InvalidBudget(format!(
                "poisoning percentage {percent} outside [0, 20]"
            )));
        }
        Ok(Self {
            count: (percent / 100.0 * n as f64).floor() as usize,
        })
    }
}

/// Result of the greedy multi-point attack.
#[derive(Debug, Clone)]
pub struct GreedyPlan {
    /// Chosen poisoning keys, in insertion order.
    pub keys: Vec<Key>,
    /// MSE after each insertion (`losses[i]` = loss with `i + 1` poison
    /// keys); useful for plotting attack progress.
    pub losses: Vec<f64>,
    /// MSE of the regression on the clean keyset.
    pub clean_mse: f64,
}

impl GreedyPlan {
    /// Final poisoned MSE (clean MSE when the budget was zero).
    pub fn final_mse(&self) -> f64 {
        self.losses.last().copied().unwrap_or(self.clean_mse)
    }

    /// Final Ratio Loss.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.final_mse(), self.clean_mse)
    }

    /// The poisoned keyset `K ∪ P`.
    pub fn poisoned_keyset(&self, clean: &KeySet) -> Result<KeySet> {
        let mut out = clean.clone();
        out.insert_all(self.keys.iter().copied())?;
        Ok(out)
    }
}

/// Runs Algorithm 1: greedily inserts `budget.count` poisoning keys.
///
/// Stops early (without error) if the keyset runs out of unoccupied
/// in-range slots, mirroring a real attacker hitting a saturated region;
/// the returned plan then holds fewer keys than requested.
pub fn greedy_poison(ks: &KeySet, budget: PoisonBudget) -> Result<GreedyPlan> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let clean_mse = PoisonOracle::new(ks).clean_mse();
    let mut current = ks.clone();
    let mut keys = Vec::with_capacity(budget.count);
    let mut losses = Vec::with_capacity(budget.count);
    for _ in 0..budget.count {
        let oracle = PoisonOracle::new(&current);
        match optimal_single_point_with(&current, &oracle) {
            Ok(plan) => {
                current.insert(plan.key)?;
                keys.push(plan.key);
                losses.push(plan.poisoned_mse);
            }
            Err(LisError::NoPoisoningCandidates) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(GreedyPlan {
        keys,
        losses,
        clean_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn budget_percentage() {
        let b = PoisonBudget::percentage(10.0, 90).unwrap();
        assert_eq!(b.count, 9);
        assert!(PoisonBudget::percentage(25.0, 100).is_err());
        assert!(PoisonBudget::percentage(-1.0, 100).is_err());
        assert_eq!(PoisonBudget::percentage(0.0, 100).unwrap().count, 0);
    }

    #[test]
    fn zero_budget_is_identity() {
        // Quadratic spacing so the clean loss is safely above the epsilon
        // guard and the ratio is a meaningful 1.0.
        let ks = KeySet::from_keys((1..50u64).map(|i| i * i).collect()).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(0)).unwrap();
        assert!(plan.keys.is_empty());
        assert_eq!(plan.final_mse(), plan.clean_mse);
        assert_eq!(plan.ratio_loss(), 1.0);
    }

    #[test]
    fn losses_are_monotone_nondecreasing() {
        // Each greedy step picks the max-loss insertion; with more poison
        // the optimal refit loss cannot drop below the previous step's
        // chosen value on these workloads.
        let ks = uniform(90, 5);
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert_eq!(plan.keys.len(), 10);
        for w in plan.losses.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "loss dropped: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn fig4_scale_ratio_exceeds_five() {
        // Figure 4: 90 uniform keys, 10 poisoning keys → error ×7.4. Exact
        // multipliers vary with the keyset; conservatively require > 5×.
        let ks = uniform(90, 5); // domain [0, 445], density ~20%
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert!(
            plan.ratio_loss() > 5.0,
            "ratio loss {} below Figure-4 scale",
            plan.ratio_loss()
        );
    }

    #[test]
    fn poison_keys_cluster() {
        // Paper observation (Fig. 4): greedy concentrates poison in a dense
        // area. Verify the chosen keys span much less than the domain.
        let ks = uniform(90, 5);
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        let lo = *plan.keys.iter().min().unwrap();
        let hi = *plan.keys.iter().max().unwrap();
        let span = (hi - lo) as f64;
        let domain = (ks.max_key() - ks.min_key()) as f64;
        assert!(span < domain / 2.0, "poison span {span} vs domain {domain}");
    }

    #[test]
    fn stops_when_saturated() {
        // Tiny domain: only 3 free slots but budget of 10.
        let ks = KeySet::from_keys(vec![0, 2, 4, 6]).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert_eq!(plan.keys.len(), 3);
    }

    #[test]
    fn poisoned_keyset_contains_everything() {
        let ks = uniform(40, 9);
        let plan = greedy_poison(&ks, PoisonBudget::keys(5)).unwrap();
        let poisoned = plan.poisoned_keyset(&ks).unwrap();
        assert_eq!(poisoned.len(), ks.len() + plan.keys.len());
        for &k in ks.keys() {
            assert!(poisoned.contains(k));
        }
        for &k in &plan.keys {
            assert!(poisoned.contains(k));
            assert!(!ks.contains(k), "poison key {k} collides with legit key");
        }
    }

    #[test]
    fn greedy_matches_exhaustive_two_point_on_tiny_set() {
        // For a tiny keyset, compare greedy(2) against the best pair found
        // by exhaustive search. Greedy is a heuristic, but the paper
        // reports it matches brute force on tested data; we allow a small
        // slack rather than asserting exact equality.
        let ks = KeySet::from_keys(vec![0, 7, 13, 22, 30]).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(2)).unwrap();

        let mut best = 0.0f64;
        for a in ks.min_key()..=ks.max_key() {
            if ks.contains(a) {
                continue;
            }
            let with_a = ks.with_key(a).unwrap();
            for b in ks.min_key()..=ks.max_key() {
                if with_a.contains(b) {
                    continue;
                }
                let both = with_a.with_key(b).unwrap();
                let mse = lis_core::linreg::LinearModel::fit(&both).unwrap().mse;
                best = best.max(mse);
            }
        }
        assert!(
            plan.final_mse() >= 0.95 * best,
            "greedy {} vs exhaustive pair {}",
            plan.final_mse(),
            best
        );
    }
}
