//! Greedy multiple-point poisoning (Algorithm 1,
//! `GreedyPoisoningRegressionCDF`).
//!
//! The attack inserts `p` poisoning keys one at a time; each iteration runs
//! the optimal single-point attack against the keyset *as poisoned so far*
//! (legitimate ∪ previously chosen poison keys) and commits the
//! loss-maximising key. The paper does not prove global optimality of the
//! greedy composition but reports that it matched brute force on every
//! tested dataset — our `ablation_greedy_vs_bruteforce` bench and the
//! property tests below reproduce that observation.
//!
//! ## Engines
//!
//! Three engines share the same gap/candidate machinery, all running on an
//! [`IncrementalOracle`] (moments maintained under insertion, no per-step
//! rebuild):
//!
//! * [`greedy_poison`] — **exact** Algorithm 1: every step scans all gap
//!   endpoints with `O(1)` evaluations against per-gap cached insertion
//!   ranks and suffix sums (updated in one sweep per accepted point).
//!   `O(n + p·g)` where `g` is the gap count — the `O(n)` oracle rebuild,
//!   the per-step gap re-enumeration, and the `O(n)` keyset insert of the
//!   old loop are all gone;
//! * [`greedy_poison_lazy`] — the CELF-style lazy variant: candidates live
//!   in a max-heap keyed by their most recent evaluation and are
//!   re-evaluated only when they surface, taking the campaign toward
//!   `O(n + p·log n)`. Loss landscapes drift as poison accumulates, so a
//!   stale priority is a (tight, empirically reliable) estimate rather
//!   than a proven bound: the lazy campaign is *near-exact* — the
//!   `buildpath` bench and `tests/property_buildpath.rs` hold its final
//!   loss against the exact engine — and exists for build-plane sweeps
//!   where campaign generation dominates wall-clock;
//! * [`greedy_poison_reference`] — the pre-optimization loop (oracle
//!   rebuilt per step, gaps re-enumerated, keyset re-inserted), kept
//!   callable as the bench's `O(p·n)` reference.

use crate::oracle::IncrementalOracle;
use crate::single::optimal_single_point_with;
use crate::PoisonOracle;
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use std::collections::BinaryHeap;

/// Poisoning budget expressed the way the paper parameterizes experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoisonBudget {
    /// Number of poisoning keys to insert.
    pub count: usize,
}

impl PoisonBudget {
    /// Budget as an absolute key count.
    pub fn keys(count: usize) -> Self {
        Self { count }
    }

    /// Budget as a percentage of the legitimate key count, e.g.
    /// `percentage(10.0, n)` for the paper's "10% poisoning". Rounds down.
    /// Errors when the percentage is negative or exceeds the paper's 20%
    /// allowable maximum (Section III-C).
    pub fn percentage(percent: f64, n: usize) -> Result<Self> {
        if !(0.0..=20.0).contains(&percent) {
            return Err(LisError::InvalidBudget(format!(
                "poisoning percentage {percent} outside [0, 20]"
            )));
        }
        Ok(Self {
            count: (percent / 100.0 * n as f64).floor() as usize,
        })
    }
}

/// Result of the greedy multi-point attack.
#[derive(Debug, Clone)]
pub struct GreedyPlan {
    /// Chosen poisoning keys, in insertion order.
    pub keys: Vec<Key>,
    /// MSE after each insertion (`losses[i]` = loss with `i + 1` poison
    /// keys); useful for plotting attack progress.
    pub losses: Vec<f64>,
    /// MSE of the regression on the clean keyset.
    pub clean_mse: f64,
}

impl GreedyPlan {
    /// Final poisoned MSE (clean MSE when the budget was zero).
    pub fn final_mse(&self) -> f64 {
        self.losses.last().copied().unwrap_or(self.clean_mse)
    }

    /// Final Ratio Loss.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.final_mse(), self.clean_mse)
    }

    /// The poisoned keyset `K ∪ P`.
    pub fn poisoned_keyset(&self, clean: &KeySet) -> Result<KeySet> {
        let mut out = clean.clone();
        out.insert_all(self.keys.iter().copied())?;
        Ok(out)
    }
}

/// One maximal run of unoccupied keys in the *current* (poisoned-so-far)
/// keyset, with the cached per-gap attack state: any key inserted in the
/// gap takes insertion index `idx` (number of current keys strictly
/// below), and `suffix` is the shifted-key sum of every current key
/// strictly above the gap (the interior is empty, so both are shared by
/// the gap's two candidate endpoints).
#[derive(Debug, Clone, Copy)]
struct GapState {
    lo: Key,
    hi: Key,
    idx: usize,
    suffix: f64,
}

/// Builds the initial gap table (interior gaps only, as the paper
/// restricts candidates) with cached ranks and suffix sums, in `O(n)`.
fn initial_gaps(keys: &[Key], shift: f64) -> Vec<GapState> {
    // suffix_from[i] = Σ_{j ≥ i} (keys[j] − shift).
    let n = keys.len();
    let mut suffix_from = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix_from[i] = suffix_from[i + 1] + (keys[i] as f64 - shift);
    }
    let mut gaps = Vec::new();
    for (i, w) in keys.windows(2).enumerate() {
        if w[1] - w[0] > 1 {
            gaps.push(GapState {
                lo: w[0] + 1,
                hi: w[1] - 1,
                idx: i + 1,
                suffix: suffix_from[i + 1],
            });
        }
    }
    gaps
}

/// Shrinks `gap` after `kp` (one of its endpoints) was consumed; returns
/// `false` when the gap is exhausted.
fn shrink_gap(gap: &mut GapState, kp: Key) -> bool {
    if kp == gap.lo {
        gap.lo += 1;
    } else {
        debug_assert_eq!(kp, gap.hi);
        gap.hi -= 1;
    }
    gap.lo <= gap.hi
}

/// Runs Algorithm 1: greedily inserts `budget.count` poisoning keys, each
/// step committing the exact loss-maximising gap endpoint.
///
/// Stops early (without error) if the keyset runs out of unoccupied
/// in-range slots, mirroring a real attacker hitting a saturated region;
/// the returned plan then holds fewer keys than requested.
pub fn greedy_poison(ks: &KeySet, budget: PoisonBudget) -> Result<GreedyPlan> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    greedy_poison_sorted(ks.keys(), budget)
}

/// [`greedy_poison`] over an already-sorted, duplicate-free slice — the
/// zero-copy entry point the RMI attack's per-leaf loops call (no interim
/// [`KeySet`] construction).
pub fn greedy_poison_sorted(keys: &[Key], budget: PoisonBudget) -> Result<GreedyPlan> {
    if keys.len() < 2 {
        return Err(LisError::DegenerateRegression { n: keys.len() });
    }
    let mut oracle = IncrementalOracle::from_sorted_keys(keys);
    let clean_mse = oracle.clean_mse();
    let shift = oracle.shift();
    let mut gaps = initial_gaps(keys, shift);
    let mut chosen = Vec::with_capacity(budget.count);
    let mut losses = Vec::with_capacity(budget.count);

    for _ in 0..budget.count {
        // Exact per-step argmax: every gap endpoint, O(1) each, scanned in
        // ascending key order (ties keep the first maximum, mirroring the
        // original loop's iteration order).
        let mut best: Option<(usize, Key, f64)> = None;
        for (gi, gap) in gaps.iter().enumerate() {
            let lo_loss = oracle.loss_insert_with(gap.lo, gap.idx, gap.suffix);
            if best.is_none_or(|(_, _, b)| lo_loss > b) {
                best = Some((gi, gap.lo, lo_loss));
            }
            if gap.hi != gap.lo {
                let hi_loss = oracle.loss_insert_with(gap.hi, gap.idx, gap.suffix);
                if best.is_none_or(|(_, _, b)| hi_loss > b) {
                    best = Some((gi, gap.hi, hi_loss));
                }
            }
        }
        let Some((gi, kp, loss)) = best else { break };
        oracle.insert(kp)?;
        if !shrink_gap(&mut gaps[gi], kp) {
            gaps.remove(gi);
        }
        // One sweep keeps every cached gap state current: gaps above the
        // new key see one more key below them; gaps below see its shifted
        // value join their suffix sum.
        let xp = kp as f64 - shift;
        for gap in &mut gaps {
            if gap.lo > kp {
                gap.idx += 1;
            } else {
                debug_assert!(gap.hi < kp);
                gap.suffix += xp;
            }
        }
        chosen.push(kp);
        losses.push(loss);
    }
    Ok(GreedyPlan {
        keys: chosen,
        losses,
        clean_mse,
    })
}

/// Max-heap entry of the lazy engine: priority is the candidate loss
/// (non-negative, so the raw bit pattern orders exactly like the float),
/// ties broken toward the lowest slab id (ascending key order, matching
/// the exact engine's first-maximum rule as far as a heap can).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LazyEntry {
    loss_bits: u64,
    /// Slab index of the gap this entry scores.
    id: u32,
    /// Gap mutation stamp at evaluation time; a mismatch means stale.
    stamp: u32,
    /// Step counter at evaluation time.
    epoch: u32,
    /// The winning endpoint at evaluation time.
    key: Key,
}

impl Ord for LazyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.loss_bits
            .cmp(&other.loss_bits)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for LazyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The CELF-style lazy greedy campaign: same gap candidates as
/// [`greedy_poison`], but instead of re-scanning every gap per step,
/// candidates sit in a max-heap under their last-evaluated loss and are
/// re-evaluated lazily — pop the top, refresh it against the current
/// moments, and accept once the freshest evaluation still leads the heap.
/// Accepted points update the oracle incrementally, so a full campaign
/// runs in `O(n + p·(log n + R·B))` where `R` is the (empirically small)
/// number of refreshes per step and `B` the sorted-block query cost.
///
/// Near-exact, not proven-exact: a stale priority may underestimate a
/// competitor that poison drift has since promoted, and once the
/// campaign commits to a slightly-suboptimal cluster the trajectories
/// diverge. Measured final losses sit within a few percent of the exact
/// engine (typically <1% on uniform/normal shapes, up to ~3% on the
/// saturated lognormal head; `tests/property_buildpath.rs` and the
/// `buildpath` bench hold the gap under 5%). Use [`greedy_poison`] when
/// exact Algorithm-1 semantics matter more than build-plane wall-clock.
pub fn greedy_poison_lazy(ks: &KeySet, budget: PoisonBudget) -> Result<GreedyPlan> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let keys = ks.keys();
    let mut oracle = IncrementalOracle::from_sorted_keys(keys);
    let clean_mse = oracle.clean_mse();
    let shift = oracle.shift();

    // Slab of live gaps (stable ids for heap entries, assigned in
    // ascending key order) + initial heap fill from the same O(n) pass
    // the exact engine starts from: every initial candidate is evaluated
    // in O(1) against the precomputed per-gap rank/suffix cache, and the
    // heap is built by one O(n) heapify instead of n pushes.
    let mut slab: Vec<Option<(GapState, u32)>> = Vec::new();
    let mut entries: Vec<LazyEntry> = Vec::new();
    for gap in initial_gaps(keys, shift) {
        let id = slab.len() as u32;
        let lo_loss = oracle.loss_insert_with(gap.lo, gap.idx, gap.suffix);
        let (mut key, mut loss) = (gap.lo, lo_loss);
        if gap.hi != gap.lo {
            let hi_loss = oracle.loss_insert_with(gap.hi, gap.idx, gap.suffix);
            if hi_loss > lo_loss {
                (key, loss) = (gap.hi, hi_loss);
            }
        }
        slab.push(Some((gap, 0)));
        entries.push(LazyEntry {
            loss_bits: loss.to_bits(),
            id,
            stamp: 0,
            epoch: 0,
            key,
        });
    }
    let mut heap: BinaryHeap<LazyEntry> = BinaryHeap::from(entries);

    let mut chosen = Vec::with_capacity(budget.count);
    let mut losses = Vec::with_capacity(budget.count);
    'campaign: for step in 1..=budget.count {
        let epoch = step as u32;

        // Force-refresh the top few *stale* live entries before trusting
        // the heap order: compound-effect losses grow as poison
        // accumulates (the marginal gains are super-, not sub-modular),
        // so stale priorities systematically underestimate and a pure
        // CELF accept would chase yesterday's landscape.
        let mut stash: Vec<LazyEntry> = Vec::new();
        let mut refreshed = 0usize;
        while refreshed < LAZY_FORCED_REFRESH {
            let Some(top) = heap.pop() else { break };
            let Some((gap, stamp)) = slab[top.id as usize] else {
                continue; // gap exhausted since this entry was pushed
            };
            if stamp != top.stamp {
                continue; // superseded by a fresher entry for this gap
            }
            if top.epoch == epoch {
                stash.push(top); // already current; keep it aside
                continue;
            }
            let (key, loss) = best_endpoint(&oracle, &gap);
            heap.push(LazyEntry {
                loss_bits: loss.to_bits(),
                id: top.id,
                stamp,
                epoch,
                key,
            });
            refreshed += 1;
        }
        heap.extend(stash);

        let accepted = loop {
            let Some(&top) = heap.peek() else {
                break 'campaign; // saturated: no candidates left anywhere
            };
            let Some((gap, stamp)) = slab[top.id as usize] else {
                heap.pop(); // gap exhausted since this entry was pushed
                continue;
            };
            if stamp != top.stamp {
                heap.pop(); // superseded by a fresher entry for this gap
                continue;
            }
            if top.epoch == epoch {
                heap.pop();
                break top; // freshest evaluation still leads: commit
            }
            // Refresh against the current moments and re-queue.
            heap.pop();
            let (key, loss) = best_endpoint(&oracle, &gap);
            heap.push(LazyEntry {
                loss_bits: loss.to_bits(),
                id: top.id,
                stamp,
                epoch,
                key,
            });
        };

        let kp = accepted.key;
        oracle.insert(kp)?;
        let (mut gap, stamp) = slab[accepted.id as usize].take().expect("live gap");
        if shrink_gap(&mut gap, kp) {
            slab[accepted.id as usize] = Some((gap, stamp + 1));
        }
        // Greedy poison clusters (Figure 4): after an insertion, the next
        // argmax is overwhelmingly the same gap or a key-space neighbour,
        // whose losses just jumped. Re-evaluate the shrunk gap and the
        // nearest live gaps on both sides against the post-insert moments
        // and queue them as already-fresh for the next step — without
        // this, the hottest candidates sit buried under pre-insert
        // priorities (gap ids are assigned in ascending key order and
        // gaps only shrink, so id-adjacency is key-adjacency).
        for id in neighbourhood(&slab, accepted.id as usize) {
            let (gap, stamp) = slab[id].expect("neighbourhood yields live gaps");
            let (key, loss) = best_endpoint(&oracle, &gap);
            heap.push(LazyEntry {
                loss_bits: loss.to_bits(),
                id: id as u32,
                stamp,
                epoch: epoch + 1,
                key,
            });
        }
        chosen.push(kp);
        losses.push(f64::from_bits(accepted.loss_bits));
    }
    Ok(GreedyPlan {
        keys: chosen,
        losses,
        clean_mse,
    })
}

/// Stale entries force-refreshed per lazy step before the heap order is
/// trusted (see [`greedy_poison_lazy`]).
const LAZY_FORCED_REFRESH: usize = 3;

/// Live gaps re-evaluated around an accepted insertion, per side.
const LAZY_NEIGHBOURHOOD: usize = 6;

/// The accepted gap (if still live) plus up to [`LAZY_NEIGHBOURHOOD`] live
/// gaps on each side in id (= key) order.
fn neighbourhood(slab: &[Option<(GapState, u32)>], centre: usize) -> Vec<usize> {
    let mut ids = Vec::with_capacity(2 * LAZY_NEIGHBOURHOOD + 1);
    if slab[centre].is_some() {
        ids.push(centre);
    }
    let mut found = 0usize;
    for id in (0..centre).rev() {
        if found == LAZY_NEIGHBOURHOOD {
            break;
        }
        if slab[id].is_some() {
            ids.push(id);
            found += 1;
        }
    }
    let mut found = 0usize;
    for (off, slot) in slab[centre + 1..].iter().enumerate() {
        if found == LAZY_NEIGHBOURHOOD {
            break;
        }
        if slot.is_some() {
            ids.push(centre + 1 + off);
            found += 1;
        }
    }
    ids
}

/// Evaluates both endpoints of `gap` against the oracle's *current*
/// moments, querying rank and suffix from the sorted blocks (the gap
/// interior is empty, so one rank/suffix pair serves both endpoints).
fn best_endpoint(oracle: &IncrementalOracle, gap: &GapState) -> (Key, f64) {
    let idx = oracle.rank_below(gap.lo);
    let suffix = oracle.suffix_sum_above(gap.hi);
    let lo_loss = oracle.loss_insert_with(gap.lo, idx, suffix);
    if gap.hi == gap.lo {
        return (gap.lo, lo_loss);
    }
    let hi_loss = oracle.loss_insert_with(gap.hi, idx, suffix);
    if hi_loss > lo_loss {
        (gap.hi, hi_loss)
    } else {
        (gap.lo, lo_loss)
    }
}

/// The pre-optimization greedy loop — oracle rebuilt from scratch and gaps
/// re-enumerated on every step, the keyset re-sorted-inserted per accepted
/// point — kept callable as the `buildpath` bench's `O(p·n)` campaign
/// reference (the attack-plane analogue of `lookup_each_into`).
pub fn greedy_poison_reference(ks: &KeySet, budget: PoisonBudget) -> Result<GreedyPlan> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let clean_mse = PoisonOracle::new(ks).clean_mse();
    let mut current = ks.clone();
    let mut keys = Vec::with_capacity(budget.count);
    let mut losses = Vec::with_capacity(budget.count);
    for _ in 0..budget.count {
        let oracle = PoisonOracle::new(&current);
        match optimal_single_point_with(&current, &oracle) {
            Ok(plan) => {
                current.insert(plan.key)?;
                keys.push(plan.key);
                losses.push(plan.poisoned_mse);
            }
            Err(LisError::NoPoisoningCandidates) => break,
            Err(e) => return Err(e),
        }
    }
    Ok(GreedyPlan {
        keys,
        losses,
        clean_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn budget_percentage() {
        let b = PoisonBudget::percentage(10.0, 90).unwrap();
        assert_eq!(b.count, 9);
        assert!(PoisonBudget::percentage(25.0, 100).is_err());
        assert!(PoisonBudget::percentage(-1.0, 100).is_err());
        assert_eq!(PoisonBudget::percentage(0.0, 100).unwrap().count, 0);
    }

    #[test]
    fn zero_budget_is_identity() {
        // Quadratic spacing so the clean loss is safely above the epsilon
        // guard and the ratio is a meaningful 1.0.
        let ks = KeySet::from_keys((1..50u64).map(|i| i * i).collect()).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(0)).unwrap();
        assert!(plan.keys.is_empty());
        assert_eq!(plan.final_mse(), plan.clean_mse);
        assert_eq!(plan.ratio_loss(), 1.0);
    }

    #[test]
    fn losses_are_monotone_nondecreasing() {
        // Each greedy step picks the max-loss insertion; with more poison
        // the optimal refit loss cannot drop below the previous step's
        // chosen value on these workloads.
        let ks = uniform(90, 5);
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert_eq!(plan.keys.len(), 10);
        for w in plan.losses.windows(2) {
            assert!(w[1] >= w[0] * 0.999, "loss dropped: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn fig4_scale_ratio_exceeds_five() {
        // Figure 4: 90 uniform keys, 10 poisoning keys → error ×7.4. Exact
        // multipliers vary with the keyset; conservatively require > 5×.
        let ks = uniform(90, 5); // domain [0, 445], density ~20%
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert!(
            plan.ratio_loss() > 5.0,
            "ratio loss {} below Figure-4 scale",
            plan.ratio_loss()
        );
    }

    #[test]
    fn poison_keys_cluster() {
        // Paper observation (Fig. 4): greedy concentrates poison in a dense
        // area. Verify the chosen keys span much less than the domain.
        let ks = uniform(90, 5);
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        let lo = *plan.keys.iter().min().unwrap();
        let hi = *plan.keys.iter().max().unwrap();
        let span = (hi - lo) as f64;
        let domain = (ks.max_key() - ks.min_key()) as f64;
        assert!(span < domain / 2.0, "poison span {span} vs domain {domain}");
    }

    #[test]
    fn stops_when_saturated() {
        // Tiny domain: only 3 free slots but budget of 10.
        let ks = KeySet::from_keys(vec![0, 2, 4, 6]).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
        assert_eq!(plan.keys.len(), 3);
        let lazy = greedy_poison_lazy(&ks, PoisonBudget::keys(10)).unwrap();
        assert_eq!(lazy.keys.len(), 3);
    }

    #[test]
    fn poisoned_keyset_contains_everything() {
        let ks = uniform(40, 9);
        let plan = greedy_poison(&ks, PoisonBudget::keys(5)).unwrap();
        let poisoned = plan.poisoned_keyset(&ks).unwrap();
        assert_eq!(poisoned.len(), ks.len() + plan.keys.len());
        for &k in ks.keys() {
            assert!(poisoned.contains(k));
        }
        for &k in &plan.keys {
            assert!(poisoned.contains(k));
            assert!(!ks.contains(k), "poison key {k} collides with legit key");
        }
    }

    #[test]
    fn greedy_matches_exhaustive_two_point_on_tiny_set() {
        // For a tiny keyset, compare greedy(2) against the best pair found
        // by exhaustive search. Greedy is a heuristic, but the paper
        // reports it matches brute force on tested data; we allow a small
        // slack rather than asserting exact equality.
        let ks = KeySet::from_keys(vec![0, 7, 13, 22, 30]).unwrap();
        let plan = greedy_poison(&ks, PoisonBudget::keys(2)).unwrap();

        let mut best = 0.0f64;
        for a in ks.min_key()..=ks.max_key() {
            if ks.contains(a) {
                continue;
            }
            let with_a = ks.with_key(a).unwrap();
            for b in ks.min_key()..=ks.max_key() {
                if with_a.contains(b) {
                    continue;
                }
                let both = with_a.with_key(b).unwrap();
                let mse = lis_core::linreg::LinearModel::fit(&both).unwrap().mse;
                best = best.max(mse);
            }
        }
        assert!(
            plan.final_mse() >= 0.95 * best,
            "greedy {} vs exhaustive pair {}",
            plan.final_mse(),
            best
        );
    }

    #[test]
    fn incremental_engine_matches_reference_engine() {
        // The incremental-oracle engine must reproduce the rebuild-per-step
        // loop: same campaign keys, same per-step losses (to float
        // accumulation tolerance), across shapes with and without ties.
        for (ks, p) in [
            (uniform(90, 5), 10usize),
            (uniform(40, 9), 5),
            (
                KeySet::from_keys((1..120u64).map(|i| i * i).collect()).unwrap(),
                12,
            ),
            (KeySet::from_keys(vec![0, 7, 13, 22, 30]).unwrap(), 4),
        ] {
            let fast = greedy_poison(&ks, PoisonBudget::keys(p)).unwrap();
            let slow = greedy_poison_reference(&ks, PoisonBudget::keys(p)).unwrap();
            assert_eq!(fast.clean_mse.to_bits(), slow.clean_mse.to_bits());
            assert_eq!(fast.keys.len(), slow.keys.len());
            for (i, (a, b)) in fast.losses.iter().zip(&slow.losses).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                    "step {i}: {a} vs {b}"
                );
            }
            // Key-for-key equality can only break on exact float ties
            // (symmetric keysets); even then the loss trajectory above
            // already matched.
            let final_ratio = fast.final_mse() / slow.final_mse().max(f64::MIN_POSITIVE);
            assert!(
                (final_ratio - 1.0).abs() < 1e-9,
                "final losses diverged: {final_ratio}"
            );
        }
    }

    #[test]
    fn lazy_engine_tracks_exact_engine() {
        for (ks, p) in [
            (uniform(90, 5), 10usize),
            (
                KeySet::from_keys((1..300u64).map(|i| i * i / 2 + i).collect()).unwrap(),
                20,
            ),
            (uniform(500, 11), 40),
        ] {
            let exact = greedy_poison(&ks, PoisonBudget::keys(p)).unwrap();
            let lazy = greedy_poison_lazy(&ks, PoisonBudget::keys(p)).unwrap();
            assert_eq!(lazy.keys.len(), exact.keys.len());
            assert!(
                lazy.final_mse() >= 0.99 * exact.final_mse(),
                "lazy {} vs exact {}",
                lazy.final_mse(),
                exact.final_mse()
            );
            // Lazy poison keys are real, fresh, in-range insertions.
            let poisoned = lazy.poisoned_keyset(&ks).unwrap();
            assert_eq!(poisoned.len(), ks.len() + lazy.keys.len());
        }
    }
}
