//! Poisoning the two-stage RMI (Section V, Algorithm 2
//! `GreedyPoisoningRMI`).
//!
//! The RMI attack decomposes into two coupled problems:
//!
//! * **key allocation** — *which* keys to inject inside one second-stage
//!   partition: solved by the greedy CDF attack (Algorithm 1);
//! * **volume allocation** — *how many* keys each second-stage model
//!   receives: an integer program the paper attacks greedily.
//!
//! The volume allocator starts from the uniform split `φn/N`, then
//! repeatedly performs the best *neighbour exchange*: a poisoning slot
//! moves from model `i` to an adjacent model `j` while the boundary
//! legitimate key moves the opposite way (keeping every model's total key
//! count fixed), as long as (a) the receiving model stays under the
//! per-model threshold `t = α·φ·n/N` — the stealth cap that stops any
//! single regression from being flooded — and (b) the exchange improves
//! `L_RMI` by more than `ε`. Each applied exchange invalidates only the six
//! CHANGELOSS entries that mention the two touched models, which the
//! algorithm recomputes in `O(n/N)` per entry.

use crate::greedy::{greedy_poison_sorted, PoisonBudget};
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::fit_sorted_slice;
use lis_core::metrics::ratio_loss;

/// Parameters of the RMI attack.
#[derive(Debug, Clone, Copy)]
pub struct RmiAttackConfig {
    /// Overall poisoning percentage `φ·100` (e.g. `10.0` for 10%).
    pub poison_percent: f64,
    /// Per-model threshold multiplier `α` (the paper evaluates 2 and 3).
    pub alpha: f64,
    /// Termination bound `ε` on the loss improvement of an exchange.
    pub epsilon: f64,
    /// Safety cap on the number of applied exchanges (the paper's loop is
    /// bounded only by `ε`; the cap guards pathological plateaus).
    pub max_exchanges: usize,
}

impl RmiAttackConfig {
    /// Paper-style defaults: `α = 3`, `ε` proportional to nothing in
    /// particular — a tiny absolute improvement bound.
    pub fn new(poison_percent: f64) -> Self {
        Self {
            poison_percent,
            alpha: 3.0,
            epsilon: 1e-9,
            max_exchanges: usize::MAX,
        }
    }

    /// Sets `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the exchange cap.
    pub fn with_max_exchanges(mut self, cap: usize) -> Self {
        self.max_exchanges = cap;
        self
    }
}

/// Outcome for one second-stage model.
#[derive(Debug, Clone)]
pub struct ModelOutcome {
    /// Legitimate keys this model ended up responsible for (after boundary
    /// drift from exchanges).
    pub legit: Vec<Key>,
    /// Poisoning keys injected into this model.
    pub poison: Vec<Key>,
    /// MSE of the regression trained on `legit ∪ poison`.
    pub poisoned_loss: f64,
    /// MSE of the regression trained on the model's *original* equal-size
    /// partition (the denominator of the paper's per-model ratio).
    pub clean_loss: f64,
}

impl ModelOutcome {
    /// Per-model Ratio Loss (one observation of the Figure-6 boxplots).
    pub fn ratio(&self) -> f64 {
        ratio_loss(self.poisoned_loss, self.clean_loss)
    }
}

/// Result of the full RMI attack.
#[derive(Debug, Clone)]
pub struct RmiAttackResult {
    /// One outcome per second-stage model.
    pub models: Vec<ModelOutcome>,
    /// `L_RMI` of the clean index (equal-size partitions of `K`).
    pub clean_rmi_loss: f64,
    /// `L_RMI` of the poisoned index (final allocation).
    pub poisoned_rmi_loss: f64,
    /// Number of neighbour exchanges the volume allocator applied.
    pub exchanges_applied: usize,
    /// Total poisoning keys actually placed (≤ requested when partitions
    /// saturate).
    pub total_poison: usize,
}

impl RmiAttackResult {
    /// RMI-level Ratio Loss (the black horizontal line in Figure 6).
    pub fn rmi_ratio(&self) -> f64 {
        ratio_loss(self.poisoned_rmi_loss, self.clean_rmi_loss)
    }

    /// Per-model ratios (the boxplot samples of Figures 6–7).
    pub fn model_ratios(&self) -> Vec<f64> {
        self.models.iter().map(ModelOutcome::ratio).collect()
    }

    /// All poisoning keys across models.
    pub fn poison_keys(&self) -> Vec<Key> {
        self.models
            .iter()
            .flat_map(|m| m.poison.iter().copied())
            .collect()
    }

    /// The poisoned keyset `K ∪ P`.
    pub fn poisoned_keyset(&self, clean: &KeySet) -> Result<KeySet> {
        let mut out = clean.clone();
        out.insert_all(self.poison_keys())?;
        Ok(out)
    }
}

/// Internal: state of one model during the attack.
#[derive(Debug, Clone)]
struct ModelState {
    /// Start index (inclusive) into the global sorted legit key array.
    start: usize,
    /// End index (exclusive).
    end: usize,
    /// Allocated poisoning volume.
    volume: usize,
    /// Current poisoned loss and keys for the allocated volume.
    loss: f64,
    poison: Vec<Key>,
}

/// Evaluation of one candidate exchange, cached so that applying it is
/// free.
#[derive(Debug, Clone)]
struct ExchangeEval {
    /// Gain in `Σ leaf losses` (not yet divided by `N`).
    delta: f64,
    new_loss_src: f64,
    new_loss_dst: f64,
    new_poison_src: Vec<Key>,
    new_poison_dst: Vec<Key>,
}

/// Runs Algorithm 2 against `ks` partitioned into `num_models` equal-size
/// second-stage models.
#[allow(clippy::needless_range_loop)] // CHANGELOSS updates index neighbouring table entries
pub fn rmi_attack(
    ks: &KeySet,
    num_models: usize,
    cfg: &RmiAttackConfig,
) -> Result<RmiAttackResult> {
    if num_models == 0 || num_models > ks.len() {
        return Err(LisError::InvalidPartition {
            parts: num_models,
            keys: ks.len(),
        });
    }
    if !(0.0..=20.0).contains(&cfg.poison_percent) {
        return Err(LisError::InvalidBudget(format!(
            "poisoning percentage {} outside [0, 20]",
            cfg.poison_percent
        )));
    }
    if cfg.alpha < 1.0 {
        return Err(LisError::InvalidBudget(format!(
            "alpha {} must be ≥ 1",
            cfg.alpha
        )));
    }

    let keys = ks.keys();
    let n = keys.len();
    let total_budget = (cfg.poison_percent / 100.0 * n as f64).floor() as usize;
    let per_model = total_budget / num_models;
    let remainder = total_budget % num_models;
    // Per-model stealth cap t = α·φ·n/N, but never below the uniform share.
    let threshold =
        ((cfg.alpha * total_budget as f64 / num_models as f64).ceil() as usize).max(per_model + 1);

    // Equal-size partition boundaries (same arithmetic as KeySet::partition).
    let base = n / num_models;
    let extra = n % num_models;
    let mut states = Vec::with_capacity(num_models);
    let mut clean_losses = Vec::with_capacity(num_models);
    let mut start = 0usize;
    for i in 0..num_models {
        let len = base + usize::from(i < extra);
        let end = start + len;
        clean_losses.push(slice_loss(&keys[start..end]));
        let volume = per_model + usize::from(i < remainder);
        let (loss, poison) = eval_model(&keys[start..end], volume)?;
        states.push(ModelState {
            start,
            end,
            volume,
            loss,
            poison,
        });
        start = end;
    }
    let clean_rmi_loss = clean_losses.iter().sum::<f64>() / num_models as f64;

    // CHANGELOSS table: entry (i, dir) with dir 0 = "poison slot moves
    // i → i+1" and dir 1 = "poison slot moves i+1 → i".
    let mut table: Vec<[Option<ExchangeEval>; 2]> =
        vec![[None, None]; num_models.saturating_sub(1)];
    for i in 0..num_models.saturating_sub(1) {
        table[i][0] = eval_exchange(keys, &states, i, true, threshold)?;
        table[i][1] = eval_exchange(keys, &states, i, false, threshold)?;
    }

    let mut exchanges = 0usize;
    while exchanges < cfg.max_exchanges {
        // Best available exchange.
        let mut best: Option<(usize, usize, f64)> = None;
        for (i, entry) in table.iter().enumerate() {
            for (dir, eval) in entry.iter().enumerate() {
                if let Some(e) = eval {
                    if best.is_none_or(|(_, _, d)| e.delta > d) {
                        best = Some((i, dir, e.delta));
                    }
                }
            }
        }
        let Some((i, dir, delta)) = best else { break };
        if delta <= cfg.epsilon {
            break;
        }

        // Apply exchange between pair (i, i+1). dir 0: slot i → i+1 and the
        // boundary key (smallest of i+1) moves into i. dir 1: the mirror.
        let eval = table[i][dir].take().expect("selected entry present");
        {
            let (left, right) = states.split_at_mut(i + 1);
            let src_right = dir == 1; // slot donor is i+1 when dir == 1
            let (a, b) = (&mut left[i], &mut right[0]);
            if src_right {
                // slot i+1 → i; boundary key: largest of i moves to i+1.
                a.end -= 1;
                b.start -= 1;
                a.volume += 1;
                b.volume -= 1;
                a.loss = eval.new_loss_dst;
                b.loss = eval.new_loss_src;
                a.poison = eval.new_poison_dst;
                b.poison = eval.new_poison_src;
            } else {
                // slot i → i+1; boundary key: smallest of i+1 moves to i.
                a.end += 1;
                b.start += 1;
                a.volume -= 1;
                b.volume += 1;
                a.loss = eval.new_loss_src;
                b.loss = eval.new_loss_dst;
                a.poison = eval.new_poison_src;
                b.poison = eval.new_poison_dst;
            }
        }
        exchanges += 1;

        // Recompute the six entries touching models i and i+1.
        let lo = i.saturating_sub(1);
        let hi = (i + 1).min(table.len().saturating_sub(1));
        for j in lo..=hi {
            table[j][0] = eval_exchange(keys, &states, j, true, threshold)?;
            table[j][1] = eval_exchange(keys, &states, j, false, threshold)?;
        }
    }

    let mut models = Vec::with_capacity(num_models);
    let mut total_poison = 0usize;
    let mut poisoned_sum = 0.0;
    for (state, clean) in states.iter().zip(&clean_losses) {
        total_poison += state.poison.len();
        poisoned_sum += state.loss;
        models.push(ModelOutcome {
            legit: keys[state.start..state.end].to_vec(),
            poison: state.poison.clone(),
            poisoned_loss: state.loss,
            clean_loss: *clean,
        });
    }

    Ok(RmiAttackResult {
        models,
        clean_rmi_loss,
        poisoned_rmi_loss: poisoned_sum / num_models as f64,
        exchanges_applied: exchanges,
        total_poison,
    })
}

/// Loss of a regression trained on a contiguous legit slice (0 when the
/// slice is too small to fit) — fitted zero-copy via [`fit_sorted_slice`].
fn slice_loss(slice: &[Key]) -> f64 {
    if slice.len() < 2 {
        return 0.0;
    }
    fit_sorted_slice(slice).map(|(m, _)| m.mse).unwrap_or(0.0)
}

/// Runs the key-allocation subproblem: greedy CDF poisoning of one model's
/// partition with the given volume. Returns the poisoned loss and keys.
///
/// This is Algorithm 2's inner loop, re-entered for every candidate
/// exchange; it runs entirely on the zero-copy slice paths
/// ([`fit_sorted_slice`], [`greedy_poison_sorted`]) so no interim
/// [`KeySet`] is cloned per evaluation.
fn eval_model(slice: &[Key], volume: usize) -> Result<(f64, Vec<Key>)> {
    if slice.len() < 2 {
        return Ok((0.0, Vec::new()));
    }
    if volume == 0 {
        return Ok((fit_sorted_slice(slice)?.0.mse, Vec::new()));
    }
    let plan = greedy_poison_sorted(slice, PoisonBudget::keys(volume))?;
    Ok((plan.final_mse(), plan.keys))
}

/// Evaluates the exchange across boundary `i`/`i+1`.
///
/// `slot_right` = `true` is the paper's `i → i+1` (a poison slot moves
/// right, the boundary legit key moves left); `false` is `i ← i+1`.
/// Returns `None` when the exchange is infeasible (donor out of slots,
/// receiver at the threshold, or a partition would shrink below 2 keys).
fn eval_exchange(
    keys: &[Key],
    states: &[ModelState],
    i: usize,
    slot_right: bool,
    threshold: usize,
) -> Result<Option<ExchangeEval>> {
    let a = &states[i];
    let b = &states[i + 1];
    let (donor, receiver) = if slot_right { (a, b) } else { (b, a) };
    if donor.volume == 0 || receiver.volume + 1 > threshold {
        return Ok(None);
    }
    // The key donor is the model *receiving* the poison slot's neighbour:
    // for i → i+1 the smallest legit key of i+1 moves into i, so i+1 must
    // keep ≥ 2 keys; mirrored otherwise.
    let key_donor = if slot_right { b } else { a };
    if key_donor.end - key_donor.start < 3 {
        return Ok(None);
    }

    let (new_a_range, new_b_range) = if slot_right {
        ((a.start, a.end + 1), (b.start + 1, b.end))
    } else {
        ((a.start, a.end - 1), (b.start - 1, b.end))
    };
    let (new_a_vol, new_b_vol) = if slot_right {
        (a.volume - 1, b.volume + 1)
    } else {
        (a.volume + 1, b.volume - 1)
    };

    let (loss_a, poison_a) = eval_model(&keys[new_a_range.0..new_a_range.1], new_a_vol)?;
    let (loss_b, poison_b) = eval_model(&keys[new_b_range.0..new_b_range.1], new_b_vol)?;
    let delta = loss_a + loss_b - a.loss - b.loss;

    // Orient src/dst so `apply` can read them positionally: src = model
    // losing the slot, dst = model gaining it.
    let (new_loss_src, new_loss_dst, new_poison_src, new_poison_dst) = if slot_right {
        (loss_a, loss_b, poison_a, poison_b)
    } else {
        (loss_b, loss_a, poison_b, poison_a)
    };
    Ok(Some(ExchangeEval {
        delta,
        new_loss_src,
        new_loss_dst,
        new_poison_src,
        new_poison_dst,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    /// Keys with a skew reminiscent of log-normal data: quadratic spacing.
    fn skewed(n: u64) -> KeySet {
        KeySet::from_keys((1..=n).map(|i| i * i).collect()).unwrap()
    }

    #[test]
    fn validates_config() {
        let ks = uniform(100, 7);
        assert!(rmi_attack(&ks, 0, &RmiAttackConfig::new(10.0)).is_err());
        assert!(rmi_attack(&ks, 101, &RmiAttackConfig::new(10.0)).is_err());
        assert!(rmi_attack(&ks, 10, &RmiAttackConfig::new(30.0)).is_err());
        assert!(rmi_attack(&ks, 10, &RmiAttackConfig::new(10.0).with_alpha(0.5)).is_err());
    }

    #[test]
    fn attack_increases_rmi_loss_on_uniform_data() {
        let ks = uniform(500, 9);
        let res = rmi_attack(&ks, 10, &RmiAttackConfig::new(10.0)).unwrap();
        assert!(res.poisoned_rmi_loss > res.clean_rmi_loss);
        assert!(res.rmi_ratio() > 1.0);
    }

    #[test]
    fn budget_is_respected() {
        let ks = uniform(400, 11);
        let cfg = RmiAttackConfig::new(10.0);
        let res = rmi_attack(&ks, 8, &cfg).unwrap();
        let budget = (0.10 * 400.0) as usize;
        assert!(res.total_poison <= budget);
        // Uniform sparse data never saturates: exact placement expected.
        assert_eq!(res.total_poison, budget);
        // Per-model threshold t = ceil(α·φn/N) = ceil(3·40/8) = 15.
        for m in &res.models {
            assert!(
                m.poison.len() <= 15,
                "model over threshold: {}",
                m.poison.len()
            );
        }
    }

    #[test]
    fn poison_keys_are_fresh_and_in_range() {
        let ks = uniform(300, 13);
        let res = rmi_attack(&ks, 6, &RmiAttackConfig::new(8.0)).unwrap();
        let poisoned = res.poisoned_keyset(&ks).unwrap();
        assert_eq!(poisoned.len(), ks.len() + res.total_poison);
        for m in &res.models {
            let lo = *m.legit.first().unwrap();
            let hi = *m.legit.last().unwrap();
            for &p in &m.poison {
                assert!(
                    p > lo && p < hi,
                    "poison {p} outside model span [{lo}, {hi}]"
                );
                assert!(!ks.contains(p));
            }
        }
    }

    #[test]
    fn exchanges_never_hurt() {
        // The greedy exchange loop only applies strictly-improving moves,
        // so the final loss must be ≥ the uniform-allocation loss.
        let ks = skewed(400);
        let uniform_alloc =
            rmi_attack(&ks, 8, &RmiAttackConfig::new(10.0).with_max_exchanges(0)).unwrap();
        let exchanged = rmi_attack(&ks, 8, &RmiAttackConfig::new(10.0)).unwrap();
        assert!(
            exchanged.poisoned_rmi_loss >= uniform_alloc.poisoned_rmi_loss - 1e-9,
            "exchanges hurt: {} < {}",
            exchanged.poisoned_rmi_loss,
            uniform_alloc.poisoned_rmi_loss
        );
    }

    #[test]
    fn legit_key_count_is_preserved() {
        let ks = skewed(300);
        let res = rmi_attack(&ks, 6, &RmiAttackConfig::new(10.0)).unwrap();
        let total_legit: usize = res.models.iter().map(|m| m.legit.len()).sum();
        assert_eq!(total_legit, ks.len());
        // Partitions stay contiguous and ordered.
        let mut merged = Vec::new();
        for m in &res.models {
            merged.extend_from_slice(&m.legit);
        }
        assert_eq!(merged, ks.keys());
    }

    #[test]
    fn higher_percentage_higher_loss() {
        let ks = uniform(400, 17);
        let low = rmi_attack(&ks, 8, &RmiAttackConfig::new(1.0)).unwrap();
        let high = rmi_attack(&ks, 8, &RmiAttackConfig::new(10.0)).unwrap();
        assert!(
            high.poisoned_rmi_loss > low.poisoned_rmi_loss,
            "10% {} should beat 1% {}",
            high.poisoned_rmi_loss,
            low.poisoned_rmi_loss
        );
    }

    #[test]
    fn zero_percent_is_identity() {
        // Skewed keys: clean per-model losses are non-zero, so the ratio is
        // a meaningful 1.0 rather than an epsilon-guard artefact.
        let ks = skewed(200);
        let res = rmi_attack(&ks, 4, &RmiAttackConfig::new(0.0)).unwrap();
        assert_eq!(res.total_poison, 0);
        assert!((res.rmi_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(res.exchanges_applied, 0);
    }

    #[test]
    fn model_ratios_align_with_models() {
        let ks = uniform(300, 7);
        let res = rmi_attack(&ks, 6, &RmiAttackConfig::new(10.0)).unwrap();
        let ratios = res.model_ratios();
        assert_eq!(ratios.len(), 6);
        for (r, m) in ratios.iter().zip(&res.models) {
            assert_eq!(*r, m.ratio());
        }
    }
}
