//! Optimal single-point poisoning of a linear regression on a CDF
//! (Section IV-C).
//!
//! Theorem 2 proves the loss sequence `L(kp)` is convex on every maximal
//! run of consecutive unoccupied keys, so its maximum over a run is attained
//! at one of the run's two endpoints. The optimal attack therefore
//! evaluates only the `≤ 2(n−1)` gap endpoints — each in constant time via
//! [`PoisonOracle`] — for a total of `O(n)` after preprocessing, instead of
//! the brute-force `O(mn)`.
//!
//! Candidates are restricted to the open interval `(min K, max K)`:
//! inserting outside the legitimate span would create an out-of-range
//! outlier that trivial sanitization removes (paper, Section IV-C).

use crate::oracle::PoisonOracle;
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};

/// Outcome of a single-point poisoning search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinglePointPlan {
    /// The loss-maximising poisoning key.
    pub key: Key,
    /// MSE of the regression refit on `K ∪ {key}`.
    pub poisoned_mse: f64,
    /// MSE of the regression on the clean keyset.
    pub clean_mse: f64,
    /// Number of candidate keys evaluated.
    pub candidates_evaluated: usize,
}

impl SinglePointPlan {
    /// Ratio Loss achieved by this single insertion.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.poisoned_mse, self.clean_mse)
    }
}

/// Finds the in-range poisoning key that maximises the refit MSE.
///
/// Errors with [`LisError::NoPoisoningCandidates`] when the keyset is dense
/// (no unoccupied key between min and max) and with
/// [`LisError::DegenerateRegression`] when `n < 2`.
pub fn optimal_single_point(ks: &KeySet) -> Result<SinglePointPlan> {
    let oracle = PoisonOracle::new(ks);
    optimal_single_point_with(ks, &oracle)
}

/// Same as [`optimal_single_point`] but reuses a prebuilt oracle (the greedy
/// attack rebuilds the oracle once per insertion and calls this directly).
pub fn optimal_single_point_with(ks: &KeySet, oracle: &PoisonOracle) -> Result<SinglePointPlan> {
    if ks.len() < 2 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let mut best: Option<(Key, f64)> = None;
    let mut evaluated = 0usize;
    for gap in ks.gaps() {
        // The gap walk knows the insertion rank: avoid the binary search.
        let idx = gap.insert_rank - 1;
        for kp in gap.endpoints() {
            let loss = oracle.loss_with_rank(kp, idx);
            evaluated += 1;
            if best.is_none_or(|(_, b)| loss > b) {
                best = Some((kp, loss));
            }
        }
    }
    let (key, poisoned_mse) = best.ok_or(LisError::NoPoisoningCandidates)?;
    Ok(SinglePointPlan {
        key,
        poisoned_mse,
        clean_mse: oracle.clean_mse(),
        candidates_evaluated: evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::keys::KeyDomain;

    #[test]
    fn matches_bruteforce_on_small_sets() {
        // Exhaustively verify the endpoint restriction on several shapes.
        let cases: Vec<Vec<Key>> = vec![
            vec![2, 6, 7, 12],
            vec![0, 10, 20, 30, 40],
            vec![1, 2, 3, 50],
            vec![5, 6, 8, 9, 40, 41, 43],
            vec![0, 3, 9, 27, 81],
        ];
        for keys in cases {
            let ks = KeySet::from_keys(keys.clone()).unwrap();
            let plan = optimal_single_point(&ks).unwrap();
            // Brute force over ALL in-range unoccupied keys.
            let oracle = PoisonOracle::new(&ks);
            let mut best = f64::NEG_INFINITY;
            for kp in ks.min_key()..=ks.max_key() {
                if !ks.contains(kp) {
                    best = best.max(oracle.loss(kp));
                }
            }
            assert!(
                (plan.poisoned_mse - best).abs() < 1e-9,
                "keys {:?}: endpoint best {} vs brute force {}",
                keys,
                plan.poisoned_mse,
                best
            );
        }
    }

    #[test]
    fn dense_keyset_has_no_candidates() {
        let ks = KeySet::from_keys((10..20u64).collect()).unwrap();
        assert!(matches!(
            optimal_single_point(&ks),
            Err(LisError::NoPoisoningCandidates)
        ));
    }

    #[test]
    fn two_keys_minimum() {
        let one = KeySet::from_keys(vec![3]).unwrap();
        assert!(matches!(
            optimal_single_point(&one),
            Err(LisError::DegenerateRegression { n: 1 })
        ));
        let two = KeySet::from_keys(vec![3, 10]).unwrap();
        let plan = optimal_single_point(&two).unwrap();
        assert!(two.domain().contains(plan.key));
        assert!(!two.contains(plan.key));
    }

    #[test]
    fn candidate_count_is_linear_not_domain_sized() {
        // Huge sparse domain: evaluated candidates must scale with n, not m.
        let ks = KeySet::new(
            (0..100u64).map(|i| i * 1_000_000).collect(),
            KeyDomain::up_to(100_000_000),
        )
        .unwrap();
        let plan = optimal_single_point(&ks).unwrap();
        assert!(plan.candidates_evaluated <= 2 * (ks.len() - 1));
    }

    #[test]
    fn ratio_loss_exceeds_one_on_uniform_data() {
        let ks = KeySet::from_keys((0..90u64).map(|i| i * 5).collect()).unwrap();
        let plan = optimal_single_point(&ks).unwrap();
        assert!(plan.poisoned_mse > plan.clean_mse);
    }

    #[test]
    fn chosen_key_is_insertable() {
        let ks = KeySet::from_keys(vec![10, 14, 99, 105, 230]).unwrap();
        let plan = optimal_single_point(&ks).unwrap();
        assert!(ks.with_key(plan.key).is_ok());
    }
}
