//! Deletion-capable adversaries (paper Section VI, future directions).
//!
//! The paper's closing discussion calls for studying "adversaries that are
//! capable of removing and modify\[ing\] keys". This module implements that
//! extension with the same machinery as the insertion attack:
//!
//! * removing a key `k` with rank `r` *decrements* the rank of every larger
//!   key — a mirrored compound effect;
//! * the post-removal rank multiset is exactly `1..=n−1`, so `Σr′` and
//!   `Σr′²` are again closed-form constants;
//! * the cross moment loses the removed key's own `k·r` term plus the
//!   suffix key sum above it: `Σkr′ = Σkr − k·r − Σ_{k_i > k} k_i`.
//!
//! [`optimal_single_removal`] evaluates all `n` legitimate keys in `O(n)`
//! total; [`greedy_removal`] composes it the way Algorithm 1 composes
//! insertions. A combined insert+delete adversary is exposed as
//! [`greedy_mixed`].

use crate::greedy::PoisonBudget;
use crate::oracle::PoisonOracle;
use crate::single::optimal_single_point_with;
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::optimal_mse;
use lis_core::stats::{midpoint_shift, rank_sq_sum, rank_sum, CdfMoments};

/// Outcome of the optimal single-key removal search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemovalPlan {
    /// The loss-maximising key to delete.
    pub key: Key,
    /// MSE of the regression refit on `K \ {key}`.
    pub poisoned_mse: f64,
    /// MSE on the intact keyset.
    pub clean_mse: f64,
}

impl RemovalPlan {
    /// Ratio Loss achieved by this single deletion.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.poisoned_mse, self.clean_mse)
    }
}

/// Finds the legitimate key whose deletion maximises the refit MSE.
///
/// Requires `n ≥ 3` so the post-removal regression is non-degenerate.
pub fn optimal_single_removal(ks: &KeySet) -> Result<RemovalPlan> {
    if ks.len() < 3 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let n = ks.len();
    let shift = midpoint_shift(ks.min_key(), ks.max_key());
    let keys = ks.keys();

    // Precompute legit moments and suffix sums of shifted keys.
    let xs: Vec<f64> = keys.iter().map(|&k| k as f64 - shift).collect();
    let mut suffix = vec![0.0; n + 1];
    for i in (0..n).rev() {
        suffix[i] = suffix[i + 1] + xs[i];
    }
    let mut sum_x = 0.0;
    let mut sum_xx = 0.0;
    let mut sum_xr = 0.0;
    for (i, &x) in xs.iter().enumerate() {
        sum_x += x;
        sum_xx += x * x;
        sum_xr += x * (i + 1) as f64;
    }
    let clean = CdfMoments {
        n,
        shift,
        sum_x,
        sum_xx,
        sum_r: rank_sum(n),
        sum_rr: rank_sq_sum(n),
        sum_xr,
    };
    let clean_mse = optimal_mse(&clean);

    let n1 = n - 1;
    let mut best: Option<(Key, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        let r = (i + 1) as f64;
        let m = CdfMoments {
            n: n1,
            shift,
            sum_x: sum_x - x,
            sum_xx: sum_xx - x * x,
            sum_r: rank_sum(n1),
            sum_rr: rank_sq_sum(n1),
            // Mirrored compound effect: all larger keys lose one rank.
            sum_xr: sum_xr - x * r - suffix[i + 1],
        };
        let loss = optimal_mse(&m);
        if best.is_none_or(|(_, b)| loss > b) {
            best = Some((keys[i], loss));
        }
    }
    let (key, poisoned_mse) = best.expect("n ≥ 3");
    Ok(RemovalPlan {
        key,
        poisoned_mse,
        clean_mse,
    })
}

/// Result of a greedy multi-key removal campaign.
#[derive(Debug, Clone)]
pub struct RemovalCampaign {
    /// Keys deleted, in order.
    pub removed: Vec<Key>,
    /// MSE after each deletion.
    pub losses: Vec<f64>,
    /// MSE on the intact keyset.
    pub clean_mse: f64,
}

impl RemovalCampaign {
    /// Final MSE after all deletions.
    pub fn final_mse(&self) -> f64 {
        self.losses.last().copied().unwrap_or(self.clean_mse)
    }

    /// Final Ratio Loss.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.final_mse(), self.clean_mse)
    }
}

/// Greedy multi-key removal: deletes `count` keys one at a time, each the
/// current loss maximiser.
pub fn greedy_removal(ks: &KeySet, count: usize) -> Result<RemovalCampaign> {
    if ks.len() < 3 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let clean_mse = PoisonOracle::new(ks).clean_mse();
    let mut current = ks.clone();
    let mut removed = Vec::with_capacity(count);
    let mut losses = Vec::with_capacity(count);
    for _ in 0..count {
        if current.len() < 3 {
            break;
        }
        let plan = optimal_single_removal(&current)?;
        current.remove(plan.key)?;
        removed.push(plan.key);
        losses.push(plan.poisoned_mse);
    }
    Ok(RemovalCampaign {
        removed,
        losses,
        clean_mse,
    })
}

/// One action of the mixed insert/delete adversary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MixedAction {
    /// Insert this poisoning key.
    Insert(Key),
    /// Delete this legitimate (or previously inserted) key.
    Remove(Key),
}

/// Result of the mixed greedy campaign.
#[derive(Debug, Clone)]
pub struct MixedCampaign {
    /// Actions taken, in order.
    pub actions: Vec<MixedAction>,
    /// MSE after each action.
    pub losses: Vec<f64>,
    /// MSE on the intact keyset.
    pub clean_mse: f64,
}

impl MixedCampaign {
    /// Final MSE after the whole campaign.
    pub fn final_mse(&self) -> f64 {
        self.losses.last().copied().unwrap_or(self.clean_mse)
    }

    /// Final Ratio Loss.
    pub fn ratio_loss(&self) -> f64 {
        lis_core::metrics::ratio_loss(self.final_mse(), self.clean_mse)
    }
}

/// Greedy mixed adversary: at every step takes whichever single action —
/// optimal insertion or optimal deletion — increases the loss more, up to
/// `budget.count` actions total.
///
/// Strictly dominates the insert-only adversary on keysets where deletions
/// open exploitable structure (e.g. regular dense regions).
pub fn greedy_mixed(ks: &KeySet, budget: PoisonBudget) -> Result<MixedCampaign> {
    if ks.len() < 3 {
        return Err(LisError::DegenerateRegression { n: ks.len() });
    }
    let clean_mse = PoisonOracle::new(ks).clean_mse();
    let mut current = ks.clone();
    let mut actions = Vec::with_capacity(budget.count);
    let mut losses = Vec::with_capacity(budget.count);
    for _ in 0..budget.count {
        let oracle = PoisonOracle::new(&current);
        let insert = optimal_single_point_with(&current, &oracle).ok();
        let remove = if current.len() >= 3 {
            optimal_single_removal(&current).ok()
        } else {
            None
        };
        match (insert, remove) {
            (Some(ins), Some(rem)) if ins.poisoned_mse >= rem.poisoned_mse => {
                current.insert(ins.key)?;
                actions.push(MixedAction::Insert(ins.key));
                losses.push(ins.poisoned_mse);
            }
            (_, Some(rem)) => {
                current.remove(rem.key)?;
                actions.push(MixedAction::Remove(rem.key));
                losses.push(rem.poisoned_mse);
            }
            (Some(ins), None) => {
                current.insert(ins.key)?;
                actions.push(MixedAction::Insert(ins.key));
                losses.push(ins.poisoned_mse);
            }
            (None, None) => break,
        }
    }
    Ok(MixedCampaign {
        actions,
        losses,
        clean_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn removal_oracle_matches_refit() {
        let ks = KeySet::from_keys(vec![2, 6, 7, 12, 19, 31, 40]).unwrap();
        let plan = optimal_single_removal(&ks).unwrap();
        // Exhaustive check: refit without each key, compare maxima.
        let mut best = f64::NEG_INFINITY;
        let mut best_key = 0;
        for &k in ks.keys() {
            let mut without = ks.clone();
            without.remove(k).unwrap();
            let mse = lis_core::linreg::LinearModel::fit(&without).unwrap().mse;
            if mse > best {
                best = mse;
                best_key = k;
            }
        }
        assert!(
            (plan.poisoned_mse - best).abs() < 1e-9,
            "{} vs {}",
            plan.poisoned_mse,
            best
        );
        assert_eq!(plan.key, best_key);
    }

    #[test]
    fn removal_requires_three_keys() {
        let ks = KeySet::from_keys(vec![1, 5]).unwrap();
        assert!(matches!(
            optimal_single_removal(&ks),
            Err(LisError::DegenerateRegression { n: 2 })
        ));
    }

    #[test]
    fn removal_increases_loss_on_structured_data() {
        // Removing a key from a perfectly linear CDF breaks its linearity
        // and raises the loss above ~0.
        let ks = uniform(100, 10);
        let plan = optimal_single_removal(&ks).unwrap();
        assert!(plan.poisoned_mse > plan.clean_mse);
    }

    #[test]
    fn greedy_removal_campaign() {
        let ks = uniform(100, 10);
        let campaign = greedy_removal(&ks, 10).unwrap();
        assert_eq!(campaign.removed.len(), 10);
        // All removed keys were legitimate and distinct.
        let mut seen = std::collections::HashSet::new();
        for &k in &campaign.removed {
            assert!(ks.contains(k));
            assert!(seen.insert(k));
        }
        assert!(campaign.ratio_loss() > 1.0);
    }

    #[test]
    fn greedy_removal_stops_at_minimum_size() {
        let ks = KeySet::from_keys(vec![1, 5, 9, 14]).unwrap();
        let campaign = greedy_removal(&ks, 10).unwrap();
        assert!(
            campaign.removed.len() <= 2,
            "must keep ≥ 2 keys for the regression"
        );
    }

    #[test]
    fn mixed_adversary_first_step_dominates() {
        // Per-step dominance is the guarantee (greedy trajectories diverge
        // after that, so FINAL losses may order either way).
        let ks = uniform(90, 5);
        let budget = PoisonBudget::keys(10);
        let insert_only = crate::greedy::greedy_poison(&ks, budget).unwrap();
        let delete_only = greedy_removal(&ks, 10).unwrap();
        let mixed = greedy_mixed(&ks, budget).unwrap();
        assert!(mixed.losses[0] >= insert_only.losses[0] - 1e-9);
        assert!(mixed.losses[0] >= delete_only.losses[0] - 1e-9);
    }

    #[test]
    fn mixed_actions_are_consistent() {
        let ks = uniform(60, 7);
        let mixed = greedy_mixed(&ks, PoisonBudget::keys(8)).unwrap();
        assert_eq!(mixed.actions.len(), mixed.losses.len());
        // Replay the actions and verify the final loss.
        let mut replay = ks.clone();
        for a in &mixed.actions {
            match a {
                MixedAction::Insert(k) => replay.insert(*k).unwrap(),
                MixedAction::Remove(k) => replay.remove(*k).unwrap(),
            }
        }
        let refit = lis_core::linreg::LinearModel::fit(&replay).unwrap().mse;
        assert!((refit - mixed.final_mse()).abs() < 1e-9 * refit.max(1.0));
    }
}
