//! # lis-poison — poisoning attacks on learned index structures
//!
//! The primary contribution of *"The Price of Tailoring the Index to Your
//! Data"* (Kornaropoulos, Ren, Tamassia — SIGMOD 2022): availability
//! poisoning attacks against regression models trained on CDFs, and against
//! the two-stage Recursive Model Index built from them.
//!
//! Poisoning a CDF differs from classic regression poisoning: the training
//! target of every point is its *rank*, so inserting one key shifts the
//! rank of every larger key — a single insertion perturbs a large fraction
//! of the training set (the "compound effect", Section IV-B).
//!
//! * [`attack`] — the unified [`Attack`] trait and wrappers, so harnesses
//!   sweep every adversary through one interface;
//! * [`oracle`] — O(1)-per-candidate poisoned-loss evaluation, both the
//!   immutable precomputed form and the incremental form whose moments
//!   stay valid under insert/remove (no per-step rebuilds);
//! * [`single`] — the optimal single-point attack (gap endpoints, O(n));
//! * [`loss_sequence`] — the full `L(kp)` sequence and its discrete
//!   derivative (Figure 3, Theorem 2);
//! * [`greedy`] — greedy multi-point poisoning (Algorithm 1), with exact,
//!   lazy-heap, and kept-callable reference engines;
//! * [`bruteforce`] — exhaustive baselines used for validation;
//! * [`rmi_attack`](mod@rmi_attack) — the two-stage RMI attack with greedy volume
//!   allocation and CHANGELOSS neighbour exchanges (Algorithm 2).
//!
//! ## Quick example
//!
//! ```
//! use lis_core::keys::KeySet;
//! use lis_poison::{greedy_poison, PoisonBudget};
//!
//! // 90 uniformly spaced keys, 10 poisoning keys — the setting of the
//! // paper's Figure 4.
//! let ks = KeySet::from_keys((0..90u64).map(|i| i * 5).collect()).unwrap();
//! let plan = greedy_poison(&ks, PoisonBudget::keys(10)).unwrap();
//! assert!(plan.ratio_loss() > 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attack;
pub mod blackbox;
pub mod bruteforce;
pub mod greedy;
pub mod loss_sequence;
pub mod oracle;
pub mod removal;
pub mod rmi_attack;
pub mod single;
pub mod volume;

pub use attack::{
    Attack, AttackOutcome, DpRmiPoisonAttack, GreedyCdfAttack, MixedAttack, NullAttack,
    RemovalAttack, RmiPoisonAttack,
};
pub use blackbox::{blackbox_rmi_attack, infer_leaf_models, BlackboxOutcome};
pub use greedy::{
    greedy_poison, greedy_poison_lazy, greedy_poison_reference, greedy_poison_sorted, GreedyPlan,
    PoisonBudget,
};
pub use loss_sequence::LossSequence;
pub use oracle::{IncrementalOracle, PoisonOracle};
pub use removal::{greedy_mixed, greedy_removal, optimal_single_removal};
pub use rmi_attack::{rmi_attack, RmiAttackConfig, RmiAttackResult};
pub use single::{optimal_single_point, SinglePointPlan};
pub use volume::{dp_rmi_allocation, dp_rmi_attack, optimal_volume_allocation, VolumeAllocation};
