//! Exact volume allocation by dynamic programming — the optimality
//! yardstick for Algorithm 2's greedy exchanges.
//!
//! Section V frames the RMI attack as two subproblems: *key allocation*
//! (which keys inside a partition — Algorithm 1) and *volume allocation*
//! (how many keys per partition). The paper solves the latter greedily and
//! notes that "for realistic datasets it is infeasible to explore the
//! entire search space". That is true for the joint space, but once the
//! per-model response curves `L_i(v)` (poisoned loss of model `i` under
//! volume `v`) are tabulated, the volume allocation alone is a classic
//! resource-allocation problem solved *exactly* by dynamic programming in
//! `O(N · budget · t)` — practical for the paper's own parameterizations.
//!
//! [`optimal_volume_allocation`] computes the exact optimum (without the
//! boundary-key exchanges of Algorithm 2, which enlarge the space); the
//! `ablation_volume_allocation` bench compares it against the greedy
//! allocator to quantify how much the heuristic leaves on the table.

use crate::greedy::{greedy_poison, PoisonBudget};
use lis_core::error::{LisError, Result};
use lis_core::keys::KeySet;
use lis_core::linreg::LinearModel;

/// Tabulated response curve of one second-stage model: `losses[v]` is the
/// poisoned MSE with `v` greedily placed keys.
#[derive(Debug, Clone)]
pub struct ResponseCurve {
    /// `losses[v]` for `v = 0..=max_volume`.
    pub losses: Vec<f64>,
}

impl ResponseCurve {
    /// Largest volume tabulated.
    pub fn max_volume(&self) -> usize {
        self.losses.len() - 1
    }
}

/// Result of the exact DP allocation.
#[derive(Debug, Clone)]
pub struct VolumeAllocation {
    /// Chosen volume per model.
    pub volumes: Vec<usize>,
    /// `Σ L_i(v_i)` at the optimum (sum, not yet divided by `N`).
    pub total_loss: f64,
    /// RMI loss `total_loss / N`.
    pub rmi_loss: f64,
}

/// Tabulates `L_i(v)` for every model partition by running the greedy key
/// allocator once at `max_volume` and reading intermediate losses — the
/// greedy prefix property makes one run per model sufficient.
pub fn response_curves(partitions: &[KeySet], max_volume: usize) -> Result<Vec<ResponseCurve>> {
    let mut curves = Vec::with_capacity(partitions.len());
    for part in partitions {
        let clean = if part.len() < 2 {
            0.0
        } else {
            LinearModel::fit(part)?.mse
        };
        let mut losses = Vec::with_capacity(max_volume + 1);
        losses.push(clean);
        if part.len() >= 2 && max_volume > 0 {
            let plan = greedy_poison(part, PoisonBudget::keys(max_volume))?;
            losses.extend(plan.losses.iter().copied());
        }
        // Saturated partitions stop early: pad with the last value (extra
        // volume is unplaceable and adds nothing).
        let last = *losses.last().expect("non-empty");
        while losses.len() <= max_volume {
            losses.push(last);
        }
        curves.push(ResponseCurve { losses });
    }
    Ok(curves)
}

/// Exact volume allocation: maximizes `Σ L_i(v_i)` subject to
/// `Σ v_i ≤ budget` and `v_i ≤ t` (the per-model threshold), by dynamic
/// programming over models.
///
/// Complexity `O(N · budget · t)` time, `O(N · budget)` space.
pub fn optimal_volume_allocation(
    curves: &[ResponseCurve],
    budget: usize,
    threshold: usize,
) -> Result<VolumeAllocation> {
    if curves.is_empty() {
        return Err(LisError::InvalidRmiConfig("no response curves".into()));
    }
    let t = threshold.min(
        curves
            .iter()
            .map(ResponseCurve::max_volume)
            .max()
            .unwrap_or(0),
    );
    let n_models = curves.len();

    // dp[i][b] = best Σ loss using models 0..i with total volume exactly ≤ b.
    // Stored flat; choice[i][b] = volume given to model i at the optimum.
    let width = budget + 1;
    let mut dp = vec![0.0f64; width];
    let mut choice = vec![0u32; n_models * width];

    for (i, curve) in curves.iter().enumerate() {
        let mut next = vec![f64::NEG_INFINITY; width];
        for b in 0..width {
            let v_cap = t.min(b).min(curve.max_volume());
            for v in 0..=v_cap {
                let cand = dp[b - v] + curve.losses[v];
                if cand > next[b] {
                    next[b] = cand;
                    choice[i * width + b] = v as u32;
                }
            }
        }
        dp = next;
    }

    // Best budget usage (allocation is monotone, but guard anyway).
    let (best_b, &total_loss) = dp
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("non-empty dp");

    // Reconstruct.
    let mut volumes = vec![0usize; n_models];
    let mut b = best_b;
    for i in (0..n_models).rev() {
        let v = choice[i * width + b] as usize;
        volumes[i] = v;
        b -= v;
    }

    Ok(VolumeAllocation {
        volumes,
        total_loss,
        rmi_loss: total_loss / n_models as f64,
    })
}

/// Convenience wrapper: partitions `ks`, tabulates curves, and solves the
/// exact allocation for a poisoning percentage and threshold multiplier α.
pub fn dp_rmi_allocation(
    ks: &KeySet,
    num_models: usize,
    poison_percent: f64,
    alpha: f64,
) -> Result<VolumeAllocation> {
    let budget = (poison_percent / 100.0 * ks.len() as f64).floor() as usize;
    let per_model = budget / num_models.max(1);
    let threshold =
        ((alpha * budget as f64 / num_models as f64).ceil() as usize).max(per_model + 1);
    let partitions = ks.partition(num_models)?;
    let curves = response_curves(&partitions, threshold)?;
    optimal_volume_allocation(&curves, budget, threshold)
}

/// The DP-backed RMI attack: exact volume allocation followed by greedy key
/// allocation per model. A *stronger* adversary than the paper's
/// Algorithm 2 on skewed data (see the `ablation_volume_allocation` bench):
/// the greedy exchange loop walks one poisoning slot at a time between
/// neighbours and stalls in local optima that the DP jumps past.
pub fn dp_rmi_attack(
    ks: &KeySet,
    num_models: usize,
    poison_percent: f64,
    alpha: f64,
) -> Result<crate::rmi_attack::RmiAttackResult> {
    let budget = (poison_percent / 100.0 * ks.len() as f64).floor() as usize;
    let per_model = budget / num_models.max(1);
    let threshold =
        ((alpha * budget as f64 / num_models as f64).ceil() as usize).max(per_model + 1);
    let partitions = ks.partition(num_models)?;
    let curves = response_curves(&partitions, threshold)?;
    let alloc = optimal_volume_allocation(&curves, budget, threshold)?;

    let mut models = Vec::with_capacity(num_models);
    let mut total_poison = 0usize;
    let mut poisoned_sum = 0.0;
    let mut clean_sum = 0.0;
    for (part, (&volume, curve)) in partitions.iter().zip(alloc.volumes.iter().zip(&curves)) {
        let clean_loss = curve.losses[0];
        let (loss, poison) = if volume == 0 || part.len() < 2 {
            (clean_loss, Vec::new())
        } else {
            let plan = greedy_poison(part, PoisonBudget::keys(volume))?;
            (plan.final_mse(), plan.keys)
        };
        total_poison += poison.len();
        poisoned_sum += loss;
        clean_sum += clean_loss;
        models.push(crate::rmi_attack::ModelOutcome {
            legit: part.keys().to_vec(),
            poison,
            poisoned_loss: loss,
            clean_loss,
        });
    }
    Ok(crate::rmi_attack::RmiAttackResult {
        models,
        clean_rmi_loss: clean_sum / num_models as f64,
        poisoned_rmi_loss: poisoned_sum / num_models as f64,
        exchanges_applied: 0,
        total_poison,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmi_attack::{rmi_attack, RmiAttackConfig};

    fn skewed(n: u64) -> KeySet {
        KeySet::from_keys((1..=n).map(|i| i * i / 2 + i).collect()).unwrap()
    }

    #[test]
    fn curves_start_at_clean_loss_and_grow() {
        let ks = skewed(200);
        let parts = ks.partition(4).unwrap();
        let curves = response_curves(&parts, 10).unwrap();
        assert_eq!(curves.len(), 4);
        for (c, p) in curves.iter().zip(&parts) {
            let clean = LinearModel::fit(p).unwrap().mse;
            assert!((c.losses[0] - clean).abs() < 1e-12);
            assert_eq!(c.losses.len(), 11);
            // Greedy losses are non-decreasing on these workloads.
            for w in c.losses.windows(2) {
                assert!(w[1] >= w[0] * 0.999, "{} -> {}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn dp_beats_or_matches_uniform_allocation() {
        let ks = skewed(400);
        let parts = ks.partition(8).unwrap();
        let budget = 40; // 10%
        let threshold = 15; // α = 3
        let curves = response_curves(&parts, threshold).unwrap();
        let dp = optimal_volume_allocation(&curves, budget, threshold).unwrap();
        let uniform: f64 = curves.iter().map(|c| c.losses[budget / 8]).sum();
        assert!(
            dp.total_loss >= uniform - 1e-9,
            "dp {} vs uniform {}",
            dp.total_loss,
            uniform
        );
        assert!(dp.volumes.iter().sum::<usize>() <= budget);
        assert!(dp.volumes.iter().all(|&v| v <= threshold));
    }

    #[test]
    fn dp_is_exact_on_tiny_instance() {
        // 2 models, budget 3, threshold 2 — enumerate by hand.
        let curves = vec![
            ResponseCurve {
                losses: vec![0.0, 5.0, 6.0],
            },
            ResponseCurve {
                losses: vec![0.0, 1.0, 8.0],
            },
        ];
        let dp = optimal_volume_allocation(&curves, 3, 2).unwrap();
        // Best: v = (1, 2) → 5 + 8 = 13.
        assert_eq!(dp.volumes, vec![1, 2]);
        assert!((dp.total_loss - 13.0).abs() < 1e-12);
    }

    #[test]
    fn dp_respects_budget_strictly() {
        let curves = vec![
            ResponseCurve {
                losses: vec![0.0, 10.0],
            },
            ResponseCurve {
                losses: vec![0.0, 10.0],
            },
        ];
        let dp = optimal_volume_allocation(&curves, 1, 1).unwrap();
        assert_eq!(dp.volumes.iter().sum::<usize>(), 1);
        assert!((dp.total_loss - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dp_attack_dominates_greedy_on_skewed_data() {
        // Headline of the volume-allocation ablation: Algorithm 2's
        // one-slot-at-a-time neighbour exchanges stall in local optima on
        // skewed data; the exact DP allocation (same key-allocation
        // subroutine) reaches a strictly higher RMI loss.
        let ks = skewed(600);
        let greedy = rmi_attack(&ks, 6, &RmiAttackConfig::new(10.0)).unwrap();
        let dp = dp_rmi_attack(&ks, 6, 10.0, 3.0).unwrap();
        assert!(
            dp.poisoned_rmi_loss >= greedy.poisoned_rmi_loss * 0.999,
            "dp {} should not trail greedy {}",
            dp.poisoned_rmi_loss,
            greedy.poisoned_rmi_loss
        );
        // DP result is internally consistent.
        let budget = (0.10 * ks.len() as f64) as usize;
        assert!(dp.total_poison <= budget);
        assert!(dp.rmi_ratio() >= 1.0);
    }

    #[test]
    fn zero_budget_allocation() {
        let curves = vec![ResponseCurve {
            losses: vec![2.0, 9.0],
        }];
        let dp = optimal_volume_allocation(&curves, 0, 5).unwrap();
        assert_eq!(dp.volumes, vec![0]);
        assert!((dp.total_loss - 2.0).abs() < 1e-12);
    }
}
