//! The O(1)-per-candidate poisoned-loss oracle (Section IV-C).
//!
//! The "first attempt" of the paper recomputes the regression loss from
//! scratch for every potential poisoning key — `O(mn)` overall. The insight
//! behind the optimal attack is that, for a fixed keyset `K`, the loss after
//! inserting a candidate `kp` is a simple function of a handful of moments,
//! all of which can be updated in constant time as the candidate moves:
//!
//! * the rank multiset of the poisoned set is always exactly `1..=n+1`, so
//!   `Σr′` and `Σr′²` are closed-form constants independent of `kp`;
//! * `Σk′` and `Σk′²` gain only the candidate's own contribution;
//! * the cross-moment gains the candidate's `kp·rp` **plus the sum of every
//!   legitimate key larger than `kp`** — the compound effect: those keys'
//!   ranks each increase by one.
//!
//! [`PoisonOracle`] precomputes the legitimate moments and a suffix-sum
//! array of (shifted) keys in `O(n)`; each candidate evaluation is then
//! `O(log n)` for the rank lookup (or `O(1)` when the caller already knows
//! the insertion rank, as the gap walk does). This is algebraically
//! equivalent to the paper's discrete-derivative recurrences but evaluates
//! each candidate independently, avoiding accumulated floating-point drift.
//!
//! [`PoisonOracle`] is immutable: a campaign that *commits* points used to
//! rebuild it from scratch per step, which is what made the greedy CDF
//! attack `O(p·n)`. [`IncrementalOracle`] removes that rebuild — the same
//! moments kept valid under `insert`/`remove` in `O(1)` algebra per
//! mutation (plus sorted-block bookkeeping for the rank/suffix queries) —
//! and is what the campaign engines in [`crate::greedy`] run on.

use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::optimal_mse;
use lis_core::stats::{midpoint_shift, rank_sq_sum, rank_sum, CdfMoments};

/// Precomputed state for constant-time poisoned-loss queries against a
/// fixed legitimate keyset.
#[derive(Debug, Clone)]
pub struct PoisonOracle {
    /// The legitimate keys (sorted), shifted into f64.
    xs: Vec<f64>,
    /// Raw keys for rank lookups.
    keys: Vec<Key>,
    /// `suffix[i] = Σ_{j ≥ i} xs[j]`; `suffix[n] = 0`.
    suffix: Vec<f64>,
    shift: f64,
    sum_x: f64,
    sum_xx: f64,
    sum_xr: f64,
    /// Loss of the clean regression (for ratio reporting).
    clean_mse: f64,
}

impl PoisonOracle {
    /// Builds the oracle in `O(n)` (after the keyset's own sort).
    pub fn new(ks: &KeySet) -> Self {
        let n = ks.len();
        let shift = midpoint_shift(ks.min_key(), ks.max_key());
        let keys = ks.keys().to_vec();
        let xs: Vec<f64> = keys.iter().map(|&k| k as f64 - shift).collect();
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + xs[i];
        }
        let mut sum_x = 0.0;
        let mut sum_xx = 0.0;
        let mut sum_xr = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            sum_x += x;
            sum_xx += x * x;
            sum_xr += x * (i + 1) as f64;
        }
        let clean = CdfMoments {
            n,
            shift,
            sum_x,
            sum_xx,
            sum_r: rank_sum(n),
            sum_rr: rank_sq_sum(n),
            sum_xr,
        };
        Self {
            xs,
            keys,
            suffix,
            shift,
            sum_x,
            sum_xx,
            sum_xr,
            clean_mse: optimal_mse(&clean),
        }
    }

    /// Number of legitimate keys.
    pub fn n(&self) -> usize {
        self.xs.len()
    }

    /// MSE of the regression on the clean keyset.
    pub fn clean_mse(&self) -> f64 {
        self.clean_mse
    }

    /// Loss of the regression refit on `K ∪ {kp}`, where the caller supplies
    /// the number of legitimate keys strictly below `kp` (`idx`, equal to
    /// `kp`'s 0-based insertion position). `kp` must not collide with an
    /// existing key.
    pub fn loss_with_rank(&self, kp: Key, idx: usize) -> f64 {
        debug_assert!(idx <= self.xs.len());
        debug_assert!(
            self.keys.binary_search(&kp).is_err(),
            "poisoning key {kp} collides with a legitimate key"
        );
        let n1 = self.xs.len() + 1;
        let xp = kp as f64 - self.shift;
        let rp = (idx + 1) as f64;
        let m = CdfMoments {
            n: n1,
            shift: self.shift,
            sum_x: self.sum_x + xp,
            sum_xx: self.sum_xx + xp * xp,
            sum_r: rank_sum(n1),
            sum_rr: rank_sq_sum(n1),
            // Compound effect: every key above kp gains one rank, adding
            // its (shifted) key value to the cross moment once.
            sum_xr: self.sum_xr + self.suffix[idx] + xp * rp,
        };
        optimal_mse(&m)
    }

    /// Loss of the regression refit on `K ∪ {kp}`; `O(log n)` rank lookup.
    pub fn loss(&self, kp: Key) -> f64 {
        let idx = self.keys.partition_point(|&k| k < kp);
        self.loss_with_rank(kp, idx)
    }

    /// Reference implementation: refits the regression from scratch on the
    /// augmented pair list. Used by tests to validate the O(1) algebra.
    pub fn loss_refit(&self, ks: &KeySet, kp: Key) -> f64 {
        let augmented = ks.with_key(kp).expect("valid candidate");
        lis_core::linreg::LinearModel::fit(&augmented)
            .expect("n ≥ 2")
            .mse
    }
}

/// Smallest sorted-block length the [`IncrementalOracle`]'s key store
/// targets; the actual target grows as `√n` so both the per-block scans
/// and the cross-block scans stay `O(√n)` — sublinear rank/suffix queries
/// without a balanced tree. Blocks split at twice the target (splits
/// recompute their sums from scratch, bounding float drift).
const BLOCK_TARGET_MIN: usize = 256;

/// Block-length target for a store of `n` keys: `max(√n, BLOCK_TARGET_MIN)`.
fn block_target(n: usize) -> usize {
    ((n as f64).sqrt().ceil() as usize).max(BLOCK_TARGET_MIN)
}

/// One sorted run of keys with its cached shifted-key sum.
#[derive(Debug, Clone)]
struct Block {
    keys: Vec<Key>,
    sum_x: f64,
}

/// A [`PoisonOracle`] that survives mutation: the sufficient statistics
/// (`Σx`, `Σx²`, `Σxr` over shifted keys; `Σr`, `Σr²` are closed-form in
/// `n`) are maintained **incrementally** under [`IncrementalOracle::insert`]
/// / [`IncrementalOracle::remove`], so a campaign evaluating and committing
/// poison points pays `O(1)` moment algebra per accepted point instead of
/// the `O(n)` oracle rebuild the old greedy loop performed.
///
/// The keys themselves live in `~√n`-sized sorted blocks (see
/// [`block_target`]; a classic sorted-list decomposition): rank and
/// suffix-sum queries cost `O(√n)`, inserts and removals `O(√n)`
/// amortized. Inserting a key updates the cross
/// moment with the *compound effect* — every key above the insertion gains
/// one rank, adding the block-tracked suffix sum — and removal mirrors it.
///
/// `tests/property_incremental_oracle.rs` pins every query against a
/// from-scratch refit after arbitrary interleaved insert/remove sequences.
#[derive(Debug, Clone)]
pub struct IncrementalOracle {
    shift: f64,
    n: usize,
    sum_x: f64,
    sum_xx: f64,
    sum_xr: f64,
    clean_mse: f64,
    blocks: Vec<Block>,
    /// First key of each block, parallel to `blocks` (block routing).
    firsts: Vec<Key>,
    /// Block split threshold is `2 × target` (≈ `2√n` at construction).
    target: usize,
}

impl IncrementalOracle {
    /// Builds the oracle over a keyset in `O(n)`.
    pub fn new(ks: &KeySet) -> Self {
        Self::from_sorted_keys(ks.keys())
    }

    /// Builds the oracle over an already-sorted, duplicate-free slice in
    /// `O(n)` — the zero-copy entry the per-leaf attack loops use.
    pub fn from_sorted_keys(keys: &[Key]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted");
        debug_assert!(!keys.is_empty(), "oracle needs at least one key");
        let n = keys.len();
        let shift = midpoint_shift(keys[0], keys[n - 1]);
        let mut sum_x = 0.0;
        let mut sum_xx = 0.0;
        let mut sum_xr = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let x = k as f64 - shift;
            sum_x += x;
            sum_xx += x * x;
            sum_xr += x * (i + 1) as f64;
        }
        let target = block_target(n);
        let mut blocks = Vec::with_capacity(n.div_ceil(target));
        let mut firsts = Vec::with_capacity(blocks.capacity());
        for chunk in keys.chunks(target) {
            firsts.push(chunk[0]);
            blocks.push(Block {
                keys: chunk.to_vec(),
                sum_x: chunk.iter().map(|&k| k as f64 - shift).sum(),
            });
        }
        let clean_mse = if n >= 2 {
            optimal_mse(&CdfMoments {
                n,
                shift,
                sum_x,
                sum_xx,
                sum_r: rank_sum(n),
                sum_rr: rank_sq_sum(n),
                sum_xr,
            })
        } else {
            0.0
        };
        Self {
            shift,
            n,
            sum_x,
            sum_xx,
            sum_xr,
            clean_mse,
            blocks,
            firsts,
            target,
        }
    }

    /// Number of keys currently tracked.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff every key has been removed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The fixed key shift chosen at construction (callers maintaining
    /// their own shifted suffix sums must agree on it).
    pub fn shift(&self) -> f64 {
        self.shift
    }

    /// MSE of the regression on the keyset the oracle was built over.
    pub fn clean_mse(&self) -> f64 {
        self.clean_mse
    }

    /// MSE of the optimal regression on the *current* (mutated) keyset,
    /// from the maintained moments in `O(1)`.
    pub fn current_mse(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        optimal_mse(&self.moments())
    }

    fn moments(&self) -> CdfMoments {
        CdfMoments {
            n: self.n,
            shift: self.shift,
            sum_x: self.sum_x,
            sum_xx: self.sum_xx,
            sum_r: rank_sum(self.n),
            sum_rr: rank_sq_sum(self.n),
            sum_xr: self.sum_xr,
        }
    }

    /// Index of the block that may contain `key` (last block whose first
    /// key is ≤ `key`, clamped to block 0).
    fn block_for(&self, key: Key) -> usize {
        self.firsts.partition_point(|&f| f <= key).saturating_sub(1)
    }

    /// Whether `key` is currently present.
    pub fn contains(&self, key: Key) -> bool {
        if self.n == 0 {
            return false;
        }
        let b = self.block_for(key);
        self.blocks[b].keys.binary_search(&key).is_ok()
    }

    /// Number of keys strictly below `key` — the 0-based insertion index.
    pub fn rank_below(&self, key: Key) -> usize {
        if self.n == 0 {
            return 0;
        }
        let b = self.block_for(key);
        self.blocks[..b]
            .iter()
            .map(|blk| blk.keys.len())
            .sum::<usize>()
            + self.blocks[b].keys.partition_point(|&k| k < key)
    }

    /// Sum of shifted keys strictly greater than `key` — the compound
    /// effect's cross-moment contribution.
    pub fn suffix_sum_above(&self, key: Key) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let b = self.block_for(key);
        let block = &self.blocks[b];
        let pos = block.keys.partition_point(|&k| k <= key);
        let mut sum: f64 = block.keys[pos..]
            .iter()
            .map(|&k| k as f64 - self.shift)
            .sum();
        for blk in &self.blocks[b + 1..] {
            sum += blk.sum_x;
        }
        sum
    }

    /// Loss of the regression refit on the current set ∪ `{kp}` when the
    /// caller already knows `kp`'s insertion index and the suffix sum of
    /// shifted keys above it — pure `O(1)` algebra (the campaign engines
    /// maintain both per gap).
    pub fn loss_insert_with(&self, kp: Key, idx: usize, suffix_above: f64) -> f64 {
        debug_assert!(idx <= self.n);
        let n1 = self.n + 1;
        let xp = kp as f64 - self.shift;
        let rp = (idx + 1) as f64;
        optimal_mse(&CdfMoments {
            n: n1,
            shift: self.shift,
            sum_x: self.sum_x + xp,
            sum_xx: self.sum_xx + xp * xp,
            sum_r: rank_sum(n1),
            sum_rr: rank_sq_sum(n1),
            // Compound effect: every key above kp gains one rank, adding
            // its shifted value to the cross moment once.
            sum_xr: self.sum_xr + suffix_above + xp * rp,
        })
    }

    /// Loss of the regression refit on the current set ∪ `{kp}`;
    /// `O(#blocks)` for the rank/suffix queries. `kp` must be absent.
    pub fn loss_insert(&self, kp: Key) -> f64 {
        debug_assert!(!self.contains(kp), "poisoning key {kp} collides");
        self.loss_insert_with(kp, self.rank_below(kp), self.suffix_sum_above(kp))
    }

    /// Loss of the regression refit on the current set ∖ `{k}`;
    /// `O(#blocks)`. `k` must be present and the remainder must keep ≥ 2
    /// keys.
    pub fn loss_remove(&self, k: Key) -> f64 {
        debug_assert!(self.contains(k), "removal key {k} not present");
        let n1 = self.n - 1;
        if n1 < 2 {
            return 0.0;
        }
        let idx = self.rank_below(k);
        let x = k as f64 - self.shift;
        let r = (idx + 1) as f64;
        optimal_mse(&CdfMoments {
            n: n1,
            shift: self.shift,
            sum_x: self.sum_x - x,
            sum_xx: self.sum_xx - x * x,
            sum_r: rank_sum(n1),
            sum_rr: rank_sq_sum(n1),
            // Mirrored compound effect: every key above k loses one rank.
            sum_xr: self.sum_xr - x * r - self.suffix_sum_above(k),
        })
    }

    /// Commits an insertion: `O(1)` moment updates plus the sorted-block
    /// bookkeeping (`O(log #blocks + block)` amortized). Errors on
    /// duplicates.
    pub fn insert(&mut self, kp: Key) -> Result<()> {
        if self.n == 0 {
            let xp = kp as f64 - self.shift;
            self.blocks.push(Block {
                keys: vec![kp],
                sum_x: xp,
            });
            self.firsts.push(kp);
            self.n = 1;
            self.sum_x = xp;
            self.sum_xx = xp * xp;
            self.sum_xr = xp;
            return Ok(());
        }
        let b = self.block_for(kp);
        let pos = match self.blocks[b].keys.binary_search(&kp) {
            Ok(_) => return Err(LisError::DuplicateKey(kp)),
            Err(pos) => pos,
        };
        let xp = kp as f64 - self.shift;
        let rp = (self.rank_below(kp) + 1) as f64;
        // Moments first (they need the pre-insert suffix sum).
        self.sum_xr += self.suffix_sum_above(kp) + xp * rp;
        self.sum_x += xp;
        self.sum_xx += xp * xp;
        self.n += 1;
        // Structure second.
        self.blocks[b].keys.insert(pos, kp);
        self.blocks[b].sum_x += xp;
        if pos == 0 {
            self.firsts[b] = kp;
        }
        if self.blocks[b].keys.len() > 2 * self.target {
            let tail = self.blocks[b].keys.split_off(self.target);
            // Recompute both halves' sums from their keys: splits bound
            // the incremental float drift of the per-block sums.
            let shift = self.shift;
            self.blocks[b].sum_x = self.blocks[b].keys.iter().map(|&k| k as f64 - shift).sum();
            let tail_sum: f64 = tail.iter().map(|&k| k as f64 - shift).sum();
            self.firsts.insert(b + 1, tail[0]);
            self.blocks.insert(
                b + 1,
                Block {
                    keys: tail,
                    sum_x: tail_sum,
                },
            );
        }
        Ok(())
    }

    /// Commits a removal: the mirror of [`IncrementalOracle::insert`].
    /// Errors when `k` is absent.
    pub fn remove(&mut self, k: Key) -> Result<()> {
        if self.n == 0 {
            return Err(LisError::KeyNotFound(k));
        }
        let b = self.block_for(k);
        let pos = match self.blocks[b].keys.binary_search(&k) {
            Ok(pos) => pos,
            Err(_) => return Err(LisError::KeyNotFound(k)),
        };
        let x = k as f64 - self.shift;
        let r = (self.rank_below(k) + 1) as f64;
        self.sum_xr -= x * r + self.suffix_sum_above(k);
        self.sum_x -= x;
        self.sum_xx -= x * x;
        self.n -= 1;
        self.blocks[b].keys.remove(pos);
        self.blocks[b].sum_x -= x;
        if self.blocks[b].keys.is_empty() {
            self.blocks.remove(b);
            self.firsts.remove(b);
        } else if pos == 0 {
            self.firsts[b] = self.blocks[b].keys[0];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::keys::KeyDomain;

    fn paper_keys() -> KeySet {
        KeySet::new(vec![2, 6, 7, 12], KeyDomain::new(1, 13).unwrap()).unwrap()
    }

    #[test]
    fn oracle_matches_refit_everywhere() {
        let ks = paper_keys();
        let oracle = PoisonOracle::new(&ks);
        for kp in 1..=13u64 {
            if ks.contains(kp) {
                continue;
            }
            let fast = oracle.loss(kp);
            let slow = oracle.loss_refit(&ks, kp);
            assert!(
                (fast - slow).abs() < 1e-9,
                "kp={kp}: oracle {fast} vs refit {slow}"
            );
        }
    }

    #[test]
    fn clean_mse_matches_model_fit() {
        let ks = paper_keys();
        let oracle = PoisonOracle::new(&ks);
        let fit = lis_core::linreg::LinearModel::fit(&ks).unwrap();
        assert!((oracle.clean_mse() - fit.mse).abs() < 1e-12);
    }

    #[test]
    fn loss_with_rank_agrees_with_loss() {
        let ks = KeySet::from_keys(vec![10, 20, 30, 50, 80]).unwrap();
        let oracle = PoisonOracle::new(&ks);
        for (kp, idx) in [(11u64, 1usize), (25, 2), (79, 4), (31, 3)] {
            assert_eq!(oracle.loss(kp), oracle.loss_with_rank(kp, idx));
        }
    }

    #[test]
    fn large_scale_consistency() {
        // 10k uniform keys near 1e9: the shifted algebra must stay accurate.
        let ks =
            KeySet::from_keys((0..10_000u64).map(|i| 1_000_000_000 + i * 37).collect()).unwrap();
        let oracle = PoisonOracle::new(&ks);
        for kp in [1_000_000_005u64, 1_000_123_456, 1_000_369_950] {
            if ks.contains(kp) {
                continue;
            }
            let fast = oracle.loss(kp);
            let slow = oracle.loss_refit(&ks, kp);
            let denom = slow.abs().max(1.0);
            assert!(
                ((fast - slow) / denom).abs() < 1e-6,
                "kp={kp}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn incremental_oracle_matches_static_oracle_before_mutation() {
        let ks = KeySet::from_keys((0..3000u64).map(|i| i * 7 + (i % 5)).collect()).unwrap();
        let inc = IncrementalOracle::new(&ks);
        let stat = PoisonOracle::new(&ks);
        assert_eq!(inc.len(), ks.len());
        assert_eq!(inc.clean_mse().to_bits(), stat.clean_mse().to_bits());
        for kp in [3u64, 500, 10_000, ks.max_key() - 1] {
            if ks.contains(kp) {
                continue;
            }
            let a = inc.loss_insert(kp);
            let b = stat.loss(kp);
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "kp={kp}: {a} vs {b}"
            );
            assert_eq!(inc.rank_below(kp), ks.insertion_rank(kp) - 1);
        }
    }

    #[test]
    fn incremental_mutations_track_refit_across_block_splits() {
        // Enough inserts to force block splits (BLOCK_TARGET boundary) and
        // removals that empty blocks; every step checked against a
        // from-scratch refit.
        let mut ks = KeySet::from_keys((0..1500u64).map(|i| i * 4).collect()).unwrap();
        let mut inc = IncrementalOracle::new(&ks);
        for step in 0..900u64 {
            if step % 3 == 2 {
                let victim = ks.keys()[(step as usize * 7) % ks.len()];
                inc.remove(victim).unwrap();
                ks.remove(victim).unwrap();
            } else {
                let kp = step * 6 + 1;
                if ks.contains(kp) || !ks.domain().contains(kp) {
                    continue;
                }
                inc.insert(kp).unwrap();
                ks.insert(kp).unwrap();
            }
            if step % 97 == 0 {
                let refit = lis_core::linreg::LinearModel::fit(&ks).unwrap().mse;
                let fast = inc.current_mse();
                assert!(
                    (fast - refit).abs() <= 1e-6 * refit.abs().max(1.0),
                    "step {step}: {fast} vs {refit}"
                );
                assert_eq!(inc.len(), ks.len());
            }
        }
        // Structural errors are reported, not silently absorbed.
        let existing = ks.keys()[10];
        assert!(inc.insert(existing).is_err());
        assert!(inc.remove(existing + 1).is_err() || ks.contains(existing + 1));
    }

    #[test]
    fn loss_remove_matches_refit_without_key() {
        let ks = KeySet::from_keys(vec![2, 6, 7, 12, 19, 31, 40, 55]).unwrap();
        let inc = IncrementalOracle::new(&ks);
        for &k in ks.keys() {
            let mut without = ks.clone();
            without.remove(k).unwrap();
            let refit = lis_core::linreg::LinearModel::fit(&without).unwrap().mse;
            let fast = inc.loss_remove(k);
            assert!(
                (fast - refit).abs() <= 1e-9 * refit.abs().max(1.0),
                "k={k}: {fast} vs {refit}"
            );
        }
    }

    #[test]
    fn poisoning_never_decreases_optimal_loss_on_linear_data() {
        // For a perfectly linear CDF any insertion that breaks uniform
        // spacing strictly increases the loss.
        let ks = KeySet::from_keys((0..100u64).map(|i| i * 10).collect()).unwrap();
        let oracle = PoisonOracle::new(&ks);
        assert!(oracle.clean_mse() < 1e-9);
        for kp in [5u64, 41, 995, 503] {
            assert!(oracle.loss(kp) > 0.0, "kp={kp}");
        }
    }
}
