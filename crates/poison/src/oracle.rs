//! The O(1)-per-candidate poisoned-loss oracle (Section IV-C).
//!
//! The "first attempt" of the paper recomputes the regression loss from
//! scratch for every potential poisoning key — `O(mn)` overall. The insight
//! behind the optimal attack is that, for a fixed keyset `K`, the loss after
//! inserting a candidate `kp` is a simple function of a handful of moments,
//! all of which can be updated in constant time as the candidate moves:
//!
//! * the rank multiset of the poisoned set is always exactly `1..=n+1`, so
//!   `Σr′` and `Σr′²` are closed-form constants independent of `kp`;
//! * `Σk′` and `Σk′²` gain only the candidate's own contribution;
//! * the cross-moment gains the candidate's `kp·rp` **plus the sum of every
//!   legitimate key larger than `kp`** — the compound effect: those keys'
//!   ranks each increase by one.
//!
//! [`PoisonOracle`] precomputes the legitimate moments and a suffix-sum
//! array of (shifted) keys in `O(n)`; each candidate evaluation is then
//! `O(log n)` for the rank lookup (or `O(1)` when the caller already knows
//! the insertion rank, as the gap walk does). This is algebraically
//! equivalent to the paper's discrete-derivative recurrences but evaluates
//! each candidate independently, avoiding accumulated floating-point drift.

use lis_core::keys::{Key, KeySet};
use lis_core::linreg::optimal_mse;
use lis_core::stats::{midpoint_shift, rank_sq_sum, rank_sum, CdfMoments};

/// Precomputed state for constant-time poisoned-loss queries against a
/// fixed legitimate keyset.
#[derive(Debug, Clone)]
pub struct PoisonOracle {
    /// The legitimate keys (sorted), shifted into f64.
    xs: Vec<f64>,
    /// Raw keys for rank lookups.
    keys: Vec<Key>,
    /// `suffix[i] = Σ_{j ≥ i} xs[j]`; `suffix[n] = 0`.
    suffix: Vec<f64>,
    shift: f64,
    sum_x: f64,
    sum_xx: f64,
    sum_xr: f64,
    /// Loss of the clean regression (for ratio reporting).
    clean_mse: f64,
}

impl PoisonOracle {
    /// Builds the oracle in `O(n)` (after the keyset's own sort).
    pub fn new(ks: &KeySet) -> Self {
        let n = ks.len();
        let shift = midpoint_shift(ks.min_key(), ks.max_key());
        let keys = ks.keys().to_vec();
        let xs: Vec<f64> = keys.iter().map(|&k| k as f64 - shift).collect();
        let mut suffix = vec![0.0; n + 1];
        for i in (0..n).rev() {
            suffix[i] = suffix[i + 1] + xs[i];
        }
        let mut sum_x = 0.0;
        let mut sum_xx = 0.0;
        let mut sum_xr = 0.0;
        for (i, &x) in xs.iter().enumerate() {
            sum_x += x;
            sum_xx += x * x;
            sum_xr += x * (i + 1) as f64;
        }
        let clean = CdfMoments {
            n,
            shift,
            sum_x,
            sum_xx,
            sum_r: rank_sum(n),
            sum_rr: rank_sq_sum(n),
            sum_xr,
        };
        Self {
            xs,
            keys,
            suffix,
            shift,
            sum_x,
            sum_xx,
            sum_xr,
            clean_mse: optimal_mse(&clean),
        }
    }

    /// Number of legitimate keys.
    pub fn n(&self) -> usize {
        self.xs.len()
    }

    /// MSE of the regression on the clean keyset.
    pub fn clean_mse(&self) -> f64 {
        self.clean_mse
    }

    /// Loss of the regression refit on `K ∪ {kp}`, where the caller supplies
    /// the number of legitimate keys strictly below `kp` (`idx`, equal to
    /// `kp`'s 0-based insertion position). `kp` must not collide with an
    /// existing key.
    pub fn loss_with_rank(&self, kp: Key, idx: usize) -> f64 {
        debug_assert!(idx <= self.xs.len());
        debug_assert!(
            self.keys.binary_search(&kp).is_err(),
            "poisoning key {kp} collides with a legitimate key"
        );
        let n1 = self.xs.len() + 1;
        let xp = kp as f64 - self.shift;
        let rp = (idx + 1) as f64;
        let m = CdfMoments {
            n: n1,
            shift: self.shift,
            sum_x: self.sum_x + xp,
            sum_xx: self.sum_xx + xp * xp,
            sum_r: rank_sum(n1),
            sum_rr: rank_sq_sum(n1),
            // Compound effect: every key above kp gains one rank, adding
            // its (shifted) key value to the cross moment once.
            sum_xr: self.sum_xr + self.suffix[idx] + xp * rp,
        };
        optimal_mse(&m)
    }

    /// Loss of the regression refit on `K ∪ {kp}`; `O(log n)` rank lookup.
    pub fn loss(&self, kp: Key) -> f64 {
        let idx = self.keys.partition_point(|&k| k < kp);
        self.loss_with_rank(kp, idx)
    }

    /// Reference implementation: refits the regression from scratch on the
    /// augmented pair list. Used by tests to validate the O(1) algebra.
    pub fn loss_refit(&self, ks: &KeySet, kp: Key) -> f64 {
        let augmented = ks.with_key(kp).expect("valid candidate");
        lis_core::linreg::LinearModel::fit(&augmented)
            .expect("n ≥ 2")
            .mse
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::keys::KeyDomain;

    fn paper_keys() -> KeySet {
        KeySet::new(vec![2, 6, 7, 12], KeyDomain::new(1, 13).unwrap()).unwrap()
    }

    #[test]
    fn oracle_matches_refit_everywhere() {
        let ks = paper_keys();
        let oracle = PoisonOracle::new(&ks);
        for kp in 1..=13u64 {
            if ks.contains(kp) {
                continue;
            }
            let fast = oracle.loss(kp);
            let slow = oracle.loss_refit(&ks, kp);
            assert!(
                (fast - slow).abs() < 1e-9,
                "kp={kp}: oracle {fast} vs refit {slow}"
            );
        }
    }

    #[test]
    fn clean_mse_matches_model_fit() {
        let ks = paper_keys();
        let oracle = PoisonOracle::new(&ks);
        let fit = lis_core::linreg::LinearModel::fit(&ks).unwrap();
        assert!((oracle.clean_mse() - fit.mse).abs() < 1e-12);
    }

    #[test]
    fn loss_with_rank_agrees_with_loss() {
        let ks = KeySet::from_keys(vec![10, 20, 30, 50, 80]).unwrap();
        let oracle = PoisonOracle::new(&ks);
        for (kp, idx) in [(11u64, 1usize), (25, 2), (79, 4), (31, 3)] {
            assert_eq!(oracle.loss(kp), oracle.loss_with_rank(kp, idx));
        }
    }

    #[test]
    fn large_scale_consistency() {
        // 10k uniform keys near 1e9: the shifted algebra must stay accurate.
        let ks =
            KeySet::from_keys((0..10_000u64).map(|i| 1_000_000_000 + i * 37).collect()).unwrap();
        let oracle = PoisonOracle::new(&ks);
        for kp in [1_000_000_005u64, 1_000_123_456, 1_000_369_950] {
            if ks.contains(kp) {
                continue;
            }
            let fast = oracle.loss(kp);
            let slow = oracle.loss_refit(&ks, kp);
            let denom = slow.abs().max(1.0);
            assert!(
                ((fast - slow) / denom).abs() < 1e-6,
                "kp={kp}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn poisoning_never_decreases_optimal_loss_on_linear_data() {
        // For a perfectly linear CDF any insertion that breaks uniform
        // spacing strictly increases the loss.
        let ks = KeySet::from_keys((0..100u64).map(|i| i * 10).collect()).unwrap();
        let oracle = PoisonOracle::new(&ks);
        assert!(oracle.clean_mse() < 1e-9);
        for kp in [5u64, 41, 995, 503] {
            assert!(oracle.loss(kp) > 0.0, "kp={kp}");
        }
    }
}
