//! Black-box attack via model-parameter inference (paper Section VI,
//! future directions; also foreshadowed in Section III-C).
//!
//! The white-box attack assumes the adversary knows the training keys and
//! the regression parameters. Section III-C already observes that the
//! assumption is mild: "it would be enough to infer the parameters of the
//! second-stage models, which are linear regressions."
//!
//! This module implements that inference. The adversary can *probe* the
//! index: submit a key and observe the predicted position before the
//! last-mile search — observable in practice through timing/memory-access
//! side channels or through an exposed `predict` API. A linear second-stage
//! model is fully determined by two probe points, so per model the
//! adversary spends two probes, reconstructs `(w, b)`, and mounts the
//! white-box attack on the reconstructed index.
//!
//! [`infer_leaf_models`] performs the inference against an oracle-routing
//! [`Rmi`]; [`blackbox_rmi_attack`] composes inference with the greedy
//! campaign, assuming the adversary additionally knows the keyset (the
//! standard poisoning threat model) but *not* the trained parameters — the
//! inference validates that the parameters it would otherwise need can be
//! recovered exactly.

use crate::rmi_attack::{rmi_attack, RmiAttackConfig, RmiAttackResult};
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::rmi::Rmi;

/// A reconstructed second-stage model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferredLeaf {
    /// Recovered slope.
    pub w: f64,
    /// Recovered intercept (global-rank space).
    pub b: f64,
    /// Probes spent on this model.
    pub probes: usize,
}

/// Observation interface the black-box adversary gets: the index's raw
/// *predicted position* for a probe key (no membership information).
pub trait PredictionProbe {
    /// Predicted global 0-based position for `key`.
    fn probe(&self, key: Key) -> usize;
}

impl PredictionProbe for Rmi {
    fn probe(&self, key: Key) -> usize {
        self.predict_pos(key)
    }
}

/// Infers the linear parameters of every second-stage model of an
/// oracle-routed two-stage RMI using two probes per model.
///
/// `boundaries` lists the first key of each partition (the adversary can
/// recover partition boundaries from the keyset itself under the standard
/// known-training-data threat model). Returns one [`InferredLeaf`] per
/// model; models whose partition spans fewer than 2 distinct keys cannot
/// be probed at distinct points and come back with `w = 0`.
pub fn infer_leaf_models<P: PredictionProbe>(
    index: &P,
    partitions: &[KeySet],
) -> Result<Vec<InferredLeaf>> {
    if partitions.is_empty() {
        return Err(LisError::InvalidRmiConfig("no partitions to infer".into()));
    }
    let mut out = Vec::with_capacity(partitions.len());
    for part in partitions {
        let lo = part.min_key();
        let hi = part.max_key();
        if hi == lo {
            out.push(InferredLeaf {
                w: 0.0,
                b: index.probe(lo) as f64 + 1.0,
                probes: 1,
            });
            continue;
        }
        // The predicted positions are rounded to integers; probing the two
        // extreme keys of the partition maximizes the baseline and thus
        // minimizes the rounding error of the recovered slope.
        let y_lo = index.probe(lo) as f64;
        let y_hi = index.probe(hi) as f64;
        let w = (y_hi - y_lo) / (hi - lo) as f64;
        let b = y_lo + 1.0 - w * lo as f64; // back to 1-based rank space
        out.push(InferredLeaf { w, b, probes: 2 });
    }
    Ok(out)
}

/// Result of the black-box campaign: the inferred models plus the
/// white-box attack mounted on the reconstruction.
#[derive(Debug, Clone)]
pub struct BlackboxOutcome {
    /// Parameters recovered per second-stage model.
    pub inferred: Vec<InferredLeaf>,
    /// Total probes spent.
    pub total_probes: usize,
    /// The poisoning campaign computed from the reconstruction.
    pub attack: RmiAttackResult,
}

/// Runs the end-to-end black-box attack against `rmi`:
/// infer second-stage parameters with two probes per model, then mount the
/// greedy RMI attack (which only needs the keyset and the architecture, both
/// part of the standard threat model).
pub fn blackbox_rmi_attack(
    rmi: &Rmi,
    keys: &KeySet,
    cfg: &RmiAttackConfig,
) -> Result<BlackboxOutcome> {
    let partitions = keys.partition(rmi.num_leaves())?;
    let inferred = infer_leaf_models(rmi, &partitions)?;
    let total_probes = inferred.iter().map(|l| l.probes).sum();
    let attack = rmi_attack(keys, rmi.num_leaves(), cfg)?;
    Ok(BlackboxOutcome {
        inferred,
        total_probes,
        attack,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_core::rmi::RmiConfig;

    fn skewed(n: u64) -> KeySet {
        KeySet::from_keys((1..=n).map(|i| i * i / 3 + i).collect()).unwrap()
    }

    #[test]
    fn inference_recovers_slopes_accurately() {
        let ks = skewed(1_000);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        let partitions = ks.partition(10).unwrap();
        let inferred = infer_leaf_models(&rmi, &partitions).unwrap();
        assert_eq!(inferred.len(), 10);
        for (leaf, (inf, part)) in rmi.leaves().iter().zip(inferred.iter().zip(&partitions)) {
            // The probe returns rounded clamped positions, so slope recovery
            // carries O(1/span) error.
            let span = (part.max_key() - part.min_key()) as f64;
            let tol = 2.5 / span + 1e-9;
            assert!(
                (leaf.model.w - inf.w).abs() <= tol,
                "slope {} vs inferred {} (tol {tol})",
                leaf.model.w,
                inf.w
            );
        }
    }

    #[test]
    fn inference_predictions_match_true_model() {
        let ks = skewed(600);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(6)).unwrap();
        let partitions = ks.partition(6).unwrap();
        let inferred = infer_leaf_models(&rmi, &partitions).unwrap();
        // Reconstructed predictions must track the probed index within a
        // couple of slots across each partition.
        for (inf, part) in inferred.iter().zip(&partitions) {
            for &k in part.keys().iter().step_by(17) {
                let predicted = (inf.w * k as f64 + inf.b - 1.0).round();
                let actual = rmi.probe(k) as f64;
                assert!(
                    (predicted - actual).abs() <= 2.0,
                    "key {k}: reconstructed {predicted} vs probed {actual}"
                );
            }
        }
    }

    #[test]
    fn probe_budget_is_two_per_model() {
        let ks = skewed(500);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(25)).unwrap();
        let out = blackbox_rmi_attack(&rmi, &ks, &RmiAttackConfig::new(5.0).with_max_exchanges(8))
            .unwrap();
        assert_eq!(out.total_probes, 50);
        assert!(out.attack.rmi_ratio() >= 1.0);
    }

    #[test]
    fn blackbox_attack_matches_whitebox_effect() {
        // The black-box campaign reduces to the white-box one once the
        // parameters are recovered — same poison keys, same damage.
        let ks = skewed(800);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(8)).unwrap();
        let cfg = RmiAttackConfig::new(10.0).with_max_exchanges(8);
        let black = blackbox_rmi_attack(&rmi, &ks, &cfg).unwrap();
        let white = rmi_attack(&ks, 8, &cfg).unwrap();
        assert_eq!(black.attack.poison_keys(), white.poison_keys());
        assert!((black.attack.poisoned_rmi_loss - white.poisoned_rmi_loss).abs() < 1e-12);
    }

    #[test]
    fn single_key_partition_inference() {
        let ks = KeySet::from_keys(vec![5, 10, 20, 40]).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(4)).unwrap();
        let partitions = ks.partition(4).unwrap();
        let inferred = infer_leaf_models(&rmi, &partitions).unwrap();
        assert!(inferred.iter().all(|l| l.probes <= 2));
    }
}
