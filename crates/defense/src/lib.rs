//! # lis-defense — mitigations against CDF poisoning
//!
//! Implementations of the defenses discussed in Section VI of the paper,
//! built so the paper's evasion claims are *testable* rather than asserted:
//!
//! * [`trim`] — a TRIM-style trimmed-loss defense adapted to CDF
//!   regression, with the per-iteration re-ranking the CDF setting forces;
//! * [`outlier`] — range, IQR, and local-density filters (the "known
//!   mitigations" the optimal attack is designed to evade by staying
//!   in-range and blending into dense regions);
//! * [`eval`] — ground-truth scoring: poison recall, removal precision,
//!   collateral damage, and post-defense ratio loss;
//! * [`strategy`] — the unified [`Defense`] trait and wrappers, the
//!   counterpart of `lis_poison::attack::Attack`;
//! * [`admission`] — the same statistics recast as *streaming* screens on
//!   the server's write queue ([`SourceRateLimit`], [`DensityScreen`],
//!   [`TrustedFence`]), calibrated on a trusted bootstrap snapshot so the
//!   attacker cannot shift the envelope they are judged against;
//! * [`drift`] — the recovery backstop behind those screens: a windowed
//!   mean-lookup-cost monitor ([`CostDriftMonitor`]) that detects a
//!   campaign which slipped past admission and triggers the server's
//!   epoch rollback to the trusted checkpoint.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod drift;
pub mod eval;
pub mod outlier;
pub mod robust;
pub mod strategy;
pub mod trim;

pub use admission::{DensityScreen, SourceRateLimit, TrustedFence};
pub use drift::CostDriftMonitor;
pub use eval::{evaluate_defense, evaluate_defense_campaign, DefenseReport};
pub use robust::{compare_on_attack, theil_sen, RobustModel};
pub use strategy::{
    Defense, DefenseOutcome, DensityDefense, IqrDefense, NoDefense, RangeDefense, TrimBudget,
    TrimDefense,
};
pub use trim::{trim_defense, TrimConfig, TrimOutcome};
