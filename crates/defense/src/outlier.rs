//! Value-based outlier filters — the "known mitigations" the optimal attack
//! is designed to evade.
//!
//! Section IV-C restricts poisoning keys to the range between the smallest
//! and largest legitimate key precisely because out-of-range keys and
//! value-space outliers "can be detected and eliminated by known
//! mitigations". This module implements those mitigations so the evasion
//! claim is testable:
//!
//! * [`range_filter`] — drop keys outside a trusted `[lo, hi]` envelope;
//! * [`iqr_filter`] — Tukey's fences on the key values;
//! * [`local_density_filter`] — flag keys in abnormally crowded
//!   neighbourhoods (a CDF-aware heuristic; the greedy attack *does*
//!   concentrate keys, so this one has partial traction at high poison
//!   rates, at the cost of heavy collateral damage).

use lis_core::error::Result;
use lis_core::keys::{Key, KeySet};
use lis_core::stats::quantile_sorted;

/// Splits `ks` into (kept, removed) by a trusted value envelope.
pub fn range_filter(ks: &KeySet, lo: Key, hi: Key) -> (Vec<Key>, Vec<Key>) {
    ks.keys().iter().partition(|&&k| (lo..=hi).contains(&k))
}

/// Tukey's fences: removes keys outside
/// `[Q1 − k·IQR, Q3 + k·IQR]` with the conventional `k = 1.5`.
pub fn iqr_filter(ks: &KeySet, k: f64) -> (Vec<Key>, Vec<Key>) {
    let vals: Vec<f64> = ks.keys().iter().map(|&k| k as f64).collect();
    let q1 = quantile_sorted(&vals, 0.25);
    let q3 = quantile_sorted(&vals, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    ks.keys().iter().partition(|&&key| {
        let v = key as f64;
        v >= lo && v <= hi
    })
}

/// Flags keys whose `window`-neighbourhood (in rank space) spans an
/// abnormally small key range — i.e. sits inside a crowd at least
/// `crowd_factor` times denser than the dataset average.
///
/// Returns `(kept, removed)`.
pub fn local_density_filter(
    ks: &KeySet,
    window: usize,
    crowd_factor: f64,
) -> Result<(Vec<Key>, Vec<Key>)> {
    let keys = ks.keys();
    let n = keys.len();
    if n < 2 * window + 1 || window == 0 {
        return Ok((keys.to_vec(), Vec::new()));
    }
    let avg_gap = (keys[n - 1] - keys[0]) as f64 / (n - 1) as f64;
    let threshold = avg_gap / crowd_factor;
    let mut kept = Vec::with_capacity(n);
    let mut removed = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window).min(n - 1);
        let span = (keys[hi] - keys[lo]) as f64;
        let local_gap = span / (hi - lo) as f64;
        if local_gap < threshold {
            removed.push(k);
        } else {
            kept.push(k);
        }
    }
    Ok((kept, removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_poison::{greedy_poison, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn range_filter_basic() {
        let ks = KeySet::from_keys(vec![1, 5, 10, 100, 200]).unwrap();
        let (kept, removed) = range_filter(&ks, 2, 150);
        assert_eq!(kept, vec![5, 10, 100]);
        assert_eq!(removed, vec![1, 200]);
    }

    #[test]
    fn iqr_keeps_uniform_data() {
        let ks = uniform(100, 10);
        let (kept, removed) = iqr_filter(&ks, 1.5);
        assert_eq!(kept.len(), 100);
        assert!(removed.is_empty());
    }

    #[test]
    fn iqr_catches_extreme_values() {
        let mut keys: Vec<Key> = (0..100).map(|i| 1000 + i).collect();
        keys.push(10_000_000);
        let ks = KeySet::from_keys(keys).unwrap();
        let (_, removed) = iqr_filter(&ks, 1.5);
        assert_eq!(removed, vec![10_000_000]);
    }

    #[test]
    fn optimal_attack_evades_range_and_iqr() {
        // The paper's design claim: in-range poisoning passes both filters
        // untouched.
        let clean = uniform(100, 9);
        let plan = greedy_poison(&clean, PoisonBudget::keys(10)).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();

        let (kept, removed) = range_filter(&poisoned, clean.min_key(), clean.max_key());
        assert!(removed.is_empty());
        assert_eq!(kept.len(), poisoned.len());

        let (_, removed) = iqr_filter(&poisoned, 1.5);
        let poison_caught = removed.iter().filter(|k| plan.keys.contains(k)).count();
        assert_eq!(
            poison_caught, 0,
            "IQR filter should not catch in-range poison"
        );
    }

    #[test]
    fn density_filter_catches_clustered_poison_on_uniform_data() {
        // On perfectly uniform data, a tight poison clump stands out — the
        // density heuristic has traction here (which is why attackers care
        // about realistic, naturally clustered data; see the next test).
        let clean = uniform(200, 20);
        let plan = greedy_poison(&clean, PoisonBudget::keys(20)).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();
        let (_, removed) = local_density_filter(&poisoned, 3, 3.0).unwrap();
        let caught = removed.iter().filter(|k| plan.keys.contains(k)).count();
        assert!(
            caught > 0,
            "clustered poison should trip the density filter"
        );
    }

    #[test]
    fn density_filter_collateral_on_naturally_clustered_data() {
        // Legit keys with a dense centre (step 2) and sparse tails
        // (step 40): the filter cannot tell natural crowding from poison.
        let mut keys: Vec<Key> = (0..60).map(|i| i * 40).collect();
        keys.extend((0..120).map(|i| 2400 + i * 2));
        keys.extend((0..60).map(|i| 2700 + i * 40));
        let clean = KeySet::from_keys(keys).unwrap();
        let (_, removed) = local_density_filter(&clean, 3, 3.0).unwrap();
        // Zero poison present, yet legitimate keys get flagged — the
        // collateral-damage point of Section VI.
        assert!(
            !removed.is_empty(),
            "naturally dense legit region should trigger false positives"
        );
    }

    #[test]
    fn density_filter_small_inputs_noop() {
        let ks = KeySet::from_keys(vec![1, 2, 3]).unwrap();
        let (kept, removed) = local_density_filter(&ks, 5, 2.0).unwrap();
        assert_eq!(kept.len(), 3);
        assert!(removed.is_empty());
    }
}
