//! Robust regression estimators as candidate defenses — and why the CDF
//! compound effect defeats them.
//!
//! Section VI of the paper argues that swapping the second-stage linear
//! regression for "a more complex and robust model" would sacrifice the
//! very efficiency that lets an RMI beat a B-Tree. This module adds a
//! sharper point, measurable here: even paying that price does not help,
//! because robust estimators assume *point-wise* contamination.
//!
//! [`theil_sen`] implements the classic robust line (median of pairwise
//! slopes, breakdown point ≈ 29%). Against textbook outliers — a bounded
//! fraction of corrupted `(x, y)` points — it shrugs the damage off (see
//! `classic_outliers_are_absorbed`). Against CDF poisoning it fails: the
//! 15% *inserted* keys shift the rank (the `y`-value) of **every**
//! legitimate key above them, so the "contaminated fraction" of points is
//! not 15% but potentially 100%, far beyond any breakdown point. This is
//! the paper's "new flavor of poisoning" (Section IV-B) restated in the
//! language of robust statistics, and the tests pin it down.

use lis_core::error::{LisError, Result};
use lis_core::keys::KeySet;
use lis_core::linreg::LinearModel;

/// A line fitted by a robust estimator (same shape as [`LinearModel`], but
/// `mse` here is the *evaluation* MSE on the training CDF, not a minimised
/// objective).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustModel {
    /// Slope.
    pub w: f64,
    /// Intercept.
    pub b: f64,
    /// MSE of this line on the training CDF.
    pub mse: f64,
    /// Number of slope pairs examined.
    pub pairs_examined: usize,
}

impl RobustModel {
    /// Predicted fractional rank for `key`.
    pub fn predict(&self, key: u64) -> f64 {
        self.w * key as f64 + self.b
    }
}

/// Theil–Sen estimator on the CDF of `ks`.
///
/// `max_pairs` caps the number of pairwise slopes: below the cap all
/// `n(n−1)/2` pairs are used (the exact estimator); above it, a
/// deterministic strided subsample keeps the cost bounded while preserving
/// the median's robustness.
pub fn theil_sen(ks: &KeySet, max_pairs: usize) -> Result<RobustModel> {
    let pairs: Vec<(u64, f64)> = ks.cdf_pairs().map(|(k, r)| (k, r as f64)).collect();
    theil_sen_pairs(&pairs, max_pairs)
}

/// Theil–Sen on explicit `(x, y)` pairs (ascending distinct `x`), used to
/// contrast classic point contamination with CDF poisoning.
pub fn theil_sen_pairs(pairs: &[(u64, f64)], max_pairs: usize) -> Result<RobustModel> {
    let n = pairs.len();
    if n < 2 {
        return Err(LisError::DegenerateRegression { n });
    }
    if max_pairs == 0 {
        return Err(LisError::InvalidBudget("max_pairs must be > 0".into()));
    }

    let total_pairs = n * (n - 1) / 2;
    let mut slopes: Vec<f64> = Vec::with_capacity(total_pairs.min(max_pairs));
    if total_pairs <= max_pairs {
        for i in 0..n {
            for j in i + 1..n {
                slopes.push(pair_slope(pairs, i, j));
            }
        }
    } else {
        // Deterministic strided subsample over the (i, j) triangle: step
        // through pair ranks with a fixed stride.
        let stride = (total_pairs / max_pairs).max(1);
        let mut rank = 0usize;
        while rank < total_pairs && slopes.len() < max_pairs {
            let (i, j) = unrank_pair(rank, n);
            slopes.push(pair_slope(pairs, i, j));
            rank += stride;
        }
    }
    let pairs_examined = slopes.len();
    let w = median_in_place(&mut slopes);

    // Intercept: median of residuals y_i − w·x_i (the standard choice).
    let mut residuals: Vec<f64> = pairs.iter().map(|&(x, y)| y - w * x as f64).collect();
    let b = median_in_place(&mut residuals);

    let mse = pairs
        .iter()
        .map(|&(x, y)| (w * x as f64 + b - y).powi(2))
        .sum::<f64>()
        / n as f64;
    Ok(RobustModel {
        w,
        b,
        mse,
        pairs_examined,
    })
}

fn pair_slope(pairs: &[(u64, f64)], i: usize, j: usize) -> f64 {
    (pairs[j].1 - pairs[i].1) / (pairs[j].0 - pairs[i].0) as f64
}

/// Maps a linear pair rank to `(i, j)` coordinates in the upper triangle.
fn unrank_pair(mut rank: usize, n: usize) -> (usize, usize) {
    // Row i has (n − 1 − i) pairs.
    let mut i = 0usize;
    loop {
        let row = n - 1 - i;
        if rank < row {
            return (i, i + 1 + rank);
        }
        rank -= row;
        i += 1;
    }
}

fn median_in_place(v: &mut [f64]) -> f64 {
    assert!(!v.is_empty());
    let mid = v.len() / 2;
    v.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).unwrap());
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        let hi = v[mid];
        let lo = v[..mid].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo + hi) / 2.0
    }
}

/// Side-by-side evaluation of OLS vs Theil–Sen on a clean/poisoned pair:
/// how much of the OLS ratio-loss damage does the robust estimator absorb?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustComparison {
    /// OLS MSE on the clean keyset.
    pub ols_clean: f64,
    /// OLS MSE on the poisoned keyset (the paper's attacked quantity).
    pub ols_poisoned: f64,
    /// Theil–Sen evaluation MSE on the clean keyset.
    pub ts_clean: f64,
    /// Theil–Sen evaluation MSE, fitted on the poisoned keyset but
    /// **evaluated on the clean CDF** — the error legitimate queries see.
    pub ts_poisoned_on_clean: f64,
    /// OLS fitted on poisoned, evaluated on the clean CDF.
    pub ols_poisoned_on_clean: f64,
}

/// Fits both estimators on the poisoned keyset and evaluates the damage on
/// the legitimate CDF.
pub fn compare_on_attack(
    clean: &KeySet,
    poisoned: &KeySet,
    max_pairs: usize,
) -> Result<RobustComparison> {
    let ols_clean_model = LinearModel::fit(clean)?;
    let ols_poisoned_model = LinearModel::fit(poisoned)?;
    let ts_clean_model = theil_sen(clean, max_pairs)?;
    let ts_poisoned_model = theil_sen(poisoned, max_pairs)?;

    let eval = |w: f64, b: f64| -> f64 {
        clean
            .cdf_pairs()
            .map(|(k, r)| (w * k as f64 + b - r as f64).powi(2))
            .sum::<f64>()
            / clean.len() as f64
    };
    Ok(RobustComparison {
        ols_clean: ols_clean_model.mse,
        ols_poisoned: ols_poisoned_model.mse,
        ts_clean: ts_clean_model.mse,
        ts_poisoned_on_clean: eval(ts_poisoned_model.w, ts_poisoned_model.b),
        ols_poisoned_on_clean: eval(ols_poisoned_model.w, ols_poisoned_model.b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_poison::{greedy_poison, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn validates_inputs() {
        let one = KeySet::from_keys(vec![5]).unwrap();
        assert!(theil_sen(&one, 100).is_err());
        let two = KeySet::from_keys(vec![5, 9]).unwrap();
        assert!(theil_sen(&two, 0).is_err());
    }

    #[test]
    fn exact_on_linear_cdf() {
        let ks = uniform(200, 5);
        let m = theil_sen(&ks, usize::MAX).unwrap();
        assert!((m.w - 0.2).abs() < 1e-9, "slope {}", m.w);
        assert!(m.mse < 1e-9);
    }

    #[test]
    fn subsampling_stays_close_to_exact() {
        let ks = KeySet::from_keys((1..300u64).map(|i| i * i / 5 + i).collect()).unwrap();
        let exact = theil_sen(&ks, usize::MAX).unwrap();
        let sub = theil_sen(&ks, 2_000).unwrap();
        assert!(sub.pairs_examined <= 2_000);
        assert!(
            (exact.w - sub.w).abs() <= 0.15 * exact.w.abs().max(1e-9),
            "exact {} vs subsampled {}",
            exact.w,
            sub.w
        );
    }

    #[test]
    fn unrank_pair_roundtrip() {
        let n = 7;
        let mut rank = 0;
        for i in 0..n {
            for j in i + 1..n {
                assert_eq!(unrank_pair(rank, n), (i, j));
                rank += 1;
            }
        }
    }

    #[test]
    fn median_odd_even() {
        let mut odd = [3.0, 1.0, 2.0];
        assert_eq!(median_in_place(&mut odd), 2.0);
        let mut even = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut even), 2.5);
    }

    #[test]
    fn classic_outliers_are_absorbed() {
        // Textbook contamination: corrupt the y-value of 15% of the POINTS.
        // Theil–Sen barely moves; OLS bends. This is the regime robust
        // statistics is built for.
        let n = 200u64;
        let clean_pairs: Vec<(u64, f64)> = (0..n).map(|i| (i * 10, i as f64 + 1.0)).collect();
        let mut corrupted = clean_pairs.clone();
        for i in 0..30usize {
            corrupted[i * 6].1 += 80.0; // blow up 15% of targets
        }
        let ts = theil_sen_pairs(&corrupted, usize::MAX).unwrap();
        // OLS on the corrupted pairs.
        let m = corrupted.len() as f64;
        let mx = corrupted.iter().map(|p| p.0 as f64).sum::<f64>() / m;
        let my = corrupted.iter().map(|p| p.1).sum::<f64>() / m;
        let cov: f64 = corrupted
            .iter()
            .map(|p| (p.0 as f64 - mx) * (p.1 - my))
            .sum();
        let var: f64 = corrupted.iter().map(|p| (p.0 as f64 - mx).powi(2)).sum();
        let (w_ols, b_ols) = (cov / var, my - cov / var * mx);

        let eval = |w: f64, b: f64| -> f64 {
            clean_pairs
                .iter()
                .map(|&(x, y)| (w * x as f64 + b - y).powi(2))
                .sum::<f64>()
                / m
        };
        let ts_err = eval(ts.w, ts.b);
        let ols_err = eval(w_ols, b_ols);
        assert!(
            ts_err * 5.0 < ols_err,
            "Theil–Sen {ts_err} should absorb classic outliers that cost OLS {ols_err}"
        );
    }

    #[test]
    fn cdf_compound_effect_defeats_robustness() {
        // The paper's "new flavor": 15% INSERTED keys shift the rank of
        // every legitimate key above them, so the contaminated fraction of
        // points exceeds any breakdown point. Theil–Sen fitted on the
        // poisoned CDF is NOT a working defense — its damage on the clean
        // CDF is of the same order as (here: not even better than) OLS.
        let clean = uniform(200, 10);
        let plan = greedy_poison(&clean, PoisonBudget::percentage(15.0, 200).unwrap()).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();
        let cmp = compare_on_attack(&clean, &poisoned, 50_000).unwrap();

        // Both estimators suffer at least an order of magnitude on the
        // legitimate CDF relative to their clean fits.
        assert!(cmp.ts_poisoned_on_clean > 10.0 * cmp.ts_clean.max(1e-3));
        assert!(cmp.ols_poisoned_on_clean > 10.0 * cmp.ols_clean.max(1e-3));
        // And the robust estimator offers no multiple-fold rescue.
        assert!(
            cmp.ts_poisoned_on_clean > cmp.ols_poisoned_on_clean / 5.0,
            "Theil–Sen {} unexpectedly rescued the fit (OLS {})",
            cmp.ts_poisoned_on_clean,
            cmp.ols_poisoned_on_clean
        );
    }

    #[test]
    fn robust_fit_costs_more_pairs_than_ols_points() {
        // The efficiency argument of Section VI: n(n−1)/2 pairs vs n points.
        let ks = uniform(100, 7);
        let m = theil_sen(&ks, usize::MAX).unwrap();
        assert_eq!(m.pairs_examined, 100 * 99 / 2);
    }
}
