//! Windowed lookup-cost drift monitoring — the detection half of
//! attack-triggered epoch rollback.
//!
//! The paper's online campaign (Algorithm 2 adapted to a live write
//! queue) degrades the served index gradually: each admitted poison key
//! nudges the CDF model, and mean lookup cost creeps up across read
//! windows. A point-in-time screen can miss keys that are individually
//! unremarkable; what is *not* subtle is the aggregate: mean window cost
//! inflating past anything benign churn produces.
//!
//! [`CostDriftMonitor`] watches exactly that signal. It calibrates a
//! baseline from the first windows of healthy traffic, then judges every
//! later window's mean lookup cost against `baseline × threshold`. The
//! verdict feeds the server's rollback machinery (see
//! [`RollbackPolicy`]): on [`DriftVerdict::Degraded`] the writer
//! quarantines everything admitted since the trusted checkpoint and
//! republishes an epoch rebuilt from it. Detection is deliberately
//! separated from response — this module decides *whether* service
//! degraded, the writer decides *what* to do about it — so the monitor
//! stays a pure, deterministic function of the observed windows and can
//! be unit-tested without a server.
//!
//! Calibration matters for the same reason admission screens calibrate
//! on a bootstrap snapshot (see [`crate::admission`]): a threshold judged
//! against attacker-influenced state can be shifted by the attacker.
//! Windows observed before `calibration_windows` complete the baseline
//! and are never judged; the baseline is frozen thereafter.

use lis_server::{DriftVerdict, RollbackPolicy};

/// Judges windowed mean lookup cost against a calibrated baseline.
///
/// Construction is cheap and const-free; all state is a few scalars.
/// Determinism: the verdict sequence is a pure function of the
/// `(served, mean_cost)` sequence fed to [`RollbackPolicy::observe`].
#[derive(Debug, Clone)]
pub struct CostDriftMonitor {
    /// Degraded when `mean_cost > baseline * threshold`.
    threshold: f64,
    /// Windows with fewer served lookups than this are ignored entirely —
    /// a handful of requests says nothing about drift.
    min_served: u64,
    /// Number of qualifying windows averaged into the baseline.
    calibration_windows: u32,
    seen: u32,
    baseline_sum: f64,
    baseline: Option<f64>,
}

impl CostDriftMonitor {
    /// A monitor that calibrates over `calibration_windows` qualifying
    /// windows (those serving at least `min_served` lookups) and then
    /// flags any window whose mean cost exceeds the calibrated baseline
    /// by the factor `threshold`.
    ///
    /// A threshold of `1.02` separates benign churn (~1.001× in the
    /// online harness) from an undefended Algorithm-2 campaign (~1.1×)
    /// with margin on both sides.
    pub fn new(threshold: f64, min_served: u64, calibration_windows: u32) -> Self {
        Self {
            threshold: threshold.max(1.0),
            min_served,
            calibration_windows: calibration_windows.max(1),
            seen: 0,
            baseline_sum: 0.0,
            baseline: None,
        }
    }

    /// The calibrated baseline mean cost, once calibration completes.
    pub fn baseline(&self) -> Option<f64> {
        self.baseline
    }

    /// The degradation factor this monitor tolerates.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl RollbackPolicy for CostDriftMonitor {
    fn name(&self) -> &str {
        "cost-drift"
    }

    fn observe(&mut self, _start_ms: u64, served: u64, mean_cost: f64) -> DriftVerdict {
        if served < self.min_served || !mean_cost.is_finite() {
            return DriftVerdict::Calibrating;
        }
        match self.baseline {
            None => {
                self.baseline_sum += mean_cost;
                self.seen += 1;
                if self.seen >= self.calibration_windows {
                    self.baseline = Some(self.baseline_sum / f64::from(self.seen));
                }
                DriftVerdict::Calibrating
            }
            Some(baseline) => {
                if mean_cost > baseline * self.threshold {
                    DriftVerdict::Degraded
                } else {
                    DriftVerdict::Healthy
                }
            }
        }
    }

    fn rolled_back(&mut self) {
        // The baseline was measured on trusted traffic; rollback restored
        // trusted content, so the frozen baseline stays valid. Nothing to
        // reset — cooldown against re-tripping on the tail of the
        // degraded window is the writer's job.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(mon: &mut CostDriftMonitor, windows: &[(u64, f64)]) -> Vec<DriftVerdict> {
        windows
            .iter()
            .enumerate()
            .map(|(i, &(served, cost))| mon.observe(i as u64 * 100, served, cost))
            .collect()
    }

    #[test]
    fn calibrates_then_flags_inflation() {
        let mut mon = CostDriftMonitor::new(1.02, 10, 3);
        let verdicts = feed(
            &mut mon,
            &[
                (100, 4.0),
                (100, 4.1),
                (100, 3.9), // calibration: baseline = 4.0
                (100, 4.05),
                (100, 4.3),
            ],
        );
        assert_eq!(
            verdicts,
            vec![
                DriftVerdict::Calibrating,
                DriftVerdict::Calibrating,
                DriftVerdict::Calibrating,
                DriftVerdict::Healthy,
                DriftVerdict::Degraded,
            ]
        );
        let baseline = mon.baseline().unwrap();
        assert!((baseline - 4.0).abs() < 1e-9);
    }

    #[test]
    fn thin_windows_never_judge_or_calibrate() {
        let mut mon = CostDriftMonitor::new(1.02, 50, 2);
        // All below min_served: the monitor stays in calibration forever.
        let verdicts = feed(&mut mon, &[(10, 4.0), (49, 400.0), (1, 0.1)]);
        assert!(verdicts.iter().all(|v| *v == DriftVerdict::Calibrating));
        assert!(mon.baseline().is_none());
    }

    #[test]
    fn baseline_is_frozen_after_calibration() {
        let mut mon = CostDriftMonitor::new(1.10, 1, 1);
        assert_eq!(mon.observe(0, 100, 10.0), DriftVerdict::Calibrating);
        // A slow upward creep below the threshold never re-anchors the
        // baseline, so the cumulative drift is still caught.
        assert_eq!(mon.observe(100, 100, 10.5), DriftVerdict::Healthy);
        assert_eq!(mon.observe(200, 100, 10.9), DriftVerdict::Healthy);
        assert_eq!(mon.observe(300, 100, 11.1), DriftVerdict::Degraded);
        assert!((mon.baseline().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_floor_is_one() {
        let mon = CostDriftMonitor::new(0.5, 1, 1);
        assert!((mon.threshold() - 1.0).abs() < 1e-9);
    }
}
