//! Online admission control: the batch filters of [`crate::outlier`]
//! recast as streaming screens on the server's write queue.
//!
//! The batch defenses see a finished (already poisoned) keyset and try to
//! claw keys back out. Admission control moves the same statistics to the
//! *write path*: every candidate insert is screened against a **trusted
//! bootstrap** snapshot (the keyset the server started from, assumed
//! clean) before it ever reaches the index. That flips the asymmetry of
//! Section VI — the defender's baseline statistics are computed before the
//! attacker's first write, so the attack cannot shift the envelope it is
//! judged against.
//!
//! Three screens, composable via
//! [`AdmissionChain`](lis_server::AdmissionChain):
//!
//! * [`SourceRateLimit`] — a per-source token bucket over the write
//!   *sequence* (not wall clock, so replays are deterministic): a single
//!   firehose identity gets throttled to its fair share while a fleet of
//!   benign writers passes untouched;
//! * [`DensityScreen`] — the streaming counterpart of
//!   [`local_density_filter`](crate::outlier::local_density_filter):
//!   rejects an insert whose would-be neighbourhood in the *current*
//!   keyset is abnormally crowded relative to the bootstrap's average gap.
//!   Algorithm-style poison concentrates keys inside chosen gaps, so the
//!   crowd it builds raises its own rejection odds with every accepted
//!   key;
//! * [`TrustedFence`] — Tukey fences (see
//!   [`iqr_filter`](crate::outlier::iqr_filter)) frozen at bootstrap time:
//!   the value-envelope mitigation of Section IV-C as a streaming gate.
//!
//! All screens admit every `Remove` — deletions only shrink the structure
//! the attacker is trying to bloat, and benign churn must stay cheap.

use lis_core::keys::KeySet;
use lis_core::stats::quantile_sorted;
use lis_server::{Admission, AdmissionPolicy, WriteOp};
use std::collections::HashMap;

/// Per-source token bucket keyed on the global write sequence number.
///
/// Each admitted-or-screened write advances the sequence by one; a source's
/// bucket refills by `rate` tokens per sequence tick up to `burst`, and an
/// insert spends one token. A source submitting faster than `rate` of the
/// total write stream drains its bucket and gets rejected — exactly the
/// shape of a poisoning campaign, which must land hundreds of writes from
/// one identity to move a model, while each benign writer contributes a
/// trickle.
#[derive(Debug, Clone)]
pub struct SourceRateLimit {
    rate: f64,
    burst: f64,
    seq: u64,
    buckets: HashMap<u64, (u64, f64)>,
}

impl SourceRateLimit {
    /// A limiter granting each source `rate` of the write stream with
    /// headroom for bursts of `burst` writes. `rate` is clamped to
    /// `(0, 1]`; `burst` to at least 1.
    pub fn new(rate: f64, burst: f64) -> Self {
        Self {
            rate: if rate > 0.0 { rate.min(1.0) } else { 1.0 },
            burst: burst.max(1.0),
            seq: 0,
            buckets: HashMap::new(),
        }
    }
}

impl AdmissionPolicy for SourceRateLimit {
    fn name(&self) -> &str {
        "rate-limit"
    }

    fn admit(&mut self, op: &WriteOp, source: u64, _keyset: &KeySet) -> Admission {
        self.seq += 1;
        if matches!(op, WriteOp::Remove(_)) {
            return Admission::Admit;
        }
        let (last, tokens) = self.buckets.entry(source).or_insert((self.seq, self.burst));
        let refill = (self.seq - *last) as f64 * self.rate;
        *tokens = (*tokens + refill).min(self.burst);
        *last = self.seq;
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            Admission::Admit
        } else {
            Admission::Reject("rate-limit".into())
        }
    }
}

/// Streaming local-density screen anchored to a trusted bootstrap.
///
/// At construction it freezes the bootstrap keyset's average gap; at
/// admission time it applies two screens against the current
/// authoritative keyset (which includes every previously admitted
/// write), both thresholded at `bootstrap average gap / crowd_factor`:
///
/// 1. **nearest neighbour** — the gap the insert itself creates.
///    Loss-maximal poison hugs a gap endpoint (distance 1 from an
///    existing key); a benign insert lands mid-gap, half an average gap
///    from both sides;
/// 2. **one-sided window density** — the mean gap over the `window`
///    nearest existing keys on each side, judged separately, so a clump
///    built at safe pairwise spacing still trips its crowded flank
///    (a symmetric window would average the signal away against a sparse
///    far side).
#[derive(Debug, Clone)]
pub struct DensityScreen {
    threshold: f64,
    window: usize,
}

impl DensityScreen {
    /// A screen calibrated on the trusted `bootstrap` keyset: the
    /// rejection threshold is `bootstrap average gap / crowd_factor`
    /// (`crowd_factor > 1`; larger is more permissive), examined over a
    /// `window`-key neighbourhood on each side of the insertion point.
    pub fn from_bootstrap(bootstrap: &KeySet, window: usize, crowd_factor: f64) -> Self {
        let keys = bootstrap.keys();
        let n = keys.len();
        let avg_gap = if n > 1 {
            (keys[n - 1] - keys[0]) as f64 / (n - 1) as f64
        } else {
            f64::INFINITY
        };
        Self {
            threshold: avg_gap / crowd_factor.max(1.0),
            window: window.max(1),
        }
    }
}

impl AdmissionPolicy for DensityScreen {
    fn name(&self) -> &str {
        "density-screen"
    }

    fn admit(&mut self, op: &WriteOp, _source: u64, keyset: &KeySet) -> Admission {
        let key = match *op {
            WriteOp::Insert(k) => k,
            WriteOp::Remove(_) => return Admission::Admit,
        };
        let keys = keyset.keys();
        let n = keys.len();
        if n < 2 * self.window + 1 {
            return Admission::Admit;
        }
        let pos = keys.binary_search(&key).unwrap_or_else(|p| p);
        // First screen: the gap the insert itself creates. Loss-maximal
        // poison hugs an existing key (endpoint placement), so its
        // nearest-neighbour distance is tiny; a benign insert lands
        // mid-gap, half an average gap from both sides.
        let before = (pos > 0).then(|| key - keys[pos - 1]);
        let after = (pos < n).then(|| keys[pos] - key);
        let nearest = before.into_iter().chain(after).min().unwrap_or(u64::MAX);
        if (nearest as f64) < self.threshold {
            return Admission::Reject("density-screen".into());
        }
        // Second screen: the `window` nearest existing keys on each side,
        // judged separately — catches keys spread at safe pairwise
        // distances that still crowd one flank.
        if pos >= self.window {
            let left = (key - keys[pos - self.window]) as f64 / self.window as f64;
            if left < self.threshold {
                return Admission::Reject("density-screen".into());
            }
        }
        if pos + self.window <= n {
            let right = (keys[pos + self.window - 1] - key) as f64 / self.window as f64;
            if right < self.threshold {
                return Admission::Reject("density-screen".into());
            }
        }
        Admission::Admit
    }
}

/// Tukey fences frozen on a trusted bootstrap: inserts outside
/// `[Q1 − k·IQR, Q3 + k·IQR]` of the bootstrap key values are rejected.
///
/// The in-range attack evades this by design (Section IV-C) — the fence is
/// here to *show* that, and to stop the naive out-of-range variant cold.
#[derive(Debug, Clone)]
pub struct TrustedFence {
    lo: f64,
    hi: f64,
}

impl TrustedFence {
    /// Fences at `k` IQRs beyond the bootstrap quartiles (conventional
    /// `k = 1.5`).
    pub fn from_bootstrap(bootstrap: &KeySet, k: f64) -> Self {
        let vals: Vec<f64> = bootstrap.keys().iter().map(|&v| v as f64).collect();
        let q1 = quantile_sorted(&vals, 0.25);
        let q3 = quantile_sorted(&vals, 0.75);
        let iqr = q3 - q1;
        Self {
            lo: q1 - k * iqr,
            hi: q3 + k * iqr,
        }
    }
}

impl AdmissionPolicy for TrustedFence {
    fn name(&self) -> &str {
        "trusted-fence"
    }

    fn admit(&mut self, op: &WriteOp, _source: u64, _keyset: &KeySet) -> Admission {
        match *op {
            WriteOp::Remove(_) => Admission::Admit,
            WriteOp::Insert(k) => {
                let v = k as f64;
                if v < self.lo || v > self.hi {
                    Admission::Reject("trusted-fence".into())
                } else {
                    Admission::Admit
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn rate_limit_throttles_a_firehose_but_not_a_fleet() {
        let ks = uniform(100, 10);
        let mut limiter = SourceRateLimit::new(0.05, 5.0);
        // One source hammering every sequence slot: only the burst plus
        // the trickle refill gets through.
        let admitted = (0..200)
            .filter(|i| {
                limiter
                    .admit(&WriteOp::Insert(10_000 + i), 42, &ks)
                    .eq(&Admission::Admit)
            })
            .count();
        assert!(
            admitted <= 20,
            "firehose should be throttled, admitted {admitted}"
        );
        // A fleet of 16 sources taking turns each stays under its share:
        // everything passes.
        let mut limiter = SourceRateLimit::new(0.08, 5.0);
        let admitted = (0..200u64)
            .filter(|i| {
                limiter
                    .admit(&WriteOp::Insert(20_000 + i), i % 16, &ks)
                    .eq(&Admission::Admit)
            })
            .count();
        assert_eq!(admitted, 200, "rotating benign fleet should pass");
    }

    #[test]
    fn rate_limit_never_blocks_removes() {
        let ks = uniform(10, 10);
        let mut limiter = SourceRateLimit::new(0.01, 1.0);
        for i in 0..50 {
            assert_eq!(
                limiter.admit(&WriteOp::Remove(i * 10), 7, &ks),
                Admission::Admit
            );
        }
    }

    #[test]
    fn density_screen_rejects_a_poison_clump_and_passes_midgap_inserts() {
        let bootstrap = uniform(500, 100); // avg gap 100
        let mut screen = DensityScreen::from_bootstrap(&bootstrap, 3, 4.0);
        let mut current = bootstrap.clone();
        // Poison crams consecutive keys against the member at 25_000.
        let mut rejected = 0;
        for k in 25_001..25_030 {
            match screen.admit(&WriteOp::Insert(k), 0, &current) {
                Admission::Admit => current.insert(k).unwrap(),
                Admission::Reject(_) => rejected += 1,
            }
        }
        assert!(
            rejected >= 20,
            "dense clump should trip the screen, only {rejected} rejected"
        );
        // A benign mid-gap insert far from the clump sails through.
        assert_eq!(
            screen.admit(&WriteOp::Insert(40_050), 0, &current),
            Admission::Admit
        );
    }

    #[test]
    fn trusted_fence_blocks_out_of_envelope_inserts_only() {
        let bootstrap = uniform(100, 10); // values 0..=990
        let mut fence = TrustedFence::from_bootstrap(&bootstrap, 1.5);
        assert_eq!(
            fence.admit(&WriteOp::Insert(500), 0, &bootstrap),
            Admission::Admit
        );
        assert_eq!(
            fence.admit(&WriteOp::Insert(5_000), 0, &bootstrap),
            Admission::Reject("trusted-fence".into())
        );
        assert_eq!(
            fence.admit(&WriteOp::Remove(5_000), 0, &bootstrap),
            Admission::Admit
        );
    }
}
