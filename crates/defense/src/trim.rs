//! TRIM-style trimmed-loss defense, adapted to regression on CDFs.
//!
//! Jagielski et al.'s TRIM recovers a poisoned linear regression by
//! iteratively fitting on the `n` points with the smallest residuals
//! (assuming the defender knows — or bounds — the legitimate count `n`).
//! Section VI of the paper argues TRIM transfers poorly to CDF poisoning
//! for two reasons, both of which this implementation makes measurable:
//!
//! 1. **Re-ranking cost** — the rank of every key depends on which other
//!    keys survive the trim, so *every* iteration must rebuild the CDF of
//!    the retained subset before refitting (`O(n)` per iteration on sorted
//!    input, after an initial sort).
//! 2. **Camouflage** — the attack concentrates poison inside dense
//!    legitimate regions, so the high-residual points TRIM discards are
//!    frequently legitimate keys from the same region.
//!
//! [`trim_defense`] implements the adapted loop; detection quality is
//! evaluated by [`crate::eval`].

use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::LinearModel;

/// Configuration for the adapted TRIM loop.
#[derive(Debug, Clone, Copy)]
pub struct TrimConfig {
    /// The number of keys the defender retains (their estimate of the
    /// legitimate count `n`).
    pub retain: usize,
    /// Maximum refit iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the retained-set loss between iterations.
    pub tol: f64,
}

impl TrimConfig {
    /// Standard configuration: retain `n`, up to 50 iterations.
    pub fn new(retain: usize) -> Self {
        Self {
            retain,
            max_iters: 50,
            tol: 1e-9,
        }
    }
}

/// Result of running the TRIM defense.
#[derive(Debug, Clone)]
pub struct TrimOutcome {
    /// Keys the defense retained (its guess at the legitimate set).
    pub retained: KeySet,
    /// Keys the defense removed (its guess at the poison).
    pub removed: Vec<Key>,
    /// The final regression fitted on the retained subset.
    pub model: LinearModel,
    /// Trimmed loss per iteration (for convergence plots).
    pub loss_trace: Vec<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Runs the CDF-adapted TRIM defense on a (possibly poisoned) keyset.
///
/// Each iteration: (1) re-rank the current retained subset, (2) fit the
/// regression on its CDF, (3) score **all** keys by the residual they would
/// have *within the retained subset's ranking* (the CDF adaptation — ranks
/// of removed keys are hypothetical insertion ranks), (4) retain the
/// `retain` lowest-residual keys. Stops on convergence of the trimmed loss.
pub fn trim_defense(poisoned: &KeySet, cfg: &TrimConfig) -> Result<TrimOutcome> {
    let total = poisoned.len();
    if cfg.retain < 2 {
        return Err(LisError::InvalidBudget(
            "TRIM must retain at least 2 keys".into(),
        ));
    }
    if cfg.retain > total {
        return Err(LisError::InvalidBudget(format!(
            "cannot retain {} of {} keys",
            cfg.retain, total
        )));
    }

    let all_keys = poisoned.keys();
    // Initial retained set: evenly spaced subsample — a deterministic,
    // shape-preserving initialization (random init per the original TRIM
    // works too; determinism keeps experiments reproducible).
    let mut retained: Vec<Key> = evenly_spaced(all_keys, cfg.retain);

    let mut loss_trace = Vec::new();
    let mut model = fit_on(&retained)?;
    loss_trace.push(model.mse);

    let mut iterations = 0usize;
    for _ in 0..cfg.max_iters {
        iterations += 1;
        // Score every key by its residual against the model, using the rank
        // it (would) hold within the retained subset.
        let mut scored: Vec<(f64, Key)> = Vec::with_capacity(total);
        for &k in all_keys {
            let rank = hypothetical_rank(&retained, k);
            let resid = (model.predict(k) - rank as f64).abs();
            scored.push((resid, k));
        }
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut next: Vec<Key> = scored[..cfg.retain].iter().map(|&(_, k)| k).collect();
        next.sort_unstable();

        let next_model = fit_on(&next)?;
        let prev_loss = *loss_trace.last().unwrap();
        loss_trace.push(next_model.mse);
        let converged = next == retained || (prev_loss - next_model.mse).abs() <= cfg.tol;
        retained = next;
        model = next_model;
        if converged {
            break;
        }
    }

    let retained_set = KeySet::new(retained.clone(), poisoned.domain())?;
    let removed: Vec<Key> = all_keys
        .iter()
        .copied()
        .filter(|k| !retained_set.contains(*k))
        .collect();
    Ok(TrimOutcome {
        retained: retained_set,
        removed,
        model,
        loss_trace,
        iterations,
    })
}

/// Rank `key` would hold inside sorted `subset` (1-based; its own position
/// when present).
fn hypothetical_rank(subset: &[Key], key: Key) -> usize {
    subset.partition_point(|&k| k < key) + 1
}

fn fit_on(keys: &[Key]) -> Result<LinearModel> {
    let ks = KeySet::from_sorted_unchecked(
        keys.to_vec(),
        lis_core::keys::KeyDomain {
            min: keys[0],
            max: keys[keys.len() - 1],
        },
    );
    LinearModel::fit(&ks)
}

/// Deterministic evenly spaced subsample of size `count`.
fn evenly_spaced(keys: &[Key], count: usize) -> Vec<Key> {
    if count >= keys.len() {
        return keys.to_vec();
    }
    (0..count)
        .map(|i| keys[i * (keys.len() - 1) / (count - 1).max(1)])
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect::<Vec<_>>()
        .into_iter()
        .chain(keys.iter().copied())
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .take(count)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_poison::{greedy_poison, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn validates_config() {
        let ks = uniform(10, 3);
        assert!(trim_defense(&ks, &TrimConfig::new(1)).is_err());
        assert!(trim_defense(&ks, &TrimConfig::new(11)).is_err());
    }

    #[test]
    fn clean_data_survives_mostly_intact() {
        let ks = uniform(100, 7);
        let out = trim_defense(&ks, &TrimConfig::new(100)).unwrap();
        assert_eq!(out.retained.len(), 100);
        assert!(out.removed.is_empty());
    }

    #[test]
    fn removes_obvious_outlier_cluster() {
        // Legit: uniform. Poison: NOT the greedy attack but a naive distant
        // clump at one end — the kind of poisoning TRIM *does* catch.
        let clean = uniform(100, 50); // keys 0..4950
        let mut poisoned = clean.clone();
        // Manually extend domain to permit the naive out-of-pattern clump.
        let mut keys = poisoned.keys().to_vec();
        keys.extend([
            4_951u64, 4_952, 4_953, 4_954, 4_955, 4_956, 4_957, 4_958, 4_959, 4_960,
        ]);
        poisoned = KeySet::from_keys(keys).unwrap();
        let out = trim_defense(&poisoned, &TrimConfig::new(100)).unwrap();
        let removed_poison = out
            .removed
            .iter()
            .filter(|&&k| (4_951..=4_960).contains(&k))
            .count();
        assert!(
            removed_poison >= 5,
            "TRIM should remove most of the naive clump, removed {removed_poison}/10"
        );
    }

    #[test]
    fn struggles_against_greedy_cdf_poisoning() {
        // The paper's claim: against the greedy CDF attack, TRIM removes
        // legitimate keys along with (or instead of) poison. We assert the
        // defense is imperfect: it fails to remove at least some poison.
        let clean = uniform(100, 11);
        let plan = greedy_poison(&clean, PoisonBudget::keys(10)).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();
        let out = trim_defense(&poisoned, &TrimConfig::new(100)).unwrap();
        let caught = out.removed.iter().filter(|k| plan.keys.contains(k)).count();
        let collateral = out.removed.len() - caught;
        assert_eq!(out.removed.len(), 10);
        // Either poison survives or legitimate keys were sacrificed.
        assert!(
            caught < 10 || collateral > 0,
            "TRIM unexpectedly achieved perfect recovery"
        );
    }

    #[test]
    fn loss_trace_is_recorded() {
        let ks = uniform(60, 9);
        let out = trim_defense(&ks, &TrimConfig::new(50)).unwrap();
        assert!(!out.loss_trace.is_empty());
        assert!(out.iterations >= 1);
        assert!(out.iterations <= 50);
    }

    #[test]
    fn hypothetical_rank_boundaries() {
        let subset = [10u64, 20, 30];
        assert_eq!(hypothetical_rank(&subset, 5), 1);
        assert_eq!(hypothetical_rank(&subset, 10), 1);
        assert_eq!(hypothetical_rank(&subset, 15), 2);
        assert_eq!(hypothetical_rank(&subset, 35), 4);
    }

    #[test]
    fn evenly_spaced_subsample() {
        let keys: Vec<Key> = (0..100).collect();
        let sub = evenly_spaced(&keys, 10);
        assert_eq!(sub.len(), 10);
        assert!(sub.windows(2).all(|w| w[0] < w[1]));
    }
}
