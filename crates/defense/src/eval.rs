//! Defense evaluation: detection quality and post-defense model damage.
//!
//! A defense against availability poisoning is only useful if it (a) finds
//! the poison, (b) spares the legitimate keys, and (c) actually restores
//! the model's accuracy. [`DefenseReport`] measures all three against
//! ground truth, quantifying the Section-VI discussion.

use lis_core::error::Result;
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::LinearModel;
use lis_core::metrics::ratio_loss;
use std::collections::HashSet;

/// Ground-truth evaluation of a defense run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseReport {
    /// Fraction of poison keys the defense removed (recall).
    pub poison_recall: f64,
    /// Fraction of removed keys that were actually poison (precision).
    pub removal_precision: f64,
    /// Number of legitimate keys removed (collateral damage).
    pub legit_removed: usize,
    /// MSE of the regression on the clean keyset.
    pub clean_mse: f64,
    /// MSE on the poisoned keyset (no defense).
    pub poisoned_mse: f64,
    /// MSE on the keyset the defense retained.
    pub defended_mse: f64,
}

impl DefenseReport {
    /// Ratio loss before the defense (`poisoned / clean`).
    pub fn ratio_before(&self) -> f64 {
        ratio_loss(self.poisoned_mse, self.clean_mse)
    }

    /// Ratio loss after the defense (`defended / clean`) — 1.0 means full
    /// recovery.
    pub fn ratio_after(&self) -> f64 {
        ratio_loss(self.defended_mse, self.clean_mse)
    }

    /// How much of the inflicted damage the defense undid, in `[0, 1]`
    /// (clamped; negative raw values mean the defense made things worse).
    pub fn recovery(&self) -> f64 {
        let inflicted = self.poisoned_mse - self.clean_mse;
        if inflicted <= 0.0 {
            return 1.0;
        }
        ((self.poisoned_mse - self.defended_mse) / inflicted).clamp(0.0, 1.0)
    }
}

/// Scores a defense outcome against ground truth.
///
/// * `clean` — the legitimate keyset;
/// * `poison` — the injected keys;
/// * `retained` — the keys the defense kept.
pub fn evaluate_defense(
    clean: &KeySet,
    poison: &[Key],
    retained: &KeySet,
) -> Result<DefenseReport> {
    let poison_set: HashSet<Key> = poison.iter().copied().collect();
    let retained_set: HashSet<Key> = retained.keys().iter().copied().collect();

    let mut poisoned = clean.clone();
    poisoned.insert_all(poison.iter().copied())?;

    let removed: Vec<Key> = poisoned
        .keys()
        .iter()
        .copied()
        .filter(|k| !retained_set.contains(k))
        .collect();
    let poison_removed = removed.iter().filter(|k| poison_set.contains(k)).count();
    let legit_removed = removed.len() - poison_removed;

    let clean_mse = LinearModel::fit(clean)?.mse;
    let poisoned_mse = LinearModel::fit(&poisoned)?.mse;
    let defended_mse = LinearModel::fit(retained)?.mse;

    Ok(DefenseReport {
        poison_recall: if poison.is_empty() {
            1.0
        } else {
            poison_removed as f64 / poison.len() as f64
        },
        removal_precision: if removed.is_empty() {
            1.0
        } else {
            poison_removed as f64 / removed.len() as f64
        },
        legit_removed,
        clean_mse,
        poisoned_mse,
        defended_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trim::{trim_defense, TrimConfig};
    use lis_poison::{greedy_poison, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn perfect_defense_scores_perfectly() {
        let clean = uniform(50, 7);
        let poison = vec![3u64, 10, 17];
        // "Defense" that retains exactly the clean set.
        let report = evaluate_defense(&clean, &poison, &clean).unwrap();
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.removal_precision, 1.0);
        assert_eq!(report.legit_removed, 0);
        assert!((report.recovery() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_defense_scores_zero_recall() {
        let clean = uniform(50, 7);
        let poison = vec![3u64, 10, 17];
        let mut poisoned = clean.clone();
        poisoned.insert_all(poison.iter().copied()).unwrap();
        let report = evaluate_defense(&clean, &poison, &poisoned).unwrap();
        assert_eq!(report.poison_recall, 0.0);
        assert_eq!(report.legit_removed, 0);
        assert!(report.ratio_after() >= report.ratio_before() * 0.999);
    }

    #[test]
    fn empty_poison_is_vacuous_recall() {
        let clean = uniform(20, 5);
        let report = evaluate_defense(&clean, &[], &clean).unwrap();
        assert_eq!(report.poison_recall, 1.0);
    }

    #[test]
    fn trim_report_end_to_end() {
        let clean = uniform(100, 13);
        let plan = greedy_poison(&clean, PoisonBudget::keys(10)).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();
        let out = trim_defense(&poisoned, &TrimConfig::new(clean.len())).unwrap();
        let report = evaluate_defense(&clean, &plan.keys, &out.retained).unwrap();
        // Structural sanity: probabilities in range, damage accounted.
        assert!((0.0..=1.0).contains(&report.poison_recall));
        assert!((0.0..=1.0).contains(&report.removal_precision));
        assert!(report.poisoned_mse > report.clean_mse);
        // The Section-VI claim — recovery is imperfect against this attack.
        assert!(
            report.recovery() < 0.999 || report.legit_removed > 0,
            "TRIM unexpectedly achieved lossless recovery"
        );
    }
}
