//! Defense evaluation: detection quality and post-defense model damage.
//!
//! A defense against availability poisoning is only useful if it (a) finds
//! the poison, (b) spares the legitimate keys, and (c) actually restores
//! the model's accuracy. [`DefenseReport`] measures all three against
//! ground truth, quantifying the Section-VI discussion.
//!
//! Scoring covers the full adversary space of the paper's future-work
//! section: insertion-only campaigns ([`evaluate_defense`]) and
//! deletion/mixed campaigns ([`evaluate_defense_campaign`]), where the
//! suspect set the defense saw is `(K ∖ removed) ∪ inserted`.

use lis_core::error::Result;
use lis_core::keys::{Key, KeySet};
use lis_core::linreg::LinearModel;
use lis_core::metrics::ratio_loss;
use std::collections::HashSet;

/// Ground-truth evaluation of a defense run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseReport {
    /// Fraction of poison keys the defense removed (recall). The
    /// denominator is [`DefenseReport::poison_seen`] — attacker insertions
    /// that collided with legitimate keys never entered the suspect set and
    /// are not counted.
    pub poison_recall: f64,
    /// Fraction of removed keys that were actually poison (precision).
    pub removal_precision: f64,
    /// Number of legitimate keys removed (collateral damage).
    pub legit_removed: usize,
    /// Number of distinct attacker-inserted keys actually present in the
    /// suspect set — the recall denominator.
    pub poison_seen: usize,
    /// Number of legitimate keys the *attacker* deleted (`0` for
    /// insertion-only campaigns). A defense cannot restore these; they cap
    /// the achievable recovery.
    pub attack_removed: usize,
    /// MSE of the regression on the clean keyset.
    pub clean_mse: f64,
    /// MSE on the poisoned keyset (no defense).
    pub poisoned_mse: f64,
    /// MSE on the keyset the defense retained.
    pub defended_mse: f64,
}

impl DefenseReport {
    /// Ratio loss before the defense (`poisoned / clean`).
    pub fn ratio_before(&self) -> f64 {
        ratio_loss(self.poisoned_mse, self.clean_mse)
    }

    /// Ratio loss after the defense (`defended / clean`) — 1.0 means full
    /// recovery.
    pub fn ratio_after(&self) -> f64 {
        ratio_loss(self.defended_mse, self.clean_mse)
    }

    /// How much of the inflicted damage the defense undid, in `[0, 1]`
    /// (clamped; negative raw values mean the defense made things worse).
    pub fn recovery(&self) -> f64 {
        let inflicted = self.poisoned_mse - self.clean_mse;
        if inflicted <= 0.0 {
            return 1.0;
        }
        ((self.poisoned_mse - self.defended_mse) / inflicted).clamp(0.0, 1.0)
    }
}

/// Scores a defense outcome against an insertion-only campaign.
///
/// * `clean` — the legitimate keyset;
/// * `poison` — the injected keys;
/// * `retained` — the keys the defense kept.
///
/// Poison keys that duplicate each other or collide with legitimate keys
/// never entered the suspect set; they are deduplicated *before* scoring so
/// the recall denominator counts only poison the defense could have caught.
pub fn evaluate_defense(
    clean: &KeySet,
    poison: &[Key],
    retained: &KeySet,
) -> Result<DefenseReport> {
    evaluate_defense_campaign(clean, poison, &[], retained)
}

/// Scores a defense outcome against a general insert/delete campaign
/// (the ROADMAP's deletion/mixed extension of [`evaluate_defense`]).
///
/// * `clean` — the legitimate keyset;
/// * `inserted` — keys the attacker injected;
/// * `attack_removed` — legitimate keys the attacker deleted;
/// * `retained` — the keys the defense kept.
///
/// The suspect set the defense actually saw is reconstructed as
/// `(clean ∖ attack_removed) ∪ inserted`; detection metrics are computed
/// against it, and model-damage metrics compare clean vs suspect vs
/// retained. Degenerate ground truth is netted out: deletions of keys that
/// were never legitimate and insertions colliding with surviving
/// legitimate keys are ignored, and re-inserting a key the attacker itself
/// deleted cancels the deletion (it is a legitimate key back in place, not
/// poison) — so the reconstruction matches the attacker's actual output
/// keyset.
pub fn evaluate_defense_campaign(
    clean: &KeySet,
    inserted: &[Key],
    attack_removed: &[Key],
    retained: &KeySet,
) -> Result<DefenseReport> {
    let mut suspect = clean.clone();
    let mut removed_seen: HashSet<Key> = HashSet::new();
    for &k in attack_removed {
        if clean.contains(k) && removed_seen.insert(k) {
            suspect.remove(k)?;
        }
    }
    let mut poison_set: HashSet<Key> = HashSet::new();
    for &k in inserted {
        if clean.contains(k) {
            // Attacker re-inserted a legitimate key it deleted: net no-op.
            if removed_seen.remove(&k) {
                suspect.insert(k)?;
            }
        } else if poison_set.insert(k) {
            suspect.insert(k)?;
        }
    }

    let retained_set: HashSet<Key> = retained.keys().iter().copied().collect();
    let removed: Vec<Key> = suspect
        .keys()
        .iter()
        .copied()
        .filter(|k| !retained_set.contains(k))
        .collect();
    let poison_removed = removed.iter().filter(|k| poison_set.contains(k)).count();
    let legit_removed = removed.len() - poison_removed;

    let clean_mse = LinearModel::fit(clean)?.mse;
    let poisoned_mse = LinearModel::fit(&suspect)?.mse;
    let defended_mse = LinearModel::fit(retained)?.mse;

    Ok(DefenseReport {
        poison_recall: if poison_set.is_empty() {
            1.0
        } else {
            poison_removed as f64 / poison_set.len() as f64
        },
        removal_precision: if removed.is_empty() {
            1.0
        } else {
            poison_removed as f64 / removed.len() as f64
        },
        legit_removed,
        poison_seen: poison_set.len(),
        attack_removed: removed_seen.len(),
        clean_mse,
        poisoned_mse,
        defended_mse,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trim::{trim_defense, TrimConfig};
    use lis_poison::{greedy_poison, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn perfect_defense_scores_perfectly() {
        let clean = uniform(50, 7);
        let poison = vec![3u64, 10, 17];
        // "Defense" that retains exactly the clean set.
        let report = evaluate_defense(&clean, &poison, &clean).unwrap();
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.removal_precision, 1.0);
        assert_eq!(report.legit_removed, 0);
        assert_eq!(report.poison_seen, 3);
        assert_eq!(report.attack_removed, 0);
        assert!((report.recovery() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_defense_scores_zero_recall() {
        let clean = uniform(50, 7);
        let poison = vec![3u64, 10, 17];
        let mut poisoned = clean.clone();
        poisoned.insert_all(poison.iter().copied()).unwrap();
        let report = evaluate_defense(&clean, &poison, &poisoned).unwrap();
        assert_eq!(report.poison_recall, 0.0);
        assert_eq!(report.legit_removed, 0);
        assert!(report.ratio_after() >= report.ratio_before() * 0.999);
    }

    #[test]
    fn empty_poison_is_vacuous_recall() {
        let clean = uniform(20, 5);
        let report = evaluate_defense(&clean, &[], &clean).unwrap();
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.poison_seen, 0);
    }

    #[test]
    fn poison_colliding_with_clean_keys_is_deduplicated_before_scoring() {
        // Regression test for the recall skew: 3 of the 5 "poison" keys
        // collide with legitimate keys (and one real poison key is listed
        // twice), so only 2 distinct keys ever entered the suspect set. A
        // defense that removes both must score recall 1.0, not 2/5.
        let clean = uniform(50, 7); // keys 0, 7, 14, ...
        let poison = vec![3u64, 10, 7, 14, 21, 3]; // 3 & 10 real; rest collide/dup
        let report = evaluate_defense(&clean, &poison, &clean).unwrap();
        assert_eq!(report.poison_seen, 2);
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.removal_precision, 1.0);
        assert_eq!(report.legit_removed, 0);
    }

    #[test]
    fn deletion_campaign_scores_ground_truth() {
        let clean = uniform(60, 11);
        let attack_removed = vec![0u64, 11, 22, 99_999]; // 99999 never existed
        let mut suspect = clean.clone();
        for &k in &attack_removed[..3] {
            suspect.remove(k).unwrap();
        }
        // Defense keeps everything it saw: no poison existed, so recall is
        // vacuously perfect and the damage is entirely the attacker's.
        let report = evaluate_defense_campaign(&clean, &[], &attack_removed, &suspect).unwrap();
        assert_eq!(report.attack_removed, 3);
        assert_eq!(report.poison_seen, 0);
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.legit_removed, 0);
        assert!((report.poisoned_mse - report.defended_mse).abs() < 1e-12);
    }

    #[test]
    fn reinserting_an_attacker_deleted_key_nets_out() {
        // The attacker deletes two legitimate keys, then re-inserts one of
        // them: the suspect set the defense saw contains that key again, so
        // it is neither a deletion casualty nor poison.
        let clean = uniform(40, 10);
        let inserted = vec![100u64];
        let attack_removed = vec![100u64, 200];
        let mut suspect = clean.clone();
        suspect.remove(200).unwrap();
        let report =
            evaluate_defense_campaign(&clean, &inserted, &attack_removed, &suspect).unwrap();
        assert_eq!(report.attack_removed, 1);
        assert_eq!(report.poison_seen, 0);
        assert_eq!(report.legit_removed, 0);
        assert_eq!(report.poison_recall, 1.0);
    }

    #[test]
    fn mixed_campaign_separates_attacker_and_defense_removals() {
        let clean = uniform(40, 10); // 0, 10, ..., 390
        let inserted = vec![5u64, 6, 7];
        let attack_removed = vec![380u64, 390];
        let mut suspect = clean.clone();
        for &k in &attack_removed {
            suspect.remove(k).unwrap();
        }
        suspect.insert_all(inserted.iter().copied()).unwrap();
        // Defense removes the poison plus one legitimate casualty.
        let mut retained = suspect.clone();
        for &k in &inserted {
            retained.remove(k).unwrap();
        }
        retained.remove(100).unwrap();
        let report =
            evaluate_defense_campaign(&clean, &inserted, &attack_removed, &retained).unwrap();
        assert_eq!(report.poison_seen, 3);
        assert_eq!(report.attack_removed, 2);
        assert_eq!(report.poison_recall, 1.0);
        assert_eq!(report.legit_removed, 1);
        assert!((report.removal_precision - 0.75).abs() < 1e-12);
    }

    #[test]
    fn trim_report_end_to_end() {
        let clean = uniform(100, 13);
        let plan = greedy_poison(&clean, PoisonBudget::keys(10)).unwrap();
        let poisoned = plan.poisoned_keyset(&clean).unwrap();
        let out = trim_defense(&poisoned, &TrimConfig::new(clean.len())).unwrap();
        let report = evaluate_defense(&clean, &plan.keys, &out.retained).unwrap();
        // Structural sanity: probabilities in range, damage accounted.
        assert!((0.0..=1.0).contains(&report.poison_recall));
        assert!((0.0..=1.0).contains(&report.removal_precision));
        assert!(report.poisoned_mse > report.clean_mse);
        // The Section-VI claim — recovery is imperfect against this attack.
        assert!(
            report.recovery() < 0.999 || report.legit_removed > 0,
            "TRIM unexpectedly achieved lossless recovery"
        );
    }
}
