//! The unified [`Defense`] trait: every mitigation in the crate behind one
//! interface, the counterpart of `lis_poison::attack::Attack`.
//!
//! A defense consumes a *suspect* keyset (possibly poisoned) and returns
//! the subset it trusts. Wrappers are provided for the TRIM adaptation
//! ([`TrimDefense`]), the value-space filters ([`RangeDefense`],
//! [`IqrDefense`], [`DensityDefense`]), and the [`NoDefense`] baseline.
//!
//! ## Example
//!
//! ```
//! use lis_core::keys::KeySet;
//! use lis_defense::strategy::{Defense, IqrDefense};
//!
//! let mut keys: Vec<u64> = (0..100).map(|i| 1_000 + i).collect();
//! keys.push(50_000_000); // a blatant value-space outlier
//! let suspect = KeySet::from_keys(keys).unwrap();
//! let out = IqrDefense { k: 1.5 }.sanitize(&suspect).unwrap();
//! assert_eq!(out.removed, vec![50_000_000]);
//! ```

use crate::trim::{trim_defense, TrimConfig};
use crate::{outlier, DefenseReport};
use lis_core::error::{LisError, Result};
use lis_core::keys::{Key, KeySet};

/// What a [`Defense`] returns: the keys it trusts and the keys it dropped.
#[derive(Debug, Clone)]
pub struct DefenseOutcome {
    /// The sanitized keyset the victim index should be (re)built on.
    pub retained: KeySet,
    /// Keys the defense discarded as suspected poison.
    pub removed: Vec<Key>,
}

impl DefenseOutcome {
    /// Scores this outcome against ground truth (the clean keyset and the
    /// actually injected poison) via [`crate::eval::evaluate_defense`].
    pub fn evaluate(&self, clean: &KeySet, poison: &[Key]) -> Result<DefenseReport> {
        crate::eval::evaluate_defense(clean, poison, &self.retained)
    }

    /// Scores this outcome against a general insert/delete campaign via
    /// [`crate::eval::evaluate_defense_campaign`] — the variant to use when
    /// the attacker may also have deleted legitimate keys.
    pub fn evaluate_campaign(
        &self,
        clean: &KeySet,
        inserted: &[Key],
        attack_removed: &[Key],
    ) -> Result<DefenseReport> {
        crate::eval::evaluate_defense_campaign(clean, inserted, attack_removed, &self.retained)
    }
}

/// A poisoning mitigation: suspect keyset in, trusted subset out. Object
/// safe, so harnesses can sweep `Vec<Box<dyn Defense>>`.
pub trait Defense {
    /// Short display name for tables and CLI flags.
    fn name(&self) -> &str;

    /// Sanitizes `suspect`, returning the retained subset.
    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome>;
}

/// The no-op defense — the undefended baseline row of every sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDefense;

impl Defense for NoDefense {
    fn name(&self) -> &str {
        "none"
    }

    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome> {
        Ok(DefenseOutcome {
            retained: suspect.clone(),
            removed: Vec::new(),
        })
    }
}

/// How [`TrimDefense`] derives the retained count from the suspect set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrimBudget {
    /// Retain exactly this many keys (the defender knows `n`).
    Keys(usize),
    /// Retain this fraction of the suspect set (the defender bounds the
    /// poisoning rate), e.g. `0.9` against ≤ 10% poisoning.
    Fraction(f64),
}

/// The CDF-adapted TRIM trimmed-loss defense.
#[derive(Debug, Clone, Copy)]
pub struct TrimDefense {
    /// Retained-count policy.
    pub budget: TrimBudget,
    /// Maximum refit iterations.
    pub max_iters: usize,
}

impl TrimDefense {
    /// TRIM retaining exactly `n` keys.
    pub fn keys(n: usize) -> Self {
        Self {
            budget: TrimBudget::Keys(n),
            max_iters: 50,
        }
    }

    /// TRIM retaining a fraction of the suspect set.
    pub fn fraction(f: f64) -> Self {
        Self {
            budget: TrimBudget::Fraction(f),
            max_iters: 50,
        }
    }

    fn retain_count(&self, total: usize) -> Result<usize> {
        let retain = match self.budget {
            TrimBudget::Keys(n) => n,
            TrimBudget::Fraction(f) => {
                if !(0.0..=1.0).contains(&f) {
                    return Err(LisError::InvalidBudget(format!(
                        "TRIM retain fraction {f} outside [0, 1]"
                    )));
                }
                (f * total as f64).round() as usize
            }
        };
        Ok(retain.min(total))
    }
}

impl Defense for TrimDefense {
    fn name(&self) -> &str {
        "trim"
    }

    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome> {
        let retain = self.retain_count(suspect.len())?;
        let mut cfg = TrimConfig::new(retain);
        cfg.max_iters = self.max_iters;
        let out = trim_defense(suspect, &cfg)?;
        Ok(DefenseOutcome {
            retained: out.retained,
            removed: out.removed,
        })
    }
}

/// Trusted value envelope: drops keys outside `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct RangeDefense {
    /// Smallest trusted key (inclusive).
    pub lo: Key,
    /// Largest trusted key (inclusive).
    pub hi: Key,
}

impl Defense for RangeDefense {
    fn name(&self) -> &str {
        "range-filter"
    }

    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome> {
        let (kept, removed) = outlier::range_filter(suspect, self.lo, self.hi);
        retained_from(suspect, kept, removed)
    }
}

/// Tukey's fences on the key values.
#[derive(Debug, Clone, Copy)]
pub struct IqrDefense {
    /// Fence multiplier (conventionally `1.5`).
    pub k: f64,
}

impl Defense for IqrDefense {
    fn name(&self) -> &str {
        "iqr-filter"
    }

    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome> {
        let (kept, removed) = outlier::iqr_filter(suspect, self.k);
        retained_from(suspect, kept, removed)
    }
}

/// Local-density filter: drops keys sitting in abnormally crowded
/// neighbourhoods.
#[derive(Debug, Clone, Copy)]
pub struct DensityDefense {
    /// Rank-space neighbourhood half-width.
    pub window: usize,
    /// Crowding threshold relative to the dataset's mean gap.
    pub crowd_factor: f64,
}

impl Defense for DensityDefense {
    fn name(&self) -> &str {
        "density-filter"
    }

    fn sanitize(&self, suspect: &KeySet) -> Result<DefenseOutcome> {
        let (kept, removed) =
            outlier::local_density_filter(suspect, self.window, self.crowd_factor)?;
        retained_from(suspect, kept, removed)
    }
}

/// Rebuilds a keyset from a filter's kept keys, preserving the suspect
/// set's domain. An empty kept set is an invariant breach (a defense that
/// removes everything defended nothing).
fn retained_from(suspect: &KeySet, kept: Vec<Key>, removed: Vec<Key>) -> Result<DefenseOutcome> {
    if kept.is_empty() {
        return Err(LisError::Invariant("defense removed every key".into()));
    }
    Ok(DefenseOutcome {
        retained: KeySet::new(kept, suspect.domain())?,
        removed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_poison::{Attack, GreedyCdfAttack, PoisonBudget};

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn no_defense_is_identity() {
        let ks = uniform(40, 3);
        let out = NoDefense.sanitize(&ks).unwrap();
        assert_eq!(out.retained, ks);
        assert!(out.removed.is_empty());
    }

    #[test]
    fn trim_budgets_agree() {
        let clean = uniform(100, 9);
        let attack = GreedyCdfAttack {
            budget: PoisonBudget::keys(10),
        };
        let poisoned = attack.run(&clean).unwrap().poisoned;
        let by_keys = TrimDefense::keys(100).sanitize(&poisoned).unwrap();
        let by_fraction = TrimDefense::fraction(100.0 / 110.0)
            .sanitize(&poisoned)
            .unwrap();
        assert_eq!(by_keys.retained.len(), 100);
        assert_eq!(by_fraction.retained.len(), 100);
        assert_eq!(by_keys.removed.len(), 10);
    }

    #[test]
    fn trim_outcome_evaluates_against_ground_truth() {
        let clean = uniform(100, 13);
        let out = GreedyCdfAttack {
            budget: PoisonBudget::keys(10),
        }
        .run(&clean)
        .unwrap();
        let defended = TrimDefense::keys(clean.len())
            .sanitize(&out.poisoned)
            .unwrap();
        let report = defended.evaluate(&clean, &out.inserted).unwrap();
        assert!((0.0..=1.0).contains(&report.poison_recall));
        assert!(report.ratio_before() > 1.0);
    }

    #[test]
    fn filters_partition_the_suspect_set() {
        let mut keys: Vec<Key> = (0..200).map(|i| 5_000 + i * 3).collect();
        keys.push(0);
        keys.push(9_999_999);
        let suspect = KeySet::from_keys(keys).unwrap();
        let fleet: Vec<Box<dyn Defense>> = vec![
            Box::new(RangeDefense {
                lo: 5_000,
                hi: 5_600,
            }),
            Box::new(IqrDefense { k: 1.5 }),
            Box::new(DensityDefense {
                window: 3,
                crowd_factor: 3.0,
            }),
        ];
        for defense in &fleet {
            let out = defense.sanitize(&suspect).unwrap();
            assert_eq!(
                out.retained.len() + out.removed.len(),
                suspect.len(),
                "{} dropped keys on the floor",
                defense.name()
            );
        }
    }

    #[test]
    fn iqr_defense_catches_extremes() {
        let mut keys: Vec<Key> = (0..100).map(|i| 1_000 + i).collect();
        keys.push(10_000_000);
        let suspect = KeySet::from_keys(keys).unwrap();
        let out = IqrDefense { k: 1.5 }.sanitize(&suspect).unwrap();
        assert_eq!(out.removed, vec![10_000_000]);
    }

    #[test]
    fn trim_fraction_validates() {
        let ks = uniform(50, 3);
        assert!(TrimDefense::fraction(1.5).sanitize(&ks).is_err());
    }
}
