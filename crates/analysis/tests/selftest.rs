//! Mutation self-test for the lint suite: a deliberately violating
//! source tree must trip every rule, inline allows must suppress, and
//! the real workspace must scan clean (the CI gate this crate exists
//! to hold).

use lis_analysis::{analyze, RULES};
use std::path::{Path, PathBuf};

/// A scratch "workspace" under the target dir (unique per test so the
/// suites can run in parallel).
fn scratch_root(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/lis-analysis-selftest")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(root: &Path, rel: &str, text: &str) {
    let path = root.join(rel);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, text).unwrap();
}

const VIOLATING_SERVER_FILE: &str = r#"
// lis-analysis: zone(zero-alloc)
pub fn hot(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for x in xs {
        out.push(*x + 1);
    }
    out
}

pub fn wait_without_loop(cv: &std::sync::Condvar, m: &std::sync::Mutex<bool>) {
    let guard = m.lock().unwrap();
    let _guard = cv.wait(guard).unwrap();
}

pub fn spawn_somewhere() {
    std::thread::spawn(|| {}).join().unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
"#;

/// Ticket waits whose outcome is discarded — the definite-outcome
/// contract violation — in its own file so `bad.rs` line assertions
/// stay stable.
const VIOLATING_TICKET_FILE: &str = r#"
pub fn swallow(t: crate::ResponseTicket) {
    let _ = t.wait();
}

pub fn swallow_timed(t: crate::ResponseTicket, d: std::time::Duration) {
    let _ = t.wait_timeout(d);
}
"#;

/// An applied-write ack that comes *before* the file's WAL append, plus a
/// compliant ack after it — the durability-ack-order violation in its own
/// file so line assertions stay stable.
const VIOLATING_ACK_FILE: &str = r#"
pub fn eager_ack(slot: crate::ResponseSlot, store: &mut crate::Store, ops: &[u8]) {
    slot.fulfill(Ok(WriteStatus::Applied { epoch: 1 }));
    store.log_batch(ops, 1, false, false);
}

pub fn durable_ack(slot: crate::ResponseSlot) {
    slot.fulfill(Ok(WriteStatus::Applied { epoch: 2 }));
}
"#;

#[test]
fn violating_tree_trips_every_rule() {
    let root = scratch_root("violating");
    write(&root, "src/lib.rs", "pub fn ok() {}\n");
    write(&root, "crates/server/src/bad.rs", VIOLATING_SERVER_FILE);
    write(
        &root,
        "crates/server/src/ticket_bad.rs",
        VIOLATING_TICKET_FILE,
    );
    write(&root, "crates/server/src/ack_bad.rs", VIOLATING_ACK_FILE);
    write(
        &root,
        "crates/core/src/index.rs",
        "pub fn with_defaults() {\n    let _ = Registered::new();\n}\n",
    );
    write(
        &root,
        "crates/core/src/orphan.rs",
        "impl LearnedIndex for Orphan {}\nimpl LearnedIndex for Registered {}\n",
    );

    let report = analyze(&root);
    let hit: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    for rule in RULES {
        assert!(
            hit.contains(&rule),
            "rule `{rule}` not tripped by the violating tree; report: {:#?}",
            report.violations
        );
    }

    // The serve-path file trips zero-alloc (2 alloc sites), serve-no-panic
    // (unwraps outside the test mod only), condvar-predicate, and
    // thread-discipline.
    let in_bad = |rule: &str| {
        report
            .violations
            .iter()
            .filter(|v| v.rule == rule && v.file.ends_with("bad.rs"))
            .count()
    };
    assert_eq!(in_bad("zero-alloc"), 2);
    assert_eq!(in_bad("condvar-predicate"), 1);
    assert_eq!(in_bad("thread-discipline"), 1);
    assert!(in_bad("serve-no-panic") >= 3);
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.file.ends_with("bad.rs") && v.line >= 24),
        "the #[cfg(test)] module must be exempt"
    );

    // Both discarded ticket waits are flagged, and only those lines.
    let ticket: Vec<usize> = report
        .violations
        .iter()
        .filter(|v| v.rule == "ticket-definite-outcome")
        .map(|v| {
            assert!(v.file.ends_with("ticket_bad.rs"), "{v:?}");
            v.line
        })
        .collect();
    assert_eq!(ticket.len(), 2);

    // Only the ack preceding the WAL append is flagged; the ack after it
    // is compliant (the append at line 3 covers line 8).
    let acks: Vec<usize> = report
        .violations
        .iter()
        .filter(|v| v.rule == "durability-ack-order")
        .map(|v| {
            assert!(v.file.ends_with("ack_bad.rs"), "{v:?}");
            v.line
        })
        .collect();
    assert_eq!(acks.len(), 1);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "durability-ack-order" && v.message.contains("precedes")),
        "the eager ack must cite the append it precedes"
    );

    // The orphan index type is flagged; the registered one is not.
    let registry: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.rule == "registry-complete")
        .map(|v| v.message.as_str())
        .collect();
    assert_eq!(registry.len(), 1);
    assert!(registry[0].contains("`Orphan`"));

    // Machine-readable report: valid shape, counts match.
    let json = report.to_json();
    assert!(json.contains("\"violation_count\""));
    assert!(json.contains("\"rule\": \"zero-alloc\""));
}

#[test]
fn allows_suppress_and_are_counted() {
    let root = scratch_root("allowed");
    write(
        &root,
        "crates/server/src/excused.rs",
        r#"
pub fn teardown(h: std::thread::JoinHandle<()>) {
    // Justified: shutdown path, the panic is the report of record.
    // lis-analysis: allow(serve-no-panic)
    h.join().unwrap();
}

pub fn sanctioned_spawn() {
    // lis-analysis: allow(thread-discipline) — test fixture.
    std::thread::spawn(|| {}); // lis-analysis: allow(serve-no-panic)
}
"#,
    );
    let report = analyze(&root);
    assert!(
        report.is_clean(),
        "allows must suppress: {:#?}",
        report.violations
    );
    assert_eq!(report.allowed, 2);
}

/// The acceptance gate: the real workspace scans clean. This is the same
/// pass CI's `analyze` job runs; keeping it as a test means `cargo test`
/// alone catches a policy regression.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = analyze(&root);
    assert!(
        report.files_scanned > 50,
        "workspace walk found too few files"
    );
    assert!(
        report.is_clean(),
        "workspace must pass its own lint suite: {:#?}",
        report.violations
    );
}
