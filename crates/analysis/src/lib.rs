//! # lis_analysis — repo-invariant lint suite
//!
//! A source-walking static-analysis pass enforcing the workspace's
//! cross-cutting invariants — the ones `rustc` and `clippy` cannot see
//! because they are *policies of this repo*, not properties of Rust:
//!
//! * **`zero-alloc`** — no allocation-capable calls (`Vec::new`,
//!   `vec![]`, `.push`, `.collect`, `.to_vec`, `.clone`, `format!`,
//!   `Box::new`, `.to_string`) inside declared zero-alloc zones. A zone
//!   is a whole file marked `// lis-analysis: zone(zero-alloc)` or a
//!   region between `// lis-analysis: begin(zero-alloc)` and
//!   `// lis-analysis: end(zero-alloc)`.
//! * **`thread-discipline`** — no `std::thread::spawn`/`scope` outside
//!   `lis_core::par` (the sanctioned fan-out home), the server's
//!   worker/writer entry points, and the `lis_check` scheduler runtime.
//! * **`condvar-predicate`** — every `Condvar::wait`/`wait_timeout`
//!   (direct or through the server's sync facade helpers) sits inside a
//!   `while`/`loop` predicate loop, so a spurious or early wake re-checks
//!   its condition instead of proceeding on stale state.
//! * **`serve-no-panic`** — no `unwrap`/`expect`/`panic!` family calls in
//!   `crates/server/src` outside test modules: a panicking serve path
//!   strands client tickets.
//! * **`ticket-definite-outcome`** — no `let _ =` discard of a
//!   `.wait(`/`.wait_timeout(` result in `crates/server/src`: a ticket
//!   wait resolves to a value *or* a timeout/shutdown error, and
//!   discarding the result silently swallows that outcome instead of
//!   handling (or propagating) it.
//! * **`durability-ack-order`** — in any `crates/server/src` file that
//!   acks an applied write (`fulfill(Ok(WriteStatus::Applied`), the WAL
//!   append (`.log_batch(`) must come first in the file: an ack the
//!   durable log has not seen is a write the client trusts but a crash
//!   forgets.
//! * **`registry-complete`** — every `impl LearnedIndex for T` in
//!   `lis-core` has its type constructed in
//!   `IndexRegistry::with_defaults`, so new structures are reachable by
//!   name from experiments and the CLI.
//! * **`forbid-unsafe`** — every workspace crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! Any flagged line can be suppressed with an inline escape hatch —
//! `// lis-analysis: allow(<rule>)` on the line itself or in the
//! contiguous comment block directly above it — which is a *reviewed,
//! justified* exception rather than a silent one.
//!
//! Run as `cargo run -p lis_analysis` (CI's `analyze` job does). The
//! pass prints human-readable findings, writes a machine-readable JSON
//! report, and exits nonzero when any non-allowed violation remains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod scan;

pub use scan::FileScan;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule slug (e.g. `zero-alloc`).
    pub rule: &'static str,
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Outcome of one full workspace pass.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Workspace root the pass ran over.
    pub root: PathBuf,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of violations suppressed by inline allows.
    pub allowed: usize,
    /// Remaining (non-allowed) violations.
    pub violations: Vec<Violation>,
}

/// The rule slugs this pass enforces, in report order.
pub const RULES: [&str; 8] = [
    "zero-alloc",
    "thread-discipline",
    "condvar-predicate",
    "serve-no-panic",
    "ticket-definite-outcome",
    "durability-ack-order",
    "registry-complete",
    "forbid-unsafe",
];

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl AnalysisReport {
    /// Renders the report as JSON (hand-rolled; the workspace carries no
    /// serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"root\": \"{}\",",
            json_escape(&self.root.display().to_string())
        );
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"allowed\": {},", self.allowed);
        let rules: Vec<String> = RULES.iter().map(|r| format!("\"{r}\"")).collect();
        let _ = writeln!(out, "  \"rules\": [{}],", rules.join(", "));
        let _ = writeln!(out, "  \"violation_count\": {},", self.violations.len());
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 == self.violations.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
                v.rule,
                json_escape(&v.file),
                v.line,
                json_escape(&v.message)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// `true` iff the pass found no (non-allowed) violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// The workspace's lintable source files: every `src/` tree of the root
/// package and the member crates. `tests/`, `benches/`, and `examples/`
/// trees are out of scope (the rules police the library/serve paths;
/// in-`src` test modules are excluded per rule instead).
pub fn workspace_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        let mut crate_dirs: Vec<PathBuf> = crates
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            collect_rs_files(&crate_dir.join("src"), &mut files);
            // Shim crates nest one level deeper (crates/shims/rand).
            if crate_dir.join("Cargo.toml").exists() {
                continue;
            }
            if let Ok(nested) = std::fs::read_dir(&crate_dir) {
                for sub in nested.flatten() {
                    let sub = sub.path();
                    if sub.is_dir() {
                        collect_rs_files(&sub.join("src"), &mut files);
                    }
                }
            }
        }
    }
    files.sort();
    files
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// Calls that can hit the allocator, by syntactic fingerprint.
const ALLOC_PATTERNS: [&str; 9] = [
    "Vec::new",
    "vec![",
    ".push(",
    ".collect(",
    ".to_vec(",
    ".clone(",
    "format!",
    "Box::new",
    ".to_string(",
];

/// Whether `code` contains `pat` as a call-ish token (preceded by a
/// non-identifier character or line start).
fn has_token(code: &str, pat: &str) -> bool {
    let mut from = 0;
    while let Some(i) = code[from..].find(pat) {
        let at = from + i;
        let prev_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok {
            return true;
        }
        from = at + pat.len();
    }
    false
}

/// Whether a `wait(`-style call at `idx` (index of the `(`) has an
/// argument list matching the condvar shape: `min_args..=max_args`
/// comma-separated top-level arguments, the first non-empty.
fn call_args_in(code: &str, open: usize, min_args: usize, max_args: usize) -> bool {
    let bytes = code.as_bytes();
    debug_assert_eq!(bytes[open], b'(');
    let mut depth = 0usize;
    let mut args = 0usize;
    let mut current_len = 0usize;
    for &b in &bytes[open..] {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 1 {
                    if current_len > 0 {
                        args += 1;
                    }
                    return (min_args..=max_args).contains(&args);
                }
                depth = depth.saturating_sub(1);
            }
            b',' if depth == 1 => {
                args += 1;
                current_len = 0;
            }
            b if depth >= 1 && !b.is_ascii_whitespace() => current_len += 1,
            _ => {}
        }
    }
    // Argument list continues on the next line: treat as matching (the
    // multi-line forms in this workspace are all real condvar waits).
    true
}

/// Runs the whole lint suite over the workspace at `root`.
pub fn analyze(root: &Path) -> AnalysisReport {
    let files = workspace_sources(root);
    let mut violations: Vec<Violation> = Vec::new();
    let mut allowed = 0usize;
    let mut scans: Vec<(PathBuf, FileScan)> = Vec::new();
    for path in &files {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        scans.push((path.clone(), FileScan::new(&text)));
    }

    for (path, scan) in &scans {
        let relpath = rel(root, path);
        run_line_rules(root, &relpath, scan, &mut violations, &mut allowed);
    }
    run_ack_order_rule(root, &scans, &mut violations, &mut allowed);
    run_registry_rule(root, &scans, &mut violations, &mut allowed);
    run_forbid_unsafe_rule(root, &mut violations, &mut allowed);

    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    AnalysisReport {
        root: root.to_path_buf(),
        files_scanned: scans.len(),
        allowed,
        violations,
    }
}

fn push_violation(
    scan: &FileScan,
    violations: &mut Vec<Violation>,
    allowed: &mut usize,
    rule: &'static str,
    file: &str,
    line: usize,
    message: String,
) {
    if scan.is_allowed(line, rule) {
        *allowed += 1;
    } else {
        violations.push(Violation {
            rule,
            file: file.to_string(),
            line,
            message,
        });
    }
}

/// Files where `std::thread::spawn`/`scope` is sanctioned: the fan-out
/// module (scoped fallback when no pool is installed), the serving
/// plane's worker pool (the one spawn site for pooled workers and
/// dedicated serving loops), and the model checker's own runtime (which
/// drives real threads by design).
fn thread_discipline_allowlisted(relpath: &str) -> bool {
    relpath == "crates/core/src/par.rs"
        || relpath == "crates/server/src/pool.rs"
        || relpath.starts_with("crates/check/src/")
}

fn run_line_rules(
    _root: &Path,
    relpath: &str,
    scan: &FileScan,
    violations: &mut Vec<Violation>,
    allowed: &mut usize,
) {
    let serve_path = relpath.starts_with("crates/server/src/");
    for line in scan.lines() {
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        let lineno = line.number;

        // zero-alloc: allocation-capable calls inside declared zones.
        if line.in_zero_alloc_zone {
            for pat in ALLOC_PATTERNS {
                if code.contains(pat) {
                    push_violation(
                        scan,
                        violations,
                        allowed,
                        "zero-alloc",
                        relpath,
                        lineno,
                        format!("allocation-capable call `{pat}` inside a zero-alloc zone"),
                    );
                    break;
                }
            }
        }

        // thread-discipline: raw spawns outside the sanctioned homes.
        if !thread_discipline_allowlisted(relpath)
            && (has_token(code, "thread::spawn")
                || has_token(code, "thread::scope")
                || code.contains("std::thread::Builder"))
        {
            push_violation(
                scan,
                violations,
                allowed,
                "thread-discipline",
                relpath,
                lineno,
                "thread spawn outside lis_core::par / server entry points — route fan-out \
                 through `lis_core::par::map_chunks` or justify with an allow"
                    .to_string(),
            );
        }

        // condvar-predicate: wait calls must sit inside a while/loop.
        if !relpath.starts_with("crates/check/src/") {
            let mut flagged = false;
            for pat in ["wait(", "wait_timeout("] {
                let mut from = 0;
                while let Some(i) = code[from..].find(pat) {
                    let at = from + i;
                    from = at + pat.len();
                    // Identifier boundary on the left (so `wait_timeout(`
                    // is not also matched as `wait(`... it cannot be, but
                    // `awaits(` could).
                    let before = &code[..at];
                    let prev = before.chars().next_back();
                    let method = prev == Some('.');
                    if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                        continue;
                    }
                    let open = at + pat.len() - 1;
                    // Condvar shapes: method form takes a guard (wait:
                    // exactly 1 arg; wait_timeout: 2); facade helper form
                    // takes the condvar + guard (2 or 3 args).
                    let is_condvar_wait = if pat == "wait(" {
                        if method {
                            call_args_in(code, open, 1, 1)
                        } else {
                            call_args_in(code, open, 2, 2)
                        }
                    } else if method {
                        call_args_in(code, open, 2, 2)
                    } else {
                        call_args_in(code, open, 3, 3)
                    };
                    if is_condvar_wait && !line.in_loop {
                        push_violation(
                            scan,
                            violations,
                            allowed,
                            "condvar-predicate",
                            relpath,
                            lineno,
                            format!(
                                "`{pat}..)` outside a while/loop predicate loop — a spurious \
                                 or early wake proceeds on stale state"
                            ),
                        );
                        flagged = true;
                        break;
                    }
                }
                if flagged {
                    break;
                }
            }
        }

        // ticket-definite-outcome: a discarded wait result swallows the
        // timeout/shutdown outcome a ticket is contractually given.
        if serve_path
            && code.trim_start().starts_with("let _ =")
            && (code.contains(".wait(") || code.contains(".wait_timeout("))
        {
            push_violation(
                scan,
                violations,
                allowed,
                "ticket-definite-outcome",
                relpath,
                lineno,
                "`let _ =` discards a wait result — handle (or propagate) the \
                 timeout/shutdown arms instead of swallowing them"
                    .to_string(),
            );
        }

        // serve-no-panic: panicking calls on the serve path.
        if serve_path {
            for pat in [
                ".unwrap(",
                ".expect(",
                "panic!",
                "unimplemented!",
                "todo!(",
                "unreachable!",
            ] {
                if code.contains(pat) {
                    push_violation(
                        scan,
                        violations,
                        allowed,
                        "serve-no-panic",
                        relpath,
                        lineno,
                        format!(
                            "`{pat}..` on the serve path — a panicking worker strands client \
                             tickets; return an error or justify with an allow"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// durability-ack-order: within any serve-path file that acks an applied
/// write, the WAL append must precede every such ack in file order. The
/// writer's drain is straight-line — validate, append, publish, fulfill —
/// so file order is a faithful proxy for program order there, and an ack
/// site appearing before the first `.log_batch(` (or in a file with
/// none at all) is a write acknowledged outside the durability contract.
fn run_ack_order_rule(
    root: &Path,
    scans: &[(PathBuf, FileScan)],
    violations: &mut Vec<Violation>,
    allowed: &mut usize,
) {
    for (path, scan) in scans {
        let relpath = rel(root, path);
        if !relpath.starts_with("crates/server/src/") {
            continue;
        }
        let first_append = scan
            .lines()
            .iter()
            .find(|l| !l.in_test && l.code.contains(".log_batch("))
            .map(|l| l.number);
        for line in scan.lines() {
            if line.in_test || !line.code.contains("fulfill(Ok(WriteStatus::Applied") {
                continue;
            }
            let durable = first_append.is_some_and(|append| append < line.number);
            if !durable {
                push_violation(
                    scan,
                    violations,
                    allowed,
                    "durability-ack-order",
                    &relpath,
                    line.number,
                    match first_append {
                        Some(append) => format!(
                            "applied-write ack precedes the WAL append at line {append} — \
                             a crash after this ack forgets a write the client trusts"
                        ),
                        None => "applied-write ack in a file with no `.log_batch(` WAL \
                                 append — the ack is outside the durability contract"
                            .to_string(),
                    },
                );
            }
        }
    }
}

/// registry-complete: every `impl LearnedIndex for T` in lis-core must
/// construct `T` inside `IndexRegistry::with_defaults`.
fn run_registry_rule(
    root: &Path,
    scans: &[(PathBuf, FileScan)],
    violations: &mut Vec<Violation>,
    allowed: &mut usize,
) {
    // Gather the body of with_defaults from index.rs.
    let mut defaults_body = String::new();
    for (path, scan) in scans {
        if rel(root, path) != "crates/core/src/index.rs" {
            continue;
        }
        let mut in_fn = false;
        let mut depth_at_entry = 0usize;
        for line in scan.lines() {
            if !in_fn && line.code.contains("fn with_defaults") {
                in_fn = true;
                depth_at_entry = line.depth;
            } else if in_fn {
                // `depth` is measured at line start: the first line back
                // at the entry depth is past the function's closing `}`.
                if line.depth <= depth_at_entry {
                    break;
                }
                defaults_body.push_str(&line.code);
                defaults_body.push('\n');
            }
        }
    }
    if defaults_body.is_empty() {
        // Nothing to check against (e.g. a synthetic test tree).
        return;
    }
    for (path, scan) in scans {
        let relpath = rel(root, path);
        if !relpath.starts_with("crates/core/src/") {
            continue;
        }
        for line in scan.lines() {
            if line.in_test {
                continue;
            }
            let Some(rest) = line.code.split("impl LearnedIndex for ").nth(1) else {
                continue;
            };
            let ty: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ty.is_empty() {
                continue;
            }
            if !defaults_body.contains(&ty) {
                push_violation(
                    scan,
                    violations,
                    allowed,
                    "registry-complete",
                    &relpath,
                    line.number,
                    format!(
                        "`{ty}` implements LearnedIndex but is never constructed in \
                         IndexRegistry::with_defaults — unreachable by name from \
                         experiments/CLI"
                    ),
                );
            }
        }
    }
}

/// forbid-unsafe: every crate root carries `#![forbid(unsafe_code)]`.
fn run_forbid_unsafe_rule(root: &Path, violations: &mut Vec<Violation>, allowed: &mut usize) {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    if let Ok(bins) = std::fs::read_dir(root.join("src/bin")) {
        let mut bin_files: Vec<PathBuf> = bins
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
            .collect();
        bin_files.sort();
        roots.extend(bin_files);
    }
    if let Ok(crates) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = crates
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            // A crate with both a lib and a bin target has two roots;
            // each needs the attribute.
            for candidate in [dir.join("src/lib.rs"), dir.join("src/main.rs")] {
                if candidate.exists() {
                    roots.push(candidate);
                }
            }
            if let Ok(nested) = std::fs::read_dir(&dir) {
                let mut subs: Vec<PathBuf> = nested
                    .flatten()
                    .map(|e| e.path())
                    .filter(|p| p.is_dir() && p.join("src/lib.rs").exists())
                    .collect();
                subs.sort();
                for sub in subs {
                    roots.push(sub.join("src/lib.rs"));
                }
            }
        }
    }
    for crate_root in roots {
        let Ok(text) = std::fs::read_to_string(&crate_root) else {
            continue;
        };
        if !text.contains("#![forbid(unsafe_code)]") {
            let scan = FileScan::new(&text);
            push_violation(
                &scan,
                violations,
                allowed,
                "forbid-unsafe",
                &rel(root, &crate_root),
                1,
                "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }
}

/// CLI driver: `lis_analysis [root] [--report <path>]`. Prints findings,
/// writes the JSON report, exits nonzero when violations remain.
pub fn cli_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--report" {
            if i + 1 >= args.len() {
                eprintln!("--report requires a path");
                return ExitCode::from(2);
            }
            report_path = Some(PathBuf::from(&args[i + 1]));
            i += 2;
        } else {
            root = Some(PathBuf::from(&args[i]));
            i += 1;
        }
    }
    let root = root.unwrap_or_else(|| {
        // cargo run -p lis_analysis: the manifest dir is
        // <root>/crates/analysis.
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    let report = analyze(&root);
    let report_path =
        report_path.unwrap_or_else(|| root.join("target").join("lis-analysis-report.json"));
    if let Some(dir) = report_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&report_path, report.to_json()) {
        Ok(()) => eprintln!("lis_analysis: report written to {}", report_path.display()),
        Err(e) => eprintln!(
            "lis_analysis: could not write report to {}: {e}",
            report_path.display()
        ),
    }
    eprintln!(
        "lis_analysis: scanned {} files, {} allowed exception(s), {} violation(s)",
        report.files_scanned,
        report.allowed,
        report.violations.len()
    );
    for v in &report.violations {
        eprintln!("  [{}] {}:{}: {}", v.rule, v.file, v.line, v.message);
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
