//! CLI entry point: lints the workspace rooted at the manifest dir's
//! grandparent (or the first CLI argument) and writes the JSON report.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    lis_analysis::cli_main()
}
