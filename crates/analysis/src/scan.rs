//! Line-level source model behind the lint rules.
//!
//! This is deliberately *not* a Rust parser: the rules are syntactic
//! policies, and a line scanner that separates code from comments,
//! blanks out string/char literals, tracks brace depth, and classifies
//! blocks (`while`/`loop`/`for` bodies, `#[cfg(test)]` modules) is
//! enough to enforce them with zero dependencies. The scanner is
//! conservative where it must guess: an unterminated argument list at
//! end-of-line is treated as matching, and allow-comments are honored
//! from the flagged line or the contiguous comment block above it.

/// One scanned source line plus its lexical context.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// 1-based line number.
    pub number: usize,
    /// Code with comments removed and string/char literal *contents*
    /// blanked (quotes preserved), so token matches never fire inside
    /// literals or comments.
    pub code: String,
    /// Brace depth at the start of the line.
    pub depth: usize,
    /// Inside a `#[cfg(test)]`/`#[test]`-gated block.
    pub in_test: bool,
    /// Inside a `while`/`loop`/`for` body (at any enclosing level).
    pub in_loop: bool,
    /// Inside a declared zero-alloc zone (file marker or begin/end
    /// region).
    pub in_zero_alloc_zone: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockKind {
    Loop,
    Test,
    Other,
}

/// A scanned file: per-line context plus the allow-comment map.
#[derive(Debug)]
pub struct FileScan {
    lines: Vec<LineInfo>,
    /// Rules allowed per line (from `lis-analysis: allow(<rule>)`).
    allows: Vec<Vec<String>>,
    /// Lines that are comment-only (eligible to carry allows for the
    /// code line below them).
    comment_only: Vec<bool>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `text` contains `word` as a standalone token.
fn has_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(i) = text[from..].find(word) {
        let at = from + i;
        let before_ok = at == 0 || !text[..at].chars().next_back().is_some_and(is_ident_char);
        let after = at + word.len();
        let after_ok =
            after >= text.len() || !text[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = after;
    }
    false
}

/// Splits one raw line into (code-with-literals-blanked, comment-text),
/// updating the cross-line block-comment state.
fn split_line(raw: &str, in_block_comment: &mut bool) -> (String, String) {
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let chars: Vec<char> = raw.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if *in_block_comment {
            if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                *in_block_comment = false;
                i += 2;
            } else {
                comment.push(chars[i]);
                i += 1;
            }
            continue;
        }
        let c = chars[i];
        match c {
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: the rest of the line is comment text.
                comment.extend(&chars[i + 2..]);
                break;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                *in_block_comment = true;
                i += 2;
            }
            '"' => {
                // String literal: keep the quotes, blank the contents.
                code.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            'r' if chars.get(i + 1) == Some(&'"')
                || (chars.get(i + 1) == Some(&'#')
                    && matches!(chars.get(i + 2), Some(&'"') | Some(&'#'))) =>
            {
                // Raw string r"..." / r#"..."# (up to a few hashes).
                let mut hashes = 0;
                let mut j = i + 1;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    code.push('"');
                    j += 1;
                    'raw: while j < chars.len() {
                        if chars[j] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(j + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                code.push('"');
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    i = j;
                } else {
                    code.push('r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime: a literal is '\x' or 'c'.
                let is_char_lit =
                    chars.get(i + 1) == Some(&'\\') || chars.get(i + 2) == Some(&'\'');
                if is_char_lit {
                    code.push('\'');
                    i += 1;
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                code.push('\'');
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            c => {
                code.push(c);
                i += 1;
            }
        }
    }
    (code, comment)
}

fn parse_allows(comment: &str, out: &mut Vec<String>) {
    let mut from = 0;
    while let Some(i) = comment[from..].find("lis-analysis: allow(") {
        let start = from + i + "lis-analysis: allow(".len();
        if let Some(end) = comment[start..].find(')') {
            out.push(comment[start..start + end].trim().to_string());
            from = start + end;
        } else {
            break;
        }
    }
}

impl FileScan {
    /// Scans `text` into per-line context.
    pub fn new(text: &str) -> Self {
        let mut lines = Vec::new();
        let mut allows = Vec::new();
        let mut comment_only = Vec::new();

        let mut in_block_comment = false;
        let mut depth = 0usize;
        let mut stack: Vec<BlockKind> = Vec::new();
        let mut stmt_buffer = String::new();
        let mut pending_test_attr = false;
        let mut file_zone = false;
        let mut region_zone = false;

        for (idx, raw) in text.lines().enumerate() {
            let (code, comment) = split_line(raw, &mut in_block_comment);

            // Zone markers live in comments and must be the *whole*
            // comment (so prose that merely mentions a marker — e.g. the
            // linter's own docs — does not open a zone).
            let marker = comment.trim();
            if marker == "lis-analysis: zone(zero-alloc)" {
                file_zone = true;
            }
            if marker == "lis-analysis: begin(zero-alloc)" {
                region_zone = true;
            }

            let mut line_allows = Vec::new();
            parse_allows(&comment, &mut line_allows);

            let trimmed = code.trim();
            let info = LineInfo {
                number: idx + 1,
                code: code.clone(),
                depth,
                in_test: stack.contains(&BlockKind::Test),
                in_loop: stack.contains(&BlockKind::Loop),
                in_zero_alloc_zone: file_zone || region_zone,
            };
            comment_only.push(trimmed.is_empty() && !comment.trim().is_empty());
            allows.push(line_allows);
            lines.push(info);

            if marker == "lis-analysis: end(zero-alloc)" {
                region_zone = false;
            }

            // Track test attributes: `#[cfg(test)]`, `#[cfg(all(test,
            // ...))]`, `#[test]` arm the next opened block.
            if trimmed.starts_with("#[") && has_word(trimmed, "test") {
                pending_test_attr = true;
            }

            // Update depth / block stack from the code part.
            for c in code.chars() {
                match c {
                    '{' => {
                        let kind = if has_word(&stmt_buffer, "while")
                            || has_word(&stmt_buffer, "loop")
                            || has_word(&stmt_buffer, "for")
                        {
                            BlockKind::Loop
                        } else if pending_test_attr
                            && (has_word(&stmt_buffer, "mod") || has_word(&stmt_buffer, "fn"))
                        {
                            pending_test_attr = false;
                            BlockKind::Test
                        } else {
                            BlockKind::Other
                        };
                        stack.push(kind);
                        depth += 1;
                        stmt_buffer.clear();
                    }
                    '}' => {
                        stack.pop();
                        depth = depth.saturating_sub(1);
                        stmt_buffer.clear();
                    }
                    ';' => stmt_buffer.clear(),
                    c => stmt_buffer.push(c),
                }
            }
            stmt_buffer.push(' ');
        }

        FileScan {
            lines,
            allows,
            comment_only,
        }
    }

    /// The scanned lines, in order.
    pub fn lines(&self) -> &[LineInfo] {
        &self.lines
    }

    /// Whether `rule` is allowed at 1-based `line` — by an allow on the
    /// line itself or in the contiguous comment block directly above.
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        if line == 0 || line > self.lines.len() {
            return false;
        }
        let idx = line - 1;
        if self.allows[idx].iter().any(|r| r == rule) {
            return true;
        }
        let mut i = idx;
        while i > 0 && self.comment_only[i - 1] {
            i -= 1;
            if self.allows[i].iter().any(|r| r == rule) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let scan = FileScan::new("let x = \"a { b\"; // brace { in comment\n");
        assert_eq!(scan.lines()[0].code, "let x = \"\"; ");
        assert_eq!(scan.lines()[0].depth, 0);
    }

    #[test]
    fn loop_blocks_are_classified() {
        let src = "fn f() {\n    while x {\n        wait();\n    }\n    wait();\n}\n";
        let scan = FileScan::new(src);
        assert!(scan.lines()[2].in_loop);
        assert!(!scan.lines()[4].in_loop);
    }

    #[test]
    fn test_mods_are_tracked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn x() {}\n}\nfn y() {}\n";
        let scan = FileScan::new(src);
        assert!(scan.lines()[2].in_test);
        assert!(!scan.lines()[4].in_test);
    }

    #[test]
    fn cfg_all_test_feature_is_a_test_mod() {
        let src = "#[cfg(all(test, feature = \"check\"))]\nmod model_tests {\n    fn x() {}\n}\n";
        let scan = FileScan::new(src);
        assert!(scan.lines()[2].in_test);
    }

    #[test]
    fn allows_apply_from_line_and_comment_block_above() {
        let src = "\
// Justification for the exception below.
// lis-analysis: allow(serve-no-panic)
let a = x.unwrap();
let b = y.unwrap(); // lis-analysis: allow(serve-no-panic)
let c = z.unwrap();
";
        let scan = FileScan::new(src);
        assert!(scan.is_allowed(3, "serve-no-panic"));
        assert!(scan.is_allowed(4, "serve-no-panic"));
        assert!(!scan.is_allowed(5, "serve-no-panic"));
        assert!(!scan.is_allowed(3, "zero-alloc"));
    }

    #[test]
    fn zone_markers_scope_regions() {
        let src = "\
let a = Vec::new();
// lis-analysis: begin(zero-alloc)
let b = 1 + 2;
// lis-analysis: end(zero-alloc)
let c = Vec::new();
";
        let scan = FileScan::new(src);
        assert!(!scan.lines()[0].in_zero_alloc_zone);
        assert!(scan.lines()[2].in_zero_alloc_zone);
        assert!(!scan.lines()[4].in_zero_alloc_zone);
    }

    #[test]
    fn char_literals_and_lifetimes_do_not_derail() {
        let src = "fn f<'a>(x: &'a str) -> char { let b = '{'; b }\n";
        let scan = FileScan::new(src);
        assert_eq!(scan.lines().len(), 1);
        // The '{' literal must not have opened a block.
        let scan2 = FileScan::new("let b = '{';\nlet c = 1;\n");
        assert_eq!(scan2.lines()[1].depth, 0);
    }
}
