//! The online serving harness: matched scenarios against the write plane,
//! scored on drift, recall, and collateral.
//!
//! Every scenario runs the same three sequential phases against one
//! online server (`Server::start_online`):
//!
//! 1. **pre** — benign closed-loop reads on the bootstrap index; its mean
//!    lookup cost is the scenario's own clean baseline;
//! 2. **campaign** — concurrently: the Algorithm-2 [`Campaign`] streams
//!    poison writes from a single adversarial source id, a fleet of
//!    rotating benign sources trickles legitimate mid-gap inserts, and
//!    benign readers keep measuring (this is where the epoch swaps and
//!    the admission filters earn their keep). The benign-baseline
//!    scenario skips the campaign, isolating the cost of benign churn;
//! 3. **post** — benign reads again; `post mean cost / pre mean cost` is
//!    the **drift** the campaign bought.
//!
//! Because pre and post use the same deterministic cost units
//! (comparisons/probes) rather than wall clock, drift is robust on noisy
//! shared runners; latency percentiles ride along in the report for the
//! full story. Defense **recall** is the fraction of campaign writes
//! turned away; **collateral** is the fraction of benign writes turned
//! away — the two axes every admission filter trades between.

use crate::campaign::{run_campaign, Campaign, CampaignConfig};
use lis_core::error::Result;
use lis_core::index::IndexRegistry;
use lis_core::keys::{Key, KeySet};
use lis_defense::{DensityScreen, SourceRateLimit};
use lis_server::{AdmitAll, ServeConfig, ServeReport, Server, WriteOp, WriteStatus};
use lis_workloads::{domain_for_density, trial_rng, uniform_keys};
use rand::Rng;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Source id the campaign writes under (benign sources rotate 0..16).
const ADVERSARY_SOURCE: u64 = 1_000;
/// Benign writer fleet size.
const BENIGN_SOURCES: u64 = 16;

/// Scale and shape of one [`run_online`] sweep.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Victim keyset size.
    pub keys: usize,
    /// Keyset density `n / |domain|`.
    pub density: f64,
    /// Registry name of the victim index.
    pub index: String,
    /// Campaign poison budget (`φ·100`).
    pub poison_percent: f64,
    /// Benign writes trickled during the campaign phase.
    pub benign_writes: usize,
    /// Closed-loop reads in each of the pre and post phases.
    pub probe_requests: usize,
    /// Concurrent benign reader threads during the campaign phase.
    pub readers: usize,
    /// Serving worker threads.
    pub workers: usize,
    /// RNG seed for workload derivation.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            keys: 200_000,
            density: 0.1,
            index: "rmi".into(),
            poison_percent: 10.0,
            benign_writes: 2_000,
            probe_requests: 60_000,
            readers: 2,
            workers: 2,
            seed: lis_workloads::DEFAULT_SEED,
        }
    }
}

/// Outcome of one scenario (one server lifetime).
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (`benign`, `undefended`, `defended:<filter>`).
    pub name: String,
    /// Admission policy name the server ran.
    pub admission: String,
    /// Mean lookup cost of the pre (clean) read phase.
    pub pre_mean_cost: f64,
    /// Mean lookup cost of the post (after-campaign) read phase.
    pub post_mean_cost: f64,
    /// Poison keys the offline plan allocated.
    pub poison_planned: usize,
    /// Campaign writes submitted.
    pub poison_submitted: usize,
    /// Campaign writes the server applied.
    pub poison_applied: usize,
    /// Campaign writes admission control rejected.
    pub poison_rejected: usize,
    /// Benign writes submitted during the campaign phase.
    pub benign_submitted: usize,
    /// Benign writes applied.
    pub benign_applied: usize,
    /// Benign writes rejected (collateral numerator).
    pub benign_rejected: usize,
    /// The final server report (epochs, write counters, latency, and the
    /// windowed time series).
    pub serve: ServeReport,
}

impl ScenarioReport {
    /// Serving drift: post-campaign mean lookup cost over the clean
    /// baseline. 1.0 means the campaign bought nothing.
    pub fn drift(&self) -> f64 {
        self.post_mean_cost / self.pre_mean_cost.max(1e-12)
    }

    /// Fraction of campaign writes turned away (0 when no campaign ran).
    pub fn recall(&self) -> f64 {
        self.poison_rejected as f64 / (self.poison_submitted as f64).max(1.0)
    }

    /// Fraction of benign writes turned away.
    pub fn collateral(&self) -> f64 {
        self.benign_rejected as f64 / (self.benign_submitted as f64).max(1.0)
    }
}

/// Outcome of a whole sweep: one [`ScenarioReport`] per scenario.
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The configuration the sweep ran.
    pub config: OnlineConfig,
    /// Per-scenario results, in run order.
    pub scenarios: Vec<ScenarioReport>,
}

impl OnlineReport {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Renders the machine-readable `BENCH_online.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"online_serving\",");
        let _ = writeln!(
            out,
            "  \"units\": {{\"mean_cost\": \"key comparisons\", \"latency\": \"nanoseconds\", \"drift\": \"post/pre mean cost\"}},"
        );
        let _ = writeln!(out, "  \"keys\": {},", self.config.keys);
        let _ = writeln!(out, "  \"density\": {},", self.config.density);
        let _ = writeln!(out, "  \"index\": \"{}\",", self.config.index);
        let _ = writeln!(out, "  \"poison_percent\": {},", self.config.poison_percent);
        let _ = writeln!(out, "  \"benign_writes\": {},", self.config.benign_writes);
        let _ = writeln!(out, "  \"probe_requests\": {},", self.config.probe_requests);
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(out, "  \"scenarios\": [");
        for (i, s) in self.scenarios.iter().enumerate() {
            let comma = if i + 1 < self.scenarios.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"admission\": \"{}\",", s.admission);
            let _ = writeln!(out, "      \"pre_mean_cost\": {:.4},", s.pre_mean_cost);
            let _ = writeln!(out, "      \"post_mean_cost\": {:.4},", s.post_mean_cost);
            let _ = writeln!(out, "      \"drift\": {:.4},", s.drift());
            let _ = writeln!(out, "      \"recall\": {:.4},", s.recall());
            let _ = writeln!(out, "      \"collateral\": {:.4},", s.collateral());
            let _ = writeln!(out, "      \"poison_planned\": {},", s.poison_planned);
            let _ = writeln!(out, "      \"poison_submitted\": {},", s.poison_submitted);
            let _ = writeln!(out, "      \"poison_applied\": {},", s.poison_applied);
            let _ = writeln!(out, "      \"poison_rejected\": {},", s.poison_rejected);
            let _ = writeln!(out, "      \"benign_submitted\": {},", s.benign_submitted);
            let _ = writeln!(out, "      \"benign_applied\": {},", s.benign_applied);
            let _ = writeln!(out, "      \"benign_rejected\": {},", s.benign_rejected);
            let _ = writeln!(out, "      \"epochs\": {},", s.serve.epochs);
            let _ = writeln!(out, "      \"served\": {},", s.serve.served);
            let _ = writeln!(out, "      \"writes_applied\": {},", s.serve.writes_applied);
            let _ = writeln!(
                out,
                "      \"writes_rejected\": {},",
                s.serve.writes_rejected
            );
            let _ = writeln!(out, "      \"writes_failed\": {},", s.serve.writes_failed);
            let _ = writeln!(out, "      \"p50_ns\": {},", s.serve.latency.p50());
            let _ = writeln!(out, "      \"p99_ns\": {},", s.serve.latency.p99());
            let _ = writeln!(out, "      \"window_ms\": {},", s.serve.window.as_millis());
            let _ = writeln!(out, "      \"timeline\": [");
            for (j, w) in s.serve.timeline.iter().enumerate() {
                let wc = if j + 1 < s.serve.timeline.len() {
                    ","
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "        {{\"start_ms\": {}, \"served\": {}, \"mean_cost\": {:.3}, \
                     \"p50_ns\": {}, \"p99_ns\": {}, \"epochs\": {}, \
                     \"writes_applied\": {}, \"writes_rejected\": {}}}{wc}",
                    w.start_ms,
                    w.served,
                    w.mean_cost(),
                    w.p50_ns,
                    w.p99_ns,
                    w.epochs,
                    w.writes_applied,
                    w.writes_rejected
                );
            }
            let _ = writeln!(out, "      ]");
            let _ = writeln!(out, "    }}{comma}");
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }

    /// Writes [`OnlineReport::to_json`] to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// The scenario grid of one sweep, in run order.
pub const SCENARIOS: [&str; 4] = [
    "benign",
    "undefended",
    "defended:rate-limit",
    "defended:density",
];

/// Builds the admission policy a scenario runs under, calibrated on the
/// trusted `bootstrap` snapshot.
fn admission_for(scenario: &str, bootstrap: &KeySet) -> Box<dyn lis_server::AdmissionPolicy> {
    match scenario {
        // The campaign must land hundreds of writes from one identity;
        // 2% of the stream plus a 50-write burst starves it while a
        // 16-source benign fleet stays under its share.
        "defended:rate-limit" => Box::new(SourceRateLimit::new(0.02, 50.0)),
        // Poison packs keys against gap endpoints; a 3-key one-sided
        // window at 4x the bootstrap's average density catches the clump.
        "defended:density" => Box::new(DensityScreen::from_bootstrap(bootstrap, 3, 4.0)),
        _ => Box::new(AdmitAll),
    }
}

/// Mid-gap benign insert keys: each lands halfway inside a random gap of
/// the bootstrap keyset, the least suspicious write a legitimate client
/// can make. Distinct from each other and from all members.
fn benign_insert_keys(ks: &KeySet, count: usize, seed: u64) -> Vec<Key> {
    let keys = ks.keys();
    let mut rng = trial_rng(seed, 7_001);
    let mut out = Vec::with_capacity(count);
    let mut used = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    while out.len() < count && guard < count * 50 {
        guard += 1;
        let i = rng.gen_range(0..keys.len() - 1);
        let (a, b) = (keys[i], keys[i + 1]);
        if b - a < 6 {
            continue;
        }
        let mid = a + (b - a) / 2;
        if used.insert(mid) {
            out.push(mid);
        }
    }
    out
}

/// Runs one scenario end to end; see the module docs for the phases.
fn run_scenario(scenario: &str, cfg: &OnlineConfig) -> Result<ScenarioReport> {
    let domain = domain_for_density(cfg.keys, cfg.density)?;
    let mut rng = trial_rng(cfg.seed, 11);
    let ks = uniform_keys(&mut rng, cfg.keys, domain)?;

    let index_name = cfg.index.clone();
    let registry = IndexRegistry::with_defaults();
    let server = Server::start_online(
        ks.clone(),
        move |ks| registry.build(&index_name, ks),
        admission_for(scenario, &ks),
        ServeConfig::new()
            .workers(cfg.workers)
            .batch(64)
            .deadline(Duration::from_micros(200)),
    )?;

    // Deterministic probe stream: members, uniformly sampled.
    let mut probe_rng = trial_rng(cfg.seed, 13);
    let members = ks.keys();
    let probes: Vec<Key> = (0..cfg.probe_requests)
        .map(|_| members[probe_rng.gen_range(0..members.len())])
        .collect();

    // Phase 1: clean baseline.
    let before = server.stats();
    server.serve_all(&probes)?;
    let after = server.stats();
    let pre_mean_cost = (after.cost_units - before.cost_units) as f64
        / ((after.served - before.served) as f64).max(1.0);

    // Phase 2: campaign + benign writes + concurrent readers.
    let run_attack = scenario != "benign";
    let mut campaign = if run_attack {
        Some(Campaign::plan(
            &ks,
            &CampaignConfig {
                poison_percent: cfg.poison_percent,
                ..CampaignConfig::default()
            },
        )?)
    } else {
        None
    };
    let benign_keys = benign_insert_keys(&ks, cfg.benign_writes, cfg.seed);
    let stop = AtomicBool::new(false);
    let mut benign_applied = 0usize;
    let mut benign_rejected = 0usize;
    // lis-analysis: allow(thread-discipline) — the live harness runs
    // heterogeneous roles (benign readers + an adversarial writer)
    // concurrently against one server; that is role-parallelism, not the
    // data-parallelism `par::map_chunks` provides.
    std::thread::scope(|scope| -> Result<()> {
        // Benign readers measure while the writes land.
        for r in 0..cfg.readers {
            let handle = server.handle();
            let probes = &probes;
            let stop = &stop;
            scope.spawn(move || {
                let mut i = r * 17;
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..256 {
                        let key = probes[i % probes.len()];
                        i += 1;
                        if handle.lookup(key).is_err() {
                            return;
                        }
                    }
                }
            });
        }
        // Benign writer fleet: rotating source ids, closed loop.
        let benign = scope.spawn(|| -> Result<(usize, usize)> {
            let handle = server.handle();
            let mut applied = 0;
            let mut rejected = 0;
            for (i, &key) in benign_keys.iter().enumerate() {
                match handle.write(WriteOp::Insert(key), i as u64 % BENIGN_SOURCES)? {
                    WriteStatus::Applied { .. } => applied += 1,
                    WriteStatus::Rejected { .. } => rejected += 1,
                    WriteStatus::Failed { .. } => {}
                }
            }
            Ok((applied, rejected))
        });
        // The campaign, windowed through the same write queue.
        if let Some(campaign) = campaign.as_mut() {
            let handle = server.handle();
            run_campaign(&handle, campaign, ADVERSARY_SOURCE, 32)?;
        }
        let (applied, rejected) = benign.join().expect("benign writer panicked")?;
        benign_applied = applied;
        benign_rejected = rejected;
        stop.store(true, Ordering::Relaxed);
        Ok(())
    })?;

    // Phase 3: post-campaign baseline on the final epoch.
    let before = server.stats();
    server.serve_all(&probes)?;
    let after = server.stats();
    let post_mean_cost = (after.cost_units - before.cost_units) as f64
        / ((after.served - before.served) as f64).max(1.0);

    let serve = server.shutdown();
    let (planned, submitted, applied, rejected) = campaign.as_ref().map_or((0, 0, 0, 0), |c| {
        (c.planned(), c.submitted(), c.applied(), c.rejected())
    });
    Ok(ScenarioReport {
        name: scenario.to_string(),
        admission: match scenario {
            "defended:rate-limit" => "rate-limit",
            "defended:density" => "density-screen",
            _ => "admit-all",
        }
        .to_string(),
        pre_mean_cost,
        post_mean_cost,
        poison_planned: planned,
        poison_submitted: submitted,
        poison_applied: applied,
        poison_rejected: rejected,
        benign_submitted: benign_keys.len(),
        benign_applied,
        benign_rejected,
        serve,
    })
}

/// Runs the full scenario grid (see [`SCENARIOS`]) and returns the sweep
/// report behind `BENCH_online.json`.
pub fn run_online(cfg: &OnlineConfig) -> Result<OnlineReport> {
    let mut scenarios = Vec::with_capacity(SCENARIOS.len());
    for scenario in SCENARIOS {
        scenarios.push(run_scenario(scenario, cfg)?);
    }
    Ok(OnlineReport {
        config: cfg.clone(),
        scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> OnlineConfig {
        OnlineConfig {
            keys: 4_000,
            benign_writes: 100,
            probe_requests: 2_000,
            readers: 1,
            workers: 2,
            ..OnlineConfig::default()
        }
    }

    #[test]
    fn benign_scenario_stays_flat_and_applies_all_writes() {
        let report = run_scenario("benign", &smoke_config()).unwrap();
        assert_eq!(report.poison_submitted, 0);
        assert_eq!(report.benign_rejected, 0);
        assert!(report.benign_applied > 0);
        assert!(
            report.drift() < 1.15,
            "benign churn should not move serving cost much, drift {:.3}",
            report.drift()
        );
        assert!(report.serve.epochs >= 1);
    }

    #[test]
    fn undefended_campaign_lands_its_budget() {
        let report = run_scenario("undefended", &smoke_config()).unwrap();
        assert!(report.poison_planned > 0);
        assert!(
            report.poison_applied as f64 >= 0.9 * report.poison_planned as f64,
            "undefended campaign should land its budget: {}/{}",
            report.poison_applied,
            report.poison_planned
        );
        assert_eq!(report.poison_rejected, 0);
        assert!(report.serve.epochs >= 1);
    }

    #[test]
    fn density_defense_rejects_most_poison_with_bounded_collateral() {
        let report = run_scenario("defended:density", &smoke_config()).unwrap();
        assert!(
            report.recall() > 0.5,
            "density screen should reject most poison, recall {:.3}",
            report.recall()
        );
        assert!(
            report.collateral() < 0.2,
            "collateral too high: {:.3}",
            report.collateral()
        );
        assert!(
            report.poison_applied < report.poison_planned,
            "defense should deny part of the budget"
        );
    }

    #[test]
    fn json_document_mentions_every_scenario() {
        let report = OnlineReport {
            config: smoke_config(),
            scenarios: vec![run_scenario("benign", &smoke_config()).unwrap()],
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"online_serving\""));
        assert!(json.contains("\"name\": \"benign\""));
        assert!(json.contains("\"timeline\""));
    }
}
