//! The live Algorithm-2 campaign: plan offline once, poison online
//! through the serve path, adapt to rejections.
//!
//! Algorithm 2 solves two problems: how much poison each second-stage
//! model deserves (volume allocation, via bounded exchanges) and which
//! keys to place (greedy CDF poisoning inside each model's key range).
//! Splitting those matches the online threat model exactly: the attacker
//! plans the *allocation* once against a snapshot they can read, then
//! spends the budget as a write stream — and each next key is chosen
//! against the keyset *as it currently stands*, members plus every poison
//! key the server has actually accepted, using the O(1)-update
//! [`IncrementalOracle`] so the attacker never rebuilds anything.
//!
//! Rejections feed back: a key turned away by admission control is banned
//! and the campaign moves to its next-best candidate in that model's
//! region, so a defense is scored against an *adaptive* adversary, not a
//! replayed trace. A region whose candidates are exhausted does not
//! forfeit: its remaining budget is *redistributed* to the surviving
//! regions, highest-loss candidates first, so walling off one model only
//! concentrates the attack elsewhere. The budget is lost only when every
//! region is exhausted — the defender's win shows up as unspent budget
//! plus rejected writes, and must be earned across the whole key space.

use lis_core::error::Result;
use lis_core::keys::{Key, KeySet};
use lis_poison::{rmi_attack, IncrementalOracle, RmiAttackConfig};
use lis_server::{ServerHandle, WriteOp, WriteStatus, WriteTicket};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of an online poisoning campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Poison budget as a percentage of the victim keyset (`φ·100`).
    pub poison_percent: f64,
    /// Target second-stage model size the planner assumes (the victim's
    /// `leaves_for` heuristic uses ~100 keys per model).
    pub model_size: usize,
    /// Per-model stealth multiplier `α` of Algorithm 2.
    pub alpha: f64,
    /// Cap on planner exchanges (Algorithm 2's allocation loop).
    pub max_exchanges: usize,
    /// Attempt budget as a multiple of the poison budget: the campaign
    /// gives up after `attempt_factor × planned` submissions, so a
    /// rejecting defense terminates it.
    pub attempt_factor: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            poison_percent: 10.0,
            model_size: 100,
            alpha: 3.0,
            max_exchanges: 64,
            attempt_factor: 4,
        }
    }
}

/// One second-stage model's share of the campaign: its legitimate key
/// range (as planned), the live view of keys in that range, and the
/// remaining volume.
struct Region {
    /// Sorted live view: planned legit keys plus accepted poison.
    keys: Vec<Key>,
    /// Moment oracle over `keys`, updated in O(1) per accepted write.
    oracle: IncrementalOracle,
    /// Poison keys this region is still owed.
    remaining: usize,
    /// Keys the server rejected or failed — never retried.
    banned: BTreeSet<Key>,
}

impl Region {
    /// Best unbanned, not-in-flight gap-endpoint candidate by oracle loss.
    fn best_candidate(&self, inflight: &BTreeMap<Key, usize>) -> Option<Key> {
        let mut best: Option<(f64, Key)> = None;
        for w in self.keys.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b - a < 2 {
                continue;
            }
            for c in [a + 1, b - 1] {
                if self.banned.contains(&c) || inflight.contains_key(&c) {
                    continue;
                }
                let score = self.oracle.loss_insert(c);
                if best.is_none_or(|(s, _)| score > s) {
                    best = Some((score, c));
                }
                if a + 1 == b - 1 {
                    break;
                }
            }
        }
        best.map(|(_, c)| c)
    }
}

/// A live Algorithm-2 poisoning campaign (see the module docs).
pub struct Campaign {
    regions: Vec<Region>,
    /// Round-robin cursor so every model drains its volume concurrently,
    /// mirroring Algorithm 2's spread rather than finishing one model
    /// before starting the next.
    cursor: usize,
    /// Key → region routing for in-flight writes.
    inflight: BTreeMap<Key, usize>,
    planned: usize,
    submitted: usize,
    applied: usize,
    rejected: usize,
    failed: usize,
    /// Poison keys moved from exhausted regions to viable ones.
    redistributed: usize,
    max_attempts: usize,
    applied_keys: Vec<Key>,
}

impl Campaign {
    /// Plans a campaign against a read snapshot of the victim keyset:
    /// one offline `rmi_attack` run fixes the per-model volume
    /// allocation, then each model's budget becomes a [`Region`] with a
    /// live oracle. Models allocated zero poison are skipped.
    pub fn plan(ks: &KeySet, cfg: &CampaignConfig) -> Result<Self> {
        let num_models = (ks.len() / cfg.model_size.max(1)).max(1);
        let attack_cfg = RmiAttackConfig::new(cfg.poison_percent)
            .with_alpha(cfg.alpha)
            .with_max_exchanges(cfg.max_exchanges);
        let plan = rmi_attack(ks, num_models, &attack_cfg)?;
        let mut regions = Vec::new();
        let mut planned = 0usize;
        for model in &plan.models {
            if model.poison.is_empty() || model.legit.len() < 2 {
                continue;
            }
            planned += model.poison.len();
            regions.push(Region {
                oracle: IncrementalOracle::from_sorted_keys(&model.legit),
                keys: model.legit.clone(),
                remaining: model.poison.len(),
                banned: BTreeSet::new(),
            });
        }
        Ok(Self {
            regions,
            cursor: 0,
            inflight: BTreeMap::new(),
            planned,
            submitted: 0,
            applied: 0,
            rejected: 0,
            failed: 0,
            redistributed: 0,
            max_attempts: planned.saturating_mul(cfg.attempt_factor.max(1)),
            applied_keys: Vec::with_capacity(planned),
        })
    }

    /// Picks the next poison key: round-robin over regions with budget
    /// left, best-loss candidate within the region. A region whose every
    /// candidate is banned re-plans instead of forfeiting: its remaining
    /// budget moves to the regions that can still place keys (see
    /// [`Campaign::redistribute`]). Returns `None` when the campaign is
    /// spent (budget filled, every region exhausted, or attempt cap hit)
    /// — callers must later [`Campaign::ack`] every key taken.
    pub fn next_key(&mut self) -> Option<Key> {
        if self.submitted >= self.max_attempts || self.regions.is_empty() {
            return None;
        }
        let n = self.regions.len();
        // Each sweep either yields a key, or moves budget out of newly
        // exhausted regions and sweeps again. Bans never change inside
        // this call and budget only lands on regions with an open
        // candidate, so a productive sweep strictly shrinks the set of
        // budget-holding exhausted regions — the loop terminates.
        loop {
            let mut moved = false;
            for step in 0..n {
                let idx = (self.cursor + step) % n;
                let region = &mut self.regions[idx];
                if region.remaining == 0 {
                    continue;
                }
                match region.best_candidate(&self.inflight) {
                    Some(key) => {
                        self.cursor = (idx + 1) % n;
                        self.inflight.insert(key, idx);
                        self.submitted += 1;
                        return Some(key);
                    }
                    None => {
                        // Only gap endpoints are ever candidates; if every
                        // one is banned (not merely in flight), the region
                        // can make no progress — move its budget to the
                        // regions that still can.
                        let exhausted = region.keys.windows(2).all(|w| {
                            let (a, b) = (w[0], w[1]);
                            b - a < 2 || [a + 1, b - 1].iter().all(|c| region.banned.contains(c))
                        });
                        if exhausted {
                            let forfeit = std::mem::take(&mut region.remaining);
                            if forfeit > 0 && self.redistribute(idx, forfeit) {
                                moved = true;
                            }
                        }
                    }
                }
            }
            if !moved {
                return None;
            }
        }
    }

    /// Splits `budget` keys forfeited by exhausted region `from` across
    /// the regions that can still place a candidate, evenly, with the
    /// remainder going to the highest-loss regions first — the defender
    /// walling off one model concentrates the attack where it still
    /// hurts most. Returns `false` (budget genuinely lost) when no
    /// region can absorb it.
    fn redistribute(&mut self, from: usize, budget: usize) -> bool {
        let mut viable: Vec<(f64, usize)> = Vec::new();
        for (i, region) in self.regions.iter().enumerate() {
            if i == from {
                continue;
            }
            if let Some(key) = region.best_candidate(&self.inflight) {
                viable.push((region.oracle.loss_insert(key), i));
            }
        }
        if viable.is_empty() {
            return false;
        }
        viable.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let share = budget / viable.len();
        let mut extra = budget % viable.len();
        for &(_, i) in &viable {
            let mut grant = share;
            if extra > 0 {
                grant += 1;
                extra -= 1;
            }
            self.regions[i].remaining += grant;
        }
        self.redistributed += budget;
        true
    }

    /// Feeds back the server's verdict on a key from [`Campaign::next_key`].
    /// Applied keys join the region's live view (oracle updated in O(1));
    /// rejected or failed keys are banned so the campaign adapts instead
    /// of retrying.
    pub fn ack(&mut self, key: Key, status: &WriteStatus) {
        let Some(region_idx) = self.inflight.remove(&key) else {
            return;
        };
        let region = &mut self.regions[region_idx];
        match status {
            WriteStatus::Applied { .. } => {
                let pos = region.keys.binary_search(&key).unwrap_or_else(|p| p);
                region.keys.insert(pos, key);
                let _ = region.oracle.insert(key);
                region.remaining = region.remaining.saturating_sub(1);
                self.applied += 1;
                self.applied_keys.push(key);
            }
            WriteStatus::Rejected { .. } => {
                region.banned.insert(key);
                self.rejected += 1;
            }
            WriteStatus::Failed { .. } => {
                region.banned.insert(key);
                self.failed += 1;
            }
        }
    }

    /// Total poison keys the offline plan allocated.
    pub fn planned(&self) -> usize {
        self.planned
    }

    /// Writes submitted so far.
    pub fn submitted(&self) -> usize {
        self.submitted
    }

    /// Writes the server applied.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Writes admission control rejected.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Writes that failed validation.
    pub fn failed(&self) -> usize {
        self.failed
    }

    /// Poison keys whose home region was exhausted and whose budget was
    /// re-planned onto other regions instead of forfeited.
    pub fn redistributed(&self) -> usize {
        self.redistributed
    }

    /// The poison keys the server accepted, in application order.
    pub fn applied_keys(&self) -> &[Key] {
        &self.applied_keys
    }

    /// `true` once the campaign can make no further progress.
    pub fn done(&self) -> bool {
        self.submitted >= self.max_attempts || self.regions.iter().all(|r| r.remaining == 0)
    }
}

/// Drives `campaign` through `handle` with up to `window` writes in
/// flight, acknowledging each verdict back into the campaign. Returns
/// when the campaign is spent. `source` is the identity every campaign
/// write claims — per-source rate limiting keys on it.
pub fn run_campaign(
    handle: &ServerHandle,
    campaign: &mut Campaign,
    source: u64,
    window: usize,
) -> Result<()> {
    let window = window.max(1);
    let mut batch: Vec<(Key, WriteTicket)> = Vec::with_capacity(window);
    loop {
        batch.clear();
        while batch.len() < window {
            match campaign.next_key() {
                Some(key) => {
                    let ticket = handle.submit_write(WriteOp::Insert(key), source)?;
                    batch.push((key, ticket));
                }
                None => break,
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        for (key, ticket) in batch.drain(..) {
            let status = ticket.wait()?;
            campaign.ack(key, &status);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn plan_allocates_the_paper_budget() {
        let ks = uniform(2_000, 10);
        let campaign = Campaign::plan(&ks, &CampaignConfig::default()).unwrap();
        // 10% of 2000 = 200 keys across the planned regions.
        assert_eq!(campaign.planned(), 200);
        assert!(!campaign.done());
    }

    #[test]
    fn next_key_targets_gaps_and_acks_update_state() {
        let ks = uniform(1_000, 10);
        let mut campaign = Campaign::plan(&ks, &CampaignConfig::default()).unwrap();
        let key = campaign.next_key().expect("campaign has budget");
        // Poison lands strictly inside the key range, never on a member.
        assert!(key > 0 && key < 9_990);
        assert!(!ks.contains(key));
        campaign.ack(key, &WriteStatus::Applied { epoch: 1 });
        assert_eq!(campaign.applied(), 1);
        assert_eq!(campaign.applied_keys(), &[key]);
        // A rejected key is banned: it never comes back.
        let second = campaign.next_key().expect("budget left");
        campaign.ack(second, &WriteStatus::Rejected { filter: "x".into() });
        assert_eq!(campaign.rejected(), 1);
        for _ in 0..50 {
            match campaign.next_key() {
                Some(k) => {
                    assert_ne!(k, second, "banned key resubmitted");
                    campaign.ack(k, &WriteStatus::Applied { epoch: 1 });
                }
                None => break,
            }
        }
    }

    #[test]
    fn exhausted_region_redistributes_budget_instead_of_forfeiting() {
        let ks = uniform(1_000, 10);
        let cfg = CampaignConfig {
            attempt_factor: 30,
            ..CampaignConfig::default()
        };
        let mut campaign = Campaign::plan(&ks, &cfg).unwrap();
        let planned = campaign.planned();
        assert!(planned > 0);
        // A defense that walls off the lower half of the key space: every
        // candidate below the midpoint is rejected until those regions
        // exhaust; everything above is admitted.
        while let Some(key) = campaign.next_key() {
            if key < 5_000 {
                campaign.ack(
                    key,
                    &WriteStatus::Rejected {
                        filter: "walled-region".into(),
                    },
                );
            } else {
                campaign.ack(key, &WriteStatus::Applied { epoch: 1 });
            }
        }
        assert!(campaign.done());
        assert!(
            campaign.redistributed() > 0,
            "walled region forfeited instead of re-planning"
        );
        assert!(campaign.rejected() > 0, "the wall never engaged");
        // The walled regions' budget landed elsewhere: the campaign still
        // spends its full planned volume, just not where the wall stood.
        assert_eq!(campaign.applied(), planned);
        assert!(campaign.applied_keys().iter().all(|&k| k >= 5_000));
    }

    #[test]
    fn attempt_cap_terminates_a_fully_rejected_campaign() {
        let ks = uniform(500, 10);
        let cfg = CampaignConfig {
            attempt_factor: 2,
            ..CampaignConfig::default()
        };
        let mut campaign = Campaign::plan(&ks, &cfg).unwrap();
        let cap = campaign.planned() * 2;
        let mut attempts = 0;
        while let Some(key) = campaign.next_key() {
            attempts += 1;
            campaign.ack(
                key,
                &WriteStatus::Rejected {
                    filter: "wall".into(),
                },
            );
            assert!(attempts <= cap, "campaign ran past its attempt cap");
        }
        assert!(campaign.done());
        assert_eq!(campaign.applied(), 0);
        assert_eq!(campaign.rejected(), attempts);
    }
}
