//! # lis-online — the online attack plane
//!
//! Everything before this crate poisons a keyset *offline*: run Algorithm
//! 1 or 2, rebuild the index, measure. This crate closes the loop the
//! paper's threat model actually describes — an adversary who can only
//! *submit writes* to a running system:
//!
//! * [`campaign`] — [`Campaign`] turns the Algorithm-2 plan (per-model
//!   volume allocation from `lis_poison::rmi_attack`) into a live write
//!   stream: each poison insert is chosen against the currently-served
//!   keyset with the O(1)-update [`IncrementalOracle`]
//!   (no rebuilds on the attacker's side), submitted through the same
//!   [`ServerHandle`](lis_server::ServerHandle) as benign traffic, and
//!   the campaign *adapts* when admission control rejects a key;
//! * [`harness`] — [`run_online`] plays matched scenarios (benign
//!   baseline, undefended campaign, admission-defended campaigns) against
//!   the epoch-swapped write plane of `lis_server`, scoring serving drift
//!   (mean lookup cost after vs. before the campaign), defense recall,
//!   and benign collateral, with the windowed time series from
//!   [`ServeReport`](lis_server::ServeReport) — the data behind
//!   `BENCH_online.json`.
//!
//! [`IncrementalOracle`]: lis_poison::IncrementalOracle

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod harness;

pub use campaign::{run_campaign, Campaign, CampaignConfig};
pub use harness::{run_online, OnlineConfig, OnlineReport, ScenarioReport};
