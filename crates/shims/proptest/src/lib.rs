//! A dependency-free, offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this path
//! dependency implements the subset of proptest the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_filter`,
//! range and collection strategies, and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Semantics match upstream where the tests can observe them: each
//! `proptest!` test runs many generated cases (default 32, override with
//! `PROPTEST_CASES`), `prop_assume!` discards a case without counting it,
//! and a failing assertion panics with the offending values. Shrinking is
//! intentionally not implemented — failures report the raw
//! counter-example instead.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case.
    pub fn new(seed: u64) -> Self {
        Self {
            state: mix(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Next 64 random bits (SplitMix64 stream).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Uniform draw from `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut m = (self.next_u64() as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let threshold = span.wrapping_neg() % span;
            while lo < threshold {
                m = (self.next_u64() as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Why a generated case did not count as a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Skip,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter created by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.reason);
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A collection size specification: an exact count or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo {
            self.lo
        } else {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `BTreeSet`s of distinct elements.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates sets with sizes drawn from `size`. Panics when the element
    /// strategy cannot produce enough distinct values.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.elem.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * target + 1_000,
                    "btree_set strategy could not reach {target} distinct elements"
                );
            }
            set
        }
    }

    /// Strategy producing `Vec`s.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size` (a fixed `usize` or
    /// a `Range<usize>`).
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            (0..target).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Number of passing cases each property must accumulate.
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// FNV-1a over the test name, the per-test seed base.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: generates cases until enough pass, panicking on the
/// first failure. Used by the `proptest!` macro expansion.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let base = name_seed(name);
    let mut passed = 0u64;
    let mut attempt = 0u64;
    while passed < cases {
        attempt += 1;
        assert!(
            attempt <= cases.saturating_mul(50),
            "property '{name}': too many rejected cases ({passed}/{cases} passed after {} attempts)",
            attempt - 1
        );
        let mut rng = TestRng::new(base.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Skip) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed on attempt {attempt}:\n{msg}")
            }
        }
    }
}

/// The `proptest!` block: each `#[test] fn name(arg in strategy, ...)` body
/// runs over many generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$attr])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__pt_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Skip);
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use super::collection::{btree_set, vec};
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..50, y in 2usize..9, f in -1.0f64..1.0) {
            prop_assert!((5..50).contains(&x));
            prop_assert!((2..9).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn btree_set_sizes_and_distinctness(s in btree_set(0u64..1_000, 3..20)) {
            prop_assert!((3..20).contains(&s.len()));
        }

        #[test]
        fn vec_fixed_size(v in vec(0.0f64..10.0, 6)) {
            prop_assert_eq!(v.len(), 6);
        }

        #[test]
        fn filter_and_map_compose(x in (0u64..100).prop_filter("even", |x| x % 2 == 0).prop_map(|x| x + 1)) {
            prop_assert!(x % 2 == 1);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed on attempt")]
    fn failing_property_panics() {
        super::run_cases("always_fails", |_| {
            Err(super::TestCaseError::Fail("nope".into()))
        });
    }
}
