//! A dependency-free, offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this path dependency provides exactly the subset of the `rand` 0.8 API
//! the workspace uses: the [`Rng`] extension trait (`gen`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The generator is a SplitMix64 counter stream — statistically more than
//! adequate for the workloads here (synthetic keyset sampling and property
//! tests), deterministic across platforms, and trivially seedable. It is
//! **not** cryptographically secure, exactly like the upstream `StdRng`
//! contract this shim does not attempt to honour beyond reproducibility.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`; panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` via Lemire's multiply-shift
/// rejection method. `span` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + uniform_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + uniform_below(rng, span + 1)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + uniform_below(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + uniform_below(rng, (hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Pre-seeded generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: a SplitMix64 counter stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix(self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix so that nearby seeds produce decorrelated streams.
            Self {
                state: mix(seed ^ 0x1CE1_E5B9_BF58_476D),
            }
        }
    }

    /// SplitMix64 finalizer.
    fn mix(mut x: u64) -> u64 {
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!((10..20u64).contains(&rng.gen_range(10u64..20)));
            assert!((5..=9u64).contains(&rng.gen_range(5u64..=9)));
            let u: usize = rng.gen_range(3usize..7);
            assert!((3..7).contains(&u));
            let f: f64 = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draw_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(4);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
