//! Fan-out for the build and batch planes, shared by every structure
//! that trains independent sub-models (RMI leaves, deep-RMI stages,
//! sharded composites, pipeline victims) or serves oversize batches
//! across shards.
//!
//! The discipline mirrors [`crate::shard::ShardedIndex`]: at most
//! `workers` execution lanes, each owning one *contiguous* chunk of the
//! job range — never one thread per job — and results concatenated in
//! job order, so the output is **bit-identical** regardless of the
//! worker count. Parallelism only changes which thread runs a chunk;
//! every chunk's internal computation is sequential and deterministic.
//! That invariant is what lets `tests/property_buildpath.rs` pin
//! `parallel build ≡ serial build` exactly.
//!
//! ## Execution backends
//!
//! Work is described as a [`FanoutTask`] — a shared job whose `run(i)`
//! units are independent — and executed by a [`Fanout`] backend:
//!
//! * **installed pool** — `lis_server`'s persistent work-stealing pool
//!   registers itself once via [`install_fanout`]; from then on every
//!   fan-out (builds, sharded oversize batches, nested training) reuses
//!   its threads instead of spawning. Pool fan-outs *compose*: a nested
//!   [`map_chunks`] submits sub-units to the same fixed-width pool and
//!   helps drain them, so parallelism never multiplies.
//! * **scoped fallback** — without a pool (plain `lis-core` users), a
//!   fan-out spawns at most `workers` scoped threads, and *nested*
//!   fan-outs run serially on their worker: the outer fan-out already
//!   owns the machine's parallelism budget, and nesting would multiply
//!   thread counts quadratically.

use std::ops::Range;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The machine's available parallelism (the default worker cap).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-requested thread count against a job count:
/// `0` means "pick for me" (available parallelism), and the result is
/// clamped to `[1, jobs]` so short job lists never over-spawn.
pub fn effective_workers(threads: usize, jobs: usize) -> usize {
    let requested = if threads == 0 {
        available_workers()
    } else {
        threads
    };
    requested.min(jobs).max(1)
}

/// A shared fan-out job: `run(idx)` is invoked exactly once for every
/// index in `0..n`, possibly concurrently from many threads, with no
/// ordering between units. Units communicate results through the task's
/// own interior-mutable slots (each unit touching only its own), which
/// is what keeps executions thread-placement-independent.
pub trait FanoutTask: Send + Sync {
    /// Executes unit `idx`.
    fn run(&self, idx: usize);
}

/// An executor of [`FanoutTask`]s: `run` returns once every unit in
/// `0..n` has completed. A panic inside any unit must propagate to the
/// caller as a panic whose payload contains `"build worker panicked"`.
pub trait Fanout: Send + Sync {
    /// Runs `task.run(i)` exactly once for every `i` in `0..n`.
    fn run(&self, task: &Arc<dyn FanoutTask>, n: usize);
}

static FANOUT: OnceLock<&'static dyn Fanout> = OnceLock::new();

/// Registers the process-wide fan-out executor (the serving plane's
/// persistent pool). First call wins and returns `true`; later calls
/// are ignored and return `false`. Once installed, every [`fanout`] /
/// [`map_chunks`] with `workers > 1` runs on the pool instead of
/// spawning scoped threads.
pub fn install_fanout(pool: &'static dyn Fanout) -> bool {
    FANOUT.set(pool).is_ok()
}

/// The installed executor, if any.
pub fn installed_fanout() -> Option<&'static dyn Fanout> {
    FANOUT.get().copied()
}

/// Runs `task.run(i)` for every `i` in `0..n` across up to `workers`
/// execution lanes, returning once all units completed. Dispatches to
/// the installed pool when one is registered; otherwise falls back to
/// scoped threads (serial inside a fan-out worker — see the module
/// docs on nesting).
pub fn fanout(task: &Arc<dyn FanoutTask>, n: usize, workers: usize) {
    if n == 0 {
        return;
    }
    let workers = workers.min(n).max(1);
    if workers > 1 {
        if let Some(pool) = installed_fanout() {
            pool.run(task, n);
            return;
        }
    }
    if workers <= 1 || in_fanout_worker() {
        let _guard = enter_fanout_worker();
        for i in 0..n {
            task.run(i);
        }
        return;
    }
    let per_worker = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(per_worker)
            .map(|start| {
                let end = (start + per_worker).min(n);
                let task = Arc::clone(task);
                scope.spawn(move || {
                    let _guard = enter_fanout_worker();
                    for i in start..end {
                        task.run(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("build worker panicked");
        }
    });
}

/// The [`FanoutTask`] behind [`map_chunks`]: unit `c` maps the `c`-th
/// contiguous job chunk through `f` into its own slot.
struct MapChunksTask<R, F> {
    f: F,
    jobs: usize,
    per_chunk: usize,
    slots: Vec<Mutex<Vec<R>>>,
}

impl<R, F> FanoutTask for MapChunksTask<R, F>
where
    R: Send + 'static,
    F: Fn(Range<usize>) -> Vec<R> + Send + Sync + 'static,
{
    fn run(&self, chunk: usize) {
        let start = chunk * self.per_chunk;
        let end = (start + self.per_chunk).min(self.jobs);
        let out = (self.f)(start..end);
        debug_assert_eq!(
            out.len(),
            end - start,
            "chunk must yield one result per job"
        );
        *self.slots[chunk]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = out;
    }
}

/// Maps `f` over the job indices `0..jobs`, fanning contiguous chunks
/// out across at most `workers` execution lanes, and returns the
/// per-job results concatenated in job order.
///
/// `f` receives a contiguous `Range<usize>` of job indices and returns
/// one result per index, in order. With `workers <= 1` (or a single
/// job) everything runs on the calling thread — the serial and parallel
/// paths execute the same per-chunk code, so their outputs are
/// identical. A panicking job propagates the panic to the caller.
///
/// `f` must be `'static` (captures are `Arc`-shared, not borrowed): the
/// persistent pool's workers outlive any one call, and safe Rust cannot
/// lend them borrowed state. Call sites wrap their inputs in `Arc`s and
/// recover them with `Arc::try_unwrap` after the fan-out returns —
/// sound because every backend drops its task clones *before*
/// completing, so the caller's `Arc` is unique again.
///
/// Nesting composes **through the pool**: a `map_chunks` call from
/// inside another fan-out's worker submits its chunks to the same
/// fixed-width pool (and helps drain them), so a sharded build
/// constructing inner indexes that themselves train leaves in parallel
/// saturates the pool without oversubscribing the machine. Without a
/// pool, nested calls run serially on their worker, exactly as before.
/// Since chunk outputs are thread-placement-independent, the backend
/// choice changes scheduling only, never results.
pub fn map_chunks<R, F>(jobs: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send + 'static,
    F: Fn(Range<usize>) -> Vec<R> + Send + Sync + 'static,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = if in_fanout_worker() && installed_fanout().is_none() {
        1
    } else {
        workers.min(jobs).max(1)
    };
    if workers <= 1 {
        let out = f(0..jobs);
        debug_assert_eq!(out.len(), jobs, "chunk must yield one result per job");
        return out;
    }
    let per_chunk = jobs.div_ceil(workers);
    let chunks = jobs.div_ceil(per_chunk);
    let task = Arc::new(MapChunksTask {
        f,
        jobs,
        per_chunk,
        slots: (0..chunks).map(|_| Mutex::new(Vec::new())).collect(),
    });
    let shared: Arc<dyn FanoutTask> = Arc::clone(&task) as Arc<dyn FanoutTask>;
    fanout(&shared, chunks, workers);
    drop(shared);
    let task = Arc::into_inner(task).expect("fan-out backend leaked its task clone");
    let mut out = Vec::with_capacity(jobs);
    for slot in task.slots {
        out.extend(slot.into_inner().unwrap_or_else(PoisonError::into_inner));
    }
    debug_assert_eq!(out.len(), jobs, "chunks must yield one result per job");
    out
}

thread_local! {
    /// Whether the current thread is a worker of an active fan-out.
    static IN_FANOUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` when called from inside a fan-out worker (either a
/// [`map_chunks`] worker or a thread that called
/// [`enter_fanout_worker`]); without an installed pool, nested fan-outs
/// then run serially.
pub fn in_fanout_worker() -> bool {
    IN_FANOUT.with(|f| f.get())
}

/// Marks the current thread as a fan-out worker until the returned guard
/// drops. Harnesses that spawn their own worker threads (e.g. the
/// pipeline's per-victim fan-out) call this inside each worker so the
/// builds they invoke don't spawn a second layer of parallelism.
pub fn enter_fanout_worker() -> FanoutGuard {
    let prev = IN_FANOUT.with(|f| f.replace(true));
    FanoutGuard { prev }
}

/// RAII token of [`enter_fanout_worker`]; restores the previous marking.
pub struct FanoutGuard {
    prev: bool,
}

impl Drop for FanoutGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FANOUT.with(|f| f.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolve_sanely() {
        assert!(available_workers() >= 1);
        assert_eq!(effective_workers(0, 100).max(1), effective_workers(0, 100));
        assert_eq!(effective_workers(4, 2), 2);
        assert_eq!(effective_workers(4, 100), 4);
        assert_eq!(effective_workers(1, 0), 1);
    }

    #[test]
    fn map_chunks_preserves_job_order() {
        for workers in [1usize, 2, 3, 7, 64] {
            let out = map_chunks(23, workers, |range| {
                range.map(|i| i * i).collect::<Vec<_>>()
            });
            assert_eq!(
                out,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
        assert!(map_chunks(0, 4, |r| r.collect::<Vec<_>>()).is_empty());
    }

    #[test]
    fn serial_and_parallel_agree_bitwise_on_float_work() {
        // Each job's computation is internally sequential, so float
        // results cannot depend on the worker count.
        let work = |range: std::ops::Range<usize>| {
            range
                .map(|i| (0..100).map(|j| ((i * 100 + j) as f64).sqrt()).sum::<f64>())
                .collect::<Vec<f64>>()
        };
        let serial = map_chunks(17, 1, work);
        let parallel = map_chunks(17, 5, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_fanouts_run_serially_without_changing_results() {
        // Without an installed pool, an inner map_chunks inside a
        // fan-out worker must not spawn — and must still produce
        // identical results. (With a pool the inner call submits to it
        // instead; `lis-server`'s pool tests pin that composition.)
        let nested = map_chunks(4, 4, |outer| {
            outer
                .map(|i| {
                    assert!(in_fanout_worker(), "worker not marked");
                    map_chunks(5, 4, move |inner| {
                        inner.map(|j| i * 10 + j).collect::<Vec<_>>()
                    })
                })
                .collect()
        });
        let flat = map_chunks(4, 1, |outer| {
            outer
                .map(|i| {
                    map_chunks(5, 4, move |inner| {
                        inner.map(|j| i * 10 + j).collect::<Vec<_>>()
                    })
                })
                .collect()
        });
        assert_eq!(nested, flat);
        assert!(!in_fanout_worker(), "marking leaked to the caller");
        // Manual guard for hand-rolled worker threads.
        {
            let _guard = enter_fanout_worker();
            assert!(in_fanout_worker());
        }
        assert!(!in_fanout_worker());
    }

    #[test]
    fn fanout_runs_every_unit_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Count(Vec<AtomicUsize>);
        impl FanoutTask for Count {
            fn run(&self, idx: usize) {
                self.0[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
        for workers in [1usize, 3, 8] {
            let task = Arc::new(Count((0..13).map(|_| AtomicUsize::new(0)).collect()));
            let shared: Arc<dyn FanoutTask> = Arc::clone(&task) as Arc<dyn FanoutTask>;
            fanout(&shared, 13, workers);
            drop(shared);
            let task = Arc::into_inner(task).expect("backend must drop task clones");
            for (i, c) in task.0.iter().enumerate() {
                assert_eq!(
                    c.load(Ordering::Relaxed),
                    1,
                    "unit {i} with {workers} workers"
                );
            }
        }
        // n == 0 is a no-op.
        let empty: Arc<dyn FanoutTask> = Arc::new(Count(Vec::new()));
        fanout(&empty, 0, 4);
    }

    #[test]
    #[should_panic(expected = "build worker panicked")]
    fn worker_panic_propagates() {
        map_chunks(8, 4, |range| {
            if range.contains(&5) {
                panic!("job 5 exploded");
            }
            range.map(|_| 0u8).collect()
        });
    }
}
