//! Scoped-thread fan-out for the build plane, shared by every structure
//! that trains independent sub-models (RMI leaves, deep-RMI stages,
//! sharded composites, pipeline victims).
//!
//! The discipline mirrors [`crate::shard::ShardedIndex`]: at most
//! `workers` scoped threads, each owning one *contiguous* chunk of the
//! job range — never one thread per job — and results concatenated in
//! job order, so the output is **bit-identical** regardless of the
//! worker count. Parallelism only changes which thread runs a chunk;
//! every chunk's internal computation is sequential and deterministic.
//! That invariant is what lets `tests/property_buildpath.rs` pin
//! `parallel build ≡ serial build` exactly.

/// The machine's available parallelism (the default worker cap).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a caller-requested thread count against a job count:
/// `0` means "pick for me" (available parallelism), and the result is
/// clamped to `[1, jobs]` so short job lists never over-spawn.
pub fn effective_workers(threads: usize, jobs: usize) -> usize {
    let requested = if threads == 0 {
        available_workers()
    } else {
        threads
    };
    requested.min(jobs).max(1)
}

/// Maps `f` over the job indices `0..jobs`, fanning contiguous chunks
/// out across at most `workers` scoped threads, and returns the per-job
/// results concatenated in job order.
///
/// `f` receives a contiguous `Range<usize>` of job indices and returns
/// one result per index, in order. With `workers <= 1` (or a single
/// job) everything runs on the calling thread — the serial and parallel
/// paths execute the same per-chunk code, so their outputs are
/// identical. A panicking job propagates the panic to the caller.
///
/// Fan-outs do **not** nest: a `map_chunks` call from inside another
/// fan-out's worker (a sharded build constructing its inner indexes, a
/// pipeline victim training its leaves) runs serially on that worker.
/// The outer fan-out already owns the machine's parallelism budget —
/// nesting would multiply thread counts quadratically and trade the
/// build plane's speedup for context-switch contention. Since chunk
/// outputs are thread-placement-independent, this changes scheduling
/// only, never results.
pub fn map_chunks<R, F>(jobs: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = if in_fanout_worker() {
        1
    } else {
        workers.min(jobs).max(1)
    };
    if workers <= 1 {
        let out = f(0..jobs);
        debug_assert_eq!(out.len(), jobs, "chunk must yield one result per job");
        return out;
    }
    let per_worker = jobs.div_ceil(workers);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..jobs)
            .step_by(per_worker)
            .map(|start| {
                let end = (start + per_worker).min(jobs);
                scope.spawn(move || {
                    let _guard = enter_fanout_worker();
                    f(start..end)
                })
            })
            .collect();
        let mut out = Vec::with_capacity(jobs);
        for h in handles {
            out.extend(h.join().expect("build worker panicked"));
        }
        debug_assert_eq!(out.len(), jobs, "chunks must yield one result per job");
        out
    })
}

thread_local! {
    /// Whether the current thread is a worker of an active fan-out.
    static IN_FANOUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// `true` when called from inside a fan-out worker (either a
/// [`map_chunks`] worker or a thread that called
/// [`enter_fanout_worker`]); nested fan-outs then run serially.
pub fn in_fanout_worker() -> bool {
    IN_FANOUT.with(|f| f.get())
}

/// Marks the current thread as a fan-out worker until the returned guard
/// drops. Harnesses that spawn their own worker threads (e.g. the
/// pipeline's per-victim fan-out) call this inside each worker so the
/// builds they invoke don't spawn a second layer of parallelism.
pub fn enter_fanout_worker() -> FanoutGuard {
    let prev = IN_FANOUT.with(|f| f.replace(true));
    FanoutGuard { prev }
}

/// RAII token of [`enter_fanout_worker`]; restores the previous marking.
pub struct FanoutGuard {
    prev: bool,
}

impl Drop for FanoutGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_FANOUT.with(|f| f.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_resolve_sanely() {
        assert!(available_workers() >= 1);
        assert_eq!(effective_workers(0, 100).max(1), effective_workers(0, 100));
        assert_eq!(effective_workers(4, 2), 2);
        assert_eq!(effective_workers(4, 100), 4);
        assert_eq!(effective_workers(1, 0), 1);
    }

    #[test]
    fn map_chunks_preserves_job_order() {
        for workers in [1usize, 2, 3, 7, 64] {
            let out = map_chunks(23, workers, |range| {
                range.map(|i| i * i).collect::<Vec<_>>()
            });
            assert_eq!(
                out,
                (0..23).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
        assert!(map_chunks(0, 4, |r| r.collect::<Vec<_>>()).is_empty());
    }

    #[test]
    fn serial_and_parallel_agree_bitwise_on_float_work() {
        // Each job's computation is internally sequential, so float
        // results cannot depend on the worker count.
        let work = |range: std::ops::Range<usize>| {
            range
                .map(|i| (0..100).map(|j| ((i * 100 + j) as f64).sqrt()).sum::<f64>())
                .collect::<Vec<f64>>()
        };
        let serial = map_chunks(17, 1, work);
        let parallel = map_chunks(17, 5, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_fanouts_run_serially_without_changing_results() {
        // An inner map_chunks inside a fan-out worker must not spawn —
        // and must still produce identical results.
        let nested = map_chunks(4, 4, |outer| {
            outer
                .map(|i| {
                    assert!(in_fanout_worker(), "worker not marked");
                    map_chunks(5, 4, |inner| inner.map(|j| i * 10 + j).collect::<Vec<_>>())
                })
                .collect()
        });
        let flat = map_chunks(4, 1, |outer| {
            outer
                .map(|i| map_chunks(5, 4, |inner| inner.map(|j| i * 10 + j).collect::<Vec<_>>()))
                .collect()
        });
        assert_eq!(nested, flat);
        assert!(!in_fanout_worker(), "marking leaked to the caller");
        // Manual guard for hand-rolled worker threads.
        {
            let _guard = enter_fanout_worker();
            assert!(in_fanout_worker());
        }
        assert!(!in_fanout_worker());
    }

    #[test]
    #[should_panic(expected = "build worker panicked")]
    fn worker_panic_propagates() {
        map_chunks(8, 4, |range| {
            if range.contains(&5) {
                panic!("job 5 exploded");
            }
            range.map(|_| 0u8).collect()
        });
    }
}
