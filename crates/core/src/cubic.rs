//! Cubic least-squares regression on a CDF.
//!
//! RMI implementations in the wild (e.g. the reference RMI of Kraska et
//! al.'s follow-up code) commonly offer a cubic root model as a middle
//! ground between a linear root (too coarse for skewed data) and a neural
//! network (slower to train). We fit `rank ≈ c3·x³ + c2·x² + c1·x + c0` by
//! solving the 4×4 normal equations with Gaussian elimination and partial
//! pivoting, over inputs normalized to `[-1, 1]` for conditioning.

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};

/// A fitted cubic `rank ≈ ((c3·x + c2)·x + c1)·x + c0` over normalized
/// inputs `x = (key − off) · scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CubicModel {
    coef: [f64; 4],
    off: f64,
    scale: f64,
    n: usize,
}

impl CubicModel {
    /// Fits the cubic on the CDF of `ks`. Requires at least 4 points; fewer
    /// points make the normal equations singular.
    pub fn fit(ks: &KeySet) -> Result<Self> {
        if ks.len() < 4 {
            return Err(LisError::DegenerateRegression { n: ks.len() });
        }
        let off = crate::stats::midpoint_shift(ks.min_key(), ks.max_key());
        let span = (ks.max_key() - ks.min_key()) as f64;
        let scale = if span > 0.0 { 2.0 / span } else { 1.0 };

        // Accumulate moments Σx^k for k=0..6 and Σx^k·r for k=0..3.
        let mut pow_sums = [0.0f64; 7];
        let mut xr_sums = [0.0f64; 4];
        for (k, r) in ks.cdf_pairs() {
            let x = (k as f64 - off) * scale;
            let r = r as f64;
            let mut xp = 1.0;
            for (i, s) in pow_sums.iter_mut().enumerate() {
                *s += xp;
                if i < 4 {
                    xr_sums[i] += xp * r;
                }
                xp *= x;
            }
        }

        // Normal equations A·c = b with A[i][j] = Σx^(i+j), b[i] = Σx^i·r.
        let mut a = [[0.0f64; 5]; 4];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().take(4).enumerate() {
                *cell = pow_sums[i + j];
            }
            row[4] = xr_sums[i];
        }
        let coef = solve4(&mut a)?;
        Ok(Self {
            coef,
            off,
            scale,
            n: ks.len(),
        })
    }

    /// Predicted fractional rank for `key`.
    pub fn predict(&self, key: Key) -> f64 {
        let x = (key as f64 - self.off) * self.scale;
        ((self.coef[3] * x + self.coef[2]) * x + self.coef[1]) * x + self.coef[0]
    }

    /// Predicted 0-based position clamped to `[0, n-1]`.
    pub fn predict_pos(&self, key: Key) -> usize {
        let p = self.predict(key) - 1.0;
        p.round().clamp(0.0, (self.n - 1) as f64) as usize
    }

    /// MSE of the fitted cubic on the CDF of `ks`.
    pub fn mse_on(&self, ks: &KeySet) -> f64 {
        let n = ks.len() as f64;
        ks.cdf_pairs()
            .map(|(k, r)| (self.predict(k) - r as f64).powi(2))
            .sum::<f64>()
            / n
    }
}

/// Gaussian elimination with partial pivoting on an augmented 4×5 system.
#[allow(clippy::needless_range_loop)] // index form mirrors the textbook elimination
fn solve4(a: &mut [[f64; 5]; 4]) -> Result<[f64; 4]> {
    for col in 0..4 {
        // Pivot.
        let mut piv = col;
        for row in col + 1..4 {
            if a[row][col].abs() > a[piv][col].abs() {
                piv = row;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            return Err(LisError::Invariant(
                "singular normal equations in cubic fit".into(),
            ));
        }
        a.swap(col, piv);
        // Eliminate below.
        for row in col + 1..4 {
            let f = a[row][col] / a[col][col];
            for k in col..5 {
                a[row][k] -= f * a[col][k];
            }
        }
    }
    // Back substitution.
    let mut c = [0.0f64; 4];
    for row in (0..4).rev() {
        let mut acc = a[row][4];
        for k in row + 1..4 {
            acc -= a[row][k] * c[k];
        }
        c[row] = acc / a[row][row];
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_four_points() {
        let ks = KeySet::from_keys(vec![1, 2, 3]).unwrap();
        assert!(matches!(
            CubicModel::fit(&ks),
            Err(LisError::DegenerateRegression { n: 3 })
        ));
    }

    #[test]
    fn exact_on_linear_cdf() {
        let ks = KeySet::from_keys((0..50u64).map(|i| i * 4).collect()).unwrap();
        let m = CubicModel::fit(&ks).unwrap();
        assert!(
            m.mse_on(&ks) < 1e-6,
            "cubic must reproduce a linear CDF exactly"
        );
    }

    #[test]
    fn exact_on_cubic_shaped_cdf() {
        // Keys at i³ — the inverse CDF is cubic in rank, so the CDF itself
        // is a cube root, NOT a cubic; the cubic still fits it far better
        // than a line.
        let ks = KeySet::from_keys((1..200u64).map(|i| i * i * i).collect()).unwrap();
        let cubic = CubicModel::fit(&ks).unwrap();
        let line = crate::linreg::LinearModel::fit(&ks).unwrap();
        assert!(
            cubic.mse_on(&ks) < line.mse,
            "cubic {} should beat linear {}",
            cubic.mse_on(&ks),
            line.mse
        );
    }

    #[test]
    fn beats_linear_on_lognormal_like_data() {
        // Exponentially spaced keys: heavy skew.
        let ks = KeySet::from_keys(
            (0..60u64)
                .map(|i| (1.2f64.powi(i as i32) * 10.0) as u64)
                .collect(),
        )
        .unwrap();
        let cubic = CubicModel::fit(&ks).unwrap();
        let line = crate::linreg::LinearModel::fit(&ks).unwrap();
        assert!(cubic.mse_on(&ks) <= line.mse + 1e-9);
    }

    #[test]
    fn predict_pos_clamps_to_valid_range() {
        let ks = KeySet::from_keys(vec![10, 20, 30, 40, 50]).unwrap();
        let m = CubicModel::fit(&ks).unwrap();
        assert!(m.predict_pos(0) <= 4);
        assert!(m.predict_pos(10_000) <= 4);
    }

    #[test]
    fn solve4_on_identity() {
        let mut a = [
            [1.0, 0.0, 0.0, 0.0, 4.0],
            [0.0, 1.0, 0.0, 0.0, 3.0],
            [0.0, 0.0, 1.0, 0.0, 2.0],
            [0.0, 0.0, 0.0, 1.0, 1.0],
        ];
        assert_eq!(solve4(&mut a).unwrap(), [4.0, 3.0, 2.0, 1.0]);
    }

    #[test]
    fn solve4_detects_singularity() {
        let mut a = [
            [1.0, 1.0, 0.0, 0.0, 1.0],
            [1.0, 1.0, 0.0, 0.0, 1.0],
            [0.0, 0.0, 1.0, 0.0, 1.0],
            [0.0, 0.0, 0.0, 1.0, 1.0],
        ];
        assert!(solve4(&mut a).is_err());
    }
}
