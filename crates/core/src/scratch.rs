//! Reusable scratch buffers for allocation-free batched hot paths.
//!
//! The batched lookup paths (sorted-batch RMI/PLA routing, sharded
//! scatter/gather) need per-call working memory — permutation vectors,
//! per-shard buckets — that would otherwise be heap-allocated on every
//! batch. A [`ScratchPool`] keeps those buffers alive between calls:
//! a caller *acquires* a buffer (popping a previously released one when
//! available), uses it, and *releases* it back. After the first few
//! batches warm the pool, steady-state batches perform no heap
//! allocation at all — the property `lis-server`'s `zero_alloc` test
//! pins down end to end.
//!
//! The pool is a `Mutex<Vec<T>>`: the lock is held only for the
//! pop/push, never across the batch work, so concurrent server workers
//! sharing one index contend for nanoseconds (and simply build a fresh
//! buffer when the pool happens to be empty).

use std::sync::Mutex;

/// A pool of reusable scratch buffers (see the module docs).
pub struct ScratchPool<T> {
    pool: Mutex<Vec<T>>,
}

impl<T> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Pops a pooled buffer, or builds one with `make` when none is
    /// available. The caller is expected to clear/reset the buffer — its
    /// contents are whatever the releasing call left behind.
    pub fn acquire_or(&self, make: impl FnOnce() -> T) -> T {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_else(make)
    }

    /// Returns a buffer to the pool for the next acquire.
    pub fn release(&self, item: T) {
        self.pool.lock().expect("scratch pool poisoned").push(item);
    }

    /// Number of buffers currently pooled (idle).
    pub fn idle(&self) -> usize {
        self.pool.lock().expect("scratch pool poisoned").len()
    }
}

impl<T> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Clones start with an empty pool: scratch is transient working memory,
/// and a cloned index warms its own buffers on first use.
impl<T> Clone for ScratchPool<T> {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("idle", &self.idle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_buffers() {
        let pool: ScratchPool<Vec<u64>> = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let mut buf = pool.acquire_or(|| Vec::with_capacity(64));
        buf.extend(0..10);
        let cap = buf.capacity();
        pool.release(buf);
        assert_eq!(pool.idle(), 1);
        let again = pool.acquire_or(Vec::new);
        // Same buffer (capacity retained), stale contents included — the
        // acquirer owns clearing it.
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.len(), 10);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn clone_starts_empty() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        pool.release(vec![1, 2, 3]);
        assert_eq!(pool.idle(), 1);
        assert_eq!(pool.clone().idle(), 0);
        assert!(format!("{pool:?}").contains("idle"));
    }

    #[test]
    fn concurrent_acquire_never_hands_out_one_buffer_twice() {
        let pool: ScratchPool<Box<usize>> = ScratchPool::new();
        for i in 0..4 {
            pool.release(Box::new(i));
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let buf = pool.acquire_or(|| Box::new(999));
                        let v = *buf;
                        pool.release(buf);
                        v
                    })
                })
                .collect();
            for h in handles {
                let v = h.join().unwrap();
                assert!(v < 4 || v == 999);
            }
        });
        assert!(pool.idle() >= 4);
    }
}
