//! A simplified updatable adaptive learned index (ALEX family).
//!
//! The paper's future-work section warns that updatable learned indexes
//! \[ALEX; Hadian & Heinis\] widen the attack surface: "we need to consider
//! adversaries that use the update functionality of LIS to expand their
//! attack surface" (Section VI). This module provides the substrate for
//! studying exactly that: a two-level updatable index in the ALEX mould —
//!
//! * leaves are **gapped arrays**: sorted keys with interleaved empty slots
//!   so model-predicted insertion is usually cheap;
//! * each leaf carries a linear model trained on its own key distribution,
//!   used for both lookups and insert placement;
//! * a leaf that exceeds its fill bound **splits** at the median and both
//!   halves retrain — the adaptation mechanism an online adversary abuses
//!   (every split costs a retrain + re-spacing, and skewed poison inserts
//!   concentrate splits).
//!
//! Cost accounting (probes walked, elements shifted, splits, retrains) is
//! exposed so the `ablation_update_channel` bench can price the attack.

use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};

/// Configuration of the updatable index.
#[derive(Debug, Clone, Copy)]
pub struct AlexConfig {
    /// Slot capacity of a leaf's gapped array.
    pub leaf_capacity: usize,
    /// Fraction of slots occupied after build / split (0 < f < fill_high).
    pub fill_low: f64,
    /// Occupancy fraction that triggers a split.
    pub fill_high: f64,
}

impl Default for AlexConfig {
    fn default() -> Self {
        Self {
            leaf_capacity: 256,
            fill_low: 0.5,
            fill_high: 0.8,
        }
    }
}

/// Write-side cost counters, cumulative over the index lifetime.
///
/// Lookups are pure reads (`&self`) and report their probe cost on each
/// returned [`Lookup`] instead of mutating shared counters — the read and
/// write paths are deliberately split so read-side stats never require
/// `&mut self`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlexStats {
    /// Slots probed during inserts (duplicate check + placement search).
    pub insert_probes: u64,
    /// Elements shifted to open a gap.
    pub shifts: u64,
    /// Leaf splits performed.
    pub splits: u64,
    /// Model retrains (initial builds excluded).
    pub retrains: u64,
}

/// One leaf: a sorted gapped array plus its local model.
#[derive(Debug, Clone)]
struct Leaf {
    slots: Vec<Option<Key>>,
    len: usize,
    model: LeafModel,
}

/// Leaf model: predicts a slot from a key (linear fit of slot index against
/// key over the occupied slots).
#[derive(Debug, Clone, Copy)]
struct LeafModel {
    w: f64,
    b: f64,
}

impl LeafModel {
    fn fit(slots: &[Option<Key>]) -> Self {
        // Fit slot-index-vs-key over occupied slots (closed form OLS).
        let pts: Vec<(f64, f64)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, k)| k.map(|k| (k as f64, i as f64)))
            .collect();
        if pts.len() < 2 {
            return Self {
                w: 0.0,
                b: pts.first().map(|p| p.1).unwrap_or(0.0),
            };
        }
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>();
        let var = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum::<f64>();
        if var <= 0.0 {
            return Self { w: 0.0, b: my };
        }
        let w = cov / var;
        Self { w, b: my - w * mx }
    }

    fn predict(&self, key: Key, capacity: usize) -> usize {
        (self.w * key as f64 + self.b)
            .round()
            .clamp(0.0, (capacity - 1) as f64) as usize
    }
}

/// The updatable adaptive learned index.
#[derive(Debug, Clone)]
pub struct AlexIndex {
    cfg: AlexConfig,
    /// Smallest key of each leaf (routing).
    boundaries: Vec<Key>,
    leaves: Vec<Leaf>,
    stats: AlexStats,
    len: usize,
}

impl AlexIndex {
    /// Bulk-loads the index from a keyset.
    pub fn build(ks: &KeySet, cfg: AlexConfig) -> Result<Self> {
        if cfg.leaf_capacity < 4 {
            return Err(LisError::Invariant("leaf capacity must be ≥ 4".into()));
        }
        if !(0.0 < cfg.fill_low && cfg.fill_low < cfg.fill_high && cfg.fill_high <= 1.0) {
            return Err(LisError::Invariant(
                "need 0 < fill_low < fill_high ≤ 1".into(),
            ));
        }
        let per_leaf = ((cfg.leaf_capacity as f64 * cfg.fill_low) as usize).max(1);
        let mut leaves = Vec::new();
        let mut boundaries = Vec::new();
        for chunk in ks.keys().chunks(per_leaf) {
            boundaries.push(chunk[0]);
            leaves.push(Leaf::from_sorted(chunk, cfg.leaf_capacity));
        }
        Ok(Self {
            cfg,
            boundaries,
            leaves,
            stats: AlexStats::default(),
            len: ks.len(),
        })
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Cumulative cost counters.
    pub fn stats(&self) -> AlexStats {
        self.stats
    }

    /// Resets the cost counters (e.g. after the build phase).
    pub fn reset_stats(&mut self) {
        self.stats = AlexStats::default();
    }

    fn route(&self, key: Key) -> usize {
        match self.boundaries.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Looks up `key`, reporting membership and the slot-probe cost.
    pub fn lookup(&self, key: Key) -> Lookup {
        let leaf = &self.leaves[self.route(key)];
        let (found, probes) = leaf.find(key);
        Lookup::membership(found, probes as usize)
    }

    /// Whether `key` is present (pure read).
    pub fn contains(&self, key: Key) -> bool {
        self.lookup(key).found
    }

    /// Inserts `key`; errors on duplicates.
    pub fn insert(&mut self, key: Key) -> Result<()> {
        let leaf_idx = self.route(key);
        {
            let leaf = &mut self.leaves[leaf_idx];
            let (found, probes) = leaf.find(key);
            self.stats.insert_probes += probes;
            if found {
                return Err(LisError::DuplicateKey(key));
            }
            let (probes, shifts) = leaf.insert(key);
            self.stats.insert_probes += probes;
            self.stats.shifts += shifts;
            self.len += 1;
        }
        // Maintain routing for a new minimum.
        if key < self.boundaries[leaf_idx] {
            self.boundaries[leaf_idx] = key;
        }
        // Split when over the fill bound.
        let occupancy = self.leaves[leaf_idx].len as f64 / self.cfg.leaf_capacity as f64;
        if occupancy > self.cfg.fill_high {
            self.split(leaf_idx);
        }
        Ok(())
    }

    /// Removes `key`; errors with [`LisError::KeyNotFound`] when absent.
    ///
    /// The slot is simply vacated — a gapped array treats a removal as one
    /// more gap, so no shifting or retraining is needed. A leaf boundary
    /// may go stale (the routing key of a leaf whose minimum was removed),
    /// which is harmless: it still routes every remaining key to the same
    /// leaf, and lookups of the removed key correctly miss there.
    pub fn remove(&mut self, key: Key) -> Result<()> {
        let leaf_idx = self.route(key);
        let leaf = &mut self.leaves[leaf_idx];
        let (found, probes) = leaf.find(key);
        self.stats.insert_probes += probes;
        if !found {
            return Err(LisError::KeyNotFound(key));
        }
        leaf.remove(key);
        self.len -= 1;
        Ok(())
    }

    fn split(&mut self, leaf_idx: usize) {
        let keys = self.leaves[leaf_idx].occupied();
        let mid = keys.len() / 2;
        let left = Leaf::from_sorted(&keys[..mid], self.cfg.leaf_capacity);
        let right = Leaf::from_sorted(&keys[mid..], self.cfg.leaf_capacity);
        let right_boundary = keys[mid];
        self.leaves[leaf_idx] = left;
        self.leaves.insert(leaf_idx + 1, right);
        self.boundaries.insert(leaf_idx + 1, right_boundary);
        self.stats.splits += 1;
        self.stats.retrains += 2;
    }

    /// All stored keys in sorted order (test/diagnostic helper).
    pub fn keys(&self) -> Vec<Key> {
        self.leaves.iter().flat_map(|l| l.occupied()).collect()
    }

    /// Mean lookup probes over the given keys (a pure read: per-call costs
    /// are summed from the returned [`Lookup`]s, not from shared counters).
    pub fn mean_lookup_probes(&self, keys: &[Key]) -> f64 {
        let total: usize = keys.iter().map(|&k| self.lookup(k).cost).sum();
        total as f64 / keys.len().max(1) as f64
    }
}

impl LearnedIndex for AlexIndex {
    type Config = AlexConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        AlexIndex::build(ks, *cfg)
    }

    fn lookup(&self, key: Key) -> Lookup {
        AlexIndex::lookup(self, key)
    }

    /// Native in-place insert — the write-plane fast path (no rebuild).
    fn try_insert(&mut self, key: Key) -> Result<()> {
        AlexIndex::insert(self, key)
    }

    /// Native in-place remove — the write-plane fast path (no rebuild).
    fn try_remove(&mut self, key: Key) -> Result<()> {
        AlexIndex::remove(self, key)
    }

    /// The gapped-array leaves track no regression loss; zero by definition.
    fn loss(&self) -> f64 {
        0.0
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.boundaries.len() * std::mem::size_of::<Key>()
            + self
                .leaves
                .iter()
                .map(|l| {
                    std::mem::size_of::<Leaf>() + l.slots.len() * std::mem::size_of::<Option<Key>>()
                })
                .sum::<usize>()
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl Leaf {
    /// Builds a leaf from sorted keys, spacing them evenly through the
    /// gapped array ("model-based layout" simplification).
    fn from_sorted(keys: &[Key], capacity: usize) -> Self {
        let mut slots = vec![None; capacity];
        let n = keys.len();
        for (i, &k) in keys.iter().enumerate() {
            // Spread: slot = i * capacity / n, collision-free since i < n.
            let slot = i * capacity / n.max(1);
            slots[slot] = Some(k);
        }
        let model = LeafModel::fit(&slots);
        Self {
            slots,
            len: n,
            model,
        }
    }

    /// Occupied keys in order.
    fn occupied(&self) -> Vec<Key> {
        self.slots.iter().filter_map(|s| *s).collect()
    }

    /// Finds `key` starting from the model's predicted slot, walking
    /// outward. Returns `(found, probes)`.
    fn find(&self, key: Key) -> (bool, u64) {
        let cap = self.slots.len();
        let start = self.model.predict(key, cap);
        let mut probes = 0u64;
        // Walk outward in both directions; in a sorted gapped array the
        // first occupied slot on each side bounds the direction to keep.
        for radius in 0..cap {
            let mut checked_any = false;
            if start + radius < cap {
                probes += 1;
                checked_any = true;
                if let Some(k) = self.slots[start + radius] {
                    if k == key {
                        return (true, probes);
                    }
                    if k > key && radius > 0 {
                        // Sorted: key would sit left of here; keep scanning
                        // left only (handled by the radius loop's left arm).
                    }
                }
            }
            if radius > 0 && start >= radius {
                probes += 1;
                checked_any = true;
                if let Some(k) = self.slots[start - radius] {
                    if k == key {
                        return (true, probes);
                    }
                }
            }
            if !checked_any {
                break;
            }
            // Early exit: if both sides have passed the key's sorted
            // position, it cannot exist. Conservative check every 8 slots.
            if radius % 8 == 7 {
                let right_passed = self.slots[(start + radius).min(cap - 1)]
                    .map(|k| k > key)
                    .unwrap_or(false);
                let left_passed = start
                    .checked_sub(radius)
                    .and_then(|i| self.slots[i])
                    .map(|k| k < key)
                    .unwrap_or(false);
                if right_passed && left_passed {
                    return (false, probes);
                }
            }
        }
        (false, probes)
    }

    /// Vacates the slot holding `key` (which must be present).
    fn remove(&mut self, key: Key) {
        let slot = self
            .slots
            .iter()
            .position(|s| *s == Some(key))
            .expect("remove() called for a key find() reported present");
        self.slots[slot] = None;
        self.len -= 1;
    }

    /// Inserts `key` near its predicted slot: locates the sorted insertion
    /// region, finds the nearest gap, and shifts the in-between elements.
    /// Returns `(probes, shifts)`.
    fn insert(&mut self, key: Key) -> (u64, u64) {
        let cap = self.slots.len();
        debug_assert!(self.len < cap, "leaf split must trigger before overflow");
        // Sorted insertion position over occupied slots: first occupied
        // slot holding a key greater than `key`.
        let mut pos = cap; // slot index before which the key belongs
        let mut probes = 0u64;
        for (i, s) in self.slots.iter().enumerate() {
            probes += 1;
            if let Some(k) = s {
                if *k > key {
                    pos = i;
                    break;
                }
            }
        }
        // Nearest free slot left of `pos` (insert there by shifting left
        // run), else nearest free slot right of `pos`.
        let mut shifts = 0u64;
        let left_gap = (0..pos.min(cap)).rev().find(|&i| self.slots[i].is_none());
        let right_gap = (pos..cap).find(|&i| self.slots[i].is_none());
        match (left_gap, right_gap) {
            (Some(g), _) if pos == 0 || g == pos.saturating_sub(1) || right_gap.is_none() => {
                // Shift (g, pos) left by one, insert at pos-1.
                let target = pos - 1;
                for i in g..target {
                    self.slots[i] = self.slots[i + 1];
                    shifts += 1;
                }
                self.slots[target] = Some(key);
            }
            (_, Some(g)) => {
                // Shift [pos, g) right by one, insert at pos.
                let mut i = g;
                while i > pos {
                    self.slots[i] = self.slots[i - 1];
                    shifts += 1;
                    i -= 1;
                }
                self.slots[pos] = Some(key);
            }
            (Some(g), None) => {
                let target = pos - 1;
                for i in g..target {
                    self.slots[i] = self.slots[i + 1];
                    shifts += 1;
                }
                self.slots[target] = Some(key);
            }
            (None, None) => unreachable!("leaf must have a free slot"),
        }
        self.len += 1;
        (probes, shifts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step + 1).collect()).unwrap()
    }

    #[test]
    fn build_validates_config() {
        let ks = uniform(100, 3);
        assert!(AlexIndex::build(
            &ks,
            AlexConfig {
                leaf_capacity: 2,
                ..Default::default()
            }
        )
        .is_err());
        assert!(AlexIndex::build(
            &ks,
            AlexConfig {
                fill_low: 0.9,
                fill_high: 0.5,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn build_and_find_all() {
        let ks = uniform(1_000, 7);
        let idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        for &k in ks.keys() {
            assert!(idx.contains(k), "key {k}");
        }
        for k in [0u64, 2, 5000, 9_999_999] {
            assert!(!idx.contains(k), "key {k}");
        }
    }

    #[test]
    fn insert_maintains_sorted_order() {
        let ks = uniform(200, 10);
        let mut idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        for k in [5u64, 15, 25, 1995, 999, 1004] {
            idx.insert(k).unwrap();
        }
        let keys = idx.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys out of order");
        assert_eq!(idx.len(), 206);
        for k in [5u64, 15, 25, 1995, 999, 1004] {
            assert!(idx.contains(k));
        }
    }

    #[test]
    fn remove_vacates_slots_and_keeps_order() {
        let ks = uniform(300, 10);
        let mut idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        // Remove a spread of keys, including a leaf minimum (key 1).
        for k in [1u64, 501, 1001, 2991] {
            idx.remove(k).unwrap();
            assert!(!idx.contains(k), "removed key {k} still found");
        }
        assert_eq!(idx.len(), 296);
        assert!(matches!(idx.remove(1), Err(LisError::KeyNotFound(1))));
        let keys = idx.keys();
        assert_eq!(keys.len(), 296);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys out of order");
        // Reinsert into the vacated region; everything stays consistent.
        idx.insert(1).unwrap();
        assert!(idx.contains(1));
        assert_eq!(idx.len(), 297);
    }

    #[test]
    fn write_surface_routes_to_native_ops() {
        use crate::index::LearnedIndex;
        let ks = uniform(100, 10);
        let mut idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        LearnedIndex::try_insert(&mut idx, 5).unwrap();
        assert!(idx.contains(5));
        LearnedIndex::try_remove(&mut idx, 5).unwrap();
        assert!(!idx.contains(5));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let ks = uniform(50, 3);
        let mut idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        assert!(matches!(idx.insert(1), Err(LisError::DuplicateKey(1))));
    }

    #[test]
    fn heavy_inserts_trigger_splits() {
        let ks = uniform(500, 100);
        let cfg = AlexConfig {
            leaf_capacity: 64,
            fill_low: 0.5,
            fill_high: 0.8,
        };
        let mut idx = AlexIndex::build(&ks, cfg).unwrap();
        let leaves_before = idx.num_leaves();
        // Hammer one region with inserts (the update-channel attack shape).
        let mut inserted = 0;
        for k in 10_000..12_000u64 {
            if idx.insert(k).is_ok() {
                inserted += 1;
            }
        }
        assert!(inserted > 1_000);
        assert!(idx.num_leaves() > leaves_before);
        assert!(idx.stats().splits > 0);
        // Everything still findable.
        for &k in ks.keys().iter().step_by(13) {
            assert!(idx.contains(k));
        }
        for k in (10_000..12_000u64).step_by(37) {
            assert!(idx.contains(k));
        }
    }

    #[test]
    fn skewed_inserts_cost_more_than_spread_inserts() {
        let build = || {
            let ks = uniform(2_000, 50);
            AlexIndex::build(&ks, AlexConfig::default()).unwrap()
        };
        // Spread inserts: evenly interleaved new keys.
        let mut spread = build();
        spread.reset_stats();
        for i in 0..500u64 {
            let _ = spread.insert(i * 200 + 7);
        }
        // Skewed inserts: one dense clump.
        let mut skew = build();
        skew.reset_stats();
        for i in 0..500u64 {
            let _ = skew.insert(50_001 + i);
        }
        let spread_cost = spread.stats().shifts + spread.stats().insert_probes;
        let skew_cost = skew.stats().shifts + skew.stats().insert_probes;
        assert!(
            skew_cost > spread_cost,
            "clustered updates should cost more: {skew_cost} vs {spread_cost}"
        );
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let ks = uniform(100, 5);
        let mut idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        idx.insert(2).unwrap();
        assert!(idx.stats().insert_probes > 0);
        idx.reset_stats();
        assert_eq!(idx.stats(), AlexStats::default());
    }

    #[test]
    fn lookups_are_pure_reads() {
        let ks = uniform(200, 9);
        let idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        let before = idx.stats();
        for &k in ks.keys() {
            let hit = idx.lookup(k);
            assert!(hit.found);
            assert!(hit.cost > 0, "every lookup probes at least one slot");
        }
        assert_eq!(
            idx.stats(),
            before,
            "read path must not touch write-side counters"
        );
    }

    #[test]
    fn mean_lookup_probes_reflects_model_quality() {
        let ks = uniform(1_000, 11);
        let idx = AlexIndex::build(&ks, AlexConfig::default()).unwrap();
        let probes = idx.mean_lookup_probes(ks.keys());
        // Near-linear data: the leaf models place keys accurately.
        assert!(probes < 8.0, "mean probes {probes}");
    }
}
