//! Multi-stage recursive model index (the general architecture of Kraska
//! et al., Figure 1 of the paper generalized beyond two stages).
//!
//! The paper attacks the two-stage instantiation because that is the one
//! shown to beat B-Trees, but the RMI definition allows any stage count:
//! stage `i` holds `M_i` models, and a key is routed top-down — each
//! stage's prediction (scaled to the next stage's width) picks the model
//! below. Training is the standard top-down pass: every model is trained
//! on exactly the keys that *routing* (not partitioning) sends to it,
//! which means upper-stage errors shape lower-stage training sets.
//!
//! This generalization matters for the attack analysis: deeper hierarchies
//! dilute a fixed poisoning budget across more (smaller) leaf models, but
//! leaf training sets are no longer contiguous equal-size partitions, so
//! the equal-partition attack bookkeeping (Algorithm 2) becomes an
//! approximation. The `deep_rmi` tests quantify the clean-index behaviour;
//! poisoning it end-to-end is future work mirrored from the paper's own.

use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::linreg::LinearModel;
use crate::par;
use crate::rmi::scale_to_width;
use crate::scratch::ScratchPool;
use crate::search::bounded_search_with_fallback;
use crate::stats::{midpoint_shift, CdfMoments};

/// Configuration: models per stage, root first. The root stage must have
/// exactly one model; the last stage's models are the leaves.
#[derive(Debug, Clone)]
pub struct DeepRmiConfig {
    /// Number of models per stage, e.g. `[1, 10, 100]`.
    pub stage_widths: Vec<usize>,
}

impl DeepRmiConfig {
    /// A two-stage config matching [`crate::rmi::Rmi`]'s shape.
    pub fn two_stage(leaves: usize) -> Self {
        Self {
            stage_widths: vec![1, leaves],
        }
    }

    /// A three-stage config with a geometric fanout.
    pub fn three_stage(mid: usize, leaves: usize) -> Self {
        Self {
            stage_widths: vec![1, mid, leaves],
        }
    }
}

/// One trained model plus the rank offset of its training subset.
#[derive(Debug, Clone)]
struct StageModel {
    /// `None` when no keys were routed here (empty models predict their
    /// routing centre).
    model: Option<LinearModel>,
    /// Fallback prediction for empty models.
    fallback: f64,
}

impl StageModel {
    fn predict(&self, key: Key) -> f64 {
        match &self.model {
            Some(m) => m.predict(key),
            None => self.fallback,
        }
    }
}

/// A trained multi-stage RMI.
#[derive(Debug, Clone)]
pub struct DeepRmi {
    stages: Vec<Vec<StageModel>>,
    keys: Vec<Key>,
    /// Per-leaf max training error (last-mile radius), leaf-indexed.
    leaf_errors: Vec<usize>,
    /// Pooled `(key, slot)` permutation buffers for the sorted-batch path.
    scratch: ScratchPool<Vec<(Key, usize)>>,
}

impl DeepRmi {
    /// Trains the hierarchy top-down over `ks`, fanning per-stage model
    /// fits and routing passes out across the machine's available
    /// parallelism.
    pub fn build(ks: &KeySet, cfg: &DeepRmiConfig) -> Result<Self> {
        Self::build_with_threads(ks, cfg, 0)
    }

    /// [`DeepRmi::build`] with an explicit worker cap (`0` = available
    /// parallelism, `1` = fully serial). Output is identical for every
    /// thread count *and* to [`DeepRmi::build_reference`]: training-set
    /// gathering is a stable counting sort over key indices (so every
    /// model sees its keys in the same order the reference's bucket
    /// pushes produced), each model's fit is sequential, and routing is
    /// embarrassingly per-key.
    pub fn build_with_threads(ks: &KeySet, cfg: &DeepRmiConfig, threads: usize) -> Result<Self> {
        if cfg.stage_widths.is_empty() || cfg.stage_widths[0] != 1 {
            return Err(LisError::InvalidRmiConfig(
                "stage_widths must start with a single root model".into(),
            ));
        }
        if cfg.stage_widths.contains(&0) {
            return Err(LisError::InvalidRmiConfig("zero-width stage".into()));
        }
        // Fan-out captures are `Arc`-shared (the persistent pool's workers
        // are `'static`) and recovered between stages with `try_unwrap` —
        // sound because every backend drops its task clones before
        // completing.
        let keys = std::sync::Arc::new(ks.keys().to_vec());
        let n = keys.len();

        let mut stages: Vec<Vec<StageModel>> = Vec::with_capacity(cfg.stage_widths.len());
        // Assignment of every key to a model of the current stage.
        let mut assignment: Vec<u32> = vec![0; n];
        // Reused counting-sort scratch: per-model key-index groups.
        let mut order: Vec<u32> = vec![0; n];
        let mut offsets: Vec<usize> = Vec::new();

        for (depth, &width) in cfg.stage_widths.iter().enumerate() {
            // Gather: a stable counting sort of key indices by model —
            // two O(n) passes and one reused index array instead of the
            // reference path's per-model pair buckets.
            offsets.clear();
            offsets.resize(width + 1, 0);
            for &a in &assignment {
                offsets[(a as usize).min(width - 1) + 1] += 1;
            }
            for m in 0..width {
                offsets[m + 1] += offsets[m];
            }
            let mut cursor = offsets[..width].to_vec();
            for (i, &a) in assignment.iter().enumerate() {
                let m = (a as usize).min(width - 1);
                order[cursor[m]] = i as u32;
                cursor[m] += 1;
            }

            // Fit this stage's models over their (zero-copy) groups, in
            // parallel across models.
            let workers = par::effective_workers(threads, width);
            let shared_order = std::sync::Arc::new(order);
            let shared_offsets = std::sync::Arc::new(offsets);
            let stage: Vec<StageModel> = {
                let keys = std::sync::Arc::clone(&keys);
                let order = std::sync::Arc::clone(&shared_order);
                let offsets = std::sync::Arc::clone(&shared_offsets);
                par::map_chunks(width, workers, move |range| {
                    range
                        .map(|m| {
                            let group = &order[offsets[m]..offsets[m + 1]];
                            let fallback = ((m as f64 + 0.5) / width as f64) * n as f64;
                            let model = if group.len() >= 2 {
                                Some(fit_group(&keys, group))
                            } else {
                                None
                            };
                            StageModel { model, fallback }
                        })
                        .collect()
                })
            };
            order = std::sync::Arc::try_unwrap(shared_order).expect("fan-out released order");
            offsets = std::sync::Arc::try_unwrap(shared_offsets).expect("fan-out released offsets");

            // Route every key through this stage to compute the next
            // assignment (skip after the last stage), in parallel across
            // contiguous key chunks.
            if depth + 1 < cfg.stage_widths.len() {
                let next_width = cfg.stage_widths[depth + 1];
                let shared_stage = std::sync::Arc::new(stage);
                let shared_assignment = std::sync::Arc::new(assignment);
                let routed: Vec<u32> = {
                    let keys = std::sync::Arc::clone(&keys);
                    let stage = std::sync::Arc::clone(&shared_stage);
                    let assignment = std::sync::Arc::clone(&shared_assignment);
                    par::map_chunks(n, par::effective_workers(threads, n), move |range| {
                        range
                            .map(|i| {
                                let m = (assignment[i] as usize).min(width - 1);
                                let pred = stage[m].predict(keys[i]);
                                scale_to_stage(pred, n, next_width) as u32
                            })
                            .collect()
                    })
                };
                assignment = routed;
                drop(shared_assignment);
                stages.push(
                    std::sync::Arc::try_unwrap(shared_stage).expect("fan-out released the stage"),
                );
            } else {
                stages.push(stage);
            }
        }

        // Leaf error bounds from the final assignment: per-chunk partial
        // maxima merged by `max` (order-independent, so thread count
        // cannot change the result).
        let leaf_width = *cfg.stage_widths.last().unwrap();
        let leaves = std::sync::Arc::new(stages.pop().expect("stage_widths is non-empty"));
        let shared_assignment = std::sync::Arc::new(assignment);
        let workers = par::effective_workers(threads, n);
        let chunk = n.div_ceil(workers).max(1);
        let partials: Vec<Vec<usize>> = {
            let keys = std::sync::Arc::clone(&keys);
            let leaves = std::sync::Arc::clone(&leaves);
            let assignment = std::sync::Arc::clone(&shared_assignment);
            par::map_chunks(n.div_ceil(chunk), workers, move |range| {
                range
                    .map(|c| {
                        let mut local = vec![0usize; leaf_width];
                        for i in c * chunk..((c + 1) * chunk).min(n) {
                            let leaf = (assignment[i] as usize).min(leaf_width - 1);
                            let err = (leaves[leaf].predict(keys[i]) - (i + 1) as f64)
                                .abs()
                                .ceil() as usize;
                            local[leaf] = local[leaf].max(err);
                        }
                        local
                    })
                    .collect()
            })
        };
        drop(shared_assignment);
        stages.push(std::sync::Arc::try_unwrap(leaves).expect("fan-out released the leaves"));
        let mut leaf_errors = vec![0usize; leaf_width];
        for local in partials {
            for (e, l) in leaf_errors.iter_mut().zip(local) {
                *e = (*e).max(l);
            }
        }

        Ok(Self {
            stages,
            keys: std::sync::Arc::try_unwrap(keys).expect("fan-out released the keys"),
            leaf_errors,
            scratch: ScratchPool::new(),
        })
    }

    /// The pre-optimization training pass — per-model pair buckets cloned
    /// from a materialized CDF, serial fits — kept callable as the
    /// `buildpath` bench's reference. Produces the same index as
    /// [`DeepRmi::build`] bit for bit.
    pub fn build_reference(ks: &KeySet, cfg: &DeepRmiConfig) -> Result<Self> {
        if cfg.stage_widths.is_empty() || cfg.stage_widths[0] != 1 {
            return Err(LisError::InvalidRmiConfig(
                "stage_widths must start with a single root model".into(),
            ));
        }
        if cfg.stage_widths.contains(&0) {
            return Err(LisError::InvalidRmiConfig("zero-width stage".into()));
        }
        let n = ks.len();
        let pairs: Vec<(Key, usize)> = ks.cdf_pairs().collect();

        let mut stages: Vec<Vec<StageModel>> = Vec::with_capacity(cfg.stage_widths.len());
        // Assignment of every key to a model of the current stage.
        let mut assignment: Vec<usize> = vec![0; n];

        for (depth, &width) in cfg.stage_widths.iter().enumerate() {
            // Gather training sets per model of this stage.
            let mut buckets: Vec<Vec<(Key, usize)>> = vec![Vec::new(); width];
            for (i, &(k, r)) in pairs.iter().enumerate() {
                buckets[assignment[i].min(width - 1)].push((k, r));
            }
            let mut stage = Vec::with_capacity(width);
            for (m_idx, bucket) in buckets.iter().enumerate() {
                let fallback = ((m_idx as f64 + 0.5) / width as f64) * n as f64;
                let model = if bucket.len() >= 2 {
                    Some(LinearModel::fit_pairs(bucket)?)
                } else {
                    None
                };
                stage.push(StageModel { model, fallback });
            }

            // Route every key through this stage to compute the next
            // assignment (skip after the last stage).
            if depth + 1 < cfg.stage_widths.len() {
                let next_width = cfg.stage_widths[depth + 1];
                for (i, &(k, _)) in pairs.iter().enumerate() {
                    let pred = stage[assignment[i].min(width - 1)].predict(k);
                    assignment[i] = scale_to_stage(pred, n, next_width);
                }
            }
            stages.push(stage);
        }

        // Leaf error bounds from the final assignment.
        let leaf_width = *cfg.stage_widths.last().unwrap();
        let mut leaf_errors = vec![0usize; leaf_width];
        let leaves = stages.last().unwrap();
        for (i, &(k, r)) in pairs.iter().enumerate() {
            let leaf = assignment[i].min(leaf_width - 1);
            let err = (leaves[leaf].predict(k) - r as f64).abs().ceil() as usize;
            leaf_errors[leaf] = leaf_errors[leaf].max(err);
        }

        Ok(Self {
            stages,
            keys: ks.keys().to_vec(),
            leaf_errors,
            scratch: ScratchPool::new(),
        })
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Number of leaf models.
    pub fn num_leaves(&self) -> usize {
        self.stages.last().map(Vec::len).unwrap_or(0)
    }

    /// Total number of models across stages (storage proxy).
    pub fn num_models(&self) -> usize {
        self.stages.iter().map(Vec::len).sum()
    }

    /// Largest leaf last-mile radius.
    pub fn max_leaf_error(&self) -> usize {
        self.leaf_errors.iter().copied().max().unwrap_or(0)
    }

    /// Routes `key` to its leaf index.
    pub fn route(&self, key: Key) -> usize {
        let n = self.keys.len();
        let mut idx = 0usize;
        for (depth, stage) in self.stages.iter().enumerate() {
            let pred = stage[idx.min(stage.len() - 1)].predict(key);
            if depth + 1 < self.stages.len() {
                idx = scale_to_stage(pred, n, self.stages[depth + 1].len());
            }
        }
        idx.min(self.num_leaves() - 1)
    }

    /// Predicted global 0-based position for `key` served by `leaf`.
    fn predict_at_leaf(&self, leaf: usize, key: Key) -> usize {
        let pred = self.stages.last().unwrap()[leaf].predict(key) - 1.0;
        pred.round().clamp(0.0, (self.keys.len() - 1) as f64) as usize
    }

    /// Predicted global 0-based position for `key`.
    pub fn predict_pos(&self, key: Key) -> usize {
        self.predict_at_leaf(self.route(key), key)
    }

    /// Lookup served by a known leaf: error-bounded last-mile search with
    /// the leaf's stored maximum training error as the window radius (+1
    /// for rounding). Query-time routing replays the training-time
    /// assignment exactly, so member keys always land within their leaf's
    /// recorded error; the exponential fallback only fires for absent
    /// keys predicted out of bound.
    fn lookup_at_leaf(&self, leaf: usize, key: Key) -> Lookup {
        let guess = self.predict_at_leaf(leaf, key);
        let radius = self.leaf_errors[leaf] + 1;
        bounded_search_with_fallback(&self.keys, key, guess, radius).into()
    }

    /// Full lookup with error-bounded last-mile search.
    pub fn lookup(&self, key: Key) -> Lookup {
        self.lookup_at_leaf(self.route(key), key)
    }

    /// Sorted-batch lookup into a reused buffer: probes sweep the key
    /// array in sorted order (results restored to probe order), so the
    /// per-stage model walks and last-mile windows move monotonically
    /// through memory. The sweep is software-pipelined — the multi-stage
    /// route and prediction run ahead of the window searches, prefetching
    /// each probe's leaf window. Per-probe results are identical to
    /// [`DeepRmi::lookup`] at every pipeline depth.
    pub fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        let last = self.keys.len().saturating_sub(1);
        crate::index::sorted_batch_pipelined(
            &self.scratch,
            keys,
            out,
            |k| {
                let leaf = self.route(k);
                let guess = self.predict_at_leaf(leaf, k);
                let radius = self.leaf_errors[leaf] + 1;
                crate::search::prefetch_window(
                    &self.keys,
                    guess.saturating_sub(radius),
                    guess.saturating_add(radius).min(last),
                );
                (guess, radius)
            },
            |k, (guess, radius)| bounded_search_with_fallback(&self.keys, k, guess, radius).into(),
        );
    }

    /// Mean MSE over the trained leaf models (untrained leaves excluded) —
    /// the multi-stage analogue of [`crate::rmi::Rmi::rmi_loss`].
    pub fn leaf_loss(&self) -> f64 {
        let leaves = self.stages.last().expect("built index has stages");
        let (sum, count) = leaves
            .iter()
            .filter_map(|m| m.model.as_ref().map(|m| m.mse))
            .fold((0.0, 0usize), |(s, c), mse| (s + mse, c + 1));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

impl LearnedIndex for DeepRmi {
    type Config = DeepRmiConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        DeepRmi::build(ks, cfg)
    }

    fn lookup(&self, key: Key) -> Lookup {
        DeepRmi::lookup(self, key)
    }

    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        DeepRmi::lookup_batch_into(self, keys, out)
    }

    fn loss(&self) -> f64 {
        self.leaf_loss()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.num_models() * std::mem::size_of::<StageModel>()
            + self.keys.len() * std::mem::size_of::<Key>()
            + self.leaf_errors.len() * std::mem::size_of::<usize>()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Scales a rank prediction over `n` keys to a stage of `width` models —
/// the shared clamped helper ([`crate::rmi::scale_to_width`]), so build
/// and query routing can never diverge.
fn scale_to_stage(pred: f64, n: usize, width: usize) -> usize {
    scale_to_width(pred, n, width)
}

/// Fits one stage model over its routed key-index group without cloning
/// CDF pairs. Replicates [`LinearModel::fit_pairs`] exactly: the group is
/// in ascending key order (stable counting sort), so its first/last
/// entries are the reference path's `min`/`max`, the shift matches, and
/// the moment accumulation runs over the same pairs in the same order —
/// bit-identical models.
fn fit_group(keys: &[Key], group: &[u32]) -> LinearModel {
    debug_assert!(group.len() >= 2);
    let lo = keys[group[0] as usize];
    let hi = keys[group[group.len() - 1] as usize];
    let shift = midpoint_shift(lo, hi);
    let m = CdfMoments::from_pairs_shifted(
        group.iter().map(|&i| (keys[i as usize], i as usize + 1)),
        shift,
    );
    LinearModel::from_moments(&m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    fn skewed(n: u64) -> KeySet {
        KeySet::from_keys((1..=n).map(|i| i * i).collect()).unwrap()
    }

    #[test]
    fn validates_config() {
        let ks = uniform(100, 3);
        assert!(DeepRmi::build(
            &ks,
            &DeepRmiConfig {
                stage_widths: vec![]
            }
        )
        .is_err());
        assert!(DeepRmi::build(
            &ks,
            &DeepRmiConfig {
                stage_widths: vec![2, 10]
            }
        )
        .is_err());
        assert!(DeepRmi::build(
            &ks,
            &DeepRmiConfig {
                stage_widths: vec![1, 0]
            }
        )
        .is_err());
    }

    #[test]
    fn two_stage_finds_all_keys() {
        let ks = uniform(2_000, 7);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::two_stage(40)).unwrap();
        assert_eq!(rmi.depth(), 2);
        for (i, &k) in ks.keys().iter().enumerate() {
            assert_eq!(rmi.lookup(k).pos, Some(i), "key {k}");
        }
    }

    #[test]
    fn three_stage_finds_all_keys_on_skewed_data() {
        let ks = skewed(3_000);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(10, 100)).unwrap();
        assert_eq!(rmi.depth(), 3);
        assert_eq!(rmi.num_models(), 111);
        for (i, &k) in ks.keys().iter().enumerate().step_by(7) {
            assert_eq!(rmi.lookup(k).pos, Some(i), "key {k}");
        }
    }

    #[test]
    fn absent_keys_not_found() {
        let ks = uniform(500, 10);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(5, 50)).unwrap();
        for k in [1u64, 15, 4_999, 100_000] {
            assert_eq!(rmi.lookup(k).pos, None, "key {k}");
        }
    }

    #[test]
    fn deeper_hierarchy_reduces_leaf_error_on_skewed_data() {
        let ks = skewed(5_000);
        let shallow = DeepRmi::build(&ks, &DeepRmiConfig::two_stage(50)).unwrap();
        let deep = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(50, 500)).unwrap();
        assert!(
            deep.max_leaf_error() <= shallow.max_leaf_error(),
            "deep {} vs shallow {}",
            deep.max_leaf_error(),
            shallow.max_leaf_error()
        );
    }

    #[test]
    fn empty_leaves_are_tolerated() {
        // Heavily skewed data routes nothing to many leaves; lookups must
        // still succeed everywhere.
        let ks = skewed(500);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(20, 400)).unwrap();
        for (i, &k) in ks.keys().iter().enumerate().step_by(11) {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn optimized_and_parallel_builds_match_reference_bitwise() {
        for ks in [skewed(2_200), uniform(1_800, 9)] {
            let cfg = DeepRmiConfig::three_stage(9, 110);
            let reference = DeepRmi::build_reference(&ks, &cfg).unwrap();
            for threads in [1usize, 2, 5] {
                let built = DeepRmi::build_with_threads(&ks, &cfg, threads).unwrap();
                assert_eq!(
                    built.leaf_loss().to_bits(),
                    reference.leaf_loss().to_bits(),
                    "{threads} threads"
                );
                assert_eq!(built.leaf_errors, reference.leaf_errors);
                assert_eq!(built.num_models(), reference.num_models());
                for (sa, sb) in built.stages.iter().zip(&reference.stages) {
                    for (ma, mb) in sa.iter().zip(sb) {
                        assert_eq!(ma.fallback.to_bits(), mb.fallback.to_bits());
                        match (&ma.model, &mb.model) {
                            (None, None) => {}
                            (Some(a), Some(b)) => {
                                assert_eq!(a.w.to_bits(), b.w.to_bits());
                                assert_eq!(a.b.to_bits(), b.b.to_bits());
                                assert_eq!(a.mse.to_bits(), b.mse.to_bits());
                            }
                            other => panic!("model presence diverged: {other:?}"),
                        }
                    }
                }
                let mut probes: Vec<Key> = ks.keys().iter().step_by(17).copied().collect();
                probes.extend([0, 3, ks.max_key() + 5]);
                for k in probes {
                    assert_eq!(built.lookup(k), reference.lookup(k), "key {k}");
                }
            }
        }
    }

    #[test]
    fn sorted_batch_matches_single_lookup_exactly() {
        let ks = skewed(2_500);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(8, 120)).unwrap();
        let mut probes: Vec<Key> = ks.keys().iter().rev().step_by(7).copied().collect();
        probes.extend([0, 3, ks.max_key() + 1, Key::MAX]);
        probes.push(probes[1]);
        let mut out = Vec::new();
        rmi.lookup_batch_into(&probes, &mut out);
        assert_eq!(out.len(), probes.len());
        for (&k, &got) in probes.iter().zip(&out) {
            assert_eq!(got, rmi.lookup(k), "key {k}");
        }
        assert_eq!(rmi.scratch.idle(), 1);
    }

    #[test]
    fn bounded_lookup_cost_respects_leaf_error_window() {
        let ks = uniform(5_000, 9);
        let rmi = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(5, 50)).unwrap();
        let radius = rmi.max_leaf_error() + 1;
        let bound = crate::search::lane_window_cost_bound(2 * radius + 1);
        for &k in ks.keys().iter().step_by(61) {
            let hit = rmi.lookup(k);
            assert!(hit.found, "member {k} lost");
            assert!(
                hit.cost <= bound,
                "cost {} > window bound {bound}",
                hit.cost
            );
        }
    }

    #[test]
    fn poisoning_degrades_deep_rmi_too() {
        let ks = uniform(2_000, 9);
        let clean = DeepRmi::build(&ks, &DeepRmiConfig::three_stage(8, 80)).unwrap();

        let mut poisoned = ks.clone();
        for j in 0..200u64 {
            let k = 9_001 + j * 2;
            if !poisoned.contains(k) {
                poisoned.insert(k).unwrap();
            }
        }
        let bad = DeepRmi::build(&poisoned, &DeepRmiConfig::three_stage(8, 80)).unwrap();
        // The clean keys are still found, but the error radius grows.
        for (i, &k) in poisoned.keys().iter().enumerate().step_by(13) {
            assert_eq!(bad.lookup(k).pos, Some(i));
        }
        assert!(bad.max_leaf_error() >= clean.max_leaf_error());
    }
}
