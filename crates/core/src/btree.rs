//! A from-scratch bulk-loaded B+-tree baseline.
//!
//! The RMI's claim to fame is outperforming "the highly-optimized
//! traditional B-Tree data structure" (Section I); the poisoning attack's
//! punchline is that a poisoned RMI loses that edge. To measure both sides
//! we implement an in-memory B+-tree: fixed fanout, bulk-loaded from a
//! sorted key array, values are the global positions (ranks − 1) so lookups
//! are directly comparable with [`crate::rmi::Rmi::lookup`].
//!
//! Nodes are stored in flat arenas (no pointer chasing through boxes), the
//! standard layout for read-optimized in-memory trees.

use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::search::binary_search_counted;

/// Build configuration for [`BPlusTree`] under the [`LearnedIndex`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum keys per leaf and children per inner node.
    pub fanout: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        Self { fanout: 64 }
    }
}

/// An inner node: separator keys and child indices.
#[derive(Debug, Clone)]
struct InnerNode {
    /// `keys[i]` is the smallest key reachable through `children[i + 1]`.
    keys: Vec<Key>,
    /// Child node ids; `children.len() == keys.len() + 1`.
    children: Vec<u32>,
}

/// A leaf node: sorted keys and their global positions.
#[derive(Debug, Clone)]
struct LeafNode {
    keys: Vec<Key>,
    /// Global position of `keys[i]` in the underlying sorted array.
    base: usize,
}

/// Bulk-loaded, read-only B+-tree over a sorted key array.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    inners: Vec<InnerNode>,
    leaves: Vec<LeafNode>,
    /// Id of the root. Positive ids `i` address `inners[i - 1]`; the
    /// sentinel 0 means "single leaf root" (only when there is 1 leaf).
    root: u32,
    height: usize,
    fanout: usize,
    len: usize,
}

impl BPlusTree {
    /// Bulk-loads the tree from a keyset with the given fanout (max keys per
    /// leaf and max children per inner node).
    pub fn build(ks: &KeySet, fanout: usize) -> Result<Self> {
        if fanout < 2 {
            return Err(LisError::Invariant("B+-tree fanout must be ≥ 2".into()));
        }
        let keys = ks.keys();
        let mut leaves = Vec::with_capacity(keys.len().div_ceil(fanout));
        let mut pos = 0usize;
        for chunk in keys.chunks(fanout) {
            leaves.push(LeafNode {
                keys: chunk.to_vec(),
                base: pos,
            });
            pos += chunk.len();
        }

        // Build inner levels bottom-up. Level entries: (node_id, min_key).
        // Leaf ids are encoded as `id`, inner ids as `id + leaf_count`.
        let leaf_count = leaves.len() as u32;
        let mut inners: Vec<InnerNode> = Vec::new();
        let mut level: Vec<(u32, Key)> = leaves
            .iter()
            .enumerate()
            .map(|(i, l)| (i as u32, l.keys[0]))
            .collect();
        let mut height = 1usize;

        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            for group in level.chunks(fanout) {
                let children: Vec<u32> = group.iter().map(|&(id, _)| id).collect();
                let seps: Vec<Key> = group.iter().skip(1).map(|&(_, k)| k).collect();
                let min_key = group[0].1;
                inners.push(InnerNode {
                    keys: seps,
                    children,
                });
                next.push((leaf_count + inners.len() as u32 - 1, min_key));
            }
            level = next;
            height += 1;
        }

        let root = level[0].0;
        Ok(Self {
            inners,
            leaves,
            root,
            height,
            fanout,
            len: keys.len(),
        })
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the tree indexes no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (leaf level = 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Looks `key` up, returning its global position and traversal cost
    /// (key comparisons across all visited nodes).
    pub fn lookup(&self, key: Key) -> Lookup {
        let leaf_count = self.leaves.len() as u32;
        let mut node = self.root;
        let mut comparisons = 0usize;

        while node >= leaf_count {
            let inner = &self.inners[(node - leaf_count) as usize];
            // partition_point comparisons ≈ ceil(log2(len + 1)).
            let idx = inner.keys.partition_point(|&k| k <= key);
            comparisons += usize::BITS as usize - (inner.keys.len() + 1).leading_zeros() as usize;
            node = inner.children[idx];
        }

        let leaf = &self.leaves[node as usize];
        let (found, cmp) = binary_search_counted(&leaf.keys, key);
        Lookup::position(found.map(|i| leaf.base + i), comparisons + cmp)
    }

    /// Total node count (inner + leaf), a proxy for memory footprint.
    pub fn node_count(&self) -> usize {
        self.inners.len() + self.leaves.len()
    }
}

impl LearnedIndex for BPlusTree {
    type Config = BTreeConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        BPlusTree::build(ks, cfg.fanout)
    }

    fn lookup(&self, key: Key) -> Lookup {
        BPlusTree::lookup(self, key)
    }

    /// A B+-tree fits no model; its loss is zero by definition.
    fn loss(&self) -> f64 {
        0.0
    }

    fn memory_bytes(&self) -> usize {
        let inner_bytes: usize = self
            .inners
            .iter()
            .map(|n| {
                n.keys.len() * std::mem::size_of::<Key>()
                    + n.children.len() * std::mem::size_of::<u32>()
            })
            .sum();
        let leaf_bytes: usize = self
            .leaves
            .iter()
            .map(|l| l.keys.len() * std::mem::size_of::<Key>())
            .sum();
        std::mem::size_of::<Self>()
            + inner_bytes
            + leaf_bytes
            + self.node_count() * std::mem::size_of::<LeafNode>()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyset(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step + 5).collect()).unwrap()
    }

    #[test]
    fn rejects_tiny_fanout() {
        let ks = keyset(10, 2);
        assert!(BPlusTree::build(&ks, 1).is_err());
    }

    #[test]
    fn finds_every_key() {
        let ks = keyset(1000, 3);
        for fanout in [2usize, 4, 16, 64, 1024] {
            let t = BPlusTree::build(&ks, fanout).unwrap();
            for (i, &k) in ks.keys().iter().enumerate() {
                let r = t.lookup(k);
                assert_eq!(r.pos, Some(i), "fanout {fanout} key {k}");
            }
        }
    }

    #[test]
    fn misses_absent_keys() {
        let ks = keyset(500, 10);
        let t = BPlusTree::build(&ks, 16).unwrap();
        for k in [0u64, 6, 57, 4996, 100_000] {
            assert_eq!(t.lookup(k).pos, None, "key {k}");
        }
    }

    #[test]
    fn height_is_logarithmic() {
        let ks = keyset(10_000, 1);
        let t = BPlusTree::build(&ks, 16).unwrap();
        // 10_000 keys, fanout 16: ceil(log16(10000/16)) + 1 ≈ 4.
        assert!(t.height() <= 5, "height {}", t.height());
        assert!(t.height() >= 3);
    }

    #[test]
    fn single_leaf_tree() {
        let ks = keyset(5, 7);
        let t = BPlusTree::build(&ks, 16).unwrap();
        assert_eq!(t.height(), 1);
        for (i, &k) in ks.keys().iter().enumerate() {
            assert_eq!(t.lookup(k).pos, Some(i));
        }
        assert_eq!(t.lookup(999).pos, None);
    }

    #[test]
    fn lookup_cost_scales_with_height() {
        let ks = keyset(4096, 1);
        let t = BPlusTree::build(&ks, 8).unwrap();
        let r = t.lookup(ks.keys()[2000]);
        // Every level contributes at least one comparison.
        assert!(
            r.cost >= t.height(),
            "cost {} below height {}",
            r.cost,
            t.height()
        );
    }

    #[test]
    fn comparisons_bounded_by_log() {
        let ks = keyset(100_000, 2);
        let t = BPlusTree::build(&ks, 64).unwrap();
        let max_cmp = ks
            .keys()
            .iter()
            .step_by(997)
            .map(|&k| t.lookup(k).cost)
            .max()
            .unwrap();
        // Rough bound: height * ceil(log2(fanout)) + slack.
        assert!(max_cmp <= t.height() * 7 + 7, "max comparisons {max_cmp}");
    }

    #[test]
    fn node_count_is_reasonable() {
        let ks = keyset(10_000, 1);
        let t = BPlusTree::build(&ks, 100).unwrap();
        assert!(t.node_count() >= 100);
        assert!(t.node_count() <= 103);
    }
}
