//! Sharded serving: a range-partitioned composite over any index structure.
//!
//! The paper's experiments build one monolithic structure per keyset; a
//! serving deployment at the paper's 10⁷-key scale instead splits the key
//! range into contiguous shards and serves each from its own structure —
//! the partitioned-learned-structure design ALEX popularized. A
//! [`ShardedIndex`] does exactly that over *any* victim in the workspace:
//! it partitions the keyset into `N` contiguous shards (via
//! [`KeySet::partition`]), builds an inner index per shard, and routes each
//! query through a fence-key binary search to the owning shard.
//!
//! Builds and batched lookups fan out across a scoped thread pool — every
//! structure in the workspace is `Send + Sync`, so shards can be built and
//! queried concurrently without copying the keyset.
//!
//! Sharded composites register *implicitly* in the
//! [`IndexRegistry`](crate::index::IndexRegistry): any name of the form
//! `sharded:<inner>:<N>` (e.g. `sharded:rmi:8`) resolves by building the
//! registered `<inner>` entry once per shard, so the whole experiment
//! harness — pipeline, CLI, benches, property tests — serves sharded
//! fleets with no new plumbing.
//!
//! ## Example
//!
//! ```
//! use lis_core::index::IndexRegistry;
//! use lis_core::keys::KeySet;
//!
//! let ks = KeySet::from_keys((0..2_000u64).map(|i| i * 3).collect()).unwrap();
//! let registry = IndexRegistry::with_defaults();
//! let sharded = registry.build("sharded:rmi:8", &ks).unwrap();
//! let plain = registry.build("rmi", &ks).unwrap();
//! let hit = sharded.lookup(ks.keys()[1_234]);
//! assert!(hit.found);
//! assert_eq!(hit.pos, plain.lookup(ks.keys()[1_234]).pos);
//! ```

use crate::error::{LisError, Result};
use crate::index::{DynIndex, LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::par;
use crate::scratch::ScratchPool;
use std::sync::{Arc, Mutex, PoisonError};

/// Batches at or below this many probes are served on the calling thread:
/// serving micro-batches (tens to ~thousands of keys) lose more to
/// spawning scoped threads than shard parallelism returns, and the serial
/// path reuses pooled scratch so steady-state serving allocates nothing.
/// Larger offline sweeps still fan out across the thread pool.
pub const PARALLEL_BATCH_THRESHOLD: usize = 4_096;

/// Shared per-shard constructor held by a [`ShardConfig`].
pub type ShardBuilder = Arc<dyn Fn(&KeySet) -> Result<DynIndex> + Send + Sync>;

/// Parses a `sharded:<inner>:<N>` registry name into `(inner, N)`.
///
/// The inner name may itself contain colons (so `sharded:sharded:rmi:2:4`
/// nests), which is why the shard count is taken from the *last* segment.
/// Returns `None` for names without the prefix, an empty inner name, a
/// non-numeric count, or a count of zero.
pub fn parse_sharded_name(name: &str) -> Option<(&str, usize)> {
    let spec = name.strip_prefix("sharded:")?;
    let (inner, count) = spec.rsplit_once(':')?;
    let shards: usize = count.parse().ok()?;
    if inner.is_empty() || shards == 0 {
        return None;
    }
    Some((inner, shards))
}

/// Number of worker threads a sharded structure uses when the caller passes
/// `0` ("pick for me"): the machine's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Build-time configuration of a [`ShardedIndex`] (the
/// [`LearnedIndex::Config`] of the composite).
#[derive(Clone)]
pub struct ShardConfig {
    /// Number of contiguous range shards (clamped to the keyset size).
    pub shards: usize,
    /// Worker threads for builds and batched lookups; `0` means the
    /// machine's available parallelism.
    pub threads: usize,
    /// Constructor invoked once per shard keyset.
    pub build_shard: ShardBuilder,
}

impl ShardConfig {
    /// Configuration building each shard with `build_shard`.
    pub fn new<F>(shards: usize, build_shard: F) -> Self
    where
        F: Fn(&KeySet) -> Result<DynIndex> + Send + Sync + 'static,
    {
        Self {
            shards,
            threads: 0,
            build_shard: Arc::new(build_shard),
        }
    }

    /// Overrides the worker-thread count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

impl std::fmt::Debug for ShardConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardConfig")
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .finish()
    }
}

/// A range-partitioned composite index: `N` contiguous shards of the
/// keyset, each served by its own inner structure, with fence-key routing.
///
/// Implements [`LearnedIndex`] itself, so a sharded fleet is
/// indistinguishable from a monolithic victim to every harness: positions
/// are re-based to the global sorted order, `loss` is the key-weighted mean
/// of the shard losses, and `memory_bytes` sums the shards plus the
/// routing tables.
pub struct ShardedIndex {
    /// `Arc`-shared so the pooled fan-out job can hold a `'static` view
    /// of the shard fleet (the persistent pool's workers cannot borrow).
    shards: Arc<Vec<DynIndex>>,
    /// Smallest key of each shard, strictly increasing — the routing fence.
    fences: Vec<Key>,
    /// Global position of each shard's first key.
    offsets: Vec<usize>,
    len: usize,
    loss: f64,
    threads: usize,
    /// Comparisons charged per query for the fence binary search.
    route_cost: usize,
    /// Pooled scatter/gather buffers for the batched fan-out.
    scratch: ScratchPool<ShardScratch>,
}

/// Per-batch scatter/gather working memory: for each shard, the probe
/// slots routed to it, the probe keys, and the shard's answers — plus
/// the shared fan-out job oversize batches run on the persistent pool.
/// Pooled in the owning [`ShardedIndex`] so steady-state batches reuse
/// warmed buffers instead of allocating per shard per batch.
struct ShardScratch {
    slots: Vec<Vec<usize>>,
    buckets: Vec<Vec<Key>>,
    results: Vec<Vec<Lookup>>,
    job: Arc<ShardFanJob>,
}

impl ShardScratch {
    fn new(shards: &Arc<Vec<DynIndex>>) -> Self {
        let n = shards.len();
        Self {
            slots: vec![Vec::new(); n],
            buckets: vec![Vec::new(); n],
            results: vec![Vec::new(); n],
            job: Arc::new(ShardFanJob {
                shards: Arc::clone(shards),
                lanes: (0..n).map(|_| Mutex::new(ShardLane::default())).collect(),
            }),
        }
    }

    /// Clears the per-shard buffers, keeping their capacity.
    fn reset(&mut self) {
        for v in &mut self.slots {
            v.clear();
        }
        for v in &mut self.buckets {
            v.clear();
        }
        // `results` vectors are refilled through `lookup_batch_into`,
        // which clears them itself.
    }
}

/// The pooled fan-out job of an oversize sharded batch: unit `s` serves
/// shard `s`'s bucket through the inner index's batched hot path. The
/// caller swaps each shard's scattered bucket (and answer buffer) into
/// lane `s` before the fan-out and back out after — two `O(1)` swaps per
/// shard — so the job itself is `'static` shared state the persistent
/// pool's workers can run, while the warmed path allocates nothing.
struct ShardFanJob {
    shards: Arc<Vec<DynIndex>>,
    lanes: Vec<Mutex<ShardLane>>,
}

#[derive(Default)]
struct ShardLane {
    bucket: Vec<Key>,
    result: Vec<Lookup>,
}

impl par::FanoutTask for ShardFanJob {
    fn run(&self, s: usize) {
        // Uncontended by construction (the fan-out hands every lane to
        // exactly one unit); recover from poison rather than mask the
        // panic that caused it — the fan-out is already propagating it.
        let mut lane = self.lanes[s].lock().unwrap_or_else(PoisonError::into_inner);
        let ShardLane { bucket, result } = &mut *lane;
        self.shards[s].lookup_batch_into(bucket, result);
    }
}

impl ShardedIndex {
    /// Builds `shards` contiguous range shards over `ks`, constructing each
    /// inner index with `build` (in parallel when `threads > 1`).
    ///
    /// `shards` is clamped to the keyset size; `threads == 0` selects the
    /// machine's available parallelism.
    pub fn build_with<F>(ks: &KeySet, shards: usize, threads: usize, build: F) -> Result<Self>
    where
        F: Fn(&KeySet) -> Result<DynIndex> + Send + Sync + 'static,
    {
        if shards == 0 {
            return Err(LisError::Invariant(
                "sharded index needs at least one shard".into(),
            ));
        }
        let shards = shards.min(ks.len());
        let threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        // `Arc`-shared for the fan-out ('static captures), recovered
        // right after — the backend drops its clones before completing.
        let parts = Arc::new(ks.partition(shards)?);

        // At most `threads` workers, each building a contiguous run of
        // shards — never one thread per shard. Shares the build plane's
        // fan-out helper, so sharded builds and model training follow
        // one worker-cap discipline (and compose through the persistent
        // pool when one is installed: inner indexes training their own
        // leaves in parallel submit to the same fixed-width pool).
        let workers = threads.min(shards).max(1);
        let built: Vec<Result<DynIndex>> = {
            let parts = Arc::clone(&parts);
            crate::par::map_chunks(parts.len(), workers, move |range| {
                range.map(|i| build(&parts[i])).collect()
            })
        };
        let parts = Arc::try_unwrap(parts).expect("fan-out released the partitions");

        let mut inner = Vec::with_capacity(shards);
        let mut fences = Vec::with_capacity(shards);
        let mut offsets = Vec::with_capacity(shards);
        let mut len = 0usize;
        let mut loss_acc = 0.0f64;
        for (part, idx) in parts.iter().zip(built) {
            let idx = idx?;
            fences.push(part.min_key());
            offsets.push(len);
            len += idx.len();
            loss_acc += idx.loss() * idx.len() as f64;
            inner.push(idx);
        }
        // ceil(log2(shards + 1)) — comparisons of the fence binary search.
        let route_cost = usize::BITS as usize - shards.leading_zeros() as usize;
        Ok(Self {
            shards: Arc::new(inner),
            fences,
            offsets,
            len,
            loss: if len == 0 { 0.0 } else { loss_acc / len as f64 },
            threads,
            route_cost,
            scratch: ScratchPool::new(),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard inner indexes, in key order.
    pub fn shards(&self) -> &[DynIndex] {
        &self.shards
    }

    /// Worker threads used by the batched fan-out
    /// ([`LearnedIndex::lookup_batch_into`]) for oversize batches.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Index of the shard owning `key` (keys below the first fence route to
    /// shard 0, where they correctly miss).
    fn route(&self, key: Key) -> usize {
        self.fences.partition_point(|&f| f <= key).saturating_sub(1)
    }

    fn lookup_one(&self, key: Key) -> Lookup {
        let s = self.route(key);
        self.globalize(s, self.shards[s].lookup(key))
    }

    /// Re-bases a shard-local result to the global view: global rank and
    /// the fence-routing comparisons on top of the shard's own cost.
    fn globalize(&self, shard: usize, mut hit: Lookup) -> Lookup {
        if let Some(pos) = hit.pos {
            hit.pos = Some(pos + self.offsets[shard]);
        }
        hit.cost += self.route_cost;
        hit
    }
}

// lis-analysis: allow(registry-complete) — ShardedIndex is not a fixed
// registry row: it is resolved dynamically from `sharded:<name>:<N>`
// specs, wrapping any registered inner structure.
impl LearnedIndex for ShardedIndex {
    type Config = ShardConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        let build_shard = Arc::clone(&cfg.build_shard);
        Self::build_with(ks, cfg.shards, cfg.threads, move |part| build_shard(part))
    }

    fn lookup(&self, key: Key) -> Lookup {
        self.lookup_one(key)
    }

    /// Scatter-gather over the shards, preserving probe order: every probe
    /// is routed to its owning shard, each shard serves its bucket through
    /// the inner index's batched hot path (one virtual dispatch per shard,
    /// not per key). Scatter slots, buckets, and per-shard answers live in
    /// pooled scratch, so steady-state batches allocate nothing; batches
    /// larger than [`PARALLEL_BATCH_THRESHOLD`] fan out through
    /// [`par::fanout`] — the persistent worker pool when one is installed,
    /// scoped threads otherwise — while serving-sized micro-batches run on
    /// the calling thread.
    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        out.clear();
        if keys.is_empty() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].lookup_batch_into(keys, out);
            for hit in out.iter_mut() {
                *hit = self.globalize(0, *hit);
            }
            return;
        }
        let mut scratch = self.scratch.acquire_or(|| ShardScratch::new(&self.shards));
        scratch.reset();
        let ShardScratch {
            slots,
            buckets,
            results,
            job,
        } = &mut scratch;
        for (i, &k) in keys.iter().enumerate() {
            let s = self.route(k);
            slots[s].push(i);
            buckets[s].push(k);
        }

        // At most `threads` fan-out lanes, each serving one shard bucket —
        // and none at all for micro-batches.
        let workers = if keys.len() > PARALLEL_BATCH_THRESHOLD {
            self.threads.min(self.shards.len()).max(1)
        } else {
            1
        };
        if workers <= 1 {
            for (s, (bucket, result)) in buckets.iter().zip(results.iter_mut()).enumerate() {
                self.shards[s].lookup_batch_into(bucket, result);
            }
        } else {
            // Move the scattered buckets (and answer buffers) into the
            // job's lanes, run one unit per shard, and move them back —
            // two O(1) swaps per shard, no copies, no allocation.
            for (lane, (bucket, result)) in job
                .lanes
                .iter()
                .zip(buckets.iter_mut().zip(results.iter_mut()))
            {
                let mut lane = lane.lock().unwrap_or_else(PoisonError::into_inner);
                std::mem::swap(&mut lane.bucket, bucket);
                std::mem::swap(&mut lane.result, result);
            }
            let task: Arc<dyn par::FanoutTask> = Arc::clone(job) as Arc<dyn par::FanoutTask>;
            par::fanout(&task, self.shards.len(), workers);
            drop(task);
            for (lane, (bucket, result)) in job
                .lanes
                .iter()
                .zip(buckets.iter_mut().zip(results.iter_mut()))
            {
                let mut lane = lane.lock().unwrap_or_else(PoisonError::into_inner);
                std::mem::swap(&mut lane.bucket, bucket);
                std::mem::swap(&mut lane.result, result);
            }
        }

        out.resize(keys.len(), Lookup::membership(false, 0));
        for (s, (shard_slots, shard_results)) in slots.iter().zip(results.iter()).enumerate() {
            for (&slot, &hit) in shard_slots.iter().zip(shard_results) {
                out[slot] = self.globalize(s, hit);
            }
        }
        self.scratch.release(scratch);
    }

    fn loss(&self) -> f64 {
        self.loss
    }

    fn memory_bytes(&self) -> usize {
        let routing = (self.fences.len() + self.offsets.len()) * std::mem::size_of::<usize>();
        self.shards
            .iter()
            .map(DynIndex::memory_bytes)
            .sum::<usize>()
            + routing
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("shards", &self.shards.len())
            .field("len", &self.len)
            .field("threads", &self.threads)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexRegistry;

    fn keyset(n: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * 7 + 3).collect()).unwrap()
    }

    #[test]
    fn parse_sharded_names() {
        assert_eq!(parse_sharded_name("sharded:rmi:8"), Some(("rmi", 8)));
        assert_eq!(
            parse_sharded_name("sharded:hash-random:2"),
            Some(("hash-random", 2))
        );
        assert_eq!(
            parse_sharded_name("sharded:sharded:rmi:2:4"),
            Some(("sharded:rmi:2", 4))
        );
        assert_eq!(parse_sharded_name("rmi"), None);
        assert_eq!(parse_sharded_name("sharded:rmi"), None);
        assert_eq!(parse_sharded_name("sharded:rmi:0"), None);
        assert_eq!(parse_sharded_name("sharded::3"), None);
        assert_eq!(parse_sharded_name("sharded:rmi:eight"), None);
    }

    #[test]
    fn parse_sharded_name_rejects_zero_and_missing_counts() {
        // A zero shard count is not a parse, not a later build error.
        assert_eq!(parse_sharded_name("sharded:rmi:0"), None);
        assert_eq!(
            parse_sharded_name("sharded:sharded:rmi:0:4"),
            Some(("sharded:rmi:0", 4))
        );
        // Missing count in every spelling: no colon, trailing colon, bare
        // prefix.
        assert_eq!(parse_sharded_name("sharded:rmi"), None);
        assert_eq!(parse_sharded_name("sharded:rmi:"), None);
        assert_eq!(parse_sharded_name("sharded:"), None);
        assert_eq!(parse_sharded_name("sharded"), None);
        assert_eq!(parse_sharded_name(""), None);
    }

    #[test]
    fn parse_sharded_name_does_not_trim_whitespace() {
        // Whitespace around the count makes the count unparseable...
        assert_eq!(parse_sharded_name("sharded:rmi: 8"), None);
        assert_eq!(parse_sharded_name("sharded:rmi:8 "), None);
        // ...while whitespace in the inner name is preserved verbatim (the
        // registry, not the parser, decides such a name resolves nowhere).
        assert_eq!(parse_sharded_name("sharded: rmi:8"), Some((" rmi", 8)));
        assert!(!IndexRegistry::with_defaults().resolves("sharded: rmi:8"));
        assert_eq!(parse_sharded_name(" sharded:rmi:8"), None);
    }

    #[test]
    fn parse_sharded_name_nests_arbitrarily_deep() {
        assert_eq!(
            parse_sharded_name("sharded:sharded:sharded:btree:2:3:4"),
            Some(("sharded:sharded:btree:2:3", 4))
        );
        // Peeling layer by layer terminates at the innermost name.
        let mut name = "sharded:sharded:sharded:btree:2:3:4";
        let mut counts = Vec::new();
        while let Some((inner, n)) = parse_sharded_name(name) {
            counts.push(n);
            name = inner;
        }
        assert_eq!(name, "btree");
        assert_eq!(counts, vec![4, 3, 2]);
        assert!(IndexRegistry::with_defaults().resolves("sharded:sharded:sharded:btree:2:3:4"));
    }

    #[test]
    fn parse_sharded_name_handles_numeric_and_huge_counts() {
        // A numeric inner name parses; resolution is the registry's call.
        assert_eq!(parse_sharded_name("sharded:42:3"), Some(("42", 3)));
        // Counts beyond usize fail the parse rather than wrapping.
        assert_eq!(
            parse_sharded_name("sharded:rmi:99999999999999999999999999"),
            None
        );
        // `usize::from_str` tolerates a leading plus; minus and decimals
        // stay rejected.
        assert_eq!(parse_sharded_name("sharded:rmi:+8"), Some(("rmi", 8)));
        assert_eq!(parse_sharded_name("sharded:rmi:-8"), None);
        assert_eq!(parse_sharded_name("sharded:rmi:8.0"), None);
    }

    #[test]
    fn sharded_agrees_with_unsharded_on_every_probe() {
        let ks = keyset(1_000);
        let registry = IndexRegistry::with_defaults();
        let plain = registry.build("rmi", &ks).unwrap();
        let sharded = registry.build("sharded:rmi:8", &ks).unwrap();
        assert_eq!(sharded.len(), plain.len());

        let mut probes: Vec<Key> = ks.keys().to_vec();
        probes.extend([0, 1, 5_000, ks.max_key() + 1, Key::MAX]);
        for &k in &probes {
            let a = sharded.lookup(k);
            let b = plain.lookup(k);
            assert_eq!(a.found, b.found, "membership of {k}");
            assert_eq!(a.pos, b.pos, "position of {k}");
        }
    }

    #[test]
    fn batch_matches_single_lookups_across_chunking() {
        let ks = keyset(500);
        let sharded = ShardedIndex::build_with(&ks, 7, 4, |part| {
            IndexRegistry::with_defaults().build("btree", part)
        })
        .unwrap();
        // 4,000 probes stay below PARALLEL_BATCH_THRESHOLD (serial,
        // pooled-scratch path); 6,000 exceed it (scoped-thread fan-out).
        for n in [4_000u64, 6_000] {
            let probes: Vec<Key> = (0..n).map(|i| i * 2).collect();
            let batch = LearnedIndex::lookup_batch(&sharded, &probes);
            assert_eq!(batch.len(), probes.len());
            for (&k, &b) in probes.iter().zip(&batch) {
                assert_eq!(b, sharded.lookup_one(k), "probe {k}");
            }
        }
    }

    #[test]
    fn batch_scratch_is_pooled_and_reused() {
        let ks = keyset(600);
        let sharded = ShardedIndex::build_with(&ks, 5, 1, |part| {
            IndexRegistry::with_defaults().build("rmi", part)
        })
        .unwrap();
        assert_eq!(sharded.scratch.idle(), 0);
        let probes: Vec<Key> = ks.keys().iter().step_by(3).copied().collect();
        let mut out = Vec::new();
        LearnedIndex::lookup_batch_into(&sharded, &probes, &mut out);
        assert_eq!(sharded.scratch.idle(), 1);
        // A second batch reuses the pooled scratch rather than growing
        // the pool, and still answers identically.
        LearnedIndex::lookup_batch_into(&sharded, &probes, &mut out);
        assert_eq!(sharded.scratch.idle(), 1);
        for (&k, &b) in probes.iter().zip(&out) {
            assert_eq!(b, sharded.lookup_one(k), "probe {k}");
        }
    }

    #[test]
    fn shard_count_clamps_to_keyset_size() {
        let ks = keyset(5);
        let sharded = ShardedIndex::build_with(&ks, 64, 1, |part| {
            IndexRegistry::with_defaults().build("btree", part)
        })
        .unwrap();
        assert_eq!(sharded.shard_count(), 5);
        for &k in ks.keys() {
            assert!(sharded.lookup_one(k).found);
        }
    }

    #[test]
    fn zero_shards_is_an_invariant_error() {
        let err = ShardedIndex::build_with(&keyset(10), 0, 1, |part| {
            IndexRegistry::with_defaults().build("btree", part)
        });
        assert!(matches!(err, Err(LisError::Invariant(_))));
    }

    #[test]
    fn shard_build_errors_propagate() {
        let err = ShardedIndex::build_with(&keyset(10), 2, 2, |_| {
            Err(LisError::Invariant("boom".into()))
        });
        assert!(err.is_err());
    }

    #[test]
    fn loss_is_key_weighted_and_memory_sums_shards() {
        let ks = keyset(900);
        let cfg = ShardConfig::new(3, |part| IndexRegistry::with_defaults().build("rmi", part));
        let sharded = ShardedIndex::build(&ks, &cfg).unwrap();
        let per_shard: f64 = sharded
            .shards()
            .iter()
            .map(|s| s.loss() * s.len() as f64)
            .sum::<f64>()
            / ks.len() as f64;
        assert!((sharded.loss() - per_shard).abs() < 1e-12);
        let inner_mem: usize = sharded.shards().iter().map(DynIndex::memory_bytes).sum();
        assert!(sharded.memory_bytes() > inner_mem);
    }

    #[test]
    fn nested_sharding_resolves() {
        let ks = keyset(400);
        let registry = IndexRegistry::with_defaults();
        let nested = registry.build("sharded:sharded:btree:2:4", &ks).unwrap();
        assert_eq!(nested.len(), ks.len());
        let plain = registry.build("btree", &ks).unwrap();
        for &k in ks.keys().iter().step_by(17) {
            assert_eq!(nested.lookup(k).pos, plain.lookup(k).pos);
        }
    }
}
