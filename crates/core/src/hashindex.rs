//! A learned hash index — the *point index* of the original LIS paper.
//!
//! Kraska et al. propose replacing a hash map's hash function with the
//! keyset's CDF model: `slot(k) = ⌊M · F(k)⌋` where `F` is the learned CDF
//! and `M` the table size. On data the model captures well this spreads
//! keys almost perfectly (few collisions); a classic random hash has
//! binomial collisions regardless of data.
//!
//! The poisoning angle mirrors the range-index attack: the model is trained
//! on the (poisoned) CDF, so an adversary who bends the CDF makes the
//! *legitimate* keys' predicted slots pile up — collision chains grow, and
//! with them the lookup cost. The `ablation_learned_hash` bench measures
//! that effect; this module supplies the substrate with both the learned
//! and a multiplicative-random baseline hash.

use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::linreg::LinearModel;

/// Build configuration for [`HashIndex`] under the [`LearnedIndex`] API:
/// the table is sized relative to the keyset (`slots = ⌈n · slots_per_key⌉`)
/// so one config serves any workload scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HashIndexConfig {
    /// Buckets per stored key (the inverse load factor), > 0.
    pub slots_per_key: f64,
    /// Slot-assignment policy.
    pub kind: HashKind,
}

impl Default for HashIndexConfig {
    fn default() -> Self {
        Self {
            slots_per_key: 1.25,
            kind: HashKind::Learned,
        }
    }
}

/// Slot-assignment policy for [`HashIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashKind {
    /// Learned: slot from the linear CDF model (scaled rank prediction).
    Learned,
    /// Baseline: a SplitMix64-finalized hash — data-oblivious, behaves
    /// like a random function on distinct keys.
    Random,
}

/// A chained hash table over a fixed slot count.
#[derive(Debug, Clone)]
pub struct HashIndex {
    kind: HashKind,
    model: Option<LinearModel>,
    buckets: Vec<Vec<Key>>,
    len: usize,
}

impl HashIndex {
    /// Builds the table with `slots` buckets over the keys of `ks`.
    ///
    /// For [`HashKind::Learned`] the CDF model is trained on `ks` itself —
    /// which is exactly why poisoning the keyset degrades placement of the
    /// legitimate keys.
    pub fn build(ks: &KeySet, slots: usize, kind: HashKind) -> Result<Self> {
        if slots == 0 {
            return Err(LisError::Invariant(
                "hash table needs at least one slot".into(),
            ));
        }
        let model = match kind {
            HashKind::Learned => Some(LinearModel::fit(ks)?),
            HashKind::Random => None,
        };
        let mut table = Self {
            kind,
            model,
            buckets: vec![Vec::new(); slots],
            len: 0,
        };
        for &k in ks.keys() {
            let slot = table.slot(k);
            table.buckets[slot].push(k);
            table.len += 1;
        }
        Ok(table)
    }

    /// The bucket index for `key` under the configured policy.
    pub fn slot(&self, key: Key) -> usize {
        let m = self.buckets.len();
        match self.kind {
            HashKind::Learned => {
                let model = self.model.as_ref().expect("learned table has a model");
                // Normalized predicted rank ∈ [0, 1) scaled to the table.
                let frac =
                    ((model.predict(key) - 1.0) / model.n as f64).clamp(0.0, 1.0 - f64::EPSILON);
                (frac * m as f64) as usize
            }
            HashKind::Random => {
                // SplitMix64 finalizer: structured inputs (arithmetic
                // progressions) still land uniformly.
                let mut h = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
                h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                h ^= h >> 31;
                (h % m as u64) as usize
            }
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets.
    pub fn num_slots(&self) -> usize {
        self.buckets.len()
    }

    /// Looks up `key`; `cost` counts the chain elements inspected.
    pub fn lookup(&self, key: Key) -> Lookup {
        let bucket = &self.buckets[self.slot(key)];
        for (i, &k) in bucket.iter().enumerate() {
            if k == key {
                return Lookup::membership(true, i + 1);
            }
        }
        Lookup::membership(false, bucket.len())
    }

    /// Mean chain length over occupied buckets.
    pub fn mean_chain(&self) -> f64 {
        let occupied: Vec<usize> = self
            .buckets
            .iter()
            .map(Vec::len)
            .filter(|&l| l > 0)
            .collect();
        if occupied.is_empty() {
            return 0.0;
        }
        occupied.iter().sum::<usize>() as f64 / occupied.len() as f64
    }

    /// Longest collision chain.
    pub fn max_chain(&self) -> usize {
        self.buckets.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Expected probes for a *successful* lookup of a uniformly random
    /// stored key: `Σ over buckets of len·(len+1)/2 / n`.
    pub fn expected_probes(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let total: f64 = self
            .buckets
            .iter()
            .map(|b| b.len() as f64 * (b.len() as f64 + 1.0) / 2.0)
            .sum();
        total / self.len as f64
    }
}

impl LearnedIndex for HashIndex {
    type Config = HashIndexConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        if cfg.slots_per_key <= 0.0 || cfg.slots_per_key.is_nan() {
            return Err(LisError::Invariant("hash slots_per_key must be > 0".into()));
        }
        let slots = ((ks.len() as f64 * cfg.slots_per_key).ceil() as usize).max(1);
        HashIndex::build(ks, slots, cfg.kind)
    }

    fn lookup(&self, key: Key) -> Lookup {
        HashIndex::lookup(self, key)
    }

    /// MSE of the learned CDF model; `0.0` for the random-hash baseline.
    fn loss(&self) -> f64 {
        self.model.as_ref().map(|m| m.mse).unwrap_or(0.0)
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buckets.len() * std::mem::size_of::<Vec<Key>>()
            + self.len * std::mem::size_of::<Key>()
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn rejects_zero_slots() {
        let ks = uniform(10, 2);
        assert!(HashIndex::build(&ks, 0, HashKind::Random).is_err());
    }

    #[test]
    fn all_keys_found_both_kinds() {
        let ks = uniform(1_000, 7);
        for kind in [HashKind::Learned, HashKind::Random] {
            let t = HashIndex::build(&ks, 2_000, kind).unwrap();
            for &k in ks.keys() {
                assert!(t.lookup(k).found, "{kind:?} key {k}");
            }
            assert!(!t.lookup(3).found);
            assert_eq!(t.len(), 1_000);
        }
    }

    #[test]
    fn learned_hash_beats_random_on_linear_data() {
        // On an exactly-linear CDF the learned slot assignment is a
        // perfect spread; random hashing has birthday collisions.
        let ks = uniform(10_000, 13);
        let learned = HashIndex::build(&ks, 10_000, HashKind::Learned).unwrap();
        let random = HashIndex::build(&ks, 10_000, HashKind::Random).unwrap();
        assert!(
            learned.expected_probes() < random.expected_probes(),
            "learned {} vs random {}",
            learned.expected_probes(),
            random.expected_probes()
        );
        assert!(learned.max_chain() <= 2);
    }

    #[test]
    fn random_hash_is_data_independent() {
        // Same keys, different order/domain shape — chains statistically
        // identical because the hash ignores the CDF.
        let a = HashIndex::build(&uniform(5_000, 3), 5_000, HashKind::Random).unwrap();
        let skewed = KeySet::from_keys((1..=5_000u64).map(|i| i * i).collect()).unwrap();
        let b = HashIndex::build(&skewed, 5_000, HashKind::Random).unwrap();
        let diff = (a.expected_probes() - b.expected_probes()).abs();
        assert!(
            diff < 0.2,
            "random hash should not care about the CDF: {diff}"
        );
    }

    #[test]
    fn poisoning_inflates_learned_chains() {
        // Bend the CDF with a poison clump; legitimate keys pile up.
        let clean = uniform(5_000, 20);
        let clean_table = HashIndex::build(&clean, 6_000, HashKind::Learned).unwrap();

        let mut poisoned = clean.clone();
        for j in 0..500u64 {
            let k = 50_001 + j;
            if !poisoned.contains(k) {
                poisoned.insert(k).unwrap();
            }
        }
        let poisoned_table = HashIndex::build(&poisoned, 6_600, HashKind::Learned).unwrap();
        assert!(
            poisoned_table.expected_probes() > clean_table.expected_probes(),
            "poisoning should inflate chains: {} vs {}",
            poisoned_table.expected_probes(),
            clean_table.expected_probes()
        );
    }

    #[test]
    fn expected_probes_closed_form() {
        // Two buckets: [a, b], [c]: successful probes = (1+2+1)/3.
        let ks = KeySet::from_keys(vec![1, 2, 3]).unwrap();
        let mut t = HashIndex::build(&ks, 2, HashKind::Random).unwrap();
        // Rebuild buckets deterministically for the arithmetic check.
        t.buckets = vec![vec![1, 2], vec![3]];
        t.len = 3;
        assert!((t.expected_probes() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.max_chain(), 2);
        assert!((t.mean_chain() - 1.5).abs() < 1e-12);
    }
}
