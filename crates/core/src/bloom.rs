//! Existence indexes: a classic Bloom filter and a learned variant.
//!
//! The original LIS paper proposes learned replacements for all three index
//! families — range (RMI), point (hash), and *existence* (Bloom filter).
//! This module completes the trio for the poisoning study:
//!
//! * [`BloomFilter`] — textbook `k`-hash bitset filter, data-oblivious;
//! * [`LearnedBloom`] — the "model + backup filter" construction
//!   (Kraska et al., analyzed by Mitzenmacher): a model predicts the rank
//!   of a queried key; keys whose prediction lands within the model's
//!   training error window of an actual stored position are claimed
//!   present, and a small backup Bloom filter catches the model's false
//!   negatives.
//!
//! The poisoning angle: the learned filter's false-positive rate is
//! proportional to the model's error window. Poisoning the training CDF
//! widens that window, so non-member queries near the poisoned regions
//! pass the model check — the existence-index analogue of Ratio Loss.

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};
use crate::linreg::LinearModel;

/// A classic Bloom filter over `u64` keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    len: usize,
}

impl BloomFilter {
    /// Builds a filter sized for `expected` insertions at the target
    /// false-positive rate (standard `m = −n·ln p / ln²2`, `k = m/n·ln 2`).
    pub fn with_rate(expected: usize, fp_rate: f64) -> Result<Self> {
        if !(0.0 < fp_rate && fp_rate < 1.0) {
            return Err(LisError::InvalidBudget(format!(
                "fp rate {fp_rate} outside (0,1)"
            )));
        }
        if expected == 0 {
            return Err(LisError::EmptyKeySet);
        }
        let ln2 = std::f64::consts::LN_2;
        let m = (-(expected as f64) * fp_rate.ln() / (ln2 * ln2))
            .ceil()
            .max(64.0) as usize;
        let k = ((m as f64 / expected as f64) * ln2)
            .round()
            .clamp(1.0, 16.0) as u32;
        Ok(Self {
            bits: vec![0; m.div_ceil(64)],
            num_bits: m,
            num_hashes: k,
            len: 0,
        })
    }

    fn positions(&self, key: Key) -> impl Iterator<Item = usize> + '_ {
        // Kirsch–Mitzenmacher double hashing: h_i = h1 + i·h2.
        let h1 = splitmix(key);
        let h2 = splitmix(key ^ 0xDEAD_BEEF_CAFE_F00D) | 1;
        let m = self.num_bits as u64;
        (0..self.num_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: Key) {
        let positions: Vec<usize> = self.positions(key).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.len += 1;
    }

    /// Whether the key *may* be present (false positives possible, false
    /// negatives impossible).
    pub fn may_contain(&self, key: Key) -> bool {
        self.positions(key)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// Number of inserted keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the bit array.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Empirical false-positive rate over a probe set of non-members.
    pub fn empirical_fpr(&self, non_members: &[Key]) -> f64 {
        if non_members.is_empty() {
            return 0.0;
        }
        let fp = non_members.iter().filter(|&&k| self.may_contain(k)).count();
        fp as f64 / non_members.len() as f64
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A learned existence index: CDF model + error window + backup filter.
#[derive(Debug, Clone)]
pub struct LearnedBloom {
    model: LinearModel,
    keys: Vec<Key>,
    /// Half-width of the acceptance window (the model's max training
    /// error, ceiled).
    window: usize,
    backup: BloomFilter,
}

impl LearnedBloom {
    /// Builds the learned filter over `ks` with a backup filter at
    /// `backup_rate` for model false negatives.
    ///
    /// With an exact sorted array at hand the model check is
    /// `∃ stored key within `window` positions of the prediction whose key
    /// equals the query`; the *learned* saving in a real deployment is that
    /// the array lives on slow storage and most negatives are rejected by
    /// the model alone. Here the structure is kept in memory so the
    /// *false-positive* behaviour (what poisoning attacks) is exact.
    pub fn build(ks: &KeySet, backup_rate: f64) -> Result<Self> {
        let model = LinearModel::fit(ks)?;
        let window = model.max_abs_error(ks).ceil() as usize;
        // Backup filter for keys the window check would miss (with an
        // exact window none are missed; a real system truncates the window
        // for speed — we mirror that by capping at 2·window/3, which
        // forces some traffic into the backup filter, as in deployments).
        let capped = (window * 2 / 3).max(1);
        let mut backup = BloomFilter::with_rate(ks.len().max(8), backup_rate)?;
        let keys = ks.keys().to_vec();
        for (i, &k) in keys.iter().enumerate() {
            let predicted = model.predict_pos(k);
            if predicted.abs_diff(i) > capped {
                backup.insert(k);
            }
        }
        Ok(Self {
            model,
            keys,
            window: capped,
            backup,
        })
    }

    /// The acceptance window half-width — poisoning inflates this.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Fraction of stored keys that overflowed into the backup filter.
    pub fn backup_fraction(&self) -> f64 {
        self.backup.len() as f64 / self.keys.len() as f64
    }

    /// Membership query: model-window check, then backup filter.
    pub fn may_contain(&self, key: Key) -> bool {
        let center = self.model.predict_pos(key);
        let lo = center.saturating_sub(self.window);
        let hi = (center + self.window).min(self.keys.len() - 1);
        if self.keys[lo..=hi].binary_search(&key).is_ok() {
            return true;
        }
        self.backup.may_contain(key)
    }

    /// Empirical false-positive rate over non-member probes.
    ///
    /// For the *exact*-window variant this is just the backup filter's FPR;
    /// the interesting deployment-faithful metric is
    /// [`LearnedBloom::window`] itself — the number of storage slots a
    /// negative query must touch — which poisoning inflates directly.
    pub fn empirical_fpr(&self, non_members: &[Key]) -> f64 {
        if non_members.is_empty() {
            return 0.0;
        }
        let fp = non_members.iter().filter(|&&k| self.may_contain(k)).count();
        fp as f64 / non_members.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn bloom_validates_inputs() {
        assert!(BloomFilter::with_rate(0, 0.01).is_err());
        assert!(BloomFilter::with_rate(100, 0.0).is_err());
        assert!(BloomFilter::with_rate(100, 1.0).is_err());
    }

    #[test]
    fn bloom_no_false_negatives() {
        let mut f = BloomFilter::with_rate(1_000, 0.01).unwrap();
        for k in 0..1_000u64 {
            f.insert(k * 3);
        }
        for k in 0..1_000u64 {
            assert!(f.may_contain(k * 3), "false negative at {k}");
        }
    }

    #[test]
    fn bloom_fpr_near_target() {
        let mut f = BloomFilter::with_rate(10_000, 0.01).unwrap();
        for k in 0..10_000u64 {
            f.insert(k);
        }
        let probes: Vec<Key> = (0..20_000u64).map(|i| 1_000_000 + i * 7).collect();
        let fpr = f.empirical_fpr(&probes);
        assert!(fpr < 0.03, "fpr {fpr} too far above the 1% target");
    }

    #[test]
    fn bloom_sizing_formulas() {
        let f = BloomFilter::with_rate(1_000, 0.01).unwrap();
        // m ≈ 9.59 bits/key at 1%, k ≈ 7.
        assert!((f.num_bits() as f64 / 1_000.0 - 9.6).abs() < 0.5);
        assert_eq!(f.num_hashes(), 7);
    }

    #[test]
    fn learned_bloom_no_false_negatives() {
        let ks = uniform(2_000, 9);
        let lb = LearnedBloom::build(&ks, 0.01).unwrap();
        for &k in ks.keys() {
            assert!(lb.may_contain(k), "false negative at {k}");
        }
    }

    #[test]
    fn learned_bloom_rejects_most_non_members() {
        let ks = uniform(2_000, 10);
        let lb = LearnedBloom::build(&ks, 0.01).unwrap();
        let probes: Vec<Key> = (0..5_000u64).map(|i| i * 4 + 1).collect();
        let fpr = lb.empirical_fpr(&probes);
        assert!(fpr < 0.05, "fpr {fpr}");
    }

    #[test]
    fn poisoning_widens_the_window() {
        let clean = uniform(2_000, 10);
        let clean_lb = LearnedBloom::build(&clean, 0.01).unwrap();

        let mut poisoned = clean.clone();
        for j in 0..200u64 {
            let k = 10_001 + j;
            if !poisoned.contains(k) {
                poisoned.insert(k).unwrap();
            }
        }
        let poisoned_lb = LearnedBloom::build(&poisoned, 0.01).unwrap();
        assert!(
            poisoned_lb.window() > clean_lb.window(),
            "poisoning should widen the acceptance window: {} vs {}",
            poisoned_lb.window(),
            clean_lb.window()
        );
    }

    #[test]
    fn backup_fraction_bounded() {
        let ks = uniform(1_000, 7);
        let lb = LearnedBloom::build(&ks, 0.01).unwrap();
        assert!(lb.backup_fraction() <= 1.0);
    }
}
