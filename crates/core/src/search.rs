//! Last-mile search: locating a key near a model's predicted position.
//!
//! A learned index predicts an approximate position and then performs a
//! local search around it ("if the prediction is not accurate then a local
//! search around the predicted location discovers the record",
//! Section III-A). We implement the standard *exponential (galloping)
//! search* outward from the prediction followed by binary search on the
//! bracketed range, and count key comparisons so experiments can report the
//! search cost that poisoning inflates.
//!
//! The hot path is [`bounded_search_with_fallback`]: indexes that store a
//! per-model maximum training error (`max_err`) search only the
//! `±(max_err + 1)` window around the prediction with a branchless binary
//! search, and gallop outward *only* when a miss lands on a window edge
//! (out-of-bound prediction — absent keys or root-routing mispredicts).
//! Every function reports `comparisons` as exactly the number of key
//! comparisons performed, so `Lookup.cost` keeps the paper's
//! comparison-count semantics no matter which search strategy answered.

// lis-analysis: zone(zero-alloc)
// Every routine in this file runs per-probe inside the serve loop; the
// zero-alloc gate (crates/server/tests/zero_alloc.rs) counts on none of
// them touching the allocator.

use crate::keys::Key;

/// Outcome of a last-mile search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Index of the key in the sorted slice, if found.
    pub pos: Option<usize>,
    /// Number of key comparisons performed.
    pub comparisons: usize,
}

/// Exponential + binary search for `key` in sorted `keys`, starting from
/// `guess` (clamped). Returns the index and the comparison count.
///
/// Complexity is `O(log d)` where `d = |guess − true_pos|`, so the cost of a
/// lookup is exactly the logarithm of the model's prediction error — the
/// mechanism by which the paper's Ratio-Loss increase translates into a
/// lookup-time slowdown.
pub fn exponential_search(keys: &[Key], key: Key, guess: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let guess = guess.min(keys.len() - 1);
    let mut comparisons = 1usize;
    if keys[guess] == key {
        return SearchResult {
            pos: Some(guess),
            comparisons,
        };
    }

    // Gallop in the direction of the key.
    let (lo, hi): (usize, usize);
    if keys[guess] < key {
        // `keys[guess] < key` with nothing to the right: proven absent.
        if guess == keys.len() - 1 {
            return SearchResult {
                pos: None,
                comparisons,
            };
        }
        let mut next_lo = guess + 1;
        let mut step = 1usize;
        let found_hi: usize;
        loop {
            // Clamp the probe instead of breaking early: comparing the
            // clamped probe either closes the bracket at a *proven* bound
            // or proves the key exceeds the largest key — the old
            // unproven `keys.len() - 1` widening paid a full binary
            // search for every beyond-max miss.
            let probe = guess.saturating_add(step).min(keys.len() - 1);
            comparisons += 1;
            if keys[probe] >= key {
                found_hi = probe;
                break;
            }
            if probe == keys.len() - 1 {
                // The largest key compares below `key`: absent, and the
                // bracket is empty.
                return SearchResult {
                    pos: None,
                    comparisons,
                };
            }
            next_lo = probe + 1;
            step <<= 1;
        }
        lo = next_lo;
        hi = found_hi;
    } else {
        let mut next_hi = guess.saturating_sub(1);
        let mut step = 1usize;
        let found_lo: usize;
        loop {
            if step > guess {
                found_lo = 0;
                break;
            }
            let probe = guess - step;
            comparisons += 1;
            if keys[probe] <= key {
                found_lo = probe;
                break;
            }
            if probe == 0 {
                found_lo = 0;
                break;
            }
            next_hi = probe - 1;
            step <<= 1;
        }
        lo = found_lo;
        hi = next_hi;
        if hi < lo {
            return SearchResult {
                pos: None,
                comparisons,
            };
        }
    }

    // Binary search on [lo, hi].
    let (pos, cmp) = binary_search_counted(&keys[lo..=hi], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons: comparisons + cmp,
    }
}

/// Plain binary search with a comparison counter, used both by the last-mile
/// search and by the B+-tree baseline.
pub fn binary_search_counted(keys: &[Key], key: Key) -> (Option<usize>, usize) {
    let mut lo = 0usize;
    let mut hi = keys.len();
    let mut comparisons = 0usize;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        comparisons += 1;
        match keys[mid].cmp(&key) {
            std::cmp::Ordering::Equal => return (Some(mid), comparisons),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    (None, comparisons)
}

/// Binary search restricted to a window `[center − radius, center + radius]`
/// (clamped), the "error bound" search of the original LIS design where the
/// model stores its maximum training error.
pub fn bounded_search(keys: &[Key], key: Key, center: usize, radius: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let center = center.min(keys.len() - 1);
    let lo = center.saturating_sub(radius);
    let hi = center.saturating_add(radius).min(keys.len() - 1);
    let (pos, comparisons) = binary_search_counted(&keys[lo..=hi], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons,
    }
}

/// Branchless lower bound over a sorted slice: index of the *last* element
/// `≤ key`, or `0` when every element exceeds `key`, plus the comparison
/// count. The loop body has no data-dependent branch (the comparison feeds
/// an index increment the compiler lowers to a conditional move), so the
/// comparison count is exactly `⌈log₂ n⌉` regardless of the data — the
/// right shape for the short, bracketed ranges of error-bounded search.
fn branchless_lower_bound(keys: &[Key], key: Key) -> (usize, usize) {
    let mut base = 0usize;
    let mut size = keys.len();
    let mut comparisons = 0usize;
    while size > 1 {
        let half = size / 2;
        comparisons += 1;
        base += usize::from(keys[base + half] <= key) * half;
        size -= half;
    }
    (base, comparisons)
}

/// The branchless probe shared by [`branchless_search_counted`] and
/// [`bounded_search_with_fallback`]: lower bound plus one final three-way
/// comparison. Returns `(base, keys[base] ⋄ key, comparisons)`; callers
/// interpret the ordering (`Equal` → hit at `base`, `Less`/`Greater` →
/// which side of the slice the key fell off). Requires a non-empty slice.
fn branchless_probe(keys: &[Key], key: Key) -> (usize, std::cmp::Ordering, usize) {
    let (base, comparisons) = branchless_lower_bound(keys, key);
    (base, keys[base].cmp(&key), comparisons + 1)
}

/// Branchless counterpart of [`binary_search_counted`] for bracketed
/// ranges: same contract, but the comparison count is data-independent
/// (`⌈log₂ n⌉ + 1` for any non-empty slice — no early exit on equality).
/// This is the window search the error-bounded lookup hot path runs
/// (through [`bounded_search_with_fallback`], which shares the probe).
pub fn branchless_search_counted(keys: &[Key], key: Key) -> (Option<usize>, usize) {
    if keys.is_empty() {
        return (None, 0);
    }
    let (base, ordering, comparisons) = branchless_probe(keys, key);
    if ordering == std::cmp::Ordering::Equal {
        (Some(base), comparisons)
    } else {
        (None, comparisons)
    }
}

/// Monotone routing step for sorted-batch sweeps: the largest index `i`
/// with `bound(items[i]) ≤ key`, searched *forward* from `from` (`0` when
/// every bound exceeds `key`). Requires `bound(items[from]) ≤ key` or
/// `from == 0` — exactly the invariant a cursor over ascending probes
/// maintains. Gallops then binary-searches the bracket, so one step costs
/// `O(log gap)`: dense batches advance in a probe or two, sparse batches
/// degrade gracefully to binary-search cost instead of scanning every
/// entry in between.
pub(crate) fn monotone_route_by<T>(
    items: &[T],
    from: usize,
    key: Key,
    bound: impl Fn(&T) -> Key,
) -> usize {
    let n = items.len();
    let mut lo = from;
    let mut step = 1usize;
    loop {
        let probe = lo.saturating_add(step);
        if probe >= n || bound(&items[probe]) > key {
            break;
        }
        lo = probe;
        step <<= 1;
    }
    let hi = lo.saturating_add(step).min(n);
    let within = items[lo..hi].partition_point(|item| bound(item) <= key);
    lo + within.saturating_sub(1)
}

/// Error-bounded last-mile search: branchless binary search on the window
/// `[center − radius, center + radius]` (clamped), falling back to
/// [`exponential_search`] only when the miss is *out of bound* — the key
/// compares beyond the window edge, so the window provably cannot decide
/// absence. For member keys whose prediction error is within `radius`
/// (the invariant `max_err` storage provides) the fallback never fires;
/// for in-window misses absence is proven without it.
///
/// Cost semantics are unchanged: `comparisons` is exactly the number of
/// key comparisons performed, including any fallback galloping.
pub fn bounded_search_with_fallback(
    keys: &[Key],
    key: Key,
    center: usize,
    radius: usize,
) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let center = center.min(keys.len() - 1);
    let lo = center.saturating_sub(radius);
    let hi = center.saturating_add(radius).min(keys.len() - 1);
    let window = &keys[lo..=hi];
    let (base, ordering, comparisons) = branchless_probe(window, key);
    match ordering {
        std::cmp::Ordering::Equal => SearchResult {
            pos: Some(lo + base),
            comparisons,
        },
        // `key` exceeds the window's lower bound element. If that element
        // is the window's last and the array continues, the key may lie
        // beyond the window: gallop right from the edge. Otherwise the
        // next window element exceeds `key` and absence is proven.
        std::cmp::Ordering::Less => {
            if base == window.len() - 1 && hi + 1 < keys.len() {
                let fb = exponential_search(keys, key, hi);
                SearchResult {
                    pos: fb.pos,
                    comparisons: comparisons + fb.comparisons,
                }
            } else {
                SearchResult {
                    pos: None,
                    comparisons,
                }
            }
        }
        // Every window element exceeds `key` (lower-bound property ⇒
        // `base == 0`): out of bound on the left unless the window starts
        // the array.
        std::cmp::Ordering::Greater => {
            if lo > 0 {
                let fb = exponential_search(keys, key, lo);
                SearchResult {
                    pos: fb.pos,
                    comparisons: comparisons + fb.comparisons,
                }
            } else {
                SearchResult {
                    pos: None,
                    comparisons,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Key> {
        (0..1000u64).map(|i| i * 3).collect()
    }

    #[test]
    fn finds_with_exact_guess() {
        let ks = keys();
        let r = exponential_search(&ks, 300, 100);
        assert_eq!(r.pos, Some(100));
        assert_eq!(r.comparisons, 1);
    }

    #[test]
    fn finds_with_far_guess_right() {
        let ks = keys();
        let r = exponential_search(&ks, 2997, 0); // true pos 999
        assert_eq!(r.pos, Some(999));
        assert!(r.comparisons <= 2 * (1000f64.log2() as usize) + 4);
    }

    #[test]
    fn finds_with_far_guess_left() {
        let ks = keys();
        let r = exponential_search(&ks, 0, 999);
        assert_eq!(r.pos, Some(0));
    }

    #[test]
    fn absent_key_returns_none() {
        let ks = keys();
        for guess in [0usize, 500, 999] {
            let r = exponential_search(&ks, 301, guess); // 301 not a multiple of 3
            assert_eq!(r.pos, None, "guess={guess}");
        }
    }

    #[test]
    fn all_keys_found_from_any_guess() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(37) {
            for guess in [0usize, i / 2, i, (i + 500).min(999)] {
                let r = exponential_search(&ks, k, guess);
                assert_eq!(r.pos, Some(i), "key {k} guess {guess}");
            }
        }
    }

    #[test]
    fn comparisons_grow_with_prediction_error() {
        let ks = keys();
        let near = exponential_search(&ks, ks[500], 498).comparisons;
        let far = exponential_search(&ks, ks[500], 0).comparisons;
        assert!(far > near, "far={} near={}", far, near);
    }

    #[test]
    fn empty_slice() {
        let r = exponential_search(&[], 5, 0);
        assert_eq!(r.pos, None);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let ks = keys();
        // Key at 999, window around 0 with radius 10 cannot find it.
        let r = bounded_search(&ks, ks[999], 0, 10);
        assert_eq!(r.pos, None);
        let r = bounded_search(&ks, ks[999], 995, 10);
        assert_eq!(r.pos, Some(999));
    }

    #[test]
    fn binary_search_counted_matches_std() {
        let ks = keys();
        for k in [0u64, 3, 1500, 2997, 5, 10_000] {
            let (pos, _) = binary_search_counted(&ks, k);
            assert_eq!(pos, ks.binary_search(&k).ok());
        }
    }

    #[test]
    fn beyond_max_gallop_proves_absence_cheaply() {
        // Regression test for the upward-gallop fallback: a key beyond the
        // largest element used to widen the bracket to `keys.len() - 1`
        // and binary-search a range already proven empty. The tightened
        // gallop returns as soon as the largest key compares below the
        // probe: comparison cost is the gallop alone (≤ log₂(n) + 2),
        // with no binary-search tail.
        let ks = keys(); // 1000 keys, max 2997
        let r = exponential_search(&ks, 5_000, 0);
        assert_eq!(r.pos, None);
        let gallop_only = (1000f64.log2().ceil() as usize) + 2;
        assert!(
            r.comparisons <= gallop_only,
            "beyond-max miss should cost only the gallop, got {}",
            r.comparisons
        );
        // From the last slot the very first comparison settles it.
        let r = exponential_search(&ks, 5_000, 999);
        assert_eq!(r.pos, None);
        assert_eq!(r.comparisons, 1);
    }

    #[test]
    fn tightened_gallop_still_finds_every_key() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate() {
            for guess in [0usize, i.saturating_sub(1), i, (i + 37).min(999), 999] {
                let r = exponential_search(&ks, k, guess);
                assert_eq!(r.pos, Some(i), "key {k} guess {guess}");
            }
        }
    }

    #[test]
    fn branchless_matches_binary_search() {
        let ks = keys();
        for k in [0u64, 3, 4, 300, 1500, 2996, 2997, 5_000] {
            let (pos, _) = branchless_search_counted(&ks, k);
            assert_eq!(pos, ks.binary_search(&k).ok(), "key {k}");
        }
        assert_eq!(branchless_search_counted(&[], 5), (None, 0));
        assert_eq!(branchless_search_counted(&[7], 7), (Some(0), 1));
        assert_eq!(branchless_search_counted(&[7], 8), (None, 1));
    }

    #[test]
    fn branchless_comparison_count_is_data_independent() {
        let ks = keys();
        for width in [1usize, 2, 3, 7, 64, 100, 1000] {
            let expected = (width as f64).log2().ceil() as usize + 1;
            let mut counts = std::collections::BTreeSet::new();
            for k in [0u64, ks[width / 2], ks[width - 1], 10_000] {
                let (_, c) = branchless_search_counted(&ks[..width], k);
                counts.insert(c);
                assert_eq!(c, expected, "width {width} key {k}");
            }
            assert_eq!(counts.len(), 1, "width {width} count varied");
        }
    }

    #[test]
    fn bounded_fallback_finds_members_within_radius_without_galloping() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(13) {
            for radius in [1usize, 4, 16] {
                let r = bounded_search_with_fallback(&ks, k, i, radius);
                assert_eq!(r.pos, Some(i), "key {k} radius {radius}");
                let window = 2 * radius + 1;
                let bound = (window as f64).log2().ceil() as usize + 1;
                assert!(
                    r.comparisons <= bound,
                    "in-window hit cost {} > {bound}",
                    r.comparisons
                );
            }
        }
    }

    #[test]
    fn bounded_fallback_recovers_out_of_window_keys() {
        let ks = keys();
        // Prediction off by far more than the radius, both directions.
        let r = bounded_search_with_fallback(&ks, ks[900], 10, 4);
        assert_eq!(r.pos, Some(900));
        let r = bounded_search_with_fallback(&ks, ks[10], 900, 4);
        assert_eq!(r.pos, Some(10));
        // Window pinned at the array edges: no fallback possible.
        let r = bounded_search_with_fallback(&ks, 1, 0, 2);
        assert_eq!(r.pos, None);
        let r = bounded_search_with_fallback(&ks, 5_000, 999, 2);
        assert_eq!(r.pos, None);
    }

    #[test]
    fn bounded_fallback_proves_in_window_absence_without_galloping() {
        let ks = keys(); // multiples of 3
                         // 301 sits between ks[100] = 300 and ks[101] = 303: a window
                         // containing both proves absence at window cost.
        let r = bounded_search_with_fallback(&ks, 301, 100, 4);
        assert_eq!(r.pos, None);
        let bound = (9f64).log2().ceil() as usize + 1;
        assert!(r.comparisons <= bound, "cost {}", r.comparisons);
    }

    #[test]
    fn bounded_fallback_agrees_with_exponential_everywhere() {
        let ks = keys();
        let probes: Vec<Key> = (0..3_100u64).collect();
        for &k in &probes {
            let expected = ks.binary_search(&k).ok();
            for center in [0usize, 250, 999] {
                for radius in [0usize, 1, 8, 2_000] {
                    let r = bounded_search_with_fallback(&ks, k, center, radius);
                    assert_eq!(r.pos, expected, "key {k} center {center} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn monotone_route_matches_global_lower_bound_from_any_cursor() {
        let bounds: Vec<Key> = (0..500u64).map(|i| i * 10 + 5).collect();
        let global =
            |key: Key| -> usize { bounds.partition_point(|&b| b <= key).saturating_sub(1) };
        for key in [0u64, 4, 5, 6, 123, 2_500, 4_994, 4_995, 9_999] {
            let expected = global(key);
            // Any valid cursor (bound ≤ key, or 0) must reach the same
            // index the global search finds.
            for from in [0usize, expected / 2, expected] {
                if from > 0 && bounds[from] > key {
                    continue;
                }
                let got = monotone_route_by(&bounds, from, key, |&b| b);
                assert_eq!(got, expected, "key {key} from {from}");
            }
        }
        // A full ascending sweep with a running cursor equals per-key
        // global routing everywhere.
        let mut cursor = 0usize;
        for key in 0..5_200u64 {
            cursor = monotone_route_by(&bounds, cursor, key, |&b| b);
            assert_eq!(cursor, global(key), "sweep key {key}");
        }
    }

    #[test]
    fn bounded_fallback_empty_and_overflowing_radius() {
        assert_eq!(bounded_search_with_fallback(&[], 5, 0, 3).pos, None);
        let ks = keys();
        // A radius near usize::MAX must clamp, not overflow.
        let r = bounded_search_with_fallback(&ks, ks[123], 500, usize::MAX);
        assert_eq!(r.pos, Some(123));
        let r = bounded_search(&ks, ks[123], 500, usize::MAX);
        assert_eq!(r.pos, Some(123));
    }
}
