//! Last-mile search: locating a key near a model's predicted position.
//!
//! A learned index predicts an approximate position and then performs a
//! local search around it ("if the prediction is not accurate then a local
//! search around the predicted location discovers the record",
//! Section III-A). We implement the standard *exponential (galloping)
//! search* outward from the prediction followed by binary search on the
//! bracketed range, and count key comparisons so experiments can report the
//! search cost that poisoning inflates.

use crate::keys::Key;

/// Outcome of a last-mile search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Index of the key in the sorted slice, if found.
    pub pos: Option<usize>,
    /// Number of key comparisons performed.
    pub comparisons: usize,
}

/// Exponential + binary search for `key` in sorted `keys`, starting from
/// `guess` (clamped). Returns the index and the comparison count.
///
/// Complexity is `O(log d)` where `d = |guess − true_pos|`, so the cost of a
/// lookup is exactly the logarithm of the model's prediction error — the
/// mechanism by which the paper's Ratio-Loss increase translates into a
/// lookup-time slowdown.
pub fn exponential_search(keys: &[Key], key: Key, guess: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let guess = guess.min(keys.len() - 1);
    let mut comparisons = 1usize;
    if keys[guess] == key {
        return SearchResult {
            pos: Some(guess),
            comparisons,
        };
    }

    // Gallop in the direction of the key.
    let (lo, hi): (usize, usize);
    if keys[guess] < key {
        let mut next_lo = guess + 1;
        let mut step = 1usize;
        let found_hi: usize;
        loop {
            let probe = guess.saturating_add(step);
            if probe >= keys.len() - 1 {
                found_hi = keys.len() - 1;
                break;
            }
            comparisons += 1;
            if keys[probe] >= key {
                found_hi = probe;
                break;
            }
            next_lo = probe + 1;
            step <<= 1;
        }
        lo = next_lo;
        hi = if found_hi < lo {
            keys.len() - 1
        } else {
            found_hi
        };
    } else {
        let mut next_hi = guess.saturating_sub(1);
        let mut step = 1usize;
        let found_lo: usize;
        loop {
            if step > guess {
                found_lo = 0;
                break;
            }
            let probe = guess - step;
            comparisons += 1;
            if keys[probe] <= key {
                found_lo = probe;
                break;
            }
            if probe == 0 {
                found_lo = 0;
                break;
            }
            next_hi = probe - 1;
            step <<= 1;
        }
        lo = found_lo;
        hi = next_hi;
        if hi < lo {
            return SearchResult {
                pos: None,
                comparisons,
            };
        }
    }

    // Binary search on [lo, hi].
    let (pos, cmp) = binary_search_counted(&keys[lo..=hi.min(keys.len() - 1)], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons: comparisons + cmp,
    }
}

/// Plain binary search with a comparison counter, used both by the last-mile
/// search and by the B+-tree baseline.
pub fn binary_search_counted(keys: &[Key], key: Key) -> (Option<usize>, usize) {
    let mut lo = 0usize;
    let mut hi = keys.len();
    let mut comparisons = 0usize;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        comparisons += 1;
        match keys[mid].cmp(&key) {
            std::cmp::Ordering::Equal => return (Some(mid), comparisons),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    (None, comparisons)
}

/// Binary search restricted to a window `[center − radius, center + radius]`
/// (clamped), the "error bound" search of the original LIS design where the
/// model stores its maximum training error.
pub fn bounded_search(keys: &[Key], key: Key, center: usize, radius: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let center = center.min(keys.len() - 1);
    let lo = center.saturating_sub(radius);
    let hi = (center + radius).min(keys.len() - 1);
    let (pos, comparisons) = binary_search_counted(&keys[lo..=hi], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Key> {
        (0..1000u64).map(|i| i * 3).collect()
    }

    #[test]
    fn finds_with_exact_guess() {
        let ks = keys();
        let r = exponential_search(&ks, 300, 100);
        assert_eq!(r.pos, Some(100));
        assert_eq!(r.comparisons, 1);
    }

    #[test]
    fn finds_with_far_guess_right() {
        let ks = keys();
        let r = exponential_search(&ks, 2997, 0); // true pos 999
        assert_eq!(r.pos, Some(999));
        assert!(r.comparisons <= 2 * (1000f64.log2() as usize) + 4);
    }

    #[test]
    fn finds_with_far_guess_left() {
        let ks = keys();
        let r = exponential_search(&ks, 0, 999);
        assert_eq!(r.pos, Some(0));
    }

    #[test]
    fn absent_key_returns_none() {
        let ks = keys();
        for guess in [0usize, 500, 999] {
            let r = exponential_search(&ks, 301, guess); // 301 not a multiple of 3
            assert_eq!(r.pos, None, "guess={guess}");
        }
    }

    #[test]
    fn all_keys_found_from_any_guess() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(37) {
            for guess in [0usize, i / 2, i, (i + 500).min(999)] {
                let r = exponential_search(&ks, k, guess);
                assert_eq!(r.pos, Some(i), "key {k} guess {guess}");
            }
        }
    }

    #[test]
    fn comparisons_grow_with_prediction_error() {
        let ks = keys();
        let near = exponential_search(&ks, ks[500], 498).comparisons;
        let far = exponential_search(&ks, ks[500], 0).comparisons;
        assert!(far > near, "far={} near={}", far, near);
    }

    #[test]
    fn empty_slice() {
        let r = exponential_search(&[], 5, 0);
        assert_eq!(r.pos, None);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let ks = keys();
        // Key at 999, window around 0 with radius 10 cannot find it.
        let r = bounded_search(&ks, ks[999], 0, 10);
        assert_eq!(r.pos, None);
        let r = bounded_search(&ks, ks[999], 995, 10);
        assert_eq!(r.pos, Some(999));
    }

    #[test]
    fn binary_search_counted_matches_std() {
        let ks = keys();
        for k in [0u64, 3, 1500, 2997, 5, 10_000] {
            let (pos, _) = binary_search_counted(&ks, k);
            assert_eq!(pos, ks.binary_search(&k).ok());
        }
    }
}
