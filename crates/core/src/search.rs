//! Last-mile search: locating a key near a model's predicted position.
//!
//! A learned index predicts an approximate position and then performs a
//! local search around it ("if the prediction is not accurate then a local
//! search around the predicted location discovers the record",
//! Section III-A). We implement the standard *exponential (galloping)
//! search* outward from the prediction followed by binary search on the
//! bracketed range, and count key comparisons so experiments can report the
//! search cost that poisoning inflates.
//!
//! The hot path is [`bounded_search_with_fallback`]: indexes that store a
//! per-model maximum training error (`max_err`) search only the
//! `±(max_err + 1)` window around the prediction, and gallop outward
//! *only* when a miss lands on a window edge (out-of-bound prediction —
//! absent keys or root-routing mispredicts). The window probe is the
//! *lane kernel*: branchless binary halving while the candidate range
//! exceeds two lanes, then a count of the `≤ key` prefix over the final
//! window in explicit [`LANE`]-wide chunks the compiler autovectorizes.
//! Every function reports `comparisons` as exactly the number of key
//! comparisons performed — lane work is **counted, not estimated** (a
//! processed lane charges one comparison per element) — so `Lookup.cost`
//! keeps the paper's comparison-count semantics no matter which search
//! strategy answered.
//!
//! [`set_scalar_kernel`] swaps the lane tail for an element-at-a-time
//! scalar loop with bit-identical results *and* comparison counts: the
//! executable oracle behind the `vectorized ≡ scalar` identity tests and
//! the scalar baseline column of the hotpath bench.

// lis-analysis: zone(zero-alloc)
// Every routine in this file runs per-probe inside the serve loop; the
// zero-alloc gate (crates/server/tests/zero_alloc.rs) counts on none of
// them touching the allocator.

use crate::keys::Key;

/// Outcome of a last-mile search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchResult {
    /// Index of the key in the sorted slice, if found.
    pub pos: Option<usize>,
    /// Number of key comparisons performed.
    pub comparisons: usize,
}

/// Exponential + binary search for `key` in sorted `keys`, starting from
/// `guess` (clamped). Returns the index and the comparison count.
///
/// Complexity is `O(log d)` where `d = |guess − true_pos|`, so the cost of a
/// lookup is exactly the logarithm of the model's prediction error — the
/// mechanism by which the paper's Ratio-Loss increase translates into a
/// lookup-time slowdown.
pub fn exponential_search(keys: &[Key], key: Key, guess: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let guess = guess.min(keys.len() - 1);
    let mut comparisons = 1usize;
    if keys[guess] == key {
        return SearchResult {
            pos: Some(guess),
            comparisons,
        };
    }

    // Gallop in the direction of the key.
    let (lo, hi): (usize, usize);
    if keys[guess] < key {
        // `keys[guess] < key` with nothing to the right: proven absent.
        if guess == keys.len() - 1 {
            return SearchResult {
                pos: None,
                comparisons,
            };
        }
        let mut next_lo = guess + 1;
        let mut step = 1usize;
        let found_hi: usize;
        loop {
            // Clamp the probe instead of breaking early: comparing the
            // clamped probe either closes the bracket at a *proven* bound
            // or proves the key exceeds the largest key — the old
            // unproven `keys.len() - 1` widening paid a full binary
            // search for every beyond-max miss.
            let probe = guess.saturating_add(step).min(keys.len() - 1);
            comparisons += 1;
            if keys[probe] >= key {
                found_hi = probe;
                break;
            }
            if probe == keys.len() - 1 {
                // The largest key compares below `key`: absent, and the
                // bracket is empty.
                return SearchResult {
                    pos: None,
                    comparisons,
                };
            }
            next_lo = probe + 1;
            step <<= 1;
        }
        lo = next_lo;
        hi = found_hi;
    } else {
        let mut next_hi = guess.saturating_sub(1);
        let mut step = 1usize;
        let found_lo: usize;
        loop {
            if step > guess {
                found_lo = 0;
                break;
            }
            let probe = guess - step;
            comparisons += 1;
            if keys[probe] <= key {
                found_lo = probe;
                break;
            }
            if probe == 0 {
                found_lo = 0;
                break;
            }
            next_hi = probe - 1;
            step <<= 1;
        }
        lo = found_lo;
        hi = next_hi;
        if hi < lo {
            return SearchResult {
                pos: None,
                comparisons,
            };
        }
    }

    // Binary search on [lo, hi].
    let (pos, cmp) = binary_search_counted(&keys[lo..=hi], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons: comparisons + cmp,
    }
}

/// Plain binary search with a comparison counter, used both by the last-mile
/// search and by the B+-tree baseline.
pub fn binary_search_counted(keys: &[Key], key: Key) -> (Option<usize>, usize) {
    let mut lo = 0usize;
    let mut hi = keys.len();
    let mut comparisons = 0usize;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        comparisons += 1;
        match keys[mid].cmp(&key) {
            std::cmp::Ordering::Equal => return (Some(mid), comparisons),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    (None, comparisons)
}

/// Binary search restricted to a window `[center − radius, center + radius]`
/// (clamped), the "error bound" search of the original LIS design where the
/// model stores its maximum training error.
pub fn bounded_search(keys: &[Key], key: Key, center: usize, radius: usize) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let center = center.min(keys.len() - 1);
    let lo = center.saturating_sub(radius);
    let hi = center.saturating_add(radius).min(keys.len() - 1);
    let (pos, comparisons) = binary_search_counted(&keys[lo..=hi], key);
    SearchResult {
        pos: pos.map(|p| p + lo),
        comparisons,
    }
}

/// Branchless lower bound over a sorted slice: index of the *last* element
/// `≤ key`, or `0` when every element exceeds `key`, plus the comparison
/// count. The loop body has no data-dependent branch (the comparison feeds
/// an index increment the compiler lowers to a conditional move), so the
/// comparison count is exactly `⌈log₂ n⌉` regardless of the data — the
/// right shape for the short, bracketed ranges of error-bounded search.
fn branchless_lower_bound(keys: &[Key], key: Key) -> (usize, usize) {
    let mut base = 0usize;
    let mut size = keys.len();
    let mut comparisons = 0usize;
    while size > 1 {
        let half = size / 2;
        comparisons += 1;
        base += usize::from(keys[base + half] <= key) * half;
        size -= half;
    }
    (base, comparisons)
}

/// The branchless probe behind [`branchless_search_counted`]: lower bound
/// plus one final three-way comparison. Returns `(base, keys[base] ⋄ key,
/// comparisons)`; callers interpret the ordering (`Equal` → hit at `base`,
/// `Less`/`Greater` → which side of the slice the key fell off). Requires
/// a non-empty slice.
fn branchless_probe(keys: &[Key], key: Key) -> (usize, std::cmp::Ordering, usize) {
    let (base, comparisons) = branchless_lower_bound(keys, key);
    (base, keys[base].cmp(&key), comparisons + 1)
}

/// Lane width of the vectorized last-mile kernel: the final window is
/// compared in chunks of this many keys per step (8 × u64 = one 64-byte
/// cache line, two AVX2 / one AVX-512 vector).
pub const LANE: usize = 8;

/// Candidate-range size at which the halving descent hands over to the
/// lane scan. Two lanes, so the tail holds at least one full [`LANE`]
/// chunk whenever the window was bigger than a lane to begin with.
const LANE_TAIL: usize = 2 * LANE;

/// When `true`, the window kernel runs its scalar-equivalent tail
/// (element-at-a-time, identical counting) instead of the lane-chunked
/// one. Results and comparison counts are bit-identical by construction —
/// flipping this mid-flight can never change an answer — so a plain
/// relaxed global is safe even with concurrent lookups.
static SCALAR_KERNEL: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether the scalar-equivalent window kernel is selected.
pub fn scalar_kernel() -> bool {
    SCALAR_KERNEL.load(std::sync::atomic::Ordering::Relaxed)
}

/// Selects the scalar-equivalent window kernel (`true`) or the lane
/// kernel (`false`); returns the previous selection. Both produce
/// identical `found`/`rank`/`cost` — this exists for the identity tests
/// and the hotpath bench's scalar baseline column.
pub fn set_scalar_kernel(on: bool) -> bool {
    SCALAR_KERNEL.swap(on, std::sync::atomic::Ordering::Relaxed)
}

/// Lane-chunked lower bound: branchless halving while the candidate range
/// exceeds [`LANE_TAIL`], then a count of the `≤ key` prefix over the
/// remaining window in explicit [`LANE`]-wide chunks (plus a scalar
/// remainder). Same contract as [`branchless_lower_bound`] — index of the
/// last element `≤ key`, or `0` — but the comparison count is `descent
/// steps + tail length`: every element of a processed lane is charged,
/// honestly, as one comparison. The count is data-independent for a given
/// window length ([`lane_window_cost`] computes it in closed form).
fn lane_lower_bound(keys: &[Key], key: Key) -> (usize, usize) {
    let mut base = 0usize;
    let mut size = keys.len();
    let mut comparisons = 0usize;
    while size > LANE_TAIL {
        let half = size / 2;
        comparisons += 1;
        base += usize::from(keys[base + half] <= key) * half;
        size -= half;
    }
    let window = &keys[base..base + size];
    let mut le = 0usize;
    let mut chunks = window.chunks_exact(LANE);
    for chunk in &mut chunks {
        // Fixed-width, branch-free reduction over one lane: the shape the
        // autovectorizer lowers to a packed compare + horizontal add.
        let mut lanes = 0usize;
        for &x in chunk {
            lanes += usize::from(x <= key);
        }
        le += lanes;
    }
    for &x in chunks.remainder() {
        le += usize::from(x <= key);
    }
    comparisons += size;
    // Sortedness makes the `≤ key` window elements a prefix; elements
    // before `base` are `≤ key` whenever `base > 0` (each descent step
    // only advances onto a `≤ key` element), so `le == 0` implies
    // `base == 0`: every element exceeds `key` and the lower bound pins
    // at the front, exactly as in `branchless_lower_bound`.
    (base + le.saturating_sub(1), comparisons)
}

/// Scalar-equivalent twin of [`lane_lower_bound`]: the same halving
/// descent and the same full-tail counting, one element at a time with no
/// chunk structure. Identical result and identical comparison count for
/// every input — the executable oracle the `vectorized ≡ scalar` identity
/// tests compare against.
fn lane_lower_bound_scalar(keys: &[Key], key: Key) -> (usize, usize) {
    let mut base = 0usize;
    let mut size = keys.len();
    let mut comparisons = 0usize;
    while size > LANE_TAIL {
        let half = size / 2;
        comparisons += 1;
        base += usize::from(keys[base + half] <= key) * half;
        size -= half;
    }
    let mut le = 0usize;
    for &x in &keys[base..base + size] {
        le += usize::from(x <= key);
    }
    comparisons += size;
    (base + le.saturating_sub(1), comparisons)
}

/// The exact, data-independent comparison count of an in-window probe of
/// `window_len` keys under the lane kernel: halving-descent steps, plus
/// the final tail length, plus the one concluding three-way comparison.
/// Cost-bound tests use this where they previously used `⌈log₂ w⌉ + 1`.
pub fn lane_window_cost(window_len: usize) -> usize {
    if window_len == 0 {
        return 0;
    }
    let mut size = window_len;
    let mut steps = 0usize;
    while size > LANE_TAIL {
        size -= size / 2;
        steps += 1;
    }
    steps + size + 1
}

/// The worst in-window probe cost over every window length up to
/// `max_len`. [`lane_window_cost`] is *not* monotone in the window length
/// (a shorter window can stop the descent earlier and pay a longer tail),
/// so cost-bound tests over windows that clamp at the array edges bound
/// with this instead.
pub fn lane_window_cost_bound(max_len: usize) -> usize {
    (1..=max_len).map(lane_window_cost).max().unwrap_or(0)
}

/// The lane-kernel window probe behind [`bounded_search_with_fallback`]:
/// lower bound (lane or scalar-equivalent tail, per [`scalar_kernel`])
/// plus one final three-way comparison. Requires a non-empty slice.
fn lane_probe(keys: &[Key], key: Key) -> (usize, std::cmp::Ordering, usize) {
    let (base, comparisons) = if scalar_kernel() {
        lane_lower_bound_scalar(keys, key)
    } else {
        lane_lower_bound(keys, key)
    };
    (base, keys[base].cmp(&key), comparisons + 1)
}

/// Best-effort software prefetch of `keys[idx]`'s cache line, used by the
/// pipelined sorted-batch paths to issue the *next* probes' window loads
/// while the current probe is still being served.
///
/// The workspace carries `#![forbid(unsafe_code)]`, which puts the
/// `core::arch` prefetch intrinsics (`_mm_prefetch` and friends — all
/// `unsafe fn`) out of reach; on 64-bit targets this instead issues a
/// bounds-checked demand load pinned by `black_box`, which the
/// out-of-order window overlaps with younger probes' work — the same
/// memory-level-parallelism effect, expressed safely. On other targets it
/// is a no-op (the cfg fallback).
#[inline(always)]
pub fn prefetch_key(keys: &[Key], idx: usize) {
    #[cfg(target_pointer_width = "64")]
    if let Some(&k) = keys.get(idx) {
        std::hint::black_box(k);
    }
    #[cfg(not(target_pointer_width = "64"))]
    {
        let _ = (keys, idx);
    }
}

/// Prefetches the span `[lo, hi]` of `keys` at three points — both edges
/// and the midpoint the halving descent probes first — covering the lines
/// an error-bounded window search touches.
#[inline(always)]
pub fn prefetch_window(keys: &[Key], lo: usize, hi: usize) {
    prefetch_key(keys, lo);
    prefetch_key(keys, lo + (hi - lo) / 2);
    prefetch_key(keys, hi);
}

/// Deepest supported sorted-batch pipeline: how many probes may be
/// in flight (planned + prefetched, not yet served) per worker.
pub const MAX_PIPELINE_DEPTH: usize = 16;

/// Default number of in-flight probes per worker in the sorted-batch
/// pipeline: deep enough to overlap several DRAM misses, shallow enough
/// that prefetched lines are still resident when their probe is served.
pub const DEFAULT_PIPELINE_DEPTH: usize = 8;

/// Configured pipeline depth (`0` = use the default).
static PIPELINE_DEPTH: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// The number of probes the sorted-batch paths keep in flight. Depth 1
/// serves each probe immediately after planning it (no overlap) — every
/// depth produces bit-identical results; only memory-level parallelism
/// changes.
pub fn pipeline_depth() -> usize {
    match PIPELINE_DEPTH.load(std::sync::atomic::Ordering::Relaxed) {
        0 => DEFAULT_PIPELINE_DEPTH,
        d => d,
    }
}

/// Sets the sorted-batch pipeline depth (clamped to
/// `[1, MAX_PIPELINE_DEPTH]`; `0` restores the default) and returns the
/// previous raw setting. Results are depth-independent by construction;
/// the hotpath bench uses depth 1 as its unpipelined baseline.
pub fn set_pipeline_depth(depth: usize) -> usize {
    let clamped = depth.min(MAX_PIPELINE_DEPTH);
    PIPELINE_DEPTH.swap(clamped, std::sync::atomic::Ordering::Relaxed)
}

/// Branchless counterpart of [`binary_search_counted`] for bracketed
/// ranges: same contract, but the comparison count is data-independent
/// (`⌈log₂ n⌉ + 1` for any non-empty slice — no early exit on equality).
/// This is the window search the error-bounded lookup hot path runs
/// (through [`bounded_search_with_fallback`], which shares the probe).
pub fn branchless_search_counted(keys: &[Key], key: Key) -> (Option<usize>, usize) {
    if keys.is_empty() {
        return (None, 0);
    }
    let (base, ordering, comparisons) = branchless_probe(keys, key);
    if ordering == std::cmp::Ordering::Equal {
        (Some(base), comparisons)
    } else {
        (None, comparisons)
    }
}

/// Monotone routing step for sorted-batch sweeps: the largest index `i`
/// with `bound(items[i]) ≤ key`, searched *forward* from `from` (`0` when
/// every bound exceeds `key`). Requires `bound(items[from]) ≤ key` or
/// `from == 0` — exactly the invariant a cursor over ascending probes
/// maintains. Gallops then binary-searches the bracket, so one step costs
/// `O(log gap)`: dense batches advance in a probe or two, sparse batches
/// degrade gracefully to binary-search cost instead of scanning every
/// entry in between.
pub(crate) fn monotone_route_by<T>(
    items: &[T],
    from: usize,
    key: Key,
    bound: impl Fn(&T) -> Key,
) -> usize {
    let n = items.len();
    let mut lo = from;
    let mut step = 1usize;
    loop {
        let probe = lo.saturating_add(step);
        if probe >= n || bound(&items[probe]) > key {
            break;
        }
        lo = probe;
        step <<= 1;
    }
    let hi = lo.saturating_add(step).min(n);
    let within = items[lo..hi].partition_point(|item| bound(item) <= key);
    lo + within.saturating_sub(1)
}

/// Error-bounded last-mile search: lane-kernel search on the window
/// `[center − radius, center + radius]` (clamped), falling back to
/// [`exponential_search`] only when the miss is *out of bound* — the key
/// compares beyond the window edge, so the window provably cannot decide
/// absence. For member keys whose prediction error is within `radius`
/// (the invariant `max_err` storage provides) the fallback never fires;
/// for in-window misses absence is proven without it.
///
/// Cost semantics are unchanged in kind: `comparisons` is exactly the
/// number of key comparisons performed — descent steps, every compared
/// lane element, and any fallback galloping. In-window probes cost
/// exactly [`lane_window_cost`] of the clamped window length.
pub fn bounded_search_with_fallback(
    keys: &[Key],
    key: Key,
    center: usize,
    radius: usize,
) -> SearchResult {
    if keys.is_empty() {
        return SearchResult {
            pos: None,
            comparisons: 0,
        };
    }
    let center = center.min(keys.len() - 1);
    let lo = center.saturating_sub(radius);
    let hi = center.saturating_add(radius).min(keys.len() - 1);
    let window = &keys[lo..=hi];
    let (base, ordering, comparisons) = lane_probe(window, key);
    match ordering {
        std::cmp::Ordering::Equal => SearchResult {
            pos: Some(lo + base),
            comparisons,
        },
        // `key` exceeds the window's lower bound element. If that element
        // is the window's last and the array continues, the key may lie
        // beyond the window: gallop right from the edge. Otherwise the
        // next window element exceeds `key` and absence is proven.
        std::cmp::Ordering::Less => {
            if base == window.len() - 1 && hi + 1 < keys.len() {
                let fb = exponential_search(keys, key, hi);
                SearchResult {
                    pos: fb.pos,
                    comparisons: comparisons + fb.comparisons,
                }
            } else {
                SearchResult {
                    pos: None,
                    comparisons,
                }
            }
        }
        // Every window element exceeds `key` (lower-bound property ⇒
        // `base == 0`): out of bound on the left unless the window starts
        // the array.
        std::cmp::Ordering::Greater => {
            if lo > 0 {
                let fb = exponential_search(keys, key, lo);
                SearchResult {
                    pos: fb.pos,
                    comparisons: comparisons + fb.comparisons,
                }
            } else {
                SearchResult {
                    pos: None,
                    comparisons,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys() -> Vec<Key> {
        (0..1000u64).map(|i| i * 3).collect()
    }

    #[test]
    fn finds_with_exact_guess() {
        let ks = keys();
        let r = exponential_search(&ks, 300, 100);
        assert_eq!(r.pos, Some(100));
        assert_eq!(r.comparisons, 1);
    }

    #[test]
    fn finds_with_far_guess_right() {
        let ks = keys();
        let r = exponential_search(&ks, 2997, 0); // true pos 999
        assert_eq!(r.pos, Some(999));
        assert!(r.comparisons <= 2 * (1000f64.log2() as usize) + 4);
    }

    #[test]
    fn finds_with_far_guess_left() {
        let ks = keys();
        let r = exponential_search(&ks, 0, 999);
        assert_eq!(r.pos, Some(0));
    }

    #[test]
    fn absent_key_returns_none() {
        let ks = keys();
        for guess in [0usize, 500, 999] {
            let r = exponential_search(&ks, 301, guess); // 301 not a multiple of 3
            assert_eq!(r.pos, None, "guess={guess}");
        }
    }

    #[test]
    fn all_keys_found_from_any_guess() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(37) {
            for guess in [0usize, i / 2, i, (i + 500).min(999)] {
                let r = exponential_search(&ks, k, guess);
                assert_eq!(r.pos, Some(i), "key {k} guess {guess}");
            }
        }
    }

    #[test]
    fn comparisons_grow_with_prediction_error() {
        let ks = keys();
        let near = exponential_search(&ks, ks[500], 498).comparisons;
        let far = exponential_search(&ks, ks[500], 0).comparisons;
        assert!(far > near, "far={} near={}", far, near);
    }

    #[test]
    fn empty_slice() {
        let r = exponential_search(&[], 5, 0);
        assert_eq!(r.pos, None);
        assert_eq!(r.comparisons, 0);
    }

    #[test]
    fn bounded_search_respects_radius() {
        let ks = keys();
        // Key at 999, window around 0 with radius 10 cannot find it.
        let r = bounded_search(&ks, ks[999], 0, 10);
        assert_eq!(r.pos, None);
        let r = bounded_search(&ks, ks[999], 995, 10);
        assert_eq!(r.pos, Some(999));
    }

    #[test]
    fn binary_search_counted_matches_std() {
        let ks = keys();
        for k in [0u64, 3, 1500, 2997, 5, 10_000] {
            let (pos, _) = binary_search_counted(&ks, k);
            assert_eq!(pos, ks.binary_search(&k).ok());
        }
    }

    #[test]
    fn beyond_max_gallop_proves_absence_cheaply() {
        // Regression test for the upward-gallop fallback: a key beyond the
        // largest element used to widen the bracket to `keys.len() - 1`
        // and binary-search a range already proven empty. The tightened
        // gallop returns as soon as the largest key compares below the
        // probe: comparison cost is the gallop alone (≤ log₂(n) + 2),
        // with no binary-search tail.
        let ks = keys(); // 1000 keys, max 2997
        let r = exponential_search(&ks, 5_000, 0);
        assert_eq!(r.pos, None);
        let gallop_only = (1000f64.log2().ceil() as usize) + 2;
        assert!(
            r.comparisons <= gallop_only,
            "beyond-max miss should cost only the gallop, got {}",
            r.comparisons
        );
        // From the last slot the very first comparison settles it.
        let r = exponential_search(&ks, 5_000, 999);
        assert_eq!(r.pos, None);
        assert_eq!(r.comparisons, 1);
    }

    #[test]
    fn tightened_gallop_still_finds_every_key() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate() {
            for guess in [0usize, i.saturating_sub(1), i, (i + 37).min(999), 999] {
                let r = exponential_search(&ks, k, guess);
                assert_eq!(r.pos, Some(i), "key {k} guess {guess}");
            }
        }
    }

    #[test]
    fn branchless_matches_binary_search() {
        let ks = keys();
        for k in [0u64, 3, 4, 300, 1500, 2996, 2997, 5_000] {
            let (pos, _) = branchless_search_counted(&ks, k);
            assert_eq!(pos, ks.binary_search(&k).ok(), "key {k}");
        }
        assert_eq!(branchless_search_counted(&[], 5), (None, 0));
        assert_eq!(branchless_search_counted(&[7], 7), (Some(0), 1));
        assert_eq!(branchless_search_counted(&[7], 8), (None, 1));
    }

    #[test]
    fn branchless_comparison_count_is_data_independent() {
        let ks = keys();
        for width in [1usize, 2, 3, 7, 64, 100, 1000] {
            let expected = (width as f64).log2().ceil() as usize + 1;
            let mut counts = std::collections::BTreeSet::new();
            for k in [0u64, ks[width / 2], ks[width - 1], 10_000] {
                let (_, c) = branchless_search_counted(&ks[..width], k);
                counts.insert(c);
                assert_eq!(c, expected, "width {width} key {k}");
            }
            assert_eq!(counts.len(), 1, "width {width} count varied");
        }
    }

    #[test]
    fn bounded_fallback_finds_members_within_radius_without_galloping() {
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(13) {
            for radius in [1usize, 4, 16] {
                let r = bounded_search_with_fallback(&ks, k, i, radius);
                assert_eq!(r.pos, Some(i), "key {k} radius {radius}");
                // The window clamps at the array edges; an in-window hit
                // costs exactly the lane cost of the clamped window.
                let window =
                    i.saturating_add(radius).min(ks.len() - 1) - i.saturating_sub(radius) + 1;
                assert_eq!(
                    r.comparisons,
                    lane_window_cost(window),
                    "in-window hit cost off for key {k} radius {radius}"
                );
            }
        }
    }

    #[test]
    fn bounded_fallback_recovers_out_of_window_keys() {
        let ks = keys();
        // Prediction off by far more than the radius, both directions.
        let r = bounded_search_with_fallback(&ks, ks[900], 10, 4);
        assert_eq!(r.pos, Some(900));
        let r = bounded_search_with_fallback(&ks, ks[10], 900, 4);
        assert_eq!(r.pos, Some(10));
        // Window pinned at the array edges: no fallback possible.
        let r = bounded_search_with_fallback(&ks, 1, 0, 2);
        assert_eq!(r.pos, None);
        let r = bounded_search_with_fallback(&ks, 5_000, 999, 2);
        assert_eq!(r.pos, None);
    }

    #[test]
    fn bounded_fallback_proves_in_window_absence_without_galloping() {
        let ks = keys(); // multiples of 3
                         // 301 sits between ks[100] = 300 and ks[101] = 303: a window
                         // containing both proves absence at window cost.
        let r = bounded_search_with_fallback(&ks, 301, 100, 4);
        assert_eq!(r.pos, None);
        let bound = lane_window_cost(9);
        assert!(r.comparisons <= bound, "cost {}", r.comparisons);
    }

    #[test]
    fn bounded_fallback_agrees_with_exponential_everywhere() {
        let ks = keys();
        let probes: Vec<Key> = (0..3_100u64).collect();
        for &k in &probes {
            let expected = ks.binary_search(&k).ok();
            for center in [0usize, 250, 999] {
                for radius in [0usize, 1, 8, 2_000] {
                    let r = bounded_search_with_fallback(&ks, k, center, radius);
                    assert_eq!(r.pos, expected, "key {k} center {center} radius {radius}");
                }
            }
        }
    }

    #[test]
    fn monotone_route_matches_global_lower_bound_from_any_cursor() {
        let bounds: Vec<Key> = (0..500u64).map(|i| i * 10 + 5).collect();
        let global =
            |key: Key| -> usize { bounds.partition_point(|&b| b <= key).saturating_sub(1) };
        for key in [0u64, 4, 5, 6, 123, 2_500, 4_994, 4_995, 9_999] {
            let expected = global(key);
            // Any valid cursor (bound ≤ key, or 0) must reach the same
            // index the global search finds.
            for from in [0usize, expected / 2, expected] {
                if from > 0 && bounds[from] > key {
                    continue;
                }
                let got = monotone_route_by(&bounds, from, key, |&b| b);
                assert_eq!(got, expected, "key {key} from {from}");
            }
        }
        // A full ascending sweep with a running cursor equals per-key
        // global routing everywhere.
        let mut cursor = 0usize;
        for key in 0..5_200u64 {
            cursor = monotone_route_by(&bounds, cursor, key, |&b| b);
            assert_eq!(cursor, global(key), "sweep key {key}");
        }
    }

    /// A scoped guard flipping the kernel to scalar mode and restoring it
    /// on drop, so identity tests cannot leak the flag.
    struct ScalarGuard(bool);
    impl ScalarGuard {
        fn on() -> Self {
            ScalarGuard(set_scalar_kernel(true))
        }
    }
    impl Drop for ScalarGuard {
        fn drop(&mut self) {
            set_scalar_kernel(self.0);
        }
    }

    #[test]
    fn lane_lower_bound_matches_branchless_everywhere() {
        // The lane kernel and the pure branchless descent must agree on
        // the rank for every window shape: shorter than one lane, exactly
        // one lane, straddling the descent threshold, and large.
        let ks = keys();
        for width in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 1000] {
            let w = &ks[..width];
            for k in [
                0u64,
                1,
                3,
                ks[width / 2],
                ks[width - 1],
                ks[width - 1] + 1,
                10_000,
            ] {
                let (lane, _) = lane_lower_bound(w, k);
                let (scalar, _) = lane_lower_bound_scalar(w, k);
                let (branchless, _) = branchless_lower_bound(w, k);
                assert_eq!(lane, branchless, "width {width} key {k}");
                assert_eq!(scalar, branchless, "width {width} key {k}");
            }
        }
    }

    #[test]
    fn lane_and_scalar_kernels_are_cost_identical() {
        let ks = keys();
        for width in [1usize, 5, 8, 13, 16, 21, 64, 511] {
            let w = &ks[..width];
            for k in [0u64, 2, ks[width / 3], ks[width - 1], 9_999] {
                let lane = lane_lower_bound(w, k);
                let scalar = lane_lower_bound_scalar(w, k);
                assert_eq!(lane, scalar, "width {width} key {k}");
            }
        }
    }

    #[test]
    fn lane_window_cost_is_exact_and_data_independent() {
        let ks = keys();
        for width in [1usize, 2, 7, 8, 9, 16, 17, 33, 100, 257, 1000] {
            let expected = lane_window_cost(width);
            let mut counts = std::collections::BTreeSet::new();
            for k in [0u64, 1, ks[width / 2], ks[width - 1], 10_000] {
                // An in-window probe at full radius never gallops: cost
                // is exactly the closed form.
                let r = bounded_search_with_fallback(&ks[..width], k, width / 2, width);
                counts.insert(r.comparisons);
                assert_eq!(r.comparisons, expected, "width {width} key {k}");
            }
            assert_eq!(counts.len(), 1, "width {width} cost varied with data");
        }
        assert_eq!(lane_window_cost(0), 0);
    }

    #[test]
    fn scalar_mode_is_bit_identical_to_lane_mode() {
        let ks = keys();
        let probes: Vec<Key> = (0..3_100u64).step_by(7).collect();
        let mut lane_results = Vec::new();
        for &k in &probes {
            lane_results.push(bounded_search_with_fallback(&ks, k, 500, 20));
        }
        let _guard = ScalarGuard::on();
        for (&k, lane) in probes.iter().zip(&lane_results) {
            let scalar = bounded_search_with_fallback(&ks, k, 500, 20);
            assert_eq!(&scalar, lane, "key {k}");
        }
    }

    #[test]
    fn lane_kernel_degenerate_shapes() {
        // Single-element windows (radius 0), windows shorter than a lane,
        // and duplicate-heavy slices.
        let ks = keys();
        for (i, &k) in ks.iter().enumerate().step_by(101) {
            let r = bounded_search_with_fallback(&ks, k, i, 0);
            assert_eq!(r.pos, Some(i), "radius-0 exact guess");
            assert_eq!(r.comparisons, lane_window_cost(1));
        }
        let tiny: Vec<Key> = (0..5u64).map(|i| i * 2).collect();
        for k in 0..12u64 {
            let r = bounded_search_with_fallback(&tiny, k, 2, 10);
            assert_eq!(r.pos, tiny.binary_search(&k).ok(), "tiny key {k}");
        }
        let dup: Vec<Key> = [3u64; 20]
            .into_iter()
            .chain([5u64; 20])
            .chain([9u64; 3])
            .collect();
        for k in [0u64, 3, 4, 5, 7, 9, 10] {
            let (lane, lc) = lane_lower_bound(&dup, k);
            let (branchless, _) = branchless_lower_bound(&dup, k);
            let (scalar, sc) = lane_lower_bound_scalar(&dup, k);
            assert_eq!(lane, branchless, "dup key {k}");
            assert_eq!((lane, lc), (scalar, sc), "dup key {k}");
        }
    }

    #[test]
    fn pipeline_depth_knob_clamps_and_restores() {
        assert!((1..=MAX_PIPELINE_DEPTH).contains(&pipeline_depth()));
        let prev = set_pipeline_depth(3);
        assert_eq!(pipeline_depth(), 3);
        set_pipeline_depth(MAX_PIPELINE_DEPTH + 100);
        assert_eq!(pipeline_depth(), MAX_PIPELINE_DEPTH);
        set_pipeline_depth(prev);
    }

    #[test]
    fn prefetch_is_a_semantic_noop() {
        let ks = keys();
        prefetch_key(&ks, 0);
        prefetch_key(&ks, ks.len() - 1);
        prefetch_key(&ks, ks.len() + 10); // out of range: must not panic
        prefetch_window(&ks, 10, 50);
        prefetch_window(&ks, 999, 999);
        prefetch_window(&[], 0, 0);
    }

    #[test]
    fn bounded_fallback_empty_and_overflowing_radius() {
        assert_eq!(bounded_search_with_fallback(&[], 5, 0, 3).pos, None);
        let ks = keys();
        // A radius near usize::MAX must clamp, not overflow.
        let r = bounded_search_with_fallback(&ks, ks[123], 500, usize::MAX);
        assert_eq!(r.pos, Some(123));
        let r = bounded_search(&ks, ks[123], 500, usize::MAX);
        assert_eq!(r.pos, Some(123));
    }
}
