//! A from-scratch feed-forward neural network for the RMI root model.
//!
//! The architecture Kraska et al. found to beat B-Trees uses "a neural
//! network model that can capture the coarse-grained shape of complex
//! functions" at the first stage (Section III-A / Figure 1 of the paper).
//! This module implements the minimal ingredient: a one-hidden-layer MLP
//! with ReLU activations, trained by mini-batch SGD with momentum on the
//! normalized CDF. No external ML framework — 1-in/1-out regression needs
//! only a few dozen parameters.
//!
//! Inputs and targets are normalized to `[0, 1]` before training; the
//! network stores the affine de-normalization so [`NeuralNet::predict`]
//! operates directly in key/rank space.

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};

/// A deterministic xorshift64* generator so training never depends on
/// external crates and is reproducible from a seed.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        Self { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[-1, 1)`.
    fn next_sym(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Training hyper-parameters for [`NeuralNet`].
#[derive(Debug, Clone, Copy)]
pub struct NnConfig {
    /// Hidden layer width (paper-scale root models use 8–32 neurons).
    pub hidden: usize,
    /// SGD epochs over the training CDF.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// RNG seed for weight init and batch shuffling.
    pub seed: u64,
}

impl Default for NnConfig {
    fn default() -> Self {
        Self {
            hidden: 16,
            epochs: 60,
            batch: 64,
            lr: 0.05,
            momentum: 0.9,
            seed: 0xC0FFEE,
        }
    }
}

/// One-hidden-layer ReLU MLP `R → R` fitted to a CDF.
#[derive(Debug, Clone)]
pub struct NeuralNet {
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    // Input/output affine normalization: x = (key - k_off) * k_scale,
    // rank = y * r_scale + r_off.
    k_off: f64,
    k_scale: f64,
    r_off: f64,
    r_scale: f64,
}

impl NeuralNet {
    /// Trains the network on the CDF of `ks`.
    #[allow(clippy::needless_range_loop)] // hot SGD inner loops index four arrays in lockstep
    pub fn fit(ks: &KeySet, cfg: &NnConfig) -> Result<Self> {
        if cfg.hidden == 0 {
            return Err(LisError::InvalidNnConfig("hidden width must be > 0".into()));
        }
        if cfg.batch == 0 {
            return Err(LisError::InvalidNnConfig("batch size must be > 0".into()));
        }
        if ks.len() < 2 {
            return Err(LisError::DegenerateRegression { n: ks.len() });
        }

        let n = ks.len();
        let k_off = ks.min_key() as f64;
        let span = (ks.max_key() - ks.min_key()) as f64;
        let k_scale = if span > 0.0 { 1.0 / span } else { 1.0 };
        let r_off = 1.0;
        let r_scale = (n - 1) as f64;

        let xs: Vec<f64> = ks
            .keys()
            .iter()
            .map(|&k| (k as f64 - k_off) * k_scale)
            .collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| {
                if n > 1 {
                    i as f64 / (n - 1) as f64
                } else {
                    0.0
                }
            })
            .collect();

        let h = cfg.hidden;
        let mut rng = XorShift64::new(cfg.seed);
        // He-style init scaled for 1-d input.
        let mut net = Self {
            w1: (0..h).map(|_| rng.next_sym() * 2.0).collect(),
            b1: (0..h).map(|_| rng.next_sym() * 0.5).collect(),
            w2: (0..h)
                .map(|_| rng.next_sym() * (2.0 / h as f64).sqrt())
                .collect(),
            b2: 0.0,
            k_off,
            k_scale,
            r_off,
            r_scale,
        };

        let mut vw1 = vec![0.0; h];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![0.0; h];
        let mut vb2 = 0.0;
        let mut hidden = vec![0.0; h];
        let mut idx: Vec<usize> = (0..n).collect();

        for _ in 0..cfg.epochs {
            // Fisher–Yates shuffle for SGD.
            for i in (1..n).rev() {
                let j = rng.next_usize(i + 1);
                idx.swap(i, j);
            }
            for chunk in idx.chunks(cfg.batch) {
                let mut gw1 = vec![0.0; h];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![0.0; h];
                let mut gb2 = 0.0;
                for &i in chunk {
                    let x = xs[i];
                    let mut y_hat = net.b2;
                    for j in 0..h {
                        let a = net.w1[j] * x + net.b1[j];
                        hidden[j] = if a > 0.0 { a } else { 0.0 };
                        y_hat += net.w2[j] * hidden[j];
                    }
                    let err = y_hat - ys[i];
                    gb2 += err;
                    for j in 0..h {
                        gw2[j] += err * hidden[j];
                        if hidden[j] > 0.0 {
                            let back = err * net.w2[j];
                            gw1[j] += back * x;
                            gb1[j] += back;
                        }
                    }
                }
                let scale = cfg.lr / chunk.len() as f64;
                for j in 0..h {
                    vw1[j] = cfg.momentum * vw1[j] - scale * gw1[j];
                    vb1[j] = cfg.momentum * vb1[j] - scale * gb1[j];
                    vw2[j] = cfg.momentum * vw2[j] - scale * gw2[j];
                    net.w1[j] += vw1[j];
                    net.b1[j] += vb1[j];
                    net.w2[j] += vw2[j];
                }
                vb2 = cfg.momentum * vb2 - scale * gb2;
                net.b2 += vb2;
            }
        }
        Ok(net)
    }

    /// Predicted fractional rank for `key` (in rank space, like the linear
    /// model).
    pub fn predict(&self, key: Key) -> f64 {
        let x = (key as f64 - self.k_off) * self.k_scale;
        let mut y = self.b2;
        for j in 0..self.w1.len() {
            let a = self.w1[j] * x + self.b1[j];
            if a > 0.0 {
                y += self.w2[j] * a;
            }
        }
        y * self.r_scale + self.r_off
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w1.len() * 3 + 1
    }

    /// Mean squared error of the network on the CDF of `ks`.
    pub fn mse_on(&self, ks: &KeySet) -> f64 {
        let n = ks.len() as f64;
        ks.cdf_pairs()
            .map(|(k, r)| (self.predict(k) - r as f64).powi(2))
            .sum::<f64>()
            / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let ks = KeySet::from_keys(vec![1, 2, 3]).unwrap();
        let bad = NnConfig {
            hidden: 0,
            ..NnConfig::default()
        };
        assert!(NeuralNet::fit(&ks, &bad).is_err());
        let bad = NnConfig {
            batch: 0,
            ..NnConfig::default()
        };
        assert!(NeuralNet::fit(&ks, &bad).is_err());
        let one = KeySet::from_keys(vec![7]).unwrap();
        assert!(NeuralNet::fit(&one, &NnConfig::default()).is_err());
    }

    #[test]
    fn learns_linear_cdf_well() {
        let ks = KeySet::from_keys((0..500u64).map(|i| i * 10).collect()).unwrap();
        let nn = NeuralNet::fit(&ks, &NnConfig::default()).unwrap();
        // Root model only needs coarse accuracy: within a few percent of n.
        let rmse = nn.mse_on(&ks).sqrt();
        assert!(
            rmse < 25.0,
            "rmse {} too large for 500-key linear CDF",
            rmse
        );
    }

    #[test]
    fn learns_curved_cdf_better_than_flat() {
        // Quadratic key spacing — a curved CDF.
        let ks = KeySet::from_keys((0..300u64).map(|i| i * i).collect()).unwrap();
        let nn = NeuralNet::fit(&ks, &NnConfig::default()).unwrap();
        let mse_nn = nn.mse_on(&ks);
        // Flat predictor at mean rank has MSE = Var_R = (n²−1)/12.
        let n = ks.len() as f64;
        let flat = (n * n - 1.0) / 12.0;
        assert!(mse_nn < flat / 2.0, "nn mse {} vs flat {}", mse_nn, flat);
    }

    #[test]
    fn deterministic_given_seed() {
        let ks = KeySet::from_keys((0..100u64).map(|i| i * 3 + 1).collect()).unwrap();
        let a = NeuralNet::fit(&ks, &NnConfig::default()).unwrap();
        let b = NeuralNet::fit(&ks, &NnConfig::default()).unwrap();
        for k in [1u64, 90, 297] {
            assert_eq!(a.predict(k), b.predict(k));
        }
    }

    #[test]
    fn param_count() {
        let ks = KeySet::from_keys(vec![1, 5, 9, 20]).unwrap();
        let nn = NeuralNet::fit(
            &ks,
            &NnConfig {
                hidden: 8,
                epochs: 1,
                ..NnConfig::default()
            },
        )
        .unwrap();
        assert_eq!(nn.param_count(), 8 * 3 + 1);
    }

    #[test]
    fn predictions_monotone_enough_for_routing() {
        // The router only needs predictions that grow with the key overall.
        let ks = KeySet::from_keys((0..200u64).map(|i| i * 5).collect()).unwrap();
        let nn = NeuralNet::fit(&ks, &NnConfig::default()).unwrap();
        let lo = nn.predict(0);
        let hi = nn.predict(995);
        assert!(hi > lo, "prediction should increase across the key span");
    }
}
