//! Sample moments over CDF pairs, with the numerically robust shifted
//! representation the attacks rely on.
//!
//! Theorem 1 of the paper expresses the optimal regression parameters and
//! its loss through the sample moments `M_K`, `M_K²`, `M_R`, `M_R²`, `M_KR`.
//! Computing these naively over raw `u64` keys up to 10⁹ and 10⁷ points
//! loses precision (variance becomes a difference of two enormous numbers),
//! so [`CdfMoments`] stores *shifted* sums: keys are centred by a fixed
//! offset chosen at construction. Variances and covariances are invariant
//! under the shift, which keeps every downstream formula unchanged.

use crate::keys::{Key, KeySet};

/// Shifted sample moments of a `(key, rank)` dataset.
///
/// All sums run over the `n` CDF pairs `(k_i, r_i)`; keys enter as
/// `x_i = k_i - shift`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CdfMoments {
    /// Number of points `n`.
    pub n: usize,
    /// Key shift applied to every key before accumulation.
    pub shift: f64,
    /// `Σ x_i`.
    pub sum_x: f64,
    /// `Σ x_i²`.
    pub sum_xx: f64,
    /// `Σ r_i`.
    pub sum_r: f64,
    /// `Σ r_i²`.
    pub sum_rr: f64,
    /// `Σ x_i·r_i`.
    pub sum_xr: f64,
}

impl CdfMoments {
    /// Accumulates moments over explicit `(key, rank)` pairs using `shift`.
    pub fn from_pairs_shifted<I>(pairs: I, shift: f64) -> Self
    where
        I: IntoIterator<Item = (Key, usize)>,
    {
        let mut m = Self {
            n: 0,
            shift,
            sum_x: 0.0,
            sum_xx: 0.0,
            sum_r: 0.0,
            sum_rr: 0.0,
            sum_xr: 0.0,
        };
        for (k, r) in pairs {
            let x = k as f64 - shift;
            let r = r as f64;
            m.n += 1;
            m.sum_x += x;
            m.sum_xx += x * x;
            m.sum_r += r;
            m.sum_rr += r * r;
            m.sum_xr += x * r;
        }
        m
    }

    /// Accumulates moments for a keyset's CDF (ranks `1..=n`), centring keys
    /// at the midpoint of the keyset's span for stability.
    pub fn from_keyset(ks: &KeySet) -> Self {
        let shift = midpoint_shift(ks.min_key(), ks.max_key());
        Self::from_pairs_shifted(ks.cdf_pairs(), shift)
    }

    /// Sample mean of (shifted) keys, `M_X`.
    pub fn mean_x(&self) -> f64 {
        self.sum_x / self.n as f64
    }

    /// Sample mean of ranks, `M_R`.
    pub fn mean_r(&self) -> f64 {
        self.sum_r / self.n as f64
    }

    /// Sample (population) variance of keys, `Var_K` — shift-invariant.
    pub fn var_x(&self) -> f64 {
        let n = self.n as f64;
        let m = self.mean_x();
        (self.sum_xx / n - m * m).max(0.0)
    }

    /// Sample (population) variance of ranks, `Var_R`.
    pub fn var_r(&self) -> f64 {
        let n = self.n as f64;
        let m = self.mean_r();
        (self.sum_rr / n - m * m).max(0.0)
    }

    /// Sample covariance between keys and ranks, `Cov_KR` — shift-invariant.
    pub fn cov_xr(&self) -> f64 {
        let n = self.n as f64;
        self.sum_xr / n - self.mean_x() * self.mean_r()
    }

    /// Mean of *unshifted* keys, `M_K = M_X + shift`.
    pub fn mean_key(&self) -> f64 {
        self.mean_x() + self.shift
    }

    /// Re-expresses the moments under a different key shift and a rank
    /// offset, in `O(1)`.
    ///
    /// With `d = shift_old − shift_new` (so `x' = x + d`) and ranks
    /// lifted by `t` (`r' = r + t`), every sum follows from the binomial
    /// expansion — the algebra that lets a parent model's moments be
    /// assembled from independently-fitted child partitions (leaf fits
    /// keep their local midpoint shift and ranks `1..=len`; the root
    /// wants the global shift and global ranks) without touching the
    /// keys again.
    pub fn rebase(&self, new_shift: f64, rank_offset: usize) -> CdfMoments {
        let n = self.n as f64;
        let d = self.shift - new_shift;
        let t = rank_offset as f64;
        CdfMoments {
            n: self.n,
            shift: new_shift,
            sum_x: self.sum_x + n * d,
            sum_xx: self.sum_xx + 2.0 * d * self.sum_x + n * d * d,
            sum_r: self.sum_r + n * t,
            sum_rr: self.sum_rr + 2.0 * t * self.sum_r + n * t * t,
            sum_xr: self.sum_xr + d * self.sum_r + t * self.sum_x + n * d * t,
        }
    }

    /// Sums two moment sets over disjoint data. Both must already share
    /// the same `shift` (use [`CdfMoments::rebase`] first).
    pub fn merge(&self, other: &CdfMoments) -> CdfMoments {
        debug_assert_eq!(
            self.shift.to_bits(),
            other.shift.to_bits(),
            "merging moments under different shifts"
        );
        CdfMoments {
            n: self.n + other.n,
            shift: self.shift,
            sum_x: self.sum_x + other.sum_x,
            sum_xx: self.sum_xx + other.sum_xx,
            sum_r: self.sum_r + other.sum_r,
            sum_rr: self.sum_rr + other.sum_rr,
            sum_xr: self.sum_xr + other.sum_xr,
        }
    }
}

/// Midpoint of `[lo, hi]` as the canonical key shift.
pub fn midpoint_shift(lo: Key, hi: Key) -> f64 {
    lo as f64 + (hi - lo) as f64 / 2.0
}

/// Sum of ranks `1..=n`: `n(n+1)/2`.
///
/// After inserting `p` poisoning keys the rank multiset is always exactly
/// `1..=n+p` regardless of *where* the keys were inserted — the compound
/// re-ranking preserves it. The attack exploits this: `Σr` and `Σr²` of the
/// poisoned set are closed-form constants (Section IV-C, observation 2).
pub fn rank_sum(n: usize) -> f64 {
    let n = n as f64;
    n * (n + 1.0) / 2.0
}

/// Sum of squared ranks `1..=n`: `n(n+1)(2n+1)/6`.
pub fn rank_sq_sum(n: usize) -> f64 {
    let n = n as f64;
    n * (n + 1.0) * (2.0 * n + 1.0) / 6.0
}

/// Five-number summary plus mean, for the boxplots of Figures 5–8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Minimum observation.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl BoxplotSummary {
    /// Summarises a sample; returns `None` on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(Self {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: *v.last().unwrap(),
            mean,
            count: v.len(),
        })
    }
}

impl std::fmt::Display for BoxplotSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.count
        )
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice, `q ∈ [0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyDomain;

    fn small() -> KeySet {
        KeySet::new(vec![2, 6, 7, 12], KeyDomain::new(1, 13).unwrap()).unwrap()
    }

    #[test]
    fn moments_match_naive() {
        let ks = small();
        let m = CdfMoments::from_keyset(&ks);
        // Naive, unshifted values.
        let keys = [2.0f64, 6.0, 7.0, 12.0];
        let ranks = [1.0f64, 2.0, 3.0, 4.0];
        let mk: f64 = keys.iter().sum::<f64>() / 4.0;
        let mr: f64 = ranks.iter().sum::<f64>() / 4.0;
        let var_k = keys.iter().map(|k| (k - mk) * (k - mk)).sum::<f64>() / 4.0;
        let var_r = ranks.iter().map(|r| (r - mr) * (r - mr)).sum::<f64>() / 4.0;
        let cov = keys
            .iter()
            .zip(&ranks)
            .map(|(k, r)| (k - mk) * (r - mr))
            .sum::<f64>()
            / 4.0;
        assert!((m.var_x() - var_k).abs() < 1e-9);
        assert!((m.var_r() - var_r).abs() < 1e-9);
        assert!((m.cov_xr() - cov).abs() < 1e-9);
        assert!((m.mean_key() - mk).abs() < 1e-9);
    }

    #[test]
    fn shift_invariance() {
        let ks = small();
        let a = CdfMoments::from_pairs_shifted(ks.cdf_pairs(), 0.0);
        let b = CdfMoments::from_pairs_shifted(ks.cdf_pairs(), 7.0);
        assert!((a.var_x() - b.var_x()).abs() < 1e-9);
        assert!((a.cov_xr() - b.cov_xr()).abs() < 1e-9);
        assert!((a.mean_key() - b.mean_key()).abs() < 1e-9);
    }

    #[test]
    fn rebase_and_merge_reassemble_global_moments() {
        // Split a keyset, compute per-part moments with local shifts and
        // local ranks, rebase them onto the global frame, merge, and
        // compare against directly-computed global moments.
        let ks = KeySet::from_keys((1..400u64).map(|i| i * i / 3 + i).collect()).unwrap();
        let direct = CdfMoments::from_keyset(&ks);
        let parts = ks.partition(7).unwrap();
        let mut merged: Option<CdfMoments> = None;
        let mut rank_offset = 0usize;
        for part in &parts {
            let local = CdfMoments::from_keyset(part);
            let lifted = local.rebase(direct.shift, rank_offset);
            merged = Some(match merged {
                None => lifted,
                Some(acc) => acc.merge(&lifted),
            });
            rank_offset += part.len();
        }
        let merged = merged.unwrap();
        assert_eq!(merged.n, direct.n);
        for (got, want, name) in [
            (merged.sum_x, direct.sum_x, "sum_x"),
            (merged.sum_xx, direct.sum_xx, "sum_xx"),
            (merged.sum_r, direct.sum_r, "sum_r"),
            (merged.sum_rr, direct.sum_rr, "sum_rr"),
            (merged.sum_xr, direct.sum_xr, "sum_xr"),
        ] {
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "{name}: {got} vs {want}"
            );
        }
        assert!((merged.var_x() - direct.var_x()).abs() <= 1e-9 * direct.var_x().max(1.0));
        assert!((merged.cov_xr() - direct.cov_xr()).abs() <= 1e-9 * direct.cov_xr().abs().max(1.0));
    }

    #[test]
    fn rank_sums_closed_form() {
        for n in [1usize, 2, 10, 1000] {
            let exact_sum: f64 = (1..=n).map(|i| i as f64).sum();
            let exact_sq: f64 = (1..=n).map(|i| (i * i) as f64).sum();
            assert_eq!(rank_sum(n), exact_sum);
            assert_eq!(rank_sq_sum(n), exact_sq);
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 4.0);
        assert_eq!(quantile_sorted(&v, 0.5), 2.5);
    }

    #[test]
    fn boxplot_summary() {
        let s = BoxplotSummary::from_samples(&[3.0, 1.0, 2.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert!(BoxplotSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn boxplot_ignores_non_finite() {
        let s = BoxplotSummary::from_samples(&[1.0, f64::INFINITY, 2.0]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn large_keys_remain_stable() {
        // Keys near 1e9 with tiny variance: the shifted representation must
        // not lose the signal.
        let base = 1_000_000_000u64;
        let keys: Vec<u64> = (0..1000).map(|i| base + i * 2).collect();
        let ks = KeySet::from_keys(keys).unwrap();
        let m = CdfMoments::from_keyset(&ks);
        // Var of arithmetic progression step 2, n=1000: 4 * (n²−1)/12.
        let n = 1000f64;
        let expected = 4.0 * (n * n - 1.0) / 12.0;
        assert!((m.var_x() - expected).abs() / expected < 1e-9);
    }
}
