//! Error-bounded piecewise linear approximation (PLA) index — a
//! FITing-tree / PGM-style learned index.
//!
//! The paper's future-work section singles out "learned index structures
//! based on different regression models as well as interpolation
//! structures" as the next attack surface. This module provides that
//! substrate: a one-pass greedy *shrinking cone* segmentation of the CDF
//! such that every key's predicted rank is within `epsilon` of its true
//! rank, plus a two-level index (binary search over segment boundaries,
//! then the segment's linear model, then an `epsilon`-bounded local
//! search).
//!
//! The attack-relevant property is the dual of the RMI's: a poisoned CDF
//! does not *mis-predict* (the error bound is enforced at build time) — it
//! forces the builder to cut **more segments**, inflating the index's
//! memory footprint and search depth. `ablation_pla_attack` measures
//! exactly that trade-off.

use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::scratch::ScratchPool;
use crate::search::bounded_search_with_fallback;

/// Build configuration for [`PlaIndex`] under the [`LearnedIndex`] API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaConfig {
    /// The maximum prediction error `epsilon ≥ 1`, in positions.
    pub epsilon: usize,
}

impl Default for PlaConfig {
    fn default() -> Self {
        Self { epsilon: 16 }
    }
}

/// One PLA segment: keys in `[first_key, last_key]` are predicted by
/// `rank ≈ slope·(key − first_key) + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Smallest key covered by the segment.
    pub first_key: Key,
    /// Largest key covered by the segment.
    pub last_key: Key,
    /// Slope of the local model (ranks per key unit).
    pub slope: f64,
    /// Predicted rank of `first_key` (0-based position + 1).
    pub intercept: f64,
    /// Index of the segment's first key in the global sorted array.
    pub start: usize,
    /// Number of keys covered.
    pub len: usize,
}

impl Segment {
    /// Predicted global 0-based position for `key`.
    pub fn predict_pos(&self, key: Key, total: usize) -> usize {
        let p = self.slope * (key.saturating_sub(self.first_key)) as f64 + self.intercept - 1.0;
        p.round().clamp(0.0, (total - 1) as f64) as usize
    }
}

/// An `epsilon`-bounded piecewise linear index over a sorted keyset.
#[derive(Debug, Clone)]
pub struct PlaIndex {
    segments: Vec<Segment>,
    keys: Vec<Key>,
    epsilon: usize,
    /// Mean squared training error, computed once at build time.
    training_loss: f64,
    /// Largest training prediction error, computed once at build time.
    max_train_err: usize,
    /// Pooled `(key, slot)` permutation buffers for the sorted-batch path.
    scratch: ScratchPool<Vec<(Key, usize)>>,
}

impl PlaIndex {
    /// Builds the index with the given error bound (`epsilon ≥ 1`).
    ///
    /// Uses the standard shrinking-cone construction: extend the current
    /// segment while some line through the segment origin stays within
    /// `±epsilon` of every covered rank; cut a new segment when the cone
    /// closes. One pass, `O(n)` — and the training statistics
    /// ([`PlaIndex::loss`]/[`PlaIndex::max_training_error`]) stream out of
    /// a second `O(n)` sweep over the freshly-cut segments at build time,
    /// so reading them later costs nothing (the pipeline reads the loss
    /// of every victim it builds; the old implementation re-routed every
    /// key through a per-key binary search on every call).
    pub fn build(ks: &KeySet, epsilon: usize) -> Result<Self> {
        let (segments, keys) = Self::cut_segments(ks, epsilon)?;
        // Streaming stats: segments tile the keyset in order, so each
        // key's responsible segment is the one covering its range — the
        // same segment `segment_for` routes to — and the sweep touches
        // keys in exactly the order the routed reference path does,
        // keeping the sums bit-identical.
        let total = keys.len();
        let mut sum_sq = 0.0f64;
        let mut max_err = 0usize;
        for seg in &segments {
            for (i, &k) in keys[seg.start..seg.start + seg.len].iter().enumerate() {
                let e = seg.predict_pos(k, total).abs_diff(seg.start + i);
                max_err = max_err.max(e);
                let e = e as f64;
                sum_sq += e * e;
            }
        }
        Ok(Self {
            segments,
            keys,
            epsilon,
            training_loss: if total == 0 {
                0.0
            } else {
                sum_sq / total as f64
            },
            max_train_err: max_err,
            scratch: ScratchPool::new(),
        })
    }

    /// The pre-optimization build path, kept callable as the `buildpath`
    /// bench's reference: the same cone construction, but training
    /// statistics computed the way the old `loss()` did on every call —
    /// each key re-routed through the per-key segment binary search.
    /// Produces an index identical to [`PlaIndex::build`].
    pub fn build_reference(ks: &KeySet, epsilon: usize) -> Result<Self> {
        let (segments, keys) = Self::cut_segments(ks, epsilon)?;
        let mut out = Self {
            segments,
            keys,
            epsilon,
            training_loss: 0.0,
            max_train_err: 0,
            scratch: ScratchPool::new(),
        };
        out.training_loss = out.loss_recomputed();
        out.max_train_err = out.max_training_error_recomputed();
        Ok(out)
    }

    /// The shrinking-cone segmentation shared by both build paths.
    fn cut_segments(ks: &KeySet, epsilon: usize) -> Result<(Vec<Segment>, Vec<Key>)> {
        if epsilon == 0 {
            return Err(LisError::Invariant("PLA epsilon must be ≥ 1".into()));
        }
        let keys = ks.keys().to_vec();
        let mut segments = Vec::new();
        let eps = epsilon as f64;

        let mut start = 0usize;
        while start < keys.len() {
            let origin_key = keys[start];
            let origin_rank = (start + 1) as f64;
            // Cone of feasible slopes, starts fully open.
            let mut lo_slope = 0.0f64;
            let mut hi_slope = f64::INFINITY;
            let mut end = start + 1;
            while end < keys.len() {
                let dx = (keys[end] - origin_key) as f64;
                let dy = (end + 1) as f64 - origin_rank;
                debug_assert!(dx > 0.0, "keys strictly increasing");
                // Key at `end` requires slope in [(dy−eps)/dx, (dy+eps)/dx].
                let need_lo = (dy - eps) / dx;
                let need_hi = (dy + eps) / dx;
                let new_lo = lo_slope.max(need_lo);
                let new_hi = hi_slope.min(need_hi);
                if new_lo > new_hi {
                    break; // cone closed: cut the segment here
                }
                lo_slope = new_lo;
                hi_slope = new_hi;
                end += 1;
            }
            let slope = if end - start == 1 {
                0.0
            } else if hi_slope.is_finite() {
                (lo_slope + hi_slope) / 2.0
            } else {
                lo_slope
            };
            segments.push(Segment {
                first_key: origin_key,
                last_key: keys[end - 1],
                slope,
                intercept: origin_rank,
                start,
                len: end - start,
            });
            start = end;
        }
        Ok((segments, keys))
    }

    /// Number of segments — the memory-footprint proxy the attack inflates.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the index is empty (unreachable for built indexes).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Index of the segment responsible for `key` (last segment whose
    /// `first_key ≤ key`, or `0`).
    fn segment_index_for(&self, key: Key) -> usize {
        match self.segments.binary_search_by(|s| s.first_key.cmp(&key)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// The segment responsible for `key`.
    pub fn segment_for(&self, key: Key) -> &Segment {
        &self.segments[self.segment_index_for(key)]
    }

    /// Predicted global 0-based position of `key`.
    pub fn predict_pos(&self, key: Key) -> usize {
        self.segment_for(key).predict_pos(key, self.keys.len())
    }

    /// Lookup served by a known segment: local model prediction, then
    /// `epsilon`-bounded branchless search. Member keys are in-window by
    /// the build-time bound; absent keys predicted out of bound fall back
    /// to galloping so a miss is always a proven global absence.
    fn lookup_in_segment(&self, seg: usize, key: Key) -> Lookup {
        let guess = self.segments[seg].predict_pos(key, self.keys.len());
        bounded_search_with_fallback(&self.keys, key, guess, self.epsilon + 1).into()
    }

    /// Full lookup: segment route, local model, `epsilon`-bounded binary
    /// search. Membership hits are guaranteed by the build-time bound.
    pub fn lookup(&self, key: Key) -> Lookup {
        self.lookup_in_segment(self.segment_index_for(key), key)
    }

    /// Sorted-batch lookup into a reused buffer: probes are swept in key
    /// order, so segment routing advances a cursor monotonically (no
    /// per-probe binary search over segments) and the bounded windows
    /// stream through the key array; results return in probe order and
    /// are identical to [`PlaIndex::lookup`] per probe. Like the RMI's
    /// batch path, the sweep is software-pipelined: segment routing and
    /// prediction run ahead of the `epsilon`-bounded window searches,
    /// prefetching each probe's window so cache misses overlap.
    pub fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        let mut seg = 0usize;
        let radius = self.epsilon + 1;
        let last = self.keys.len().saturating_sub(1);
        crate::index::sorted_batch_pipelined(
            &self.scratch,
            keys,
            out,
            |k| {
                // Monotone `segment_for`: last segment with
                // `first_key ≤ k`, galloping forward from the cursor.
                seg = crate::search::monotone_route_by(&self.segments, seg, k, |s| s.first_key);
                let guess = self.segments[seg].predict_pos(k, self.keys.len());
                crate::search::prefetch_window(
                    &self.keys,
                    guess.saturating_sub(radius),
                    guess.saturating_add(radius).min(last),
                );
                guess
            },
            |k, guess| bounded_search_with_fallback(&self.keys, k, guess, radius).into(),
        );
    }

    /// Largest prediction error over the training keys (must be ≤
    /// `epsilon + 1` rounding slack; exposed for tests and diagnostics).
    /// Precomputed at build time; `O(1)`.
    pub fn max_training_error(&self) -> usize {
        self.max_train_err
    }

    /// Recomputes [`PlaIndex::max_training_error`] from scratch through
    /// per-key segment routing — the reference implementation backing the
    /// stored value (tests pin stored ≡ recomputed).
    pub fn max_training_error_recomputed(&self) -> usize {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, &k)| self.predict_pos(k).abs_diff(i))
            .max()
            .unwrap_or(0)
    }

    /// Recomputes the training MSE from scratch through per-key segment
    /// routing — the reference implementation backing the stored
    /// [`LearnedIndex::loss`] value.
    pub fn loss_recomputed(&self) -> f64 {
        if self.keys.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .keys
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let e = self.predict_pos(k).abs_diff(i) as f64;
                e * e
            })
            .sum();
        sum / self.keys.len() as f64
    }
}

impl LearnedIndex for PlaIndex {
    type Config = PlaConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        PlaIndex::build(ks, cfg.epsilon)
    }

    fn lookup(&self, key: Key) -> Lookup {
        PlaIndex::lookup(self, key)
    }

    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        PlaIndex::lookup_batch_into(self, keys, out)
    }

    /// Mean squared prediction error over the training keys. Bounded by
    /// `epsilon²` at build time — poisoning a PLA shows up in
    /// [`LearnedIndex::memory_bytes`] (segment count), not here.
    /// Precomputed during the build's streaming stats sweep; `O(1)`.
    fn loss(&self) -> f64 {
        self.training_loss
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.segments.len() * std::mem::size_of::<Segment>()
            + self.keys.len() * std::mem::size_of::<Key>()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step).collect()).unwrap()
    }

    #[test]
    fn rejects_zero_epsilon() {
        let ks = uniform(10, 2);
        assert!(PlaIndex::build(&ks, 0).is_err());
    }

    #[test]
    fn linear_data_needs_one_segment() {
        let ks = uniform(10_000, 7);
        let pla = PlaIndex::build(&ks, 8).unwrap();
        assert_eq!(pla.num_segments(), 1);
    }

    #[test]
    fn all_keys_found_within_epsilon() {
        for eps in [1usize, 4, 16, 64] {
            let ks = KeySet::from_keys((1..3000u64).map(|i| i * i / 7 + i).collect()).unwrap();
            let pla = PlaIndex::build(&ks, eps).unwrap();
            assert!(pla.max_training_error() <= eps + 1, "eps {eps}");
            for (i, &k) in ks.keys().iter().enumerate().step_by(29) {
                assert_eq!(pla.lookup(k).pos, Some(i), "eps {eps} key {k}");
            }
        }
    }

    #[test]
    fn absent_keys_return_none() {
        let ks = uniform(500, 10);
        let pla = PlaIndex::build(&ks, 4).unwrap();
        for k in [1u64, 5, 4999, 10_000] {
            assert_eq!(pla.lookup(k).pos, None, "key {k}");
        }
    }

    #[test]
    fn smaller_epsilon_more_segments() {
        let ks = KeySet::from_keys((1..5000u64).map(|i| i * i).collect()).unwrap();
        let tight = PlaIndex::build(&ks, 2).unwrap().num_segments();
        let loose = PlaIndex::build(&ks, 64).unwrap().num_segments();
        assert!(tight > loose, "tight {tight} vs loose {loose}");
    }

    #[test]
    fn segments_tile_the_keyset() {
        let ks = KeySet::from_keys((1..2000u64).map(|i| i * 3 + (i % 7)).collect()).unwrap();
        let pla = PlaIndex::build(&ks, 4).unwrap();
        let mut expected_start = 0usize;
        for s in pla.segments() {
            assert_eq!(s.start, expected_start);
            assert_eq!(s.first_key, ks.keys()[s.start]);
            assert_eq!(s.last_key, ks.keys()[s.start + s.len - 1]);
            expected_start += s.len;
        }
        assert_eq!(expected_start, ks.len());
    }

    #[test]
    fn poisoning_inflates_segment_count() {
        // The PLA analogue of the paper's attack effect: a poisoned CDF
        // (clustered insertions) forces more cuts at the same epsilon.
        let ks = uniform(2_000, 11);
        let clean_segments = PlaIndex::build(&ks, 4).unwrap().num_segments();

        // Insert a dense poison clump mid-domain.
        let mut poisoned = ks.clone();
        let base = ks.keys()[1000] + 1;
        for j in 0..200u64 {
            let k = base + j;
            if !poisoned.contains(k) {
                let _ = poisoned.insert(k);
            }
        }
        let poisoned_segments = PlaIndex::build(&poisoned, 4).unwrap().num_segments();
        assert!(
            poisoned_segments > clean_segments,
            "poisoning should force more segments: {poisoned_segments} vs {clean_segments}"
        );
    }

    #[test]
    fn single_key_segment_edge_case() {
        let ks = KeySet::from_keys(vec![5]).unwrap();
        let pla = PlaIndex::build(&ks, 2).unwrap();
        assert_eq!(pla.num_segments(), 1);
        assert_eq!(pla.lookup(5).pos, Some(0));
    }

    #[test]
    fn stored_training_stats_match_recomputation_and_reference_build() {
        for keys in [
            (1..3500u64).map(|i| i * i / 7 + i).collect::<Vec<_>>(),
            (0..2000u64).map(|i| i * 11).collect::<Vec<_>>(),
            vec![5u64],
        ] {
            let ks = KeySet::from_keys(keys).unwrap();
            for eps in [1usize, 8, 32] {
                let pla = PlaIndex::build(&ks, eps).unwrap();
                assert_eq!(
                    LearnedIndex::loss(&pla).to_bits(),
                    pla.loss_recomputed().to_bits(),
                    "eps {eps}"
                );
                assert_eq!(
                    pla.max_training_error(),
                    pla.max_training_error_recomputed()
                );
                let reference = PlaIndex::build_reference(&ks, eps).unwrap();
                assert_eq!(pla.segments(), reference.segments());
                assert_eq!(
                    LearnedIndex::loss(&pla).to_bits(),
                    LearnedIndex::loss(&reference).to_bits()
                );
                assert_eq!(pla.max_training_error(), reference.max_training_error());
            }
        }
    }

    #[test]
    fn sorted_batch_matches_single_lookup_exactly() {
        let ks = KeySet::from_keys((1..2500u64).map(|i| i * i / 9 + i).collect()).unwrap();
        let pla = PlaIndex::build(&ks, 8).unwrap();
        assert!(pla.num_segments() > 1);
        let mut probes: Vec<Key> = ks.keys().iter().rev().step_by(5).copied().collect();
        probes.extend([0, 2, ks.max_key() + 1, Key::MAX]);
        probes.push(probes[0]);
        let mut out = Vec::new();
        pla.lookup_batch_into(&probes, &mut out);
        assert_eq!(out.len(), probes.len());
        for (&k, &got) in probes.iter().zip(&out) {
            assert_eq!(got, pla.lookup(k), "key {k}");
        }
        assert_eq!(pla.scratch.idle(), 1);
    }

    #[test]
    fn member_lookup_cost_stays_within_epsilon_window() {
        let ks = KeySet::from_keys((1..4000u64).map(|i| i * i / 3).collect()).unwrap();
        let eps = 16usize;
        let pla = PlaIndex::build(&ks, eps).unwrap();
        let bound = crate::search::lane_window_cost_bound(2 * (eps + 1) + 1);
        for (i, &k) in ks.keys().iter().enumerate().step_by(37) {
            let hit = pla.lookup(k);
            assert_eq!(hit.pos, Some(i));
            assert!(hit.cost <= bound, "cost {} > {bound}", hit.cost);
        }
    }
}
