//! Record storage: an in-memory dense sorted array with logical paging.
//!
//! The paper assumes "the records are stored at an in-memory dense array
//! that is sorted with respect to the key values" with "fixed-length records
//! and logical paging over a continuous memory region" (Sections III and
//! III-A). [`RecordStore`] provides exactly that substrate: fixed-size
//! payloads laid out contiguously, addressed by global position, grouped in
//! logical pages so experiments can count page touches.

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};

/// Fixed record payload width in bytes. Real deployments use schema-derived
/// widths; 16 bytes keeps experiments honest without bloating memory.
pub const RECORD_SIZE: usize = 16;

/// A fixed-length record payload.
pub type Record = [u8; RECORD_SIZE];

/// Dense, sorted, paged record storage.
#[derive(Debug, Clone)]
pub struct RecordStore {
    keys: Vec<Key>,
    payload: Vec<u8>,
    page_size: usize,
}

impl RecordStore {
    /// Builds a store for `ks`, deriving each record deterministically from
    /// its key (experiments never care about payload content, only layout).
    pub fn build(ks: &KeySet, page_size: usize) -> Result<Self> {
        if page_size == 0 {
            return Err(LisError::Invariant("page size must be > 0".into()));
        }
        let keys = ks.keys().to_vec();
        let mut payload = Vec::with_capacity(keys.len() * RECORD_SIZE);
        for &k in &keys {
            payload.extend_from_slice(&default_record(k));
        }
        Ok(Self {
            keys,
            payload,
            page_size,
        })
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the store is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Logical page size in records.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of logical pages.
    pub fn num_pages(&self) -> usize {
        self.keys.len().div_ceil(self.page_size)
    }

    /// Page index of global position `pos`.
    pub fn page_of(&self, pos: usize) -> usize {
        pos / self.page_size
    }

    /// The record at global position `pos`.
    pub fn record_at(&self, pos: usize) -> Option<&[u8]> {
        if pos >= self.keys.len() {
            return None;
        }
        Some(&self.payload[pos * RECORD_SIZE..(pos + 1) * RECORD_SIZE])
    }

    /// The key at global position `pos`.
    pub fn key_at(&self, pos: usize) -> Option<Key> {
        self.keys.get(pos).copied()
    }

    /// Fetches a record by key via binary search (the non-learned access
    /// path), returning the record and its position.
    pub fn get(&self, key: Key) -> Result<(usize, &[u8])> {
        let pos = self
            .keys
            .binary_search(&key)
            .map_err(|_| LisError::RecordNotFound(key))?;
        Ok((pos, self.record_at(pos).expect("pos in range")))
    }

    /// Number of pages touched when scanning positions `[lo, hi]` — the
    /// physical cost of a last-mile search window.
    pub fn pages_touched(&self, lo: usize, hi: usize) -> usize {
        if lo > hi || lo >= self.keys.len() {
            return 0;
        }
        let hi = hi.min(self.keys.len() - 1);
        self.page_of(hi) - self.page_of(lo) + 1
    }
}

/// Deterministic payload for a key: little-endian key followed by its
/// bitwise complement, padding the fixed width.
pub fn default_record(key: Key) -> Record {
    let mut r = [0u8; RECORD_SIZE];
    r[..8].copy_from_slice(&key.to_le_bytes());
    r[8..].copy_from_slice(&(!key).to_le_bytes());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RecordStore {
        let ks = KeySet::from_keys((0..100u64).map(|i| i * 2 + 1).collect()).unwrap();
        RecordStore::build(&ks, 16).unwrap()
    }

    #[test]
    fn rejects_zero_page_size() {
        let ks = KeySet::from_keys(vec![1]).unwrap();
        assert!(RecordStore::build(&ks, 0).is_err());
    }

    #[test]
    fn layout_is_dense_and_sorted() {
        let s = store();
        assert_eq!(s.len(), 100);
        for pos in 0..s.len() {
            let k = s.key_at(pos).unwrap();
            let rec = s.record_at(pos).unwrap();
            assert_eq!(&rec[..8], &k.to_le_bytes());
            assert_eq!(&rec[8..], &(!k).to_le_bytes());
        }
    }

    #[test]
    fn get_by_key() {
        let s = store();
        let (pos, rec) = s.get(41).unwrap();
        assert_eq!(pos, 20);
        assert_eq!(&rec[..8], &41u64.to_le_bytes());
        assert!(matches!(s.get(42), Err(LisError::RecordNotFound(42))));
    }

    #[test]
    fn paging_arithmetic() {
        let s = store();
        assert_eq!(s.num_pages(), 100usize.div_ceil(16));
        assert_eq!(s.page_of(0), 0);
        assert_eq!(s.page_of(15), 0);
        assert_eq!(s.page_of(16), 1);
        assert_eq!(s.pages_touched(0, 15), 1);
        assert_eq!(s.pages_touched(10, 20), 2);
        assert_eq!(s.pages_touched(0, 99), s.num_pages());
    }

    #[test]
    fn pages_touched_clamps() {
        let s = store();
        assert_eq!(s.pages_touched(50, 10_000), s.num_pages() - s.page_of(50));
        assert_eq!(s.pages_touched(200, 300), 0);
        assert_eq!(s.pages_touched(20, 10), 0);
    }

    #[test]
    fn out_of_range_accessors_return_none() {
        let s = store();
        assert!(s.record_at(100).is_none());
        assert!(s.key_at(100).is_none());
    }
}
