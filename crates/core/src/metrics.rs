//! Evaluation metrics for poisoning experiments.
//!
//! The paper's primary, implementation-independent metric is the **Ratio
//! Loss**: the MSE of the model trained on the poisoned keyset divided by
//! the MSE of the model trained on the legitimate keyset (Section III-C).
//! This module implements it together with the supporting statistics used
//! by the figures (per-model ratio distributions, lookup-cost summaries).

use crate::keys::KeySet;
use crate::linreg::LinearModel;
use crate::rmi::rmi_loss_of;
use crate::stats::BoxplotSummary;

/// Floor applied to clean losses when forming ratios, so an exactly-linear
/// clean CDF (loss 0) yields a large-but-finite ratio instead of ∞. The
/// floor is far below any loss a real experiment produces.
pub const LOSS_EPSILON: f64 = 1e-12;

/// Ratio of poisoned to clean loss with the epsilon guard.
pub fn ratio_loss(poisoned: f64, clean: f64) -> f64 {
    poisoned / clean.max(LOSS_EPSILON)
}

/// Fits linear regressions on both keysets and returns
/// `(clean_mse, poisoned_mse, ratio)`.
pub fn regression_ratio_loss(
    clean: &KeySet,
    poisoned: &KeySet,
) -> crate::error::Result<(f64, f64, f64)> {
    let clean_mse = LinearModel::fit(clean)?.mse;
    let poisoned_mse = LinearModel::fit(poisoned)?.mse;
    Ok((clean_mse, poisoned_mse, ratio_loss(poisoned_mse, clean_mse)))
}

/// Per-model and aggregate ratio losses for an RMI experiment (the contents
/// of one boxplot + its black horizontal line in Figures 6–7).
#[derive(Debug, Clone)]
pub struct RmiRatioReport {
    /// Ratio `L_i(poisoned) / L_i(clean)` for each second-stage model.
    pub per_model: Vec<f64>,
    /// Clean RMI loss `L_RMI(K)`.
    pub clean_rmi_loss: f64,
    /// Poisoned RMI loss `L_RMI(K ∪ P)`.
    pub poisoned_rmi_loss: f64,
}

impl RmiRatioReport {
    /// Ratio between poisoned and clean RMI loss (the black line in the
    /// paper's Figure 6 plots).
    pub fn rmi_ratio(&self) -> f64 {
        ratio_loss(self.poisoned_rmi_loss, self.clean_rmi_loss)
    }

    /// Boxplot summary of per-model ratios.
    pub fn boxplot(&self) -> Option<BoxplotSummary> {
        BoxplotSummary::from_samples(&self.per_model)
    }

    /// Largest single-model ratio (the "up to 3000×" headline numbers).
    pub fn max_model_ratio(&self) -> f64 {
        self.per_model.iter().copied().fold(0.0, f64::max)
    }
}

/// Compares clean vs poisoned keysets under an `N`-leaf RMI, pairing
/// second-stage models by index.
///
/// Both keysets are partitioned into `N` equal-size parts, matching the
/// attack's bookkeeping (the poisoned partition `i` holds `K_i ∪ P_i` plus
/// the boundary-key drift that Algorithm 2's exchanges introduce).
pub fn rmi_ratio_report(
    clean: &KeySet,
    poisoned: &KeySet,
    num_leaves: usize,
) -> crate::error::Result<RmiRatioReport> {
    let clean_parts = clean.partition(num_leaves)?;
    let poisoned_parts = poisoned.partition(num_leaves)?;
    let mut per_model = Vec::with_capacity(num_leaves);
    for (c, p) in clean_parts.iter().zip(&poisoned_parts) {
        let lc = if c.len() < 2 {
            0.0
        } else {
            LinearModel::fit(c)?.mse
        };
        let lp = if p.len() < 2 {
            0.0
        } else {
            LinearModel::fit(p)?.mse
        };
        per_model.push(ratio_loss(lp, lc));
    }
    Ok(RmiRatioReport {
        per_model,
        clean_rmi_loss: rmi_loss_of(clean, num_leaves)?,
        poisoned_rmi_loss: rmi_loss_of(poisoned, num_leaves)?,
    })
}

/// Aggregate lookup-cost statistics (comparison counts) over a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookupCostSummary {
    /// Mean comparisons per lookup.
    pub mean: f64,
    /// Maximum comparisons observed.
    pub max: usize,
    /// Number of lookups.
    pub count: usize,
}

impl LookupCostSummary {
    /// Summarises comparison counts.
    pub fn from_counts(counts: &[usize]) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        Some(Self {
            mean: counts.iter().sum::<usize>() as f64 / counts.len() as f64,
            max: *counts.iter().max().unwrap(),
            count: counts.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeySet;

    #[test]
    fn ratio_loss_guards_zero() {
        assert!(ratio_loss(1.0, 0.0).is_finite());
        assert_eq!(ratio_loss(4.0, 2.0), 2.0);
    }

    #[test]
    fn regression_ratio_on_obvious_poison() {
        // Clean: perfectly linear CDF. Poisoned: cluster destroys linearity.
        let clean = KeySet::from_keys((0..50u64).map(|i| i * 20).collect()).unwrap();
        let mut poisoned = clean.clone();
        for k in 1..=5u64 {
            poisoned.insert(k).unwrap();
        }
        let (lc, lp, ratio) = regression_ratio_loss(&clean, &poisoned).unwrap();
        assert!(lc < 1e-9);
        assert!(lp > 0.0);
        assert!(ratio > 1.0);
    }

    #[test]
    fn rmi_report_structure() {
        let clean = KeySet::from_keys((0..100u64).map(|i| i * 10).collect()).unwrap();
        let mut poisoned = clean.clone();
        for k in [1u64, 2, 3, 4, 5] {
            poisoned.insert(k).unwrap();
        }
        let rep = rmi_ratio_report(&clean, &poisoned, 5).unwrap();
        assert_eq!(rep.per_model.len(), 5);
        assert!(rep.rmi_ratio() >= 1.0);
        assert!(rep.max_model_ratio() >= rep.per_model[0]);
        assert!(rep.boxplot().is_some());
    }

    #[test]
    fn lookup_cost_summary() {
        let s = LookupCostSummary::from_counts(&[1, 2, 3, 10]).unwrap();
        assert_eq!(s.max, 10);
        assert_eq!(s.count, 4);
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert!(LookupCostSummary::from_counts(&[]).is_none());
    }
}
