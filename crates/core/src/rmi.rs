//! The two-stage Recursive Model Index (Section III-A, Figure 1).
//!
//! The architecture that Kraska et al. showed to outperform B-Trees — and
//! the one the paper attacks — is a two-stage tree: a single *root* model
//! approximating the coarse shape of the CDF, and `N` second-stage linear
//! regressions, each the "expert" for one of `N` contiguous, equal-size
//! partitions of the keyset.
//!
//! Two routing modes are provided:
//!
//! * [`Routing::Root`] — Kraska-style: the root's predicted rank selects the
//!   leaf (`leaf = ⌊N·pred/n⌋`). Mis-routing is possible and handled by the
//!   neighbour-leaf fallback during lookup.
//! * [`Routing::Oracle`] — the paper's attack assumption ("the NN model will
//!   always point to the correct (albeit poisoned) second-stage model",
//!   Section V): leaves are selected by binary search on partition
//!   boundaries, so routing is exact by construction.

use crate::cubic::CubicModel;
use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::linreg::LinearModel;
use crate::nn::{NeuralNet, NnConfig};
use crate::search::exponential_search;

/// Which model family serves as the RMI root.
#[derive(Debug, Clone)]
pub enum RootModelKind {
    /// Linear regression root — cheapest, fine for near-uniform data.
    Linear,
    /// Cubic least-squares root — captures moderate skew.
    Cubic,
    /// From-scratch MLP root, the architecture of the original LIS paper.
    Neural(NnConfig),
}

/// A trained root model.
#[derive(Debug, Clone)]
pub enum RootModel {
    /// Fitted linear root.
    Linear(LinearModel),
    /// Fitted cubic root.
    Cubic(CubicModel),
    /// Fitted neural-network root.
    Neural(NeuralNet),
}

impl RootModel {
    /// Predicted fractional rank of `key` over the full keyset.
    pub fn predict(&self, key: Key) -> f64 {
        match self {
            Self::Linear(m) => m.predict(key),
            Self::Cubic(m) => m.predict(key),
            Self::Neural(m) => m.predict(key),
        }
    }
}

/// Leaf selection strategy at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Select the leaf from the root model's prediction.
    Root,
    /// Select the leaf by binary search on partition boundaries (exact).
    Oracle,
}

/// Configuration for [`Rmi::build`].
#[derive(Debug, Clone)]
pub struct RmiConfig {
    /// Number of second-stage models `N` (the fanout).
    pub num_leaves: usize,
    /// Root model family.
    pub root: RootModelKind,
    /// Query-time leaf selection.
    pub routing: Routing,
}

impl RmiConfig {
    /// Paper-style config: `N` leaves, neural root, oracle routing.
    pub fn paper(num_leaves: usize) -> Self {
        Self {
            num_leaves,
            root: RootModelKind::Neural(NnConfig::default()),
            routing: Routing::Oracle,
        }
    }

    /// Cheap config for experiments where only second-stage losses matter:
    /// linear root, oracle routing.
    pub fn linear_root(num_leaves: usize) -> Self {
        Self {
            num_leaves,
            root: RootModelKind::Linear,
            routing: Routing::Oracle,
        }
    }
}

/// One second-stage model: a linear regression over a contiguous key
/// partition, together with the partition's global-rank offset and its
/// maximum training error (the last-mile search radius).
#[derive(Debug, Clone)]
pub struct Leaf {
    /// The fitted regression (on *local* ranks `1..=len`).
    pub model: LinearModel,
    /// Global 0-based index of the partition's first key.
    pub start: usize,
    /// Number of keys in the partition.
    pub len: usize,
    /// Maximum absolute training error of the model (ceil), in positions.
    pub max_err: usize,
}

impl Leaf {
    /// Predicted global 0-based position for `key`.
    pub fn predict_global_pos(&self, key: Key, total: usize) -> usize {
        let local = self.model.predict(key) - 1.0; // 0-based local position
        let global = local + self.start as f64;
        global.round().clamp(0.0, (total - 1) as f64) as usize
    }
}

/// A trained two-stage recursive model index.
#[derive(Debug, Clone)]
pub struct Rmi {
    root: RootModel,
    leaves: Vec<Leaf>,
    /// First key of each partition, for oracle routing.
    boundaries: Vec<Key>,
    keys: Vec<Key>,
    routing: Routing,
}

impl Rmi {
    /// Builds the index over `ks` according to `cfg`.
    ///
    /// Partitioning follows the paper: `N` contiguous partitions of
    /// (near-)equal size in rank order.
    pub fn build(ks: &KeySet, cfg: &RmiConfig) -> Result<Self> {
        if cfg.num_leaves == 0 {
            return Err(LisError::InvalidRmiConfig("num_leaves must be > 0".into()));
        }
        if cfg.num_leaves > ks.len() {
            return Err(LisError::InvalidRmiConfig(format!(
                "num_leaves {} exceeds key count {}",
                cfg.num_leaves,
                ks.len()
            )));
        }
        let partitions = ks.partition(cfg.num_leaves)?;

        let root = match &cfg.root {
            RootModelKind::Linear => RootModel::Linear(LinearModel::fit(ks)?),
            RootModelKind::Cubic => RootModel::Cubic(CubicModel::fit(ks)?),
            RootModelKind::Neural(nn_cfg) => RootModel::Neural(NeuralNet::fit(ks, nn_cfg)?),
        };

        let mut leaves = Vec::with_capacity(partitions.len());
        let mut boundaries = Vec::with_capacity(partitions.len());
        let mut start = 0usize;
        for part in &partitions {
            let model = fit_leaf(part)?;
            let max_err = model.max_abs_error(part).ceil() as usize;
            boundaries.push(part.min_key());
            leaves.push(Leaf {
                model,
                start,
                len: part.len(),
                max_err,
            });
            start += part.len();
        }

        Ok(Self {
            root,
            leaves,
            boundaries,
            keys: ks.keys().to_vec(),
            routing: cfg.routing,
        })
    }

    /// Number of second-stage models.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Total number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff no keys are indexed (unreachable for built indexes).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The second-stage models.
    pub fn leaves(&self) -> &[Leaf] {
        &self.leaves
    }

    /// The trained root model.
    pub fn root(&self) -> &RootModel {
        &self.root
    }

    /// Index of the leaf that would serve `key` under the configured
    /// routing.
    pub fn route(&self, key: Key) -> usize {
        match self.routing {
            Routing::Oracle => self.route_oracle(key),
            Routing::Root => self.route_by_root(key),
        }
    }

    fn route_oracle(&self, key: Key) -> usize {
        match self.boundaries.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn route_by_root(&self, key: Key) -> usize {
        let pred = self.root.predict(key);
        let n = self.keys.len() as f64;
        let frac = ((pred - 1.0) / n).clamp(0.0, 1.0 - f64::EPSILON);
        (frac * self.leaves.len() as f64) as usize
    }

    /// Predicted global 0-based position of `key`.
    pub fn predict_pos(&self, key: Key) -> usize {
        let leaf = &self.leaves[self.route(key)];
        leaf.predict_global_pos(key, self.keys.len())
    }

    /// Full lookup: route, predict, last-mile search. Returns the key's
    /// global position and the comparison count, falling back to
    /// neighbouring leaves when root routing mispredicts.
    pub fn lookup(&self, key: Key) -> Lookup {
        let guess = self.predict_pos(key);
        // Root routing may land in a neighbouring partition, but the global
        // exponential search covers the whole array, so a miss here is a
        // true absence under either routing mode.
        exponential_search(&self.keys, key, guess).into()
    }

    /// Mean squared error of leaf `i` on its training partition (the
    /// quantity whose poisoned/clean ratio Figure 6 plots per model).
    pub fn leaf_losses(&self) -> Vec<f64> {
        self.leaves.iter().map(|l| l.model.mse).collect()
    }

    /// The RMI loss `L_RMI = (1/N)·Σ L_i` (Section V).
    pub fn rmi_loss(&self) -> f64 {
        if self.leaves.is_empty() {
            return 0.0;
        }
        self.leaves.iter().map(|l| l.model.mse).sum::<f64>() / self.leaves.len() as f64
    }

    /// Largest last-mile search radius across leaves.
    pub fn max_leaf_error(&self) -> usize {
        self.leaves.iter().map(|l| l.max_err).max().unwrap_or(0)
    }

    /// The sorted key array backing the index.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }
}

impl LearnedIndex for Rmi {
    type Config = RmiConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        Rmi::build(ks, cfg)
    }

    fn lookup(&self, key: Key) -> Lookup {
        Rmi::lookup(self, key)
    }

    fn loss(&self) -> f64 {
        self.rmi_loss()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.len() * std::mem::size_of::<Key>()
            + self.boundaries.len() * std::mem::size_of::<Key>()
            + self.leaves.len() * std::mem::size_of::<Leaf>()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Fits a leaf regression on a partition, tolerating single-key partitions
/// (constant model with zero loss): tiny tail partitions are legal when
/// `n mod N ≠ 0`.
fn fit_leaf(part: &KeySet) -> Result<LinearModel> {
    if part.len() == 1 {
        return Ok(LinearModel {
            w: 0.0,
            b: 1.0,
            mse: 0.0,
            n: 1,
        });
    }
    LinearModel::fit(part)
}

/// Computes the RMI loss of a *hypothetical* keyset under a given partition
/// count without building routing structures — used heavily by the attack's
/// inner loop.
pub fn rmi_loss_of(ks: &KeySet, num_leaves: usize) -> Result<f64> {
    let partitions = ks.partition(num_leaves)?;
    let mut total = 0.0;
    for p in &partitions {
        total += if p.len() < 2 {
            0.0
        } else {
            LinearModel::fit(p)?.mse
        };
    }
    Ok(total / num_leaves as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_keys(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step + 1).collect()).unwrap()
    }

    #[test]
    fn build_validates_config() {
        let ks = uniform_keys(100, 3);
        assert!(Rmi::build(&ks, &RmiConfig::linear_root(0)).is_err());
        assert!(Rmi::build(&ks, &RmiConfig::linear_root(101)).is_err());
    }

    #[test]
    fn oracle_routing_is_exact() {
        let ks = uniform_keys(1000, 5);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            let leaf = rmi.route(k);
            let l = &rmi.leaves()[leaf];
            assert!(
                i >= l.start && i < l.start + l.len,
                "key {k} routed to wrong leaf"
            );
        }
    }

    #[test]
    fn all_keys_found_oracle() {
        let ks = uniform_keys(500, 7);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(25)).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            let res = rmi.lookup(k);
            assert_eq!(res.pos, Some(i));
        }
    }

    #[test]
    fn all_keys_found_root_routing() {
        let ks = uniform_keys(500, 7);
        let cfg = RmiConfig {
            num_leaves: 25,
            root: RootModelKind::Linear,
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            let res = rmi.lookup(k);
            assert_eq!(res.pos, Some(i), "key {k}");
        }
    }

    #[test]
    fn absent_keys_not_found() {
        let ks = uniform_keys(100, 10); // keys 1, 11, 21, ...
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(5)).unwrap();
        for k in [0u64, 2, 55, 992, 10_000] {
            assert_eq!(rmi.lookup(k).pos, None, "key {k}");
        }
    }

    #[test]
    fn rmi_loss_is_mean_of_leaf_losses() {
        let ks = uniform_keys(400, 3);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(8)).unwrap();
        let mean = rmi.leaf_losses().iter().sum::<f64>() / 8.0;
        assert!((rmi.rmi_loss() - mean).abs() < 1e-12);
    }

    #[test]
    fn linear_data_has_near_zero_loss() {
        let ks = uniform_keys(1000, 4);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        assert!(rmi.rmi_loss() < 1e-9);
        assert_eq!(rmi.max_leaf_error(), 0);
    }

    #[test]
    fn skewed_data_has_positive_loss() {
        let ks = KeySet::from_keys((1..1000u64).map(|i| i * i).collect()).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        assert!(rmi.rmi_loss() > 0.0);
    }

    #[test]
    fn more_leaves_reduce_loss_on_skewed_data() {
        let ks = KeySet::from_keys((1..2000u64).map(|i| i * i).collect()).unwrap();
        let coarse = Rmi::build(&ks, &RmiConfig::linear_root(4))
            .unwrap()
            .rmi_loss();
        let fine = Rmi::build(&ks, &RmiConfig::linear_root(64))
            .unwrap()
            .rmi_loss();
        assert!(fine < coarse, "fine {} vs coarse {}", fine, coarse);
    }

    #[test]
    fn neural_root_lookup_works() {
        let ks = uniform_keys(300, 11);
        let cfg = RmiConfig {
            num_leaves: 10,
            root: RootModelKind::Neural(NnConfig {
                epochs: 30,
                ..NnConfig::default()
            }),
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate().step_by(17) {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn cubic_root_lookup_works() {
        let ks = KeySet::from_keys((1..500u64).map(|i| i * i).collect()).unwrap();
        let cfg = RmiConfig {
            num_leaves: 16,
            root: RootModelKind::Cubic,
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate().step_by(13) {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn rmi_loss_of_matches_built_index() {
        let ks = KeySet::from_keys((1..800u64).map(|i| i * i / 2 + i).collect()).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(8)).unwrap();
        let direct = rmi_loss_of(&ks, 8).unwrap();
        assert!((rmi.rmi_loss() - direct).abs() < 1e-9);
    }

    #[test]
    fn single_key_partitions_are_tolerated() {
        let ks = uniform_keys(7, 10);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(7)).unwrap();
        assert_eq!(rmi.num_leaves(), 7);
        for (i, &k) in ks.keys().iter().enumerate() {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }
}
