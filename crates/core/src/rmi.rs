//! The two-stage Recursive Model Index (Section III-A, Figure 1).
//!
//! The architecture that Kraska et al. showed to outperform B-Trees — and
//! the one the paper attacks — is a two-stage tree: a single *root* model
//! approximating the coarse shape of the CDF, and `N` second-stage linear
//! regressions, each the "expert" for one of `N` contiguous, equal-size
//! partitions of the keyset.
//!
//! Two routing modes are provided:
//!
//! * [`Routing::Root`] — Kraska-style: the root's predicted rank selects the
//!   leaf (`leaf = ⌊N·pred/n⌋`). Mis-routing is possible and handled by the
//!   neighbour-leaf fallback during lookup.
//! * [`Routing::Oracle`] — the paper's attack assumption ("the NN model will
//!   always point to the correct (albeit poisoned) second-stage model",
//!   Section V): leaves are selected by binary search on partition
//!   boundaries, so routing is exact by construction.

use crate::cubic::CubicModel;
use crate::error::{LisError, Result};
use crate::index::{LearnedIndex, Lookup};
use crate::keys::{Key, KeySet};
use crate::linreg::{fit_sorted_slice, LinearModel};
use crate::nn::{NeuralNet, NnConfig};
use crate::par;
use crate::scratch::ScratchPool;
use crate::search::bounded_search_with_fallback;
use crate::stats::{midpoint_shift, CdfMoments};

/// Which model family serves as the RMI root.
#[derive(Debug, Clone)]
pub enum RootModelKind {
    /// Linear regression root — cheapest, fine for near-uniform data.
    Linear,
    /// Cubic least-squares root — captures moderate skew.
    Cubic,
    /// From-scratch MLP root, the architecture of the original LIS paper.
    Neural(NnConfig),
}

/// A trained root model.
#[derive(Debug, Clone)]
pub enum RootModel {
    /// Fitted linear root.
    Linear(LinearModel),
    /// Fitted cubic root.
    Cubic(CubicModel),
    /// Fitted neural-network root.
    Neural(NeuralNet),
}

impl RootModel {
    /// Predicted fractional rank of `key` over the full keyset.
    pub fn predict(&self, key: Key) -> f64 {
        match self {
            Self::Linear(m) => m.predict(key),
            Self::Cubic(m) => m.predict(key),
            Self::Neural(m) => m.predict(key),
        }
    }
}

/// Leaf selection strategy at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Select the leaf from the root model's prediction.
    Root,
    /// Select the leaf by binary search on partition boundaries (exact).
    Oracle,
}

/// Configuration for [`Rmi::build`].
#[derive(Debug, Clone)]
pub struct RmiConfig {
    /// Number of second-stage models `N` (the fanout).
    pub num_leaves: usize,
    /// Root model family.
    pub root: RootModelKind,
    /// Query-time leaf selection.
    pub routing: Routing,
}

impl RmiConfig {
    /// Paper-style config: `N` leaves, neural root, oracle routing.
    pub fn paper(num_leaves: usize) -> Self {
        Self {
            num_leaves,
            root: RootModelKind::Neural(NnConfig::default()),
            routing: Routing::Oracle,
        }
    }

    /// Cheap config for experiments where only second-stage losses matter:
    /// linear root, oracle routing.
    pub fn linear_root(num_leaves: usize) -> Self {
        Self {
            num_leaves,
            root: RootModelKind::Linear,
            routing: Routing::Oracle,
        }
    }
}

/// One second-stage model: a linear regression over a contiguous key
/// partition, together with the partition's global-rank offset and its
/// maximum training error (the last-mile search radius).
///
/// This is the *inspection view* of a leaf — attacks and tests reason
/// about whole leaves. The index itself stores leaves flattened into
/// parallel arrays (see [`LeafTable`]) so the lookup hot path streams
/// through contiguous slope/intercept/offset/error memory instead of
/// chasing struct padding.
#[derive(Debug, Clone, PartialEq)]
pub struct Leaf {
    /// The fitted regression (on *local* ranks `1..=len`).
    pub model: LinearModel,
    /// Global 0-based index of the partition's first key.
    pub start: usize,
    /// Number of keys in the partition.
    pub len: usize,
    /// Maximum absolute training error of the model (ceil), in positions.
    pub max_err: usize,
}

impl Leaf {
    /// Predicted global 0-based position for `key`.
    pub fn predict_global_pos(&self, key: Key, total: usize) -> usize {
        let local = self.model.predict(key) - 1.0; // 0-based local position
        let global = local + self.start as f64;
        global.round().clamp(0.0, (total - 1) as f64) as usize
    }
}

/// Structure-of-arrays leaf storage: the `i`-th leaf is
/// `(slope[i], intercept[i], start[i], len[i], max_err[i], mse[i])`.
/// The lookup hot path touches `slope`/`intercept`/`start`/`max_err`
/// only — four dense arrays instead of a pointer-width-padded
/// struct-per-leaf — which is what makes monotone sorted-batch sweeps
/// cache-resident.
#[derive(Debug, Clone, Default)]
struct LeafTable {
    slope: Vec<f64>,
    intercept: Vec<f64>,
    start: Vec<usize>,
    len: Vec<usize>,
    max_err: Vec<usize>,
    mse: Vec<f64>,
}

impl LeafTable {
    fn push(&mut self, model: &LinearModel, start: usize, len: usize, max_err: usize) {
        self.slope.push(model.w);
        self.intercept.push(model.b);
        self.start.push(start);
        self.len.push(len);
        self.max_err.push(max_err);
        self.mse.push(model.mse);
    }

    fn len(&self) -> usize {
        self.start.len()
    }

    fn view(&self, i: usize) -> Leaf {
        Leaf {
            model: LinearModel {
                w: self.slope[i],
                b: self.intercept[i],
                mse: self.mse[i],
                n: self.len[i],
            },
            start: self.start[i],
            len: self.len[i],
            max_err: self.max_err[i],
        }
    }

    fn memory_bytes(&self) -> usize {
        self.len() * (3 * std::mem::size_of::<f64>() + 3 * std::mem::size_of::<usize>())
    }
}

/// A trained two-stage recursive model index.
#[derive(Debug, Clone)]
pub struct Rmi {
    root: RootModel,
    table: LeafTable,
    /// First key of each partition, for oracle routing.
    boundaries: Vec<Key>,
    keys: Vec<Key>,
    routing: Routing,
    /// Pooled `(key, slot)` permutation buffers for the sorted-batch path.
    scratch: ScratchPool<Vec<(Key, usize)>>,
}

impl Rmi {
    /// Builds the index over `ks` according to `cfg`, fanning leaf
    /// training out across the machine's available parallelism.
    ///
    /// Partitioning follows the paper: `N` contiguous partitions of
    /// (near-)equal size in rank order.
    pub fn build(ks: &KeySet, cfg: &RmiConfig) -> Result<Self> {
        Self::build_with_threads(ks, cfg, 0)
    }

    /// [`Rmi::build`] with an explicit worker cap (`0` = available
    /// parallelism, `1` = fully serial). The output is **identical for
    /// every thread count**: leaves are fitted independently over
    /// zero-copy partition slices ([`fit_sorted_slice`]), each leaf's
    /// computation is sequential, and assembly runs in leaf order — the
    /// worker count only decides which thread fits which contiguous run
    /// of leaves (`tests/property_buildpath.rs` pins this exactly).
    ///
    /// A linear root is not refitted over the keys at all: the leaf fits
    /// already produced every partition's [`CdfMoments`], and the global
    /// regression's moments are their rebased sum
    /// ([`CdfMoments::rebase`]/[`CdfMoments::merge`]) — `O(N)` instead of
    /// an `O(n)` second pass. Cubic and neural roots keep their own
    /// training passes.
    pub fn build_with_threads(ks: &KeySet, cfg: &RmiConfig, threads: usize) -> Result<Self> {
        if cfg.num_leaves == 0 {
            return Err(LisError::InvalidRmiConfig("num_leaves must be > 0".into()));
        }
        if cfg.num_leaves > ks.len() {
            return Err(LisError::InvalidRmiConfig(format!(
                "num_leaves {} exceeds key count {}",
                cfg.num_leaves,
                ks.len()
            )));
        }
        // The fan-out's captures are `Arc`-shared (the persistent pool's
        // workers are `'static`) and recovered afterwards — the backend
        // drops its clones before completing, so `try_unwrap` succeeds.
        let bounds = std::sync::Arc::new(ks.partition_bounds(cfg.num_leaves)?);
        let keys = std::sync::Arc::new(ks.keys().to_vec());

        struct FittedLeaf {
            model: LinearModel,
            max_err: usize,
            moments: CdfMoments,
        }
        let workers = par::effective_workers(threads, bounds.len());
        let fitted: Vec<FittedLeaf> = {
            let keys = std::sync::Arc::clone(&keys);
            let bounds = std::sync::Arc::clone(&bounds);
            par::map_chunks(bounds.len(), workers, move |range| {
                range
                    .map(|i| {
                        let slice = &keys[bounds[i].clone()];
                        let (model, moments) =
                            fit_sorted_slice(slice).expect("partitions are non-empty");
                        let max_err = model.max_abs_error_slice(slice).ceil() as usize;
                        FittedLeaf {
                            model,
                            max_err,
                            moments,
                        }
                    })
                    .collect()
            })
        };
        let bounds = std::sync::Arc::try_unwrap(bounds).expect("fan-out released its captures");
        let keys = std::sync::Arc::try_unwrap(keys).expect("fan-out released its captures");

        let mut table = LeafTable::default();
        let mut boundaries = Vec::with_capacity(bounds.len());
        for (bound, leaf) in bounds.iter().zip(&fitted) {
            boundaries.push(keys[bound.start]);
            table.push(&leaf.model, bound.start, bound.len(), leaf.max_err);
        }

        let root = match &cfg.root {
            RootModelKind::Linear => {
                let shift = midpoint_shift(ks.min_key(), ks.max_key());
                let mut acc: Option<CdfMoments> = None;
                for (bound, leaf) in bounds.iter().zip(&fitted) {
                    let lifted = leaf.moments.rebase(shift, bound.start);
                    acc = Some(match acc {
                        None => lifted,
                        Some(m) => m.merge(&lifted),
                    });
                }
                RootModel::Linear(LinearModel::from_moments(
                    &acc.expect("num_leaves > 0 was validated"),
                ))
            }
            RootModelKind::Cubic => RootModel::Cubic(CubicModel::fit(ks)?),
            RootModelKind::Neural(nn_cfg) => RootModel::Neural(NeuralNet::fit(ks, nn_cfg)?),
        };

        Ok(Self {
            root,
            table,
            boundaries,
            keys,
            routing: cfg.routing,
            scratch: ScratchPool::new(),
        })
    }

    /// The pre-optimization build path — partition copies, per-leaf
    /// [`KeySet`] fits, a dedicated root training pass — kept callable as
    /// the `buildpath` bench's reference, so the optimized plane's
    /// speedup stays measurable forever (the build-plane analogue of
    /// `lookup_each_into`). Leaf tables, boundaries, and lookups are
    /// identical to [`Rmi::build`]; only the linear root's `w`/`b` may
    /// differ in final ulps (direct fit vs. rebased-moment assembly).
    pub fn build_reference(ks: &KeySet, cfg: &RmiConfig) -> Result<Self> {
        if cfg.num_leaves == 0 {
            return Err(LisError::InvalidRmiConfig("num_leaves must be > 0".into()));
        }
        if cfg.num_leaves > ks.len() {
            return Err(LisError::InvalidRmiConfig(format!(
                "num_leaves {} exceeds key count {}",
                cfg.num_leaves,
                ks.len()
            )));
        }
        let partitions = ks.partition(cfg.num_leaves)?;

        let root = match &cfg.root {
            RootModelKind::Linear => RootModel::Linear(LinearModel::fit(ks)?),
            RootModelKind::Cubic => RootModel::Cubic(CubicModel::fit(ks)?),
            RootModelKind::Neural(nn_cfg) => RootModel::Neural(NeuralNet::fit(ks, nn_cfg)?),
        };

        let mut table = LeafTable::default();
        let mut boundaries = Vec::with_capacity(partitions.len());
        let mut start = 0usize;
        for part in &partitions {
            let model = fit_leaf(part)?;
            let max_err = model.max_abs_error(part).ceil() as usize;
            boundaries.push(part.min_key());
            table.push(&model, start, part.len(), max_err);
            start += part.len();
        }

        Ok(Self {
            root,
            table,
            boundaries,
            keys: ks.keys().to_vec(),
            routing: cfg.routing,
            scratch: ScratchPool::new(),
        })
    }

    /// Number of second-stage models.
    pub fn num_leaves(&self) -> usize {
        self.table.len()
    }

    /// Total number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff no keys are indexed (unreachable for built indexes).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The second-stage models, materialized from the flat leaf table
    /// (inspection/attack path — the hot path reads the table directly).
    pub fn leaves(&self) -> Vec<Leaf> {
        (0..self.table.len()).map(|i| self.table.view(i)).collect()
    }

    /// The trained root model.
    pub fn root(&self) -> &RootModel {
        &self.root
    }

    /// Index of the leaf that would serve `key` under the configured
    /// routing.
    pub fn route(&self, key: Key) -> usize {
        match self.routing {
            Routing::Oracle => self.route_oracle(key),
            Routing::Root => self.route_by_root(key),
        }
    }

    fn route_oracle(&self, key: Key) -> usize {
        match self.boundaries.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    fn route_by_root(&self, key: Key) -> usize {
        scale_to_width(self.root.predict(key), self.keys.len(), self.table.len())
    }

    /// Predicted global 0-based position of `key` served by `leaf`.
    fn predict_at_leaf(&self, leaf: usize, key: Key) -> usize {
        // Inlined `Leaf::predict_global_pos` over the flat table: local
        // prediction, shifted by the partition offset, rounded and clamped.
        let local = self.table.slope[leaf] * key as f64 + self.table.intercept[leaf] - 1.0;
        let global = local + self.table.start[leaf] as f64;
        global.round().clamp(0.0, (self.keys.len() - 1) as f64) as usize
    }

    /// Predicted global 0-based position of `key`.
    pub fn predict_pos(&self, key: Key) -> usize {
        self.predict_at_leaf(self.route(key), key)
    }

    /// Lookup served by a known leaf: predict, then error-bounded
    /// last-mile search with the leaf's stored `max_err` as the window
    /// radius (+1 for prediction rounding). Member keys served by their
    /// training leaf are found inside the window by construction; absent
    /// keys and root-routing mispredicts fall back to galloping only when
    /// the miss lands out of bound.
    fn lookup_at_leaf(&self, leaf: usize, key: Key) -> Lookup {
        let guess = self.predict_at_leaf(leaf, key);
        let radius = self.table.max_err[leaf] + 1;
        bounded_search_with_fallback(&self.keys, key, guess, radius).into()
    }

    /// Full lookup: route, predict, error-bounded last-mile search.
    /// Returns the key's global position and the comparison count.
    pub fn lookup(&self, key: Key) -> Lookup {
        self.lookup_at_leaf(self.route(key), key)
    }

    /// Sorted-batch lookup into a reused buffer: probes are sorted (with
    /// their original slots), swept in key order — so oracle routing
    /// advances monotonically through the boundary array and the last-mile
    /// searches walk the key array left to right — and results land back
    /// in probe order. The sweep is software-pipelined: routing and
    /// prediction run [`pipeline_depth`](crate::search::pipeline_depth)
    /// probes ahead of the window searches, prefetching each probe's leaf
    /// window so DRAM misses overlap instead of serializing. Per-probe
    /// results (`found`, position, cost) are identical to [`Rmi::lookup`]
    /// at every depth; only locality and memory-level parallelism change.
    pub fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        let mut leaf = 0usize;
        let last = self.keys.len() - 1;
        crate::index::sorted_batch_pipelined(
            &self.scratch,
            keys,
            out,
            |k| {
                match self.routing {
                    Routing::Oracle => {
                        // Monotone routing: identical to `route_oracle`
                        // (last boundary ≤ key), galloping forward from
                        // the cursor — a probe or two when batches are
                        // dense, O(log gap) when they are sparse.
                        leaf = crate::search::monotone_route_by(&self.boundaries, leaf, k, |&b| b);
                    }
                    Routing::Root => leaf = self.route_by_root(k),
                }
                let guess = self.predict_at_leaf(leaf, k);
                let radius = self.table.max_err[leaf] + 1;
                crate::search::prefetch_window(
                    &self.keys,
                    guess.saturating_sub(radius),
                    guess.saturating_add(radius).min(last),
                );
                (guess, radius)
            },
            |k, (guess, radius)| bounded_search_with_fallback(&self.keys, k, guess, radius).into(),
        );
    }

    /// Mean squared error of leaf `i` on its training partition (the
    /// quantity whose poisoned/clean ratio Figure 6 plots per model).
    pub fn leaf_losses(&self) -> Vec<f64> {
        self.table.mse.clone()
    }

    /// The RMI loss `L_RMI = (1/N)·Σ L_i` (Section V).
    pub fn rmi_loss(&self) -> f64 {
        if self.table.len() == 0 {
            return 0.0;
        }
        self.table.mse.iter().sum::<f64>() / self.table.len() as f64
    }

    /// Largest last-mile search radius across leaves.
    pub fn max_leaf_error(&self) -> usize {
        self.table.max_err.iter().copied().max().unwrap_or(0)
    }

    /// The sorted key array backing the index.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }
}

/// Scales a (1-based, fractional) rank prediction over `n` keys to a model
/// index in a stage of `width ≥ 1` models: `⌊width·(pred − 1)/n⌋`, with
/// the fraction clamped to `[0, 1)` *and* the resulting index clamped to
/// `width − 1`. The index clamp matters: for astronomically wide stages
/// `(1 − ε)·width` can round up to `width` in `f64`, and a pathological
/// root predicting far beyond `n` must still route to the last model, not
/// one past it.
pub(crate) fn scale_to_width(pred: f64, n: usize, width: usize) -> usize {
    let frac = ((pred - 1.0) / n as f64).clamp(0.0, 1.0 - f64::EPSILON);
    ((frac * width as f64) as usize).min(width - 1)
}

impl LearnedIndex for Rmi {
    type Config = RmiConfig;

    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self> {
        Rmi::build(ks, cfg)
    }

    fn lookup(&self, key: Key) -> Lookup {
        Rmi::lookup(self, key)
    }

    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        Rmi::lookup_batch_into(self, keys, out)
    }

    fn loss(&self) -> f64 {
        self.rmi_loss()
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.len() * std::mem::size_of::<Key>()
            + self.boundaries.len() * std::mem::size_of::<Key>()
            + self.table.memory_bytes()
    }

    fn len(&self) -> usize {
        self.keys.len()
    }
}

/// Fits a leaf regression on a partition, tolerating single-key partitions
/// (constant model with zero loss): tiny tail partitions are legal when
/// `n mod N ≠ 0`.
fn fit_leaf(part: &KeySet) -> Result<LinearModel> {
    if part.len() == 1 {
        return Ok(LinearModel {
            w: 0.0,
            b: 1.0,
            mse: 0.0,
            n: 1,
        });
    }
    LinearModel::fit(part)
}

/// Computes the RMI loss of a *hypothetical* keyset under a given partition
/// count without building routing structures — used heavily by the attack's
/// inner loop.
pub fn rmi_loss_of(ks: &KeySet, num_leaves: usize) -> Result<f64> {
    let partitions = ks.partition(num_leaves)?;
    let mut total = 0.0;
    for p in &partitions {
        total += if p.len() < 2 {
            0.0
        } else {
            LinearModel::fit(p)?.mse
        };
    }
    Ok(total / num_leaves as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_keys(n: u64, step: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * step + 1).collect()).unwrap()
    }

    #[test]
    fn build_validates_config() {
        let ks = uniform_keys(100, 3);
        assert!(Rmi::build(&ks, &RmiConfig::linear_root(0)).is_err());
        assert!(Rmi::build(&ks, &RmiConfig::linear_root(101)).is_err());
    }

    #[test]
    fn oracle_routing_is_exact() {
        let ks = uniform_keys(1000, 5);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        let leaves = rmi.leaves();
        for (i, &k) in ks.keys().iter().enumerate() {
            let l = &leaves[rmi.route(k)];
            assert!(
                i >= l.start && i < l.start + l.len,
                "key {k} routed to wrong leaf"
            );
        }
    }

    #[test]
    fn all_keys_found_oracle() {
        let ks = uniform_keys(500, 7);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(25)).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            let res = rmi.lookup(k);
            assert_eq!(res.pos, Some(i));
        }
    }

    #[test]
    fn all_keys_found_root_routing() {
        let ks = uniform_keys(500, 7);
        let cfg = RmiConfig {
            num_leaves: 25,
            root: RootModelKind::Linear,
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate() {
            let res = rmi.lookup(k);
            assert_eq!(res.pos, Some(i), "key {k}");
        }
    }

    #[test]
    fn absent_keys_not_found() {
        let ks = uniform_keys(100, 10); // keys 1, 11, 21, ...
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(5)).unwrap();
        for k in [0u64, 2, 55, 992, 10_000] {
            assert_eq!(rmi.lookup(k).pos, None, "key {k}");
        }
    }

    #[test]
    fn rmi_loss_is_mean_of_leaf_losses() {
        let ks = uniform_keys(400, 3);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(8)).unwrap();
        let mean = rmi.leaf_losses().iter().sum::<f64>() / 8.0;
        assert!((rmi.rmi_loss() - mean).abs() < 1e-12);
    }

    #[test]
    fn linear_data_has_near_zero_loss() {
        let ks = uniform_keys(1000, 4);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        assert!(rmi.rmi_loss() < 1e-9);
        assert_eq!(rmi.max_leaf_error(), 0);
    }

    #[test]
    fn skewed_data_has_positive_loss() {
        let ks = KeySet::from_keys((1..1000u64).map(|i| i * i).collect()).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
        assert!(rmi.rmi_loss() > 0.0);
    }

    #[test]
    fn more_leaves_reduce_loss_on_skewed_data() {
        let ks = KeySet::from_keys((1..2000u64).map(|i| i * i).collect()).unwrap();
        let coarse = Rmi::build(&ks, &RmiConfig::linear_root(4))
            .unwrap()
            .rmi_loss();
        let fine = Rmi::build(&ks, &RmiConfig::linear_root(64))
            .unwrap()
            .rmi_loss();
        assert!(fine < coarse, "fine {} vs coarse {}", fine, coarse);
    }

    #[test]
    fn neural_root_lookup_works() {
        let ks = uniform_keys(300, 11);
        let cfg = RmiConfig {
            num_leaves: 10,
            root: RootModelKind::Neural(NnConfig {
                epochs: 30,
                ..NnConfig::default()
            }),
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate().step_by(17) {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn cubic_root_lookup_works() {
        let ks = KeySet::from_keys((1..500u64).map(|i| i * i).collect()).unwrap();
        let cfg = RmiConfig {
            num_leaves: 16,
            root: RootModelKind::Cubic,
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for (i, &k) in ks.keys().iter().enumerate().step_by(13) {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn rmi_loss_of_matches_built_index() {
        let ks = KeySet::from_keys((1..800u64).map(|i| i * i / 2 + i).collect()).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(8)).unwrap();
        let direct = rmi_loss_of(&ks, 8).unwrap();
        assert!((rmi.rmi_loss() - direct).abs() < 1e-9);
    }

    #[test]
    fn single_key_partitions_are_tolerated() {
        let ks = uniform_keys(7, 10);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(7)).unwrap();
        assert_eq!(rmi.num_leaves(), 7);
        for (i, &k) in ks.keys().iter().enumerate() {
            assert_eq!(rmi.lookup(k).pos, Some(i));
        }
    }

    #[test]
    fn leaves_view_round_trips_the_flat_table() {
        let ks = KeySet::from_keys((1..900u64).map(|i| i * i / 5 + i).collect()).unwrap();
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(9)).unwrap();
        let leaves = rmi.leaves();
        assert_eq!(leaves.len(), 9);
        let mut start = 0usize;
        for (i, l) in leaves.iter().enumerate() {
            assert_eq!(l.start, start, "leaf {i} offset");
            start += l.len;
            // View predictions must equal the hot-path predictions.
            let mid_key = ks.keys()[l.start + l.len / 2];
            assert_eq!(
                l.predict_global_pos(mid_key, ks.len()),
                rmi.predict_at_leaf(i, mid_key)
            );
            assert_eq!(l.model.mse, rmi.leaf_losses()[i]);
        }
        assert_eq!(start, ks.len());
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        for routing in [Routing::Oracle, Routing::Root] {
            let ks = KeySet::from_keys((1..3000u64).map(|i| i * i / 5 + i).collect()).unwrap();
            let cfg = RmiConfig {
                num_leaves: 37,
                root: RootModelKind::Linear,
                routing,
            };
            let serial = Rmi::build_with_threads(&ks, &cfg, 1).unwrap();
            for threads in [2usize, 4, 16] {
                let parallel = Rmi::build_with_threads(&ks, &cfg, threads).unwrap();
                assert_eq!(serial.leaves(), parallel.leaves(), "{threads} threads");
                assert_eq!(
                    serial.rmi_loss().to_bits(),
                    parallel.rmi_loss().to_bits(),
                    "{threads} threads"
                );
                assert_eq!(serial.boundaries, parallel.boundaries);
                if let (RootModel::Linear(a), RootModel::Linear(b)) =
                    (serial.root(), parallel.root())
                {
                    assert_eq!(a.w.to_bits(), b.w.to_bits());
                    assert_eq!(a.b.to_bits(), b.b.to_bits());
                }
                for &k in ks.keys().iter().step_by(13) {
                    assert_eq!(serial.lookup(k), parallel.lookup(k), "key {k}");
                }
            }
        }
    }

    #[test]
    fn optimized_build_matches_reference_build() {
        // The zero-copy parallel plane must produce the same index as the
        // pre-optimization path: identical leaf tables (bitwise), losses,
        // and lookups; the derived linear root may differ only in ulps.
        let ks = KeySet::from_keys((1..4000u64).map(|i| i * i / 3 + 2 * i).collect()).unwrap();
        for leaves in [1usize, 7, 40] {
            let cfg = RmiConfig::linear_root(leaves);
            let optimized = Rmi::build(&ks, &cfg).unwrap();
            let reference = Rmi::build_reference(&ks, &cfg).unwrap();
            assert_eq!(optimized.leaves(), reference.leaves(), "{leaves} leaves");
            assert_eq!(
                optimized.rmi_loss().to_bits(),
                reference.rmi_loss().to_bits()
            );
            let (RootModel::Linear(a), RootModel::Linear(b)) = (optimized.root(), reference.root())
            else {
                panic!("linear roots expected")
            };
            assert!(
                (a.w - b.w).abs() <= 1e-9 * b.w.abs().max(1.0),
                "{} vs {}",
                a.w,
                b.w
            );
            assert!(
                (a.b - b.b).abs() <= 1e-6 * b.b.abs().max(1.0),
                "{} vs {}",
                a.b,
                b.b
            );
            let mut probes: Vec<Key> = ks.keys().iter().step_by(11).copied().collect();
            probes.extend([0, 5, ks.max_key() + 9]);
            for k in probes {
                assert_eq!(optimized.lookup(k), reference.lookup(k), "key {k}");
            }
        }
    }

    #[test]
    fn sorted_batch_matches_single_lookup_exactly() {
        for routing in [Routing::Oracle, Routing::Root] {
            let ks = KeySet::from_keys((1..1200u64).map(|i| i * i / 3 + 2 * i).collect()).unwrap();
            let cfg = RmiConfig {
                num_leaves: 24,
                root: RootModelKind::Linear,
                routing,
            };
            let rmi = Rmi::build(&ks, &cfg).unwrap();
            // Members (unsorted order), absents, duplicates, extremes.
            let mut probes: Vec<Key> = ks.keys().iter().rev().step_by(3).copied().collect();
            probes.extend([0, 1, 7, ks.max_key() + 1, Key::MAX]);
            probes.push(probes[0]);
            let mut out = Vec::new();
            rmi.lookup_batch_into(&probes, &mut out);
            assert_eq!(out.len(), probes.len());
            for (&k, &got) in probes.iter().zip(&out) {
                assert_eq!(got, rmi.lookup(k), "{routing:?} key {k}");
            }
            // The scratch buffer was returned to the pool for reuse.
            assert_eq!(rmi.scratch.idle(), 1);
            rmi.lookup_batch_into(&probes, &mut out);
            assert_eq!(rmi.scratch.idle(), 1);
        }
    }

    #[test]
    fn bounded_lookup_cost_tracks_leaf_error_radius() {
        // Clean near-linear data: tiny windows, tiny costs bounded by the
        // lane kernel's exact in-window cost of the error window — a
        // function of the window, not of n.
        let ks = uniform_keys(10_000, 7);
        let rmi = Rmi::build(&ks, &RmiConfig::linear_root(100)).unwrap();
        let radius = rmi.max_leaf_error() + 1;
        let bound = crate::search::lane_window_cost_bound(2 * radius + 1);
        for &k in ks.keys().iter().step_by(97) {
            let hit = rmi.lookup(k);
            assert!(hit.found);
            assert!(
                hit.cost <= bound,
                "member lookup cost {} exceeds window bound {bound}",
                hit.cost
            );
        }
    }

    #[test]
    fn route_by_root_clamps_pathological_predictions() {
        // A root fitted on quadratic data extrapolates wildly for extreme
        // query keys: predictions far beyond n (and far below 1) must
        // still route to a valid leaf and answer correctly.
        let ks = KeySet::from_keys((1..800u64).map(|i| i * i).collect()).unwrap();
        let cfg = RmiConfig {
            num_leaves: 16,
            root: RootModelKind::Linear,
            routing: Routing::Root,
        };
        let rmi = Rmi::build(&ks, &cfg).unwrap();
        for k in [0u64, 1, ks.max_key(), ks.max_key() + 1, Key::MAX] {
            let leaf = rmi.route(k);
            assert!(leaf < rmi.num_leaves(), "key {k} routed to leaf {leaf}");
            let hit = rmi.lookup(k);
            assert_eq!(hit.found, ks.contains(k), "key {k}");
        }
    }

    #[test]
    fn scale_to_width_never_indexes_out_of_bounds() {
        // In-range predictions land proportionally.
        assert_eq!(scale_to_width(1.0, 100, 10), 0);
        assert_eq!(scale_to_width(51.0, 100, 10), 5);
        assert_eq!(scale_to_width(100.0, 100, 10), 9);
        // Out-of-range predictions clamp to the edge models.
        assert_eq!(scale_to_width(-1e18, 100, 10), 0);
        assert_eq!(scale_to_width(1e18, 100, 10), 9);
        assert_eq!(scale_to_width(f64::NAN, 100, 10), 0);
        // Pathologically wide stages: `(1 − ε)·width` rounds up to
        // `width` in f64 for widths beyond 2^52 — the explicit index
        // clamp keeps the result in bounds where the cast alone would
        // not.
        for width in [usize::MAX, 1 << 60, (1 << 53) + 1, 3, 2, 1] {
            for pred in [f64::INFINITY, 1e300, -1e300, 0.0, 1.5] {
                let i = scale_to_width(pred, 100, width);
                assert!(i < width, "pred {pred} width {width} gave {i}");
            }
        }
    }
}
