//! Error type shared across the workspace.

use crate::keys::{Key, KeyDomain};
use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LisError>;

/// Errors produced by the learned-index substrate and the attacks built on
/// top of it.
#[derive(Debug, Clone, PartialEq)]
pub enum LisError {
    /// A keyset must contain at least one key.
    EmptyKeySet,
    /// A regression needs at least two distinct keys.
    DegenerateRegression {
        /// Number of keys supplied.
        n: usize,
    },
    /// Domain constructed with `min > max`.
    InvalidDomain {
        /// Requested lower bound.
        min: Key,
        /// Requested upper bound.
        max: Key,
    },
    /// Key falls outside the declared domain.
    KeyOutOfDomain {
        /// The offending key.
        key: Key,
        /// The domain it violated.
        domain: KeyDomain,
    },
    /// Key already present in a duplicate-free set.
    DuplicateKey(Key),
    /// Key not present.
    KeyNotFound(Key),
    /// Partition count must be in `1..=n`.
    InvalidPartition {
        /// Requested partition count.
        parts: usize,
        /// Available key count.
        keys: usize,
    },
    /// The keyset has no unoccupied slot to poison.
    NoPoisoningCandidates,
    /// Poisoning budget parameters out of range.
    InvalidBudget(String),
    /// RMI configuration error (e.g. zero second-stage models).
    InvalidRmiConfig(String),
    /// Neural-network configuration/training error.
    InvalidNnConfig(String),
    /// Record store lookup for a missing key.
    RecordNotFound(Key),
    /// No index registered under the requested name.
    UnknownIndex {
        /// The name that failed to resolve.
        name: String,
        /// Comma-separated list of registered names.
        available: String,
    },
    /// Operation the structure does not support (e.g. in-place writes on a
    /// statically trained index — rebuild per epoch instead).
    Unsupported(String),
    /// A blocking wait gave up after the given duration.
    Timeout(std::time::Duration),
    /// Admission refused under load: the estimated queue wait exceeds the
    /// request's deadline. The request was shed, not enqueued — retry
    /// after backoff or relax the deadline.
    Overloaded {
        /// Estimated time the request would have waited in the queue.
        estimated_wait: std::time::Duration,
        /// The deadline the caller attached to the request.
        deadline: std::time::Duration,
    },
    /// The server shut down: the request was either refused at submission
    /// or in flight when its serving thread stopped. Retryable against a
    /// live server, unlike [`LisError::Invariant`].
    Shutdown(String),
    /// A storage-layer I/O operation failed (open, append, fsync, rename).
    /// Transient by classification: the medium may recover, so
    /// [`LisError::is_retryable`] returns `true` — unlike
    /// [`LisError::Corruption`], which no retry can repair.
    Io {
        /// What the durability plane was doing when the I/O failed.
        context: String,
    },
    /// Durable state failed validation: a checksum mismatch, an LSN gap,
    /// or an op the authoritative keyset refuses to replay. Never
    /// retryable — retrying re-reads the same damaged bytes; the caller
    /// must surface the error (and the operator restore from a snapshot).
    Corruption {
        /// Where in the log or snapshot the damage was found.
        context: String,
    },
    /// Generic invariant breach with context.
    Invariant(String),
}

impl LisError {
    /// `true` for transient serving-infrastructure outcomes a client may
    /// meaningfully retry — shed under load, a timed-out wait, a request
    /// caught in a shutdown or worker death. Validation errors and
    /// invariant breaches are deterministic and must surface instead.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::Overloaded { .. } | Self::Timeout(_) | Self::Shutdown(_) | Self::Io { .. }
        )
    }
}

impl fmt::Display for LisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyKeySet => write!(f, "keyset must not be empty"),
            Self::DegenerateRegression { n } => {
                write!(
                    f,
                    "linear regression needs at least 2 distinct keys, got {n}"
                )
            }
            Self::InvalidDomain { min, max } => {
                write!(f, "invalid key domain: min {min} > max {max}")
            }
            Self::KeyOutOfDomain { key, domain } => {
                write!(f, "key {key} outside domain {domain}")
            }
            Self::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            Self::KeyNotFound(k) => write!(f, "key {k} not found"),
            Self::InvalidPartition { parts, keys } => {
                write!(f, "cannot split {keys} keys into {parts} partitions")
            }
            Self::NoPoisoningCandidates => {
                write!(f, "no unoccupied in-range key available for poisoning")
            }
            Self::InvalidBudget(msg) => write!(f, "invalid poisoning budget: {msg}"),
            Self::InvalidRmiConfig(msg) => write!(f, "invalid RMI configuration: {msg}"),
            Self::InvalidNnConfig(msg) => write!(f, "invalid NN configuration: {msg}"),
            Self::RecordNotFound(k) => write!(f, "record for key {k} not found"),
            Self::UnknownIndex { name, available } => {
                write!(f, "unknown index '{name}' (available: {available})")
            }
            Self::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Self::Timeout(waited) => write!(f, "timed out after {waited:?}"),
            Self::Overloaded {
                estimated_wait,
                deadline,
            } => {
                write!(
                    f,
                    "overloaded: estimated wait {estimated_wait:?} exceeds deadline {deadline:?}"
                )
            }
            Self::Shutdown(msg) => write!(f, "server shut down: {msg}"),
            Self::Io { context } => write!(f, "storage I/O failed: {context}"),
            Self::Corruption { context } => {
                write!(f, "durable state corrupted: {context}")
            }
            Self::Invariant(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for LisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LisError::KeyOutOfDomain {
            key: 42,
            domain: KeyDomain { min: 0, max: 10 },
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("[0, 10]"));
    }

    #[test]
    fn retryable_classifies_transient_vs_deterministic() {
        let transient = [
            LisError::Timeout(std::time::Duration::from_millis(1)),
            LisError::Overloaded {
                estimated_wait: std::time::Duration::from_millis(5),
                deadline: std::time::Duration::from_millis(1),
            },
            LisError::Shutdown("worker died".into()),
            LisError::Io {
                context: "fsync wal".into(),
            },
        ];
        for e in &transient {
            assert!(e.is_retryable(), "{e} must be retryable");
        }
        assert!(!LisError::Invariant("bug".into()).is_retryable());
        assert!(!LisError::DuplicateKey(7).is_retryable());
        assert!(
            !LisError::Corruption {
                context: "wal record 3 crc mismatch".into()
            }
            .is_retryable(),
            "corruption must never be retried"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LisError::EmptyKeySet);
    }
}
