//! Error type shared across the workspace.

use crate::keys::{Key, KeyDomain};
use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LisError>;

/// Errors produced by the learned-index substrate and the attacks built on
/// top of it.
#[derive(Debug, Clone, PartialEq)]
pub enum LisError {
    /// A keyset must contain at least one key.
    EmptyKeySet,
    /// A regression needs at least two distinct keys.
    DegenerateRegression {
        /// Number of keys supplied.
        n: usize,
    },
    /// Domain constructed with `min > max`.
    InvalidDomain {
        /// Requested lower bound.
        min: Key,
        /// Requested upper bound.
        max: Key,
    },
    /// Key falls outside the declared domain.
    KeyOutOfDomain {
        /// The offending key.
        key: Key,
        /// The domain it violated.
        domain: KeyDomain,
    },
    /// Key already present in a duplicate-free set.
    DuplicateKey(Key),
    /// Key not present.
    KeyNotFound(Key),
    /// Partition count must be in `1..=n`.
    InvalidPartition {
        /// Requested partition count.
        parts: usize,
        /// Available key count.
        keys: usize,
    },
    /// The keyset has no unoccupied slot to poison.
    NoPoisoningCandidates,
    /// Poisoning budget parameters out of range.
    InvalidBudget(String),
    /// RMI configuration error (e.g. zero second-stage models).
    InvalidRmiConfig(String),
    /// Neural-network configuration/training error.
    InvalidNnConfig(String),
    /// Record store lookup for a missing key.
    RecordNotFound(Key),
    /// No index registered under the requested name.
    UnknownIndex {
        /// The name that failed to resolve.
        name: String,
        /// Comma-separated list of registered names.
        available: String,
    },
    /// Operation the structure does not support (e.g. in-place writes on a
    /// statically trained index — rebuild per epoch instead).
    Unsupported(String),
    /// A blocking wait gave up after the given duration.
    Timeout(std::time::Duration),
    /// Generic invariant breach with context.
    Invariant(String),
}

impl fmt::Display for LisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyKeySet => write!(f, "keyset must not be empty"),
            Self::DegenerateRegression { n } => {
                write!(
                    f,
                    "linear regression needs at least 2 distinct keys, got {n}"
                )
            }
            Self::InvalidDomain { min, max } => {
                write!(f, "invalid key domain: min {min} > max {max}")
            }
            Self::KeyOutOfDomain { key, domain } => {
                write!(f, "key {key} outside domain {domain}")
            }
            Self::DuplicateKey(k) => write!(f, "duplicate key {k}"),
            Self::KeyNotFound(k) => write!(f, "key {k} not found"),
            Self::InvalidPartition { parts, keys } => {
                write!(f, "cannot split {keys} keys into {parts} partitions")
            }
            Self::NoPoisoningCandidates => {
                write!(f, "no unoccupied in-range key available for poisoning")
            }
            Self::InvalidBudget(msg) => write!(f, "invalid poisoning budget: {msg}"),
            Self::InvalidRmiConfig(msg) => write!(f, "invalid RMI configuration: {msg}"),
            Self::InvalidNnConfig(msg) => write!(f, "invalid NN configuration: {msg}"),
            Self::RecordNotFound(k) => write!(f, "record for key {k} not found"),
            Self::UnknownIndex { name, available } => {
                write!(f, "unknown index '{name}' (available: {available})")
            }
            Self::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            Self::Timeout(waited) => write!(f, "timed out after {waited:?}"),
            Self::Invariant(msg) => write!(f, "invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for LisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LisError::KeyOutOfDomain {
            key: 42,
            domain: KeyDomain { min: 0, max: 10 },
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("[0, 10]"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&LisError::EmptyKeySet);
    }
}
