//! Closed-form linear regression on CDFs (Definition 1 / Theorem 1).
//!
//! The second-stage building block of the RMI is an ordinary least-squares
//! fit of rank against key over the CDF pairs of a keyset. Following the
//! paper (and the original LIS work) the regression is *non-regularized*:
//! in a learned index the queries are overwhelmingly the training keys
//! themselves, so generalization via regularization buys nothing.
//!
//! Theorem 1 gives the closed form
//! `w* = Cov_KR / Var_K`, `b* = M_R − w*·M_K`, and the optimal MSE
//! `L = Var_R − Cov²_KR / Var_K`. (The paper's display writes
//! `−Cov²/Var_R + Var_K`, an obvious transposition; our property tests
//! cross-check the implemented form against explicit residual sums.)

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};
use crate::stats::{midpoint_shift, rank_sq_sum, rank_sum, CdfMoments};

/// A fitted line `rank ≈ w·key + b` with its training loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Slope `w*`.
    pub w: f64,
    /// Intercept `b*` (in unshifted key coordinates).
    pub b: f64,
    /// Optimal mean-squared error on the training CDF.
    pub mse: f64,
    /// Number of training points.
    pub n: usize,
}

impl LinearModel {
    /// Fits the regression on the CDF of `ks` (ranks `1..=n`).
    ///
    /// Errors with [`LisError::DegenerateRegression`] when `n < 2` (a single
    /// point does not determine a line; the paper assumes `n ≥ 2`
    /// throughout).
    pub fn fit(ks: &KeySet) -> Result<Self> {
        if ks.len() < 2 {
            return Err(LisError::DegenerateRegression { n: ks.len() });
        }
        Ok(Self::from_moments(&CdfMoments::from_keyset(ks)))
    }

    /// Fits from explicit `(key, rank)` pairs; ranks need not be `1..=n`
    /// (second-stage models may train on global ranks — the fit only shifts
    /// by a constant).
    pub fn fit_pairs(pairs: &[(Key, usize)]) -> Result<Self> {
        if pairs.len() < 2 {
            return Err(LisError::DegenerateRegression { n: pairs.len() });
        }
        let lo = pairs.iter().map(|&(k, _)| k).min().unwrap();
        let hi = pairs.iter().map(|&(k, _)| k).max().unwrap();
        let shift = crate::stats::midpoint_shift(lo, hi);
        let m = CdfMoments::from_pairs_shifted(pairs.iter().copied(), shift);
        Ok(Self::from_moments(&m))
    }

    /// Builds the model from precomputed moments (Theorem 1).
    ///
    /// When `Var_K = 0` (all keys identical — impossible for a valid
    /// [`KeySet`] but representable through raw moments) the fit degrades to
    /// the horizontal line through the mean rank, whose MSE is `Var_R`.
    pub fn from_moments(m: &CdfMoments) -> Self {
        let var_x = m.var_x();
        let (w, mse) = if var_x > 0.0 {
            let w = m.cov_xr() / var_x;
            (w, optimal_mse(m))
        } else {
            (0.0, m.var_r())
        };
        // b in unshifted coordinates: rank = w·(k − shift) + b_shifted
        //                                  = w·k + (b_shifted − w·shift).
        let b_shifted = m.mean_r() - w * m.mean_x();
        LinearModel {
            w,
            b: b_shifted - w * m.shift,
            mse,
            n: m.n,
        }
    }

    /// Predicted (fractional) rank for `key`.
    pub fn predict(&self, key: Key) -> f64 {
        self.w * key as f64 + self.b
    }

    /// Predicted 0-based position clamped to `[0, n-1]`.
    pub fn predict_pos(&self, key: Key) -> usize {
        let p = self.predict(key) - 1.0;
        p.round().clamp(0.0, (self.n.saturating_sub(1)) as f64) as usize
    }

    /// Residual `prediction − rank` for one CDF pair.
    pub fn residual(&self, key: Key, rank: usize) -> f64 {
        self.predict(key) - rank as f64
    }

    /// Recomputes the MSE on an arbitrary CDF from scratch — the reference
    /// implementation used by tests and by the TRIM defense (which evaluates
    /// a fixed line on changing subsets).
    pub fn mse_on(&self, pairs: impl IntoIterator<Item = (Key, usize)>) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (k, r) in pairs {
            let e = self.residual(k, r);
            sum += e * e;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Largest absolute residual over the training CDF of `ks` — the "last
    /// mile" search radius a learned index must cover to guarantee hits.
    pub fn max_abs_error(&self, ks: &KeySet) -> f64 {
        ks.cdf_pairs()
            .map(|(k, r)| self.residual(k, r).abs())
            .fold(0.0, f64::max)
    }

    /// [`LinearModel::max_abs_error`] over a raw sorted slice with local
    /// ranks `1..=len` — the zero-copy twin used by the optimized build
    /// plane. Residual arithmetic is identical, so the result matches the
    /// keyset path bit for bit.
    pub fn max_abs_error_slice(&self, keys: &[Key]) -> f64 {
        keys.iter()
            .enumerate()
            .map(|(i, &k)| self.residual(k, i + 1).abs())
            .fold(0.0, f64::max)
    }
}

/// Fits the regression on a contiguous slice of strictly-sorted keys with
/// local ranks `1..=len`, without constructing a [`KeySet`] — the
/// zero-copy leaf-fit path of the parallel build plane.
///
/// Returns the model together with the raw [`CdfMoments`] (local midpoint
/// shift, local ranks) so a caller can assemble a parent model's moments
/// from its partitions via [`CdfMoments::rebase`] / [`CdfMoments::merge`]
/// instead of re-reading every key.
///
/// Arithmetic equivalence with [`LinearModel::fit`]: the key sums
/// (`Σx`, `Σx²`, `Σxr`) accumulate in the same order with the same
/// expressions, and the rank sums use the closed forms
/// [`rank_sum`]/[`rank_sq_sum`] — exactly equal to the accumulated sums
/// while the intermediate integers stay below 2⁵³ (every leaf-sized
/// partition; beyond that only the reported `mse` can differ in final
/// ulps, never `w` or `b`, which are rank-square-free).
pub fn fit_sorted_slice(keys: &[Key]) -> Result<(LinearModel, CdfMoments)> {
    if keys.is_empty() {
        return Err(LisError::DegenerateRegression { n: 0 });
    }
    let n = keys.len();
    let shift = midpoint_shift(keys[0], keys[n - 1]);
    let mut sum_x = 0.0;
    let mut sum_xx = 0.0;
    let mut sum_xr = 0.0;
    for (i, &k) in keys.iter().enumerate() {
        let x = k as f64 - shift;
        sum_x += x;
        sum_xx += x * x;
        sum_xr += x * (i + 1) as f64;
    }
    let m = CdfMoments {
        n,
        shift,
        sum_x,
        sum_xx,
        sum_r: rank_sum(n),
        sum_rr: rank_sq_sum(n),
        sum_xr,
    };
    if n < 2 {
        // Single-point partitions are legal for the RMI's tail leaves: the
        // constant model through rank 1, zero loss (mirrors `fit_leaf`).
        return Ok((
            LinearModel {
                w: 0.0,
                b: 1.0,
                mse: 0.0,
                n: 1,
            },
            m,
        ));
    }
    Ok((LinearModel::from_moments(&m), m))
}

/// Optimal MSE from moments: `Var_R − Cov²_KR / Var_K` (corrected Theorem 1).
///
/// Clamped at zero: for an exactly-linear CDF floating error can produce a
/// tiny negative value.
pub fn optimal_mse(m: &CdfMoments) -> f64 {
    let var_x = m.var_x();
    if var_x <= 0.0 {
        return m.var_r();
    }
    let cov = m.cov_xr();
    (m.var_r() - cov * cov / var_x).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyDomain;

    fn paper_keys() -> KeySet {
        KeySet::new(vec![2, 6, 7, 12], KeyDomain::new(1, 13).unwrap()).unwrap()
    }

    /// Reference OLS computed the long way (normal equations on raw data).
    fn naive_fit(pairs: &[(f64, f64)]) -> (f64, f64, f64) {
        let n = pairs.len() as f64;
        let mk = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mr = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mk) * (p.1 - mr)).sum::<f64>() / n;
        let var = pairs.iter().map(|p| (p.0 - mk) * (p.0 - mk)).sum::<f64>() / n;
        let w = cov / var;
        let b = mr - w * mk;
        let mse = pairs
            .iter()
            .map(|p| (w * p.0 + b - p.1).powi(2))
            .sum::<f64>()
            / n;
        (w, b, mse)
    }

    #[test]
    fn fit_matches_naive_ols() {
        let ks = paper_keys();
        let model = LinearModel::fit(&ks).unwrap();
        let pairs: Vec<(f64, f64)> = ks.cdf_pairs().map(|(k, r)| (k as f64, r as f64)).collect();
        let (w, b, mse) = naive_fit(&pairs);
        assert!((model.w - w).abs() < 1e-9, "w {} vs {}", model.w, w);
        assert!((model.b - b).abs() < 1e-9);
        assert!((model.mse - mse).abs() < 1e-9);
    }

    #[test]
    fn perfectly_linear_cdf_has_zero_loss() {
        // Evenly spaced keys: rank is an exact linear function of key.
        let ks = KeySet::from_keys((0..100).map(|i| i * 7).collect()).unwrap();
        let model = LinearModel::fit(&ks).unwrap();
        assert!(model.mse < 1e-9);
        for (k, r) in ks.cdf_pairs() {
            assert!((model.predict(k) - r as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_cases_error() {
        let one = KeySet::from_keys(vec![5]).unwrap();
        assert!(matches!(
            LinearModel::fit(&one),
            Err(LisError::DegenerateRegression { n: 1 })
        ));
        assert!(LinearModel::fit_pairs(&[(1, 1)]).is_err());
    }

    #[test]
    fn predict_pos_clamps() {
        let ks = KeySet::from_keys(vec![10, 20, 30, 40]).unwrap();
        let model = LinearModel::fit(&ks).unwrap();
        assert_eq!(model.predict_pos(0), 0);
        assert_eq!(model.predict_pos(1000), 3);
        assert_eq!(model.predict_pos(10), 0);
        assert_eq!(model.predict_pos(40), 3);
    }

    #[test]
    fn fit_pairs_with_global_ranks_shifts_intercept_only() {
        let ks = KeySet::from_keys(vec![3, 9, 15, 27]).unwrap();
        let local = LinearModel::fit(&ks).unwrap();
        let global: Vec<(Key, usize)> = ks.cdf_pairs().map(|(k, r)| (k, r + 100)).collect();
        let shifted = LinearModel::fit_pairs(&global).unwrap();
        assert!((local.w - shifted.w).abs() < 1e-9);
        assert!((shifted.b - local.b - 100.0).abs() < 1e-7);
        assert!((local.mse - shifted.mse).abs() < 1e-7);
    }

    #[test]
    fn mse_on_matches_training_mse() {
        let ks = paper_keys();
        let model = LinearModel::fit(&ks).unwrap();
        let recomputed = model.mse_on(ks.cdf_pairs());
        assert!((model.mse - recomputed).abs() < 1e-9);
    }

    #[test]
    fn max_abs_error_bounds_all_residuals() {
        let ks = KeySet::from_keys(vec![1, 2, 3, 50, 51, 52, 100]).unwrap();
        let model = LinearModel::fit(&ks).unwrap();
        let bound = model.max_abs_error(&ks);
        for (k, r) in ks.cdf_pairs() {
            assert!(model.residual(k, r).abs() <= bound + 1e-12);
        }
        assert!(bound > 0.0);
    }

    #[test]
    fn fit_sorted_slice_is_bitwise_identical_to_keyset_fit() {
        // The zero-copy path must be indistinguishable from the KeySet
        // path — same shift, same accumulation order, closed-form rank
        // sums exact at these sizes.
        for keys in [
            vec![2u64, 6, 7, 12],
            (0..1000u64).map(|i| i * 7 + 3).collect::<Vec<_>>(),
            (1..500u64).map(|i| i * i).collect::<Vec<_>>(),
            vec![5u64],
        ] {
            let (slice_model, m) = fit_sorted_slice(&keys).unwrap();
            assert_eq!(m.n, keys.len());
            if keys.len() >= 2 {
                let ks = KeySet::from_keys(keys.clone()).unwrap();
                let ks_model = LinearModel::fit(&ks).unwrap();
                assert_eq!(slice_model.w.to_bits(), ks_model.w.to_bits());
                assert_eq!(slice_model.b.to_bits(), ks_model.b.to_bits());
                assert_eq!(slice_model.mse.to_bits(), ks_model.mse.to_bits());
                assert_eq!(
                    slice_model.max_abs_error_slice(&keys).to_bits(),
                    ks_model.max_abs_error(&ks).to_bits()
                );
            } else {
                assert_eq!(slice_model.w, 0.0);
                assert_eq!(slice_model.b, 1.0);
                assert_eq!(slice_model.mse, 0.0);
            }
        }
        assert!(fit_sorted_slice(&[]).is_err());
    }

    #[test]
    fn huge_keys_fit_stably() {
        let base = 10_u64.pow(9);
        let ks = KeySet::from_keys((0..1000).map(|i| base + i * 13).collect()).unwrap();
        let model = LinearModel::fit(&ks).unwrap();
        assert!(
            model.mse < 1e-6,
            "linear CDF at large offset should fit exactly, mse={}",
            model.mse
        );
    }
}
