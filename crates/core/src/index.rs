//! The unified index API: one trait, one lookup result, one registry.
//!
//! The paper mounts the *same* poisoning campaign against many victim
//! structures — regression CDF models, two-stage and multi-stage RMIs,
//! updatable ALEX-style indexes, error-bounded PLA indexes, learned hash
//! tables, and the B+-tree baseline. Composing *any* workload × attack ×
//! defense × victim requires every victim to speak the same language:
//!
//! * [`Lookup`] — the shared query result (position, membership, cost);
//! * [`LearnedIndex`] — the typed build/query trait every structure
//!   implements;
//! * [`DynIndex`] / [`ErasedIndex`] — the object-safe form, so harnesses
//!   can hold a heterogeneous fleet of victims;
//! * [`IndexRegistry`] — string-keyed construction (`"rmi"`, `"btree"`,
//!   `"pla"`, ...) for CLIs and experiment configs.
//!
//! ## Example
//!
//! ```
//! use lis_core::index::{IndexRegistry, LearnedIndex};
//! use lis_core::keys::KeySet;
//!
//! let ks = KeySet::from_keys((0..500u64).map(|i| i * 3).collect()).unwrap();
//! let registry = IndexRegistry::with_defaults();
//! for name in registry.names() {
//!     let index = registry.build(name, &ks).unwrap();
//!     let hit = index.lookup(ks.keys()[123]);
//!     assert!(hit.found, "{name} lost a member key");
//! }
//! ```

use crate::error::{LisError, Result};
use crate::keys::{Key, KeySet};
use crate::scratch::ScratchPool;
use crate::search::SearchResult;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Below this batch size the bucket-scatter pass of
/// [`build_probe_order`] costs more than it saves; fall straight through
/// to the comparison sort.
const RADIX_SORT_MIN: usize = 1_024;

/// Distribution-pass geometry of [`build_probe_order`]: scattering into
/// `2^11` buckets leaves ~8 probes per bucket at the default 16k batch,
/// small enough that the finishing comparison sorts are near-linear
/// (measured 7.8 ns/probe total vs 24.6 ns for `sort_unstable` alone;
/// 256 buckets of ~64 still paid 18 ns in quadratic insertion sorting).
const BUCKET_BITS: u32 = 11;
const BUCKETS: usize = 1 << BUCKET_BITS;

/// Fills `order` with the batch's `(key, slot)` pairs in ascending
/// `(key, slot)` order — the single largest fixed cost of the
/// sorted-batch serve path (a comparison sort runs ~24 ns/probe at
/// batch 16k, a quarter of the whole lookup).
///
/// Large batches take a distribution pass instead: each probe is
/// scattered straight from the caller's key slice into its bucket — one
/// of [`BUCKETS`], keyed on the top [`BUCKET_BITS`] *significant* bits
/// of the batch's key range — then each bucket (a handful of probes at
/// the default batch size) is finished with `sort_unstable`. Scattering
/// in slot order is stable, so the final order is exactly the total
/// `(key, slot)` order of a plain `sort_unstable`, and every downstream
/// serve sweep is bit-identical. Skewed key distributions merely
/// unbalance the buckets and degrade toward the comparison sort — never
/// past it asymptotically, and correctness never depends on balance.
/// Pre-sorted batches (a common upstream discipline) short-circuit
/// after a linear scan.
fn build_probe_order(keys: &[Key], order: &mut Vec<(Key, usize)>) {
    order.clear();
    if keys.is_sorted() {
        order.extend(keys.iter().copied().zip(0..));
        return;
    }
    if keys.len() < RADIX_SORT_MIN {
        order.extend(keys.iter().copied().zip(0..));
        order.sort_unstable();
        return;
    }
    let max_key = keys.iter().copied().max().unwrap_or(0);
    let significant = u64::BITS - max_key.leading_zeros();
    let shift = significant.saturating_sub(BUCKET_BITS);
    let mut counts = [0usize; BUCKETS];
    for &k in keys {
        counts[(k >> shift) as usize & (BUCKETS - 1)] += 1;
    }
    let mut starts = [0usize; BUCKETS];
    let mut acc = 0;
    for (start, &count) in starts.iter_mut().zip(counts.iter()) {
        *start = acc;
        acc += count;
    }
    order.resize(keys.len(), (Key::MIN, 0));
    let mut cursors = starts;
    for (slot, &k) in keys.iter().enumerate() {
        let bucket = (k >> shift) as usize & (BUCKETS - 1);
        order[cursors[bucket]] = (k, slot);
        cursors[bucket] += 1;
    }
    for (&start, &count) in starts.iter().zip(counts.iter()) {
        if count > 1 {
            order[start..start + count].sort_unstable();
        }
    }
}

/// Shared scaffolding of the sorted-batch lookup paths (RMI, deep RMI,
/// PLA): clears `out`, sorts the probes together with their original
/// slots through a pooled permutation buffer, serves them in ascending
/// key order through `serve` (which owns any routing cursor state), and
/// scatters the answers back into probe order. Steady-state calls reuse
/// the pooled buffer and `out`'s capacity — no heap allocation.
pub(crate) fn sorted_batch_into(
    scratch: &ScratchPool<Vec<(Key, usize)>>,
    keys: &[Key],
    out: &mut Vec<Lookup>,
    mut serve: impl FnMut(Key) -> Lookup,
) {
    // lis-analysis: begin(zero-alloc)
    out.clear();
    if keys.is_empty() {
        return;
    }
    // lis-analysis: allow(zero-alloc) — `Vec::new` is the cold-path pool
    // fill for the first call; steady state pops a warmed buffer.
    let mut order = scratch.acquire_or(Vec::new);
    build_probe_order(keys, &mut order);
    out.resize(keys.len(), Lookup::membership(false, 0));
    for &(k, slot) in order.iter() {
        out[slot] = serve(k);
    }
    scratch.release(order);
    // lis-analysis: end(zero-alloc)
}

/// The software-pipelined twin of [`sorted_batch_into`], giving the
/// sorted sweep memory-level parallelism: each probe is split into a
/// `plan` stage (routing + prediction + window prefetch, run in sorted
/// order so it owns any monotone cursor) and a `serve` stage (the
/// last-mile window search), with up to
/// [`pipeline_depth`](crate::search::pipeline_depth) probes in flight
/// between the two. By the time a probe is served, its window lines have
/// been in flight for `depth − 1` plans — cache misses overlap instead of
/// serializing. The in-flight state lives in a fixed stack ring (no
/// allocation), results land in probe order, and every depth — including
/// the unpipelined depth 1 — produces bit-identical output, since `serve`
/// consumes exactly what `plan` computed.
pub(crate) fn sorted_batch_pipelined<P: Copy + Default>(
    scratch: &ScratchPool<Vec<(Key, usize)>>,
    keys: &[Key],
    out: &mut Vec<Lookup>,
    mut plan: impl FnMut(Key) -> P,
    mut serve: impl FnMut(Key, P) -> Lookup,
) {
    // lis-analysis: begin(zero-alloc)
    out.clear();
    if keys.is_empty() {
        return;
    }
    let depth = crate::search::pipeline_depth();
    if depth == 1 {
        // Depth 1 *is* the unpipelined reference sweep — route through it
        // so the two code paths cannot drift apart.
        return sorted_batch_into(scratch, keys, out, |k| {
            let p = plan(k);
            serve(k, p)
        });
    }
    // lis-analysis: allow(zero-alloc) — `Vec::new` is the cold-path pool
    // fill for the first call; steady state pops a warmed buffer.
    let mut order = scratch.acquire_or(Vec::new);
    build_probe_order(keys, &mut order);
    out.resize(keys.len(), Lookup::membership(false, 0));

    let mut ring = [(Key::MIN, 0usize, P::default()); crate::search::MAX_PIPELINE_DEPTH];
    for (i, &(k, slot)) in order.iter().enumerate() {
        let at = i % depth;
        if i >= depth {
            // The slot about to be overwritten holds the oldest in-flight
            // probe — serve it first (read before write).
            let (rk, rslot, p) = ring[at];
            out[rslot] = serve(rk, p);
        }
        ring[at] = (k, slot, plan(k));
    }
    let n = order.len();
    for i in n.saturating_sub(depth.min(n))..n {
        let (rk, rslot, p) = ring[i % depth];
        out[rslot] = serve(rk, p);
    }
    scratch.release(order);
    // lis-analysis: end(zero-alloc)
}

/// The outcome of a single index lookup, shared by every structure in the
/// workspace (replacing the former per-structure result types).
///
/// Positional indexes (RMI, PLA, B+-tree) report the key's global position
/// in the sorted array; membership-only structures (ALEX leaves, hash
/// tables) report `found` with `pos = None`. `cost` is the structure's
/// native unit of query work — key comparisons for search-based indexes,
/// slot or chain probes for the others — the quantity poisoning inflates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Global 0-based position of the key, when the structure tracks one.
    pub pos: Option<usize>,
    /// Whether the key is present.
    pub found: bool,
    /// Units of work spent answering (comparisons or probes).
    pub cost: usize,
}

impl Lookup {
    /// A positional result: `found` follows from `pos`.
    pub fn position(pos: Option<usize>, cost: usize) -> Self {
        Self {
            pos,
            found: pos.is_some(),
            cost,
        }
    }

    /// A membership-only result (no position tracked).
    pub fn membership(found: bool, cost: usize) -> Self {
        Self {
            pos: None,
            found,
            cost,
        }
    }
}

impl From<SearchResult> for Lookup {
    fn from(r: SearchResult) -> Self {
        Self::position(r.pos, r.comparisons)
    }
}

/// The unified build-and-query interface of every index structure.
///
/// `loss` is the structure's training-quality scalar — the MSE of its
/// fitted model(s) where one exists, `0.0` for purely structural indexes
/// (B+-tree, ALEX gapped arrays) — i.e. the numerator/denominator of the
/// paper's Ratio Loss. `memory_bytes` is an estimate of the resident size,
/// the footprint the PLA attack inflates.
pub trait LearnedIndex: Sized {
    /// Build-time configuration.
    type Config;

    /// Builds the index over a keyset.
    fn build(ks: &KeySet, cfg: &Self::Config) -> Result<Self>;

    /// Looks up one key.
    fn lookup(&self, key: Key) -> Lookup;

    /// Looks up a batch of keys into a caller-owned buffer — the
    /// zero-allocation hot path.
    ///
    /// `out` is cleared and refilled with one [`Lookup`] per probe, in
    /// probe order; a reused buffer keeps steady-state batches free of
    /// heap allocation. The default loops over [`LearnedIndex::lookup`];
    /// structures with batch-level leverage (RMI/PLA sorted-batch
    /// routing, sharded scatter/gather) override it. Overrides must
    /// return results identical to per-key [`LearnedIndex::lookup`] —
    /// `found`, position, *and* `cost` — so batching never changes what
    /// an experiment measures (`tests/property_hotpath.rs` enforces
    /// this).
    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        out.clear();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&k| self.lookup(k)));
    }

    /// Looks up a batch of keys, allocating the result vector.
    ///
    /// Convenience wrapper over [`LearnedIndex::lookup_batch_into`];
    /// hot loops that serve many batches should reuse a buffer through
    /// that method instead.
    fn lookup_batch(&self, keys: &[Key]) -> Vec<Lookup> {
        let mut out = Vec::new();
        self.lookup_batch_into(keys, &mut out);
        out
    }

    /// Inserts one key in place — the fallible write surface of the online
    /// serving plane.
    ///
    /// Updatable structures (ALEX gapped arrays) override this with their
    /// native insert; statically trained structures keep the default,
    /// which fails with [`LisError::Unsupported`] so callers (the epoch
    /// manager of `lis-server`) know to rebuild from the authoritative
    /// keyset instead. Implementations must reject duplicates with
    /// [`LisError::DuplicateKey`] and leave the structure unchanged on any
    /// error.
    fn try_insert(&mut self, key: Key) -> Result<()> {
        let _ = key;
        Err(LisError::Unsupported(
            "in-place insert on a statically trained index (rebuild per epoch instead)".into(),
        ))
    }

    /// Removes one key in place — counterpart of
    /// [`LearnedIndex::try_insert`], with the same contract: updatable
    /// structures override it, static ones fail with
    /// [`LisError::Unsupported`], and a missing key is
    /// [`LisError::KeyNotFound`] with the structure unchanged.
    fn try_remove(&mut self, key: Key) -> Result<()> {
        let _ = key;
        Err(LisError::Unsupported(
            "in-place remove on a statically trained index (rebuild per epoch instead)".into(),
        ))
    }

    /// Training loss of the structure's model(s); `0.0` when model-free.
    fn loss(&self) -> f64;

    /// Estimated resident memory in bytes.
    fn memory_bytes(&self) -> usize;

    /// Number of indexed keys.
    fn len(&self) -> usize;

    /// `true` iff no keys are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Object-safe mirror of [`LearnedIndex`], blanket-implemented for every
/// implementor, so harnesses can hold `Box<dyn ErasedIndex>` fleets.
pub trait ErasedIndex: Send + Sync {
    /// Looks up one key.
    fn lookup(&self, key: Key) -> Lookup;
    /// Looks up a batch of keys (one virtual dispatch for the whole batch).
    fn lookup_batch(&self, keys: &[Key]) -> Vec<Lookup>;
    /// Looks up a batch into a caller-owned buffer (one virtual dispatch,
    /// no allocation once the buffer is warm).
    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>);
    /// Reference batch path: one virtual dispatch, then a plain per-key
    /// loop over the concrete [`LearnedIndex::lookup`] — the pre-batching
    /// serve path, kept callable so benches and property tests can
    /// compare the optimized batch path against it.
    fn lookup_each_into(&self, keys: &[Key], out: &mut Vec<Lookup>);
    /// Inserts one key in place; [`LisError::Unsupported`] on statically
    /// trained structures (see [`LearnedIndex::try_insert`]).
    fn try_insert(&mut self, key: Key) -> Result<()>;
    /// Removes one key in place; [`LisError::Unsupported`] on statically
    /// trained structures (see [`LearnedIndex::try_remove`]).
    fn try_remove(&mut self, key: Key) -> Result<()>;
    /// Training loss of the structure's model(s).
    fn loss(&self) -> f64;
    /// Estimated resident memory in bytes.
    fn memory_bytes(&self) -> usize;
    /// Number of indexed keys.
    fn len(&self) -> usize;
    /// `true` iff no keys are indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: LearnedIndex + Send + Sync> ErasedIndex for T {
    fn lookup(&self, key: Key) -> Lookup {
        LearnedIndex::lookup(self, key)
    }

    fn lookup_batch(&self, keys: &[Key]) -> Vec<Lookup> {
        LearnedIndex::lookup_batch(self, keys)
    }

    fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        LearnedIndex::lookup_batch_into(self, keys, out)
    }

    fn lookup_each_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        out.clear();
        out.reserve(keys.len());
        out.extend(keys.iter().map(|&k| LearnedIndex::lookup(self, k)));
    }

    fn try_insert(&mut self, key: Key) -> Result<()> {
        LearnedIndex::try_insert(self, key)
    }

    fn try_remove(&mut self, key: Key) -> Result<()> {
        LearnedIndex::try_remove(self, key)
    }

    fn loss(&self) -> f64 {
        LearnedIndex::loss(self)
    }

    fn memory_bytes(&self) -> usize {
        LearnedIndex::memory_bytes(self)
    }

    fn len(&self) -> usize {
        LearnedIndex::len(self)
    }
}

/// A named, type-erased index — what [`IndexRegistry::build`] hands out.
pub struct DynIndex {
    name: String,
    inner: Box<dyn ErasedIndex>,
}

impl DynIndex {
    /// Wraps a concrete index under a display name.
    pub fn new(name: impl Into<String>, index: impl ErasedIndex + 'static) -> Self {
        Self {
            name: name.into(),
            inner: Box::new(index),
        }
    }

    /// The registry name (or caller-chosen label) of the wrapped index.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up one key.
    pub fn lookup(&self, key: Key) -> Lookup {
        self.inner.lookup(key)
    }

    /// Looks up a batch of keys through a single virtual dispatch.
    pub fn lookup_batch(&self, keys: &[Key]) -> Vec<Lookup> {
        self.inner.lookup_batch(keys)
    }

    /// Looks up a batch into a caller-owned buffer — single virtual
    /// dispatch, and no heap allocation once `out` (and the index's own
    /// scratch) are warm. `out` is cleared and refilled in probe order.
    pub fn lookup_batch_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        self.inner.lookup_batch_into(keys, out)
    }

    /// Reference per-key batch path (one dispatch, then a plain loop) —
    /// the pre-sorted-batch serve path, kept for comparison benches and
    /// equivalence tests.
    pub fn lookup_each_into(&self, keys: &[Key], out: &mut Vec<Lookup>) {
        self.inner.lookup_each_into(keys, out)
    }

    /// Inserts one key in place through the wrapped structure's fallible
    /// write surface; statically trained structures fail with
    /// [`LisError::Unsupported`] (callers rebuild per epoch instead) —
    /// no ad-hoc downcasting required.
    pub fn try_insert(&mut self, key: Key) -> Result<()> {
        self.inner.try_insert(key)
    }

    /// Removes one key in place; [`LisError::Unsupported`] on statically
    /// trained structures. See [`DynIndex::try_insert`].
    pub fn try_remove(&mut self, key: Key) -> Result<()> {
        self.inner.try_remove(key)
    }

    /// Training loss of the wrapped index.
    pub fn loss(&self) -> f64 {
        self.inner.loss()
    }

    /// Estimated resident memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` iff no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.inner.len() == 0
    }
}

impl fmt::Debug for DynIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynIndex")
            .field("name", &self.name)
            .field("len", &self.inner.len())
            .field("loss", &self.inner.loss())
            .field("memory_bytes", &self.inner.memory_bytes())
            .finish()
    }
}

/// Constructor registered under a name. `Arc` (not `Box`) so implicit
/// `sharded:<inner>:<N>` composites can hand a `'static` clone of the
/// inner builder to the persistent pool's shard fan-out.
pub type IndexBuilder = Arc<dyn Fn(&KeySet) -> Result<DynIndex> + Send + Sync>;

struct RegistryEntry {
    description: String,
    builder: IndexBuilder,
}

/// String-keyed index construction: the bridge from CLI flags and
/// experiment configs to concrete structures.
///
/// [`IndexRegistry::with_defaults`] registers every structure in the
/// workspace under its canonical name; callers can add their own entries
/// (custom configs, new structures) with [`IndexRegistry::register`].
#[derive(Default)]
pub struct IndexRegistry {
    entries: BTreeMap<String, RegistryEntry>,
}

impl IndexRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// Registers `builder` under `name`, replacing any previous entry.
    pub fn register<F>(&mut self, name: &str, description: &str, builder: F)
    where
        F: Fn(&KeySet) -> Result<DynIndex> + Send + Sync + 'static,
    {
        self.entries.insert(
            name.to_string(),
            RegistryEntry {
                description: description.to_string(),
                builder: Arc::new(builder),
            },
        );
    }

    /// Builds the index registered under `name` over `ks`.
    ///
    /// Besides exact entries, names of the form `sharded:<inner>:<N>`
    /// resolve implicitly: the registered `<inner>` entry is built once per
    /// contiguous range shard and served through a
    /// [`ShardedIndex`](crate::shard::ShardedIndex) (shard builds fan out
    /// through [`crate::par`]). See [`crate::shard`].
    pub fn build(&self, name: &str, ks: &KeySet) -> Result<DynIndex> {
        (self.builder_for(name)?)(ks)
    }

    /// Resolves `name` to an owning constructor: exact entries clone their
    /// registered builder; `sharded:<inner>:<N>` names compose the inner
    /// builder (resolved recursively, so sharding nests) into a
    /// [`ShardedIndex`](crate::shard::ShardedIndex) constructor. The result
    /// is `'static`, which is what the persistent pool's shard fan-out
    /// requires of build closures.
    fn builder_for(&self, name: &str) -> Result<IndexBuilder> {
        if let Some(entry) = self.entries.get(name) {
            return Ok(Arc::clone(&entry.builder));
        }
        if let Some((inner, shards)) = crate::shard::parse_sharded_name(name) {
            let inner_builder = self.builder_for(inner)?;
            let full_name = name.to_string();
            return Ok(Arc::new(move |ks: &KeySet| {
                let build = Arc::clone(&inner_builder);
                let sharded =
                    crate::shard::ShardedIndex::build_with(ks, shards, 0, move |part| build(part))?;
                Ok(DynIndex::new(&full_name, sharded))
            }));
        }
        Err(LisError::UnknownIndex {
            name: name.to_string(),
            available: format!("{}, sharded:<name>:<N>", self.names().join(", ")),
        })
    }

    /// Whether `name` resolves through [`IndexRegistry::build`] — an exact
    /// entry or a `sharded:<inner>:<N>` composite over one.
    pub fn resolves(&self, name: &str) -> bool {
        self.contains(name)
            || crate::shard::parse_sharded_name(name).is_some_and(|(inner, _)| self.resolves(inner))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// The description of a registered entry.
    pub fn description(&self, name: &str) -> Option<&str> {
        self.entries.get(name).map(|e| e.description.as_str())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The workspace's standard victim fleet.
    ///
    /// Size-dependent parameters (RMI fanout, hash slots) scale with the
    /// keyset so one registry serves every workload:
    ///
    /// | name          | structure                                       |
    /// |---------------|-------------------------------------------------|
    /// | `rmi`         | two-stage RMI, linear root, oracle routing      |
    /// | `rmi-root`    | two-stage RMI, root-predicted routing           |
    /// | `deep-rmi`    | three-stage RMI                                 |
    /// | `btree`       | bulk-loaded B+-tree, fanout 64                  |
    /// | `alex`        | updatable gapped-array index                    |
    /// | `pla`         | error-bounded PLA index, ε = 16                 |
    /// | `hash`        | learned hash table (CDF model as hash)          |
    /// | `hash-random` | classic hash table baseline                     |
    pub fn with_defaults() -> Self {
        use crate::alex::{AlexConfig, AlexIndex};
        use crate::btree::{BPlusTree, BTreeConfig};
        use crate::deep_rmi::{DeepRmi, DeepRmiConfig};
        use crate::hashindex::{HashIndex, HashIndexConfig, HashKind};
        use crate::pla::{PlaConfig, PlaIndex};
        use crate::rmi::{Rmi, RmiConfig, RootModelKind, Routing};

        /// Second-stage model count for ~100 keys per model.
        fn leaves_for(ks: &KeySet) -> usize {
            (ks.len() / 100).clamp(1, ks.len())
        }

        let mut reg = Self::empty();
        reg.register("rmi", "two-stage RMI (linear root, oracle routing)", |ks| {
            let rmi = Rmi::build(ks, &RmiConfig::linear_root(leaves_for(ks)))?;
            Ok(DynIndex::new("rmi", rmi))
        });
        reg.register(
            "rmi-root",
            "two-stage RMI (linear root, root-predicted routing)",
            |ks| {
                let cfg = RmiConfig {
                    num_leaves: leaves_for(ks),
                    root: RootModelKind::Linear,
                    routing: Routing::Root,
                };
                Ok(DynIndex::new("rmi-root", Rmi::build(ks, &cfg)?))
            },
        );
        reg.register(
            "deep-rmi",
            "three-stage RMI (generalized hierarchy)",
            |ks| {
                let leaves = leaves_for(ks);
                let mid = (leaves / 10).max(2);
                let cfg = DeepRmiConfig::three_stage(mid, leaves.max(4));
                Ok(DynIndex::new("deep-rmi", DeepRmi::build(ks, &cfg)?))
            },
        );
        reg.register("btree", "bulk-loaded B+-tree baseline (fanout 64)", |ks| {
            Ok(DynIndex::new(
                "btree",
                BPlusTree::build(ks, BTreeConfig::default().fanout)?,
            ))
        });
        reg.register("alex", "updatable adaptive index (gapped arrays)", |ks| {
            Ok(DynIndex::new(
                "alex",
                AlexIndex::build(ks, AlexConfig::default())?,
            ))
        });
        reg.register(
            "pla",
            "error-bounded piecewise-linear index (eps = 16)",
            |ks| {
                Ok(DynIndex::new(
                    "pla",
                    PlaIndex::build(ks, PlaConfig::default().epsilon)?,
                ))
            },
        );
        reg.register(
            "hash",
            "learned hash table (CDF model as hash function)",
            |ks| {
                let cfg = HashIndexConfig::default();
                Ok(DynIndex::new(
                    "hash",
                    <HashIndex as LearnedIndex>::build(ks, &cfg)?,
                ))
            },
        );
        reg.register(
            "hash-random",
            "classic hash table baseline (SplitMix64)",
            |ks| {
                let cfg = HashIndexConfig {
                    kind: HashKind::Random,
                    ..Default::default()
                };
                Ok(DynIndex::new(
                    "hash-random",
                    <HashIndex as LearnedIndex>::build(ks, &cfg)?,
                ))
            },
        );
        reg
    }
}

impl fmt::Debug for IndexRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IndexRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyset(n: u64) -> KeySet {
        KeySet::from_keys((0..n).map(|i| i * 7 + 3).collect()).unwrap()
    }

    #[test]
    fn probe_order_matches_a_comparison_sort_on_every_shape() {
        // The bucket-scatter path must produce *exactly* the total
        // (key, slot) order of `sort_unstable` — the serve sweep's
        // bit-identity across batch sizes depends on it. Exercise both
        // regimes (below and above RADIX_SORT_MIN), the pre-sorted
        // short-circuit, duplicates, heavy skew (all probes in one
        // bucket), and the all-zero degenerate.
        let shapes: Vec<Vec<Key>> = vec![
            vec![],
            vec![42],
            (0..100u64).rev().collect(),
            (0..100u64).collect(),
            (0..(RADIX_SORT_MIN as u64 * 4))
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
            (0..(RADIX_SORT_MIN as u64 * 4)).map(|i| i % 17).collect(),
            (0..(RADIX_SORT_MIN as u64 * 2))
                .map(|i| u64::MAX - (i % 31))
                .collect(),
            vec![0; RADIX_SORT_MIN * 2],
        ];
        for keys in &shapes {
            let mut expected: Vec<(Key, usize)> = keys.iter().copied().zip(0..).collect();
            expected.sort_unstable();
            let mut order = Vec::new();
            build_probe_order(keys, &mut order);
            assert_eq!(order, expected, "shape of len {}", keys.len());
        }
    }

    #[test]
    fn lookup_constructors() {
        let p = Lookup::position(Some(4), 2);
        assert!(p.found);
        let miss = Lookup::position(None, 5);
        assert!(!miss.found);
        let m = Lookup::membership(true, 1);
        assert_eq!(m.pos, None);
        assert!(m.found);
    }

    #[test]
    fn defaults_cover_all_structures() {
        let reg = IndexRegistry::with_defaults();
        let names = reg.names();
        for expected in [
            "rmi",
            "rmi-root",
            "deep-rmi",
            "btree",
            "alex",
            "pla",
            "hash",
            "hash-random",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
            assert!(reg.description(expected).is_some());
        }
    }

    #[test]
    fn every_default_index_answers_membership() {
        let ks = keyset(600);
        let reg = IndexRegistry::with_defaults();
        for name in reg.names() {
            let idx = reg.build(name, &ks).unwrap();
            assert_eq!(idx.len(), ks.len(), "{name}");
            assert_eq!(idx.name(), name);
            for &k in ks.keys().iter().step_by(41) {
                let hit = idx.lookup(k);
                assert!(hit.found, "{name} lost key {k}");
                if let Some(pos) = hit.pos {
                    assert_eq!(ks.keys()[pos], k, "{name} position wrong");
                }
            }
            assert!(!idx.lookup(1).found, "{name} invented key 1");
            assert!(idx.memory_bytes() > 0, "{name} reports zero memory");
        }
    }

    #[test]
    fn lookup_batch_matches_single_lookups() {
        let ks = keyset(400);
        let reg = IndexRegistry::with_defaults();
        let probes: Vec<Key> = ks
            .keys()
            .iter()
            .step_by(7)
            .copied()
            .chain([1, 2, 10_000])
            .collect();
        for name in reg.names() {
            let idx = reg.build(name, &ks).unwrap();
            let batch = idx.lookup_batch(&probes);
            assert_eq!(batch.len(), probes.len());
            for (&k, &b) in probes.iter().zip(&batch) {
                assert_eq!(b, idx.lookup(k), "{name} key {k}");
            }
        }
    }

    #[test]
    fn lookup_batch_into_reuses_buffer_and_matches_all_paths() {
        let ks = keyset(500);
        let reg = IndexRegistry::with_defaults();
        let probes: Vec<Key> = ks
            .keys()
            .iter()
            .step_by(11)
            .copied()
            .chain([1, 2, 10_000])
            .collect();
        let mut out = Vec::new();
        let mut each = Vec::new();
        for name in reg.names() {
            let idx = reg.build(name, &ks).unwrap();
            idx.lookup_batch_into(&probes, &mut out);
            idx.lookup_each_into(&probes, &mut each);
            assert_eq!(out, each, "{name}: batch vs per-key path");
            assert_eq!(out, idx.lookup_batch(&probes), "{name}: wrapper");
            // A dirty reused buffer must be cleared, not appended to.
            idx.lookup_batch_into(&probes[..5], &mut out);
            assert_eq!(out.len(), 5, "{name}: buffer not cleared");
        }
    }

    #[test]
    fn pipelined_batch_is_depth_and_kernel_invariant() {
        // The sorted-batch pipeline must be a pure scheduling change:
        // every depth (including the unpipelined depth 1) and both window
        // kernels (lane and its scalar twin) produce bit-identical
        // found/rank/cost. Both knobs are process-global atomics, which is
        // safe to toggle under parallel test execution *because* of this
        // invariant.
        let ks = keyset(700);
        let reg = IndexRegistry::with_defaults();
        let probes: Vec<Key> = ks
            .keys()
            .iter()
            .step_by(5)
            .copied()
            .chain([1, 9, 10_000])
            .collect();
        for name in ["rmi", "rmi-root", "deep-rmi", "pla"] {
            let idx = reg.build(name, &ks).unwrap();
            let mut reference = Vec::new();
            idx.lookup_each_into(&probes, &mut reference);
            // Dirty, wrong-length reuse: the batch path must clear it.
            let mut out = vec![Lookup::membership(true, 77); 3];
            for depth in [1usize, 2, 8, 16] {
                let prev = crate::search::set_pipeline_depth(depth);
                idx.lookup_batch_into(&probes, &mut out);
                assert_eq!(out, reference, "{name} depth {depth}");
                let was_scalar = crate::search::set_scalar_kernel(true);
                idx.lookup_batch_into(&probes, &mut out);
                crate::search::set_scalar_kernel(was_scalar);
                assert_eq!(out, reference, "{name} depth {depth} scalar");
                idx.lookup_batch_into(&probes[..1], &mut out);
                assert_eq!(out, reference[..1], "{name} depth {depth} batch-of-1");
                idx.lookup_batch_into(&[], &mut out);
                assert!(out.is_empty(), "{name} depth {depth} empty batch");
                crate::search::set_pipeline_depth(prev);
            }
        }
    }

    #[test]
    fn unknown_index_is_a_helpful_error() {
        let reg = IndexRegistry::with_defaults();
        let err = reg.build("skiplist", &keyset(10)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("skiplist") && msg.contains("btree"), "{msg}");
    }

    #[test]
    fn resolves_covers_exact_and_sharded_names() {
        let reg = IndexRegistry::with_defaults();
        assert!(reg.resolves("rmi"));
        assert!(reg.resolves("sharded:rmi:8"));
        assert!(reg.resolves("sharded:sharded:btree:2:4"));
        assert!(!reg.resolves("skiplist"));
        assert!(!reg.resolves("sharded:skiplist:8"));
        assert!(!reg.resolves("sharded:rmi:0"));
        assert!(!reg.resolves("sharded:rmi"));
    }

    #[test]
    fn custom_registration_overrides() {
        use crate::btree::BPlusTree;
        let mut reg = IndexRegistry::empty();
        reg.register("btree", "tiny fanout", |ks| {
            Ok(DynIndex::new("btree", BPlusTree::build(ks, 4)?))
        });
        assert_eq!(reg.len(), 1);
        let idx = reg.build("btree", &keyset(100)).unwrap();
        assert!(idx.lookup(3).found);
    }
}
