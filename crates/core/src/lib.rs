//! # lis-core — learned index substrate
//!
//! The data-structure substrate for reproducing *"The Price of Tailoring
//! the Index to Your Data: Poisoning Attacks on Learned Index Structures"*
//! (Kornaropoulos, Ren, Tamassia — SIGMOD 2022).
//!
//! This crate implements, from scratch, everything the paper's attacks are
//! mounted against:
//!
//! * [`keys`] — sorted duplicate-free keysets, ranks, gap enumeration;
//! * [`stats`] — numerically robust sample moments over CDF pairs;
//! * [`linreg`] — the closed-form linear regression on CDFs (Theorem 1),
//!   the second-stage building block of the RMI;
//! * [`cubic`] / [`nn`] — richer root models (cubic least squares and a
//!   from-scratch MLP);
//! * [`rmi`] — the two-stage Recursive Model Index with equal-size
//!   partitions, oracle or root-predicted routing, and last-mile search;
//! * [`index`] — the unified [`LearnedIndex`] trait, the shared [`Lookup`]
//!   result, the object-safe [`DynIndex`] wrapper, and the string-keyed
//!   [`IndexRegistry`] every harness builds victims through;
//! * [`shard`] — range-partitioned sharded serving over any structure
//!   (`sharded:<name>:<N>` registry names, scoped-thread-pool fan-out);
//! * [`search`] — exponential/binary/branchless local search with
//!   comparison counting, including the error-bounded window search the
//!   lookup hot path runs;
//! * [`scratch`] — pooled scratch buffers keeping batched lookups free of
//!   per-batch heap allocation;
//! * [`par`] — the scoped-thread fan-out discipline the build plane
//!   shares (contiguous chunks, capped workers, bit-identical output
//!   regardless of thread count);
//! * [`btree`] — a bulk-loaded B+-tree baseline for lookup comparisons;
//! * [`store`] — the dense sorted record array with logical paging;
//! * [`metrics`] — Ratio Loss and the reporting types behind the paper's
//!   figures.
//!
//! ## Quick example
//!
//! ```
//! use lis_core::keys::KeySet;
//! use lis_core::rmi::{Rmi, RmiConfig};
//!
//! let ks = KeySet::from_keys((0..1000u64).map(|i| i * 7).collect()).unwrap();
//! let rmi = Rmi::build(&ks, &RmiConfig::linear_root(10)).unwrap();
//! let hit = rmi.lookup(700);
//! assert_eq!(hit.pos, Some(100));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alex;
pub mod bloom;
pub mod btree;
pub mod cubic;
pub mod deep_rmi;
pub mod error;
pub mod hashindex;
pub mod index;
pub mod keys;
pub mod linreg;
pub mod metrics;
pub mod nn;
pub mod par;
pub mod pla;
pub mod rmi;
pub mod scratch;
pub mod search;
pub mod shard;
pub mod stats;
pub mod store;

pub use error::{LisError, Result};
pub use index::{DynIndex, ErasedIndex, IndexRegistry, LearnedIndex, Lookup};
pub use keys::{Gap, Key, KeyDomain, KeySet, Rank};
pub use linreg::LinearModel;
pub use rmi::{Rmi, RmiConfig, Routing};
pub use scratch::ScratchPool;
pub use shard::{parse_sharded_name, ShardConfig, ShardedIndex};
