//! Key sets: sorted, deduplicated collections of integer keys.
//!
//! The paper (Section III) models an index over a set `K ⊆ 𝒦` of `n`
//! distinct non-negative integer keys drawn from a key universe `𝒦` of size
//! `m`. Every key has a *rank* — its 1-based position in the sorted order —
//! and the (non-normalized) CDF of the keyset maps each key to its rank.
//!
//! [`KeySet`] is the canonical owned representation used throughout the
//! workspace: a sorted `Vec<u64>` with no duplicates, paired with the key
//! universe it was drawn from. It exposes rank queries, gap iteration (the
//! maximal runs of unoccupied keys that the poisoning attack mines for
//! candidates), and density accounting.

use crate::error::{LisError, Result};
use std::fmt;

/// A key is a non-negative integer, as in the paper (Section III,
/// "for simplicity, we assume that keys are non-negative integers").
pub type Key = u64;

/// The 1-based rank of a key inside a [`KeySet`].
pub type Rank = usize;

/// Inclusive integer key universe `𝒦 = [min, max]`.
///
/// The density of a keyset is `n / m` where `m = max - min + 1` is the
/// universe size. Poisoning candidates are restricted to this range so the
/// attack never plants detectable out-of-range outliers (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyDomain {
    /// Smallest admissible key (inclusive).
    pub min: Key,
    /// Largest admissible key (inclusive).
    pub max: Key,
}

impl KeyDomain {
    /// Creates a domain `[min, max]`. Errors if `min > max`.
    pub fn new(min: Key, max: Key) -> Result<Self> {
        if min > max {
            return Err(LisError::InvalidDomain { min, max });
        }
        Ok(Self { min, max })
    }

    /// Domain `[0, max]`, the common case for synthetic workloads.
    pub fn up_to(max: Key) -> Self {
        Self { min: 0, max }
    }

    /// Number of keys in the universe, `m = max - min + 1`.
    ///
    /// Saturates at `u64::MAX` for the degenerate full-range domain.
    pub fn size(&self) -> u64 {
        (self.max - self.min).saturating_add(1)
    }

    /// Whether `key` lies inside the domain.
    pub fn contains(&self, key: Key) -> bool {
        (self.min..=self.max).contains(&key)
    }
}

impl fmt::Display for KeyDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

/// A maximal run of consecutive *unoccupied* keys between two occupied keys
/// (or between an occupied key and a domain boundary).
///
/// For the keyset `{2, 6, 7, 12}` on domain `[1, 13]` the gaps are `{1}`,
/// `{3,4,5}`, `{8..11}`, `{13}` — exactly the subsequences of the running
/// example in Section IV-C of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gap {
    /// First unoccupied key of the run (inclusive).
    pub lo: Key,
    /// Last unoccupied key of the run (inclusive).
    pub hi: Key,
    /// Rank a key inserted anywhere in this gap would take
    /// (i.e. one plus the number of existing keys smaller than `lo`).
    pub insert_rank: Rank,
}

impl Gap {
    /// Number of unoccupied keys in the run.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// `true` iff the gap is empty (never produced by [`KeySet::gaps`]).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The candidate poisoning keys of this gap: its endpoints.
    ///
    /// By the per-gap convexity of the loss sequence (Theorem 2) the loss is
    /// maximised at one of the two endpoints, so these are the only keys the
    /// optimal attack must evaluate.
    pub fn endpoints(&self) -> impl Iterator<Item = Key> {
        let second = if self.hi != self.lo {
            Some(self.hi)
        } else {
            None
        };
        std::iter::once(self.lo).chain(second)
    }
}

/// A sorted, duplicate-free set of keys together with its domain.
///
/// This is the training set of every learned-index model in the workspace:
/// the CDF pairs are `(self.keys[i], i + 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySet {
    keys: Vec<Key>,
    domain: KeyDomain,
}

impl KeySet {
    /// Builds a keyset from arbitrary (unsorted, possibly duplicated) keys.
    ///
    /// Keys are sorted and deduplicated. Errors if any key falls outside
    /// `domain` or if the resulting set is empty.
    ///
    /// Already strictly-sorted input (workload generators on the dense
    /// path, files written by `lis-cli generate`, partition slices) is
    /// detected in one `O(n)` scan and skips the sort and dedup entirely —
    /// the common build-plane case pays no re-sorting tax.
    pub fn new(mut keys: Vec<Key>, domain: KeyDomain) -> Result<Self> {
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            keys.sort_unstable();
            keys.dedup();
        }
        if keys.is_empty() {
            return Err(LisError::EmptyKeySet);
        }
        if keys[0] < domain.min || *keys.last().unwrap() > domain.max {
            return Err(LisError::KeyOutOfDomain {
                key: if keys[0] < domain.min {
                    keys[0]
                } else {
                    *keys.last().unwrap()
                },
                domain,
            });
        }
        Ok(Self { keys, domain })
    }

    /// Builds a keyset whose domain is exactly `[min(keys), max(keys)]`.
    pub fn from_keys(keys: Vec<Key>) -> Result<Self> {
        if keys.is_empty() {
            return Err(LisError::EmptyKeySet);
        }
        let min = *keys.iter().min().unwrap();
        let max = *keys.iter().max().unwrap();
        Self::new(keys, KeyDomain { min, max })
    }

    /// Builds from keys that the caller guarantees are sorted and distinct.
    ///
    /// Verified with a debug assertion; use [`KeySet::new`] when unsure.
    pub fn from_sorted_unchecked(keys: Vec<Key>, domain: KeyDomain) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be strictly sorted"
        );
        debug_assert!(!keys.is_empty());
        Self { keys, domain }
    }

    /// The sorted keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// The key domain (universe) this set was drawn from.
    pub fn domain(&self) -> KeyDomain {
        self.domain
    }

    /// Number of keys, `n`.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` iff the set holds no keys (unreachable for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Density `n / m` of the keyset over its domain.
    pub fn density(&self) -> f64 {
        self.keys.len() as f64 / self.domain.size() as f64
    }

    /// Smallest key.
    pub fn min_key(&self) -> Key {
        self.keys[0]
    }

    /// Largest key.
    pub fn max_key(&self) -> Key {
        *self.keys.last().unwrap()
    }

    /// Whether `key` is a member of the set (binary search).
    pub fn contains(&self, key: Key) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// 1-based rank of `key` if present.
    pub fn rank(&self, key: Key) -> Option<Rank> {
        self.keys.binary_search(&key).ok().map(|i| i + 1)
    }

    /// Rank that `key` *would take* if inserted: one plus the number of
    /// existing keys strictly smaller than `key`.
    ///
    /// This is the `T(i)` sequence of Algorithm 1.
    pub fn insertion_rank(&self, key: Key) -> Rank {
        self.keys.partition_point(|&k| k < key) + 1
    }

    /// Number of existing keys strictly greater than `key`.
    ///
    /// The poisoning loss oracle needs this count `c`: inserting `key`
    /// increments the rank of exactly these `c` keys (the compound effect of
    /// Section IV-B).
    pub fn count_above(&self, key: Key) -> usize {
        self.keys.len() - self.keys.partition_point(|&k| k <= key)
    }

    /// Iterates the CDF pairs `(key, rank)` with ranks `1..=n`.
    pub fn cdf_pairs(&self) -> impl Iterator<Item = (Key, Rank)> + '_ {
        self.keys.iter().enumerate().map(|(i, &k)| (k, i + 1))
    }

    /// Maximal runs of unoccupied keys *strictly between* the smallest and
    /// largest existing key.
    ///
    /// The optimal attack deliberately ignores the runs that touch the
    /// domain boundary: inserting below `min(K)` or above `max(K)` would
    /// create an out-of-range outlier that simple mitigations remove
    /// (Section IV-C). Use [`KeySet::gaps_in_domain`] for the unrestricted
    /// variant.
    pub fn gaps(&self) -> Vec<Gap> {
        let mut gaps = Vec::new();
        for (i, w) in self.keys.windows(2).enumerate() {
            if w[1] - w[0] > 1 {
                gaps.push(Gap {
                    lo: w[0] + 1,
                    hi: w[1] - 1,
                    insert_rank: i + 2,
                });
            }
        }
        gaps
    }

    /// Maximal runs of unoccupied keys over the *whole* domain, including
    /// the runs below `min(K)` and above `max(K)`.
    pub fn gaps_in_domain(&self) -> Vec<Gap> {
        let mut gaps = Vec::new();
        if self.keys[0] > self.domain.min {
            gaps.push(Gap {
                lo: self.domain.min,
                hi: self.keys[0] - 1,
                insert_rank: 1,
            });
        }
        gaps.extend(self.gaps());
        let last = *self.keys.last().unwrap();
        if last < self.domain.max {
            gaps.push(Gap {
                lo: last + 1,
                hi: self.domain.max,
                insert_rank: self.keys.len() + 1,
            });
        }
        gaps
    }

    /// Total number of unoccupied keys strictly between min and max key.
    pub fn free_slots_between(&self) -> u64 {
        self.gaps().iter().map(Gap::len).sum()
    }

    /// Returns a new keyset with `key` inserted. Errors if `key` is already
    /// present or outside the domain.
    pub fn with_key(&self, key: Key) -> Result<Self> {
        let mut next = self.clone();
        next.insert(key)?;
        Ok(next)
    }

    /// Inserts `key` in place, keeping sorted order.
    pub fn insert(&mut self, key: Key) -> Result<()> {
        if !self.domain.contains(key) {
            return Err(LisError::KeyOutOfDomain {
                key,
                domain: self.domain,
            });
        }
        match self.keys.binary_search(&key) {
            Ok(_) => Err(LisError::DuplicateKey(key)),
            Err(pos) => {
                self.keys.insert(pos, key);
                Ok(())
            }
        }
    }

    /// Removes `key` in place. Errors if absent.
    pub fn remove(&mut self, key: Key) -> Result<()> {
        match self.keys.binary_search(&key) {
            Ok(pos) => {
                self.keys.remove(pos);
                Ok(())
            }
            Err(_) => Err(LisError::KeyNotFound(key)),
        }
    }

    /// Merges another set of keys into this keyset (duplicates rejected).
    pub fn insert_all<I: IntoIterator<Item = Key>>(&mut self, keys: I) -> Result<()> {
        for k in keys {
            self.insert(k)?;
        }
        Ok(())
    }

    /// Splits the keyset into `parts` contiguous partitions of (near-)equal
    /// size, the partition scheme of the two-stage RMI evaluated in the
    /// paper ("a partition of non-overlapping keyset of equal size assigned
    /// to models on the leaves", Section III-A).
    ///
    /// The first `n % parts` partitions receive one extra key. Each returned
    /// keyset keeps the parent domain restricted to its own key span.
    pub fn partition(&self, parts: usize) -> Result<Vec<KeySet>> {
        Ok(self
            .partition_bounds(parts)?
            .into_iter()
            .map(|range| {
                let slice = &self.keys[range];
                KeySet {
                    keys: slice.to_vec(),
                    domain: KeyDomain {
                        min: slice[0],
                        max: *slice.last().unwrap(),
                    },
                }
            })
            .collect())
    }

    /// The index ranges of [`KeySet::partition`] without copying any keys —
    /// the zero-copy partition view the parallel build plane trains on.
    /// Range `i` covers partition `i`'s keys in [`KeySet::keys`].
    pub fn partition_bounds(&self, parts: usize) -> Result<Vec<std::ops::Range<usize>>> {
        if parts == 0 || parts > self.keys.len() {
            return Err(LisError::InvalidPartition {
                parts,
                keys: self.keys.len(),
            });
        }
        let n = self.keys.len();
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let len = base + usize::from(i < extra);
            out.push(start..start + len);
            start += len;
        }
        Ok(out)
    }
}

impl fmt::Display for KeySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KeySet(n={}, domain={}, density={:.2}%)",
            self.len(),
            self.domain,
            100.0 * self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> KeySet {
        // Running example of Section IV-C: keys {2, 6, 7, 12} on [1, 13].
        KeySet::new(vec![2, 6, 7, 12], KeyDomain::new(1, 13).unwrap()).unwrap()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let ks = KeySet::new(vec![5, 1, 3, 3, 5], KeyDomain::up_to(10)).unwrap();
        assert_eq!(ks.keys(), &[1, 3, 5]);
    }

    #[test]
    fn new_rejects_empty() {
        assert!(matches!(
            KeySet::new(vec![], KeyDomain::up_to(10)),
            Err(LisError::EmptyKeySet)
        ));
    }

    #[test]
    fn new_rejects_out_of_domain() {
        assert!(KeySet::new(vec![11], KeyDomain::up_to(10)).is_err());
        assert!(KeySet::new(vec![0], KeyDomain::new(1, 10).unwrap()).is_err());
    }

    #[test]
    fn domain_size_and_density() {
        let ks = paper_example();
        assert_eq!(ks.domain().size(), 13);
        assert!((ks.density() - 4.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn rank_queries() {
        let ks = paper_example();
        assert_eq!(ks.rank(2), Some(1));
        assert_eq!(ks.rank(7), Some(3));
        assert_eq!(ks.rank(5), None);
        assert_eq!(ks.insertion_rank(1), 1);
        assert_eq!(ks.insertion_rank(3), 2);
        assert_eq!(ks.insertion_rank(8), 4);
        assert_eq!(ks.insertion_rank(13), 5);
    }

    #[test]
    fn count_above_matches_compound_effect() {
        let ks = paper_example();
        assert_eq!(ks.count_above(1), 4);
        assert_eq!(ks.count_above(2), 3);
        assert_eq!(ks.count_above(8), 1);
        assert_eq!(ks.count_above(13), 0);
    }

    #[test]
    fn gaps_match_paper_running_example() {
        let ks = paper_example();
        // Interior subsequences: {3,4,5}, {8,9,10,11}.
        let gaps = ks.gaps();
        assert_eq!(gaps.len(), 2);
        assert_eq!((gaps[0].lo, gaps[0].hi, gaps[0].insert_rank), (3, 5, 2));
        assert_eq!((gaps[1].lo, gaps[1].hi, gaps[1].insert_rank), (8, 11, 4));
        // Including boundary runs: {1} and {13}.
        let all = ks.gaps_in_domain();
        assert_eq!(all.len(), 4);
        assert_eq!((all[0].lo, all[0].hi, all[0].insert_rank), (1, 1, 1));
        assert_eq!((all[3].lo, all[3].hi, all[3].insert_rank), (13, 13, 5));
    }

    #[test]
    fn gap_endpoints() {
        let g = Gap {
            lo: 3,
            hi: 5,
            insert_rank: 2,
        };
        assert_eq!(g.endpoints().collect::<Vec<_>>(), vec![3, 5]);
        let single = Gap {
            lo: 9,
            hi: 9,
            insert_rank: 1,
        };
        assert_eq!(single.endpoints().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut ks = paper_example();
        ks.insert(9).unwrap();
        assert_eq!(ks.keys(), &[2, 6, 7, 9, 12]);
        assert!(matches!(ks.insert(9), Err(LisError::DuplicateKey(9))));
        ks.remove(9).unwrap();
        assert_eq!(ks.keys(), &[2, 6, 7, 12]);
        assert!(ks.remove(9).is_err());
    }

    #[test]
    fn insert_respects_domain() {
        let mut ks = paper_example();
        assert!(ks.insert(0).is_err());
        assert!(ks.insert(14).is_err());
    }

    #[test]
    fn cdf_pairs_are_rank_ordered() {
        let ks = paper_example();
        let pairs: Vec<_> = ks.cdf_pairs().collect();
        assert_eq!(pairs, vec![(2, 1), (6, 2), (7, 3), (12, 4)]);
    }

    #[test]
    fn partition_equal_size() {
        let ks = KeySet::from_keys((0..10).map(|i| i * 3).collect()).unwrap();
        let parts = ks.partition(3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        let merged: Vec<_> = parts.iter().flat_map(|p| p.keys().to_vec()).collect();
        assert_eq!(merged, ks.keys());
    }

    #[test]
    fn new_accepts_presorted_input_without_resorting() {
        // Strictly sorted input takes the no-sort fast path and must be
        // indistinguishable from the sorting path.
        let sorted: Vec<Key> = (0..500).map(|i| i * 3 + 1).collect();
        let fast = KeySet::new(sorted.clone(), KeyDomain::up_to(2_000)).unwrap();
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        shuffled.swap(3, 250);
        let slow = KeySet::new(shuffled, KeyDomain::up_to(2_000)).unwrap();
        assert_eq!(fast, slow);
        assert_eq!(fast.keys(), &sorted[..]);
        // Sorted-but-duplicated input still deduplicates.
        let dups = KeySet::new(vec![1, 2, 2, 3], KeyDomain::up_to(10)).unwrap();
        assert_eq!(dups.keys(), &[1, 2, 3]);
        // Non-decreasing-but-not-strict never sneaks past the check.
        let eq_pair = KeySet::new(vec![5, 5], KeyDomain::up_to(10)).unwrap();
        assert_eq!(eq_pair.keys(), &[5]);
    }

    #[test]
    fn partition_bounds_match_partition() {
        let ks = KeySet::from_keys((0..103).map(|i| i * 7 + 2).collect()).unwrap();
        for parts in [1usize, 3, 10, 103] {
            let bounds = ks.partition_bounds(parts).unwrap();
            let owned = ks.partition(parts).unwrap();
            assert_eq!(bounds.len(), owned.len());
            for (range, part) in bounds.iter().zip(&owned) {
                assert_eq!(&ks.keys()[range.clone()], part.keys());
            }
            assert_eq!(bounds.last().unwrap().end, ks.len());
        }
        assert!(ks.partition_bounds(0).is_err());
        assert!(ks.partition_bounds(104).is_err());
    }

    #[test]
    fn partition_rejects_bad_counts() {
        let ks = paper_example();
        assert!(ks.partition(0).is_err());
        assert!(ks.partition(5).is_err());
    }

    #[test]
    fn free_slots_between() {
        let ks = paper_example();
        assert_eq!(ks.free_slots_between(), 3 + 4);
    }
}
